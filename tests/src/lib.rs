//! Shared helpers for the workspace-level integration tests.

use rr_emu::{execute, Execution};
use rr_obj::Executable;
use rr_workloads::Workload;

/// Step budget generous enough for hybrid (lifted/lowered) binaries.
pub const BIG_BUDGET: u64 = 100_000_000;

/// Asserts two binaries behave identically on a workload's golden inputs
/// plus a batch of derived inputs.
pub fn assert_equivalent(w: &Workload, original: &Executable, rewritten: &Executable) {
    let mut inputs: Vec<Vec<u8>> = vec![w.good_input.clone(), w.bad_input.clone()];
    inputs.extend(w.more_bad_inputs(6, 0xEC0));
    for input in &inputs {
        let a = execute(original, input, BIG_BUDGET);
        let b = execute(rewritten, input, BIG_BUDGET);
        assert!(
            a.same_behavior(&b),
            "{}: behaviour diverged on {input:?}:\n  original:  {a:?}\n  rewritten: {b:?}",
            w.name
        );
    }
}

/// Runs a binary on an input with the big budget.
pub fn run(exe: &Executable, input: &[u8]) -> Execution {
    execute(exe, input, BIG_BUDGET)
}
