//! The paper's evaluation claims, asserted as tests. Each test cites the
//! section it reproduces; EXPERIMENTS.md records the measured numbers.

use rr_core::experiments::{
    fig5_cfg, local_pattern_examples, table4, table5_row, vuln_reduction, Approach, Table4,
};
use rr_fault::{InstructionSkip, SingleBitFlip};
use rr_workloads::{bootloader, pincheck};

/// §V-A / Tables I–III: local protection patterns exist for mov, cmp, and
/// conditional jumps, built on redundant computation and a fault handler.
#[test]
fn claim_tables_1_2_3_patterns() {
    let examples = local_pattern_examples().unwrap();
    assert_eq!(examples.len(), 3);
    let mov = &examples[0];
    assert!(mov.original.starts_with("load"), "{}", mov.original);
    // Redundancy: the protected form re-checks the moved value.
    assert!(mov.protected.matches("cmp").count() >= 1);
    let cmp = &examples[1];
    // Table II: the comparison runs at least twice and flags are staged
    // through the stack.
    assert!(cmp.protected.matches("cmp r1, [r2+4]").count() >= 2, "{}", cmp.protected);
    assert!(cmp.protected.contains("pushf"));
    let jcc = &examples[2];
    // Table III: the condition is examined on both edges.
    assert!(
        jcc.protected.matches("setne").count() >= 2 || jcc.protected.matches("jne").count() >= 2
    );
}

/// Table IV: conditional branch hardening multiplies the instruction count
/// at both abstraction levels, with mask arithmetic (sub/not/and/or/xor)
/// appearing in the hardened IR.
#[test]
fn claim_table_4_qualitative_overhead() {
    let t4 = table4().unwrap();
    assert!(Table4::total(&t4.ir_after) >= 4 * Table4::total(&t4.ir_before));
    assert!(Table4::total(&t4.machine_after) >= 3 * Table4::total(&t4.machine_before));
    for mnemonic in ["xor", "and", "or", "sub"] {
        assert!(t4.ir_after.contains_key(mnemonic), "{mnemonic} missing");
    }
}

/// Table V: Faulter+Patcher overhead is far below the Hybrid overhead on
/// both case studies, and both beat naive full duplication *in their own
/// regime* (targeted patching ≪ holistic ≥ 300%).
#[test]
fn claim_table_5_overhead_ordering() {
    for w in [pincheck(), bootloader()] {
        let row = table5_row(&w).unwrap();
        assert!(
            row.faulter_patcher < row.hybrid,
            "{}: faulter+patcher ({:.1}%) must be below hybrid ({:.1}%)",
            row.workload,
            row.faulter_patcher,
            row.hybrid
        );
        assert!(
            row.faulter_patcher < row.holistic_patterns,
            "{}: targeted ({:.1}%) must beat holistic ({:.1}%)",
            row.workload,
            row.faulter_patcher,
            row.holistic_patterns
        );
        // Holistic application is substantial (the paper bounds the naive
        // duplicate-everything scheme at ≥300%; our patterns are leaner —
        // idempotent duplication and fused checks — so the holistic cost
        // lands below that bound while targeted insertion stays far
        // cheaper still).
        assert!(
            row.holistic_patterns >= 100.0,
            "{}: holistic patterns only {:.1}%",
            row.workload,
            row.holistic_patterns
        );
        assert!(
            row.holistic_patterns < 400.0,
            "{}: holistic patterns ballooned to {:.1}%",
            row.workload,
            row.holistic_patterns
        );
        // The hybrid overhead is dominated by the lift/lower round trip
        // (§IV-D), which the roundtrip-only column isolates.
        assert!(row.roundtrip_only > 0.0 && row.roundtrip_only < row.hybrid);
    }
}

/// §V-C: "In the case of the 'instruction skip' fault model, we were able
/// to resolve all the vulnerabilities" — via the Faulter+Patcher loop.
#[test]
fn claim_skip_vulnerabilities_resolved() {
    for w in [pincheck(), bootloader()] {
        let row = vuln_reduction(&w, &InstructionSkip, Approach::FaulterPatcher, 10).unwrap();
        assert!(row.sites_before > 0, "{}", row.workload);
        assert_eq!(row.sites_after, 0, "{}: {row:?}", row.workload);
    }
}

/// §V-C: "In the case of the 'single bit flip' fault model we were able to
/// reduce the number of vulnerable points by 50%."
#[test]
fn claim_bit_flip_half_reduction() {
    for w in [pincheck(), bootloader()] {
        let row = vuln_reduction(&w, &SingleBitFlip, Approach::FaulterPatcher, 8).unwrap();
        assert!(
            row.reduction_percent() >= 50.0,
            "{}: only {:.1}% reduction ({} → {})",
            row.workload,
            row.reduction_percent(),
            row.sites_before,
            row.sites_after
        );
    }
}

/// Figs. 4–5: hardening one branch produces the dual-checksum nested
/// validation CFG with fault-response blocks.
#[test]
fn claim_fig5_cfg_structure() {
    let (before, after) = fig5_cfg();
    let block_labels =
        |s: &str| s.lines().filter(|l| l.starts_with("bb") && l.ends_with(':')).count();
    // Before: 3 blocks (source + two destinations).
    assert_eq!(block_labels(&before), 3, "{before}");
    // After: source + 2 validation blocks per edge + fault response +
    // destinations ⇒ at least 8 block labels.
    let after_blocks = block_labels(&after);
    assert!(after_blocks >= 8, "{after_blocks} blocks:\n{after}");
    assert!(after.contains("abort"));
}
