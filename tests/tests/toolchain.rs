//! Toolchain-level integration: the assembler/linker/loader/disassembler
//! stack composes correctly with rewriting, serialization, and the IR
//! pipeline.

use proptest::prelude::*;
use rr_disasm::disassemble;
use rr_integration::{assert_equivalent, run};
use rr_obj::Executable;
use rr_patch::apply_patterns;
use std::collections::BTreeSet;

#[test]
fn executables_survive_serialization_after_patching() {
    // exe → disassemble → patch everything → reassemble → serialize →
    // parse → run: the full life of a rewritten binary.
    let w = rr_workloads::pincheck();
    let exe = w.build().unwrap();
    let mut listing = disassemble(&exe).unwrap().listing;
    let all: BTreeSet<u64> = listing.original_code().map(|(_, a, _)| a).collect();
    apply_patterns(&mut listing, &all);
    let patched = rr_asm::assemble_and_link(&listing.to_source()).unwrap();

    let bytes = patched.to_bytes();
    let reloaded = Executable::from_bytes(&bytes).unwrap();
    assert_eq!(reloaded, patched);
    assert_equivalent(&w, &exe, &reloaded);
}

#[test]
fn stripped_binaries_can_be_hardened() {
    // Symbols are a convenience, not a requirement: strip, then run the
    // full Faulter+Patcher loop.
    let w = rr_workloads::otp_check();
    let exe = w.build().unwrap().stripped();
    let outcome = rr_core::FaulterPatcher::new(rr_core::HardenConfig::default())
        .harden(&exe, &w.good_input, &w.bad_input, &rr_fault::InstructionSkip)
        .unwrap();
    assert!(outcome.fixed_point);
    assert_equivalent(&w, &exe, &outcome.hardened);
}

#[test]
fn object_files_link_in_any_order() {
    let a = rr_asm::assemble_named(
        "    .global _start\n_start:\n    call helper\n    mov r1, r0\n    svc 0\n",
        "main.s",
    )
    .unwrap();
    let b = rr_asm::assemble_named(
        "    .global helper\nhelper:\n    mov r0, 42\n    ret\n",
        "helper.s",
    )
    .unwrap();
    for objs in [[a.clone(), b.clone()], [b, a]] {
        let exe = rr_obj::link(&objs).unwrap();
        assert_eq!(run(&exe, &[]).outcome, rr_emu::RunOutcome::Exited { code: 42 });
    }
}

#[test]
fn lift_lower_composes_with_disassembly_roundtrip() {
    // exe → lift → lower → disassemble → reassemble → behaviourally equal.
    let w = rr_workloads::otp_check();
    let exe = w.build().unwrap();
    let lowered = rr_core::lift_lower_roundtrip(&exe, true).unwrap();
    let listing = disassemble(&lowered).unwrap().listing;
    let again = rr_asm::assemble_and_link(&listing.to_source()).unwrap();
    assert_equivalent(&w, &exe, &again);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Random pins through the whole hardened pipeline behave like the
    /// original program.
    #[test]
    fn hardened_pincheck_agrees_on_random_inputs(pin in proptest::collection::vec(any::<u8>(), 0..8)) {
        // Build once per process would be nicer; proptest closures make
        // that awkward, so keep the case count low instead.
        let w = rr_workloads::pincheck();
        let exe = w.build().unwrap();
        let hardened = rr_core::FaulterPatcher::default()
            .harden(&exe, &w.good_input, &w.bad_input, &rr_fault::InstructionSkip)
            .unwrap()
            .hardened;
        let a = run(&exe, &pin);
        let b = run(&hardened, &pin);
        prop_assert!(a.same_behavior(&b), "diverged on {pin:?}: {a:?} vs {b:?}");
    }
}
