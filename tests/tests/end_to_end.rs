//! Whole-system integration: both hardening approaches applied to every
//! workload, checked for soundness (behaviour preservation) and security
//! (vulnerability elimination).

use rr_core::{harden_hybrid, FaulterPatcher, HardenConfig, HybridConfig};
use rr_fault::{CampaignSession, Collect, InstructionSkip};
use rr_integration::{assert_equivalent, run};
use rr_workloads::all_workloads;

#[test]
fn faulter_patcher_on_every_workload() {
    for w in all_workloads() {
        let exe = w.build().unwrap();
        let outcome = FaulterPatcher::new(HardenConfig::default())
            .harden(&exe, &w.good_input, &w.bad_input, &InstructionSkip)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(outcome.fixed_point, "{}: must reach a fixed point", w.name);
        assert_eq!(outcome.residual_vulnerabilities, 0, "{}", w.name);
        assert_equivalent(&w, &exe, &outcome.hardened);
        // Targeted insertion keeps overhead modest.
        assert!(
            outcome.overhead_percent() < 200.0,
            "{}: overhead {:.1}% too large",
            w.name,
            outcome.overhead_percent()
        );
    }
}

#[test]
fn hybrid_on_every_workload() {
    for w in all_workloads() {
        let exe = w.build().unwrap();
        let outcome = harden_hybrid(&exe, &HybridConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(outcome.report.protected_branches > 0, "{}", w.name);
        assert_equivalent(&w, &exe, &outcome.hardened);
    }
}

#[test]
fn both_approaches_are_composable() {
    // Hybrid output re-enters the Faulter+Patcher loop (the paper's
    // stated future work) and still behaves like the original.
    let w = rr_workloads::otp_check();
    let exe = w.build().unwrap();
    let hybrid = harden_hybrid(&exe, &HybridConfig::default()).unwrap();
    let config = HardenConfig {
        campaign: rr_fault::CampaignConfig {
            golden_max_steps: rr_integration::BIG_BUDGET,
            faulted_min_steps: 100_000,
            ..Default::default()
        },
        ..Default::default()
    };
    let outcome = FaulterPatcher::new(config)
        .harden(&hybrid.hardened, &w.good_input, &w.bad_input, &InstructionSkip)
        .unwrap();
    assert!(outcome.fixed_point);
    assert_equivalent(&w, &exe, &outcome.hardened);
}

#[test]
fn hardened_binaries_still_deny_bad_inputs() {
    // Security sanity: hardening must never *weaken* the decision.
    let w = rr_workloads::pincheck();
    let exe = w.build().unwrap();
    let fp = FaulterPatcher::new(HardenConfig::default())
        .harden(&exe, &w.good_input, &w.bad_input, &InstructionSkip)
        .unwrap()
        .hardened;
    let hy = harden_hybrid(&exe, &HybridConfig::default()).unwrap().hardened;
    for hardened in [&fp, &hy] {
        for bad in w.more_bad_inputs(10, 99) {
            let result = run(hardened, &bad);
            assert_eq!(result.outcome, rr_emu::RunOutcome::Exited { code: 1 }, "{bad:?}");
        }
        assert_eq!(run(hardened, &w.good_input).outcome, rr_emu::RunOutcome::Exited { code: 0 });
    }
}

#[test]
fn campaigns_agree_between_fresh_sessions() {
    // Determinism across independently constructed sessions, serial vs
    // parallel scheduling.
    let w = rr_workloads::pincheck();
    let exe = w.build().unwrap();
    let session = |threads| {
        CampaignSession::builder(exe.clone())
            .good_input(&w.good_input[..])
            .bad_input(&w.bad_input[..])
            .config(rr_fault::CampaignConfig { threads, ..Default::default() })
            .build()
            .unwrap()
    };
    let a = session(1).run(&[&InstructionSkip], Collect).pop().unwrap();
    let b = session(0).run(&[&InstructionSkip], Collect).pop().unwrap();
    assert_eq!(a.results, b.results);
}
