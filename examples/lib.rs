//! Placeholder library target so the examples package builds; the
//! runnable binaries live next to this file (see `Cargo.toml`).
