//! Fault-campaign deep dive: run every fault model against the secure
//! bootloader and break the results down by outcome class and by the kind
//! of instruction attacked.
//!
//! ```text
//! cargo run --release --bin fault_campaign
//! ```

use rr_fault::{
    CampaignSession, Collect, FaultClass, FaultModel, FlagFlip, InstructionSkip, RegisterBitFlip,
    SingleBitFlip,
};
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = rr_workloads::bootloader();
    let exe = workload.build()?;
    println!("target: `{}` — {}\n", workload.name, workload.description);

    let session = CampaignSession::builder(exe)
        .good_input(&workload.good_input[..])
        .bad_input(&workload.bad_input[..])
        .build()?;
    println!(
        "golden runs: good exits {:?}, bad exits {:?}; {} trace sites\n",
        session.golden_good().expect("golden-pair session").outcome,
        session.golden_bad().outcome,
        session.sites().len()
    );

    let register_model = RegisterBitFlip::low_bits(8);
    let models: [&dyn FaultModel; 4] =
        [&InstructionSkip, &SingleBitFlip, &FlagFlip, &register_model];

    // One scheduling pass evaluates all four models.
    for (model, report) in models.iter().zip(session.run(&models, Collect)) {
        println!("model `{}`: {}", model.name(), report.summary());

        // Which instruction kinds are exploitable under this model?
        let mut by_kind: BTreeMap<String, usize> = BTreeMap::new();
        for result in report.results.iter().filter(|r| r.class == FaultClass::Success) {
            let site = session
                .sites()
                .iter()
                .find(|s| s.step == result.fault().step)
                .expect("result maps to a site");
            *by_kind.entry(format!("{:?}", site.insn.kind())).or_default() += 1;
        }
        if by_kind.is_empty() {
            println!("    no successful faults");
        } else {
            for (kind, count) in by_kind {
                println!("    {count:>4} successful fault(s) on {kind} instructions");
            }
        }
        println!();
    }

    println!(
        "The paper's observation holds: successful faults cluster on the mov/cmp/j<cond>\n\
         instructions implementing the security decision."
    );
    Ok(())
}
