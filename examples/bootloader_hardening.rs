//! The paper's second case study end-to-end: harden the secure bootloader
//! with *both* approaches and compare cost and protection.
//!
//! ```text
//! cargo run --release --bin bootloader_hardening
//! ```

use rr_core::{harden_hybrid, FaulterPatcher, HardenConfig, HybridConfig};
use rr_fault::{
    CampaignConfig, CampaignSession, Collect, FaultModel, InstructionSkip, SingleBitFlip,
};
use rr_obj::Executable;

fn count_vulnerable(exe: &Executable, good: &[u8], bad: &[u8], model: &dyn FaultModel) -> usize {
    let config = CampaignConfig {
        golden_max_steps: 100_000_000,
        faulted_min_steps: 100_000,
        site_stride: 1,
        ..Default::default()
    };
    let session = CampaignSession::builder(exe.clone())
        .good_input(good)
        .bad_input(bad)
        .config(config)
        .build();
    match session {
        Ok(session) => {
            session.run(&[model], Collect).pop().expect("one report").vulnerable_pcs().len()
        }
        Err(e) => {
            eprintln!("campaign failed: {e}");
            usize::MAX
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = rr_workloads::bootloader();
    let exe = w.build()?;
    println!("secure bootloader: verifies an FNV-1a-64 hash of a {}-byte image", 32);
    println!("original: {} bytes of code\n", exe.code_size());

    let skip_before = count_vulnerable(&exe, &w.good_input, &w.bad_input, &InstructionSkip);
    let flip_before = count_vulnerable(&exe, &w.good_input, &w.bad_input, &SingleBitFlip);
    println!("vulnerable points before: {skip_before} (skip), {flip_before} (bit flip)\n");

    // Approach 1 — Faulter+Patcher (targeted).
    let fp = FaulterPatcher::new(HardenConfig::default()).harden(
        &exe,
        &w.good_input,
        &w.bad_input,
        &InstructionSkip,
    )?;
    println!("— Faulter+Patcher —");
    println!("  iterations: {}", fp.iterations.len());
    for it in &fp.iterations {
        println!(
            "    #{}: {} vulnerable site(s), {} patched",
            it.iteration,
            it.vulnerable_sites,
            it.stats.patched.len()
        );
    }
    println!("  overhead: {:+.2}%", fp.overhead_percent());
    println!(
        "  vulnerable points after: {} (skip), {} (bit flip)\n",
        count_vulnerable(&fp.hardened, &w.good_input, &w.bad_input, &InstructionSkip),
        count_vulnerable(&fp.hardened, &w.good_input, &w.bad_input, &SingleBitFlip),
    );

    // Approach 2 — Hybrid (lift → branch hardening → lower).
    let hy = harden_hybrid(&exe, &HybridConfig::default())?;
    println!("— Hybrid —");
    println!(
        "  {} branches protected, overhead {:+.2}%",
        hy.report.protected_branches,
        hy.overhead_percent()
    );
    println!(
        "  vulnerable points after: {} (skip)\n",
        count_vulnerable(&hy.hardened, &w.good_input, &w.bad_input, &InstructionSkip),
    );

    println!(
        "Trade-off (paper §IV-D): the targeted loop is compact; the Hybrid approach is\n\
         automatic and guaranteed applicable but pays for the lift/lower round trip."
    );
    Ok(())
}
