//! Quickstart: harden a vulnerable pin-check binary in a dozen lines.
//!
//! ```text
//! cargo run --release --bin quickstart
//! ```
//!
//! Walks the paper's core loop once: show the binary is fault-vulnerable,
//! run the Faulter+Patcher, show the vulnerabilities are gone.

use rr_core::{FaulterPatcher, HardenConfig};
use rr_emu::execute;
use rr_fault::{CampaignSession, Collect, InstructionSkip};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A binary with a security decision: the bundled pincheck.
    let workload = rr_workloads::pincheck();
    let exe = workload.build()?;
    println!("built `{}`: {} bytes of code", workload.name, exe.code_size());

    // 2. Is it vulnerable? Simulate instruction-skip faults at every point
    //    of a bad-input execution.
    let session = CampaignSession::builder(exe.clone())
        .good_input(&workload.good_input[..])
        .bad_input(&workload.bad_input[..])
        .build()?;
    let report = session.run(&[&InstructionSkip], Collect).pop().unwrap();
    println!("before hardening: {}", report.summary());
    println!(
        "  → {} distinct program points let a skipped instruction grant access",
        report.vulnerable_pcs().len()
    );

    // 3. Harden: the iterative faulter+patcher loop (paper Fig. 2).
    let driver = FaulterPatcher::new(HardenConfig::default());
    let outcome =
        driver.harden(&exe, &workload.good_input, &workload.bad_input, &InstructionSkip)?;
    println!(
        "hardening finished after {} iteration(s); fixed point = {}",
        outcome.iterations.len(),
        outcome.fixed_point
    );
    println!(
        "  code size {} → {} bytes ({:+.1}%)",
        outcome.original_code_size,
        outcome.hardened.code_size(),
        outcome.overhead_percent()
    );

    // 4. Verify: no successful faults remain, behaviour unchanged.
    let verify = CampaignSession::builder(outcome.hardened.clone())
        .good_input(&workload.good_input[..])
        .bad_input(&workload.bad_input[..])
        .build()?;
    let after = verify.run(&[&InstructionSkip], Collect).pop().unwrap();
    println!("after hardening:  {}", after.summary());

    let good = execute(&outcome.hardened, &workload.good_input, 1_000_000);
    let bad = execute(&outcome.hardened, &workload.bad_input, 1_000_000);
    println!("good pin  → {:?}", String::from_utf8_lossy(&good.output).trim());
    println!("wrong pin → {:?}", String::from_utf8_lossy(&bad.output).trim());
    Ok(())
}
