//! Explore the reassembleable-disassembly substrate: recover a binary's
//! structure, compare symbolization policies, and round-trip it.
//!
//! ```text
//! cargo run --release --bin explore_disassembly
//! ```

use rr_disasm::{disassemble_with, SymbolizationPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = rr_workloads::access_control();
    let exe = w.build()?;
    println!("target `{}`: {} bytes of code, entry {:#x}\n", w.name, exe.code_size(), exe.entry);

    let disasm = disassemble_with(&exe, SymbolizationPolicy::DataAccessRefined)?;

    // Structural recovery: functions and their CFGs.
    println!("recovered {} function(s):", disasm.functions.len());
    for f in &disasm.functions {
        println!(
            "  {} @ {:#x}: {} block(s), {} instruction(s)",
            f.name,
            f.entry,
            f.blocks.len(),
            f.instr_count()
        );
        for block in &f.blocks {
            let succs: Vec<String> = block.succs.iter().map(|s| format!("{s:#x}")).collect();
            println!(
                "      block {:#x} ({} insns) → [{}]",
                block.addr,
                block.instrs.len(),
                succs.join(", ")
            );
        }
    }

    // Symbolization: how many immediates became labels under each policy?
    let naive = disassemble_with(&exe, SymbolizationPolicy::Naive)?;
    let count_syms = |listing: &rr_disasm::Listing| {
        listing
            .original_code()
            .filter(|(_, _, insn)| matches!(insn, rr_disasm::SymInstr::MovSym { .. }))
            .count()
    };
    println!(
        "\nsymbolized address immediates: {} (naive) vs {} (data-access refined)",
        count_syms(&naive.listing),
        count_syms(&disasm.listing)
    );

    // The reassembleable round trip.
    let source = disasm.listing.to_source();
    println!("\n--- recovered assembly (first 25 lines) ---");
    for line in source.lines().take(25) {
        println!("{line}");
    }
    println!("    ...");

    let rebuilt = rr_asm::assemble_and_link(&source)?;
    println!(
        "\nround trip: rebuilt text is byte-identical: {}",
        rebuilt.text_bytes() == exe.text_bytes()
    );
    for input in [&w.good_input, &w.bad_input] {
        let a = rr_emu::execute(&exe, input, 1_000_000);
        let b = rr_emu::execute(&rebuilt, input, 1_000_000);
        assert!(a.same_behavior(&b));
    }
    println!("behaviour on golden inputs: identical");
    Ok(())
}
