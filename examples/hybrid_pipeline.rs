//! The Hybrid compiler–binary approach, stage by stage (paper §IV-C):
//! lift the binary to RRIR, inspect it, run the conditional-branch
//! hardening pass, lower back, and compare.
//!
//! ```text
//! cargo run --release --bin hybrid_pipeline
//! ```

use rr_harden::BranchHardening;
use rr_ir::passes::{DeadCodeElimination, PromoteCells};
use rr_ir::{Pass, PassManager};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = rr_workloads::otp_check();
    let exe = workload.build()?;
    println!("original `{}`: {} bytes of code", workload.name, exe.code_size());

    // Stage 1 — lift (Rev.ng-style full translation).
    let mut lifted = rr_lift::lift(&exe)?;
    println!(
        "lifted: {} functions, {} IR ops",
        lifted.module.functions().len(),
        lifted.module.placed_op_count()
    );

    // Stage 2 — optimize away the lift redundancy (cell promotion + DCE).
    let mut pm = PassManager::new();
    pm.add(PromoteCells);
    pm.add(DeadCodeElimination);
    pm.run(&mut lifted.module).map_err(|(p, e)| format!("pass {p}: {e}"))?;
    println!("optimized: {} IR ops", lifted.module.placed_op_count());

    // Print the IR of the entry function before hardening.
    let entry = lifted.module.function(&lifted.module.entry).expect("entry exists");
    println!("\n--- entry function before hardening (excerpt) ---");
    for line in entry.to_string().lines().take(20) {
        println!("{line}");
    }
    println!("    ...\n");

    // Stage 3 — the conditional-branch-hardening pass (Algorithm 1, Fig. 5).
    let pass = BranchHardening::default();
    pass.run(&mut lifted.module);
    rr_ir::verify(&lifted.module).map_err(|e| format!("verifier: {e}"))?;
    let report = pass.report();
    println!(
        "hardened: {} branches protected, {} validation blocks, {} fault-response blocks, {} IR ops",
        report.protected_branches,
        report.validation_blocks,
        report.fault_response_blocks,
        lifted.module.placed_op_count()
    );

    // Stage 4 — lower back to a binary and confirm behaviour.
    let hardened = rr_lower::compile(&lifted)?;
    println!(
        "lowered: {} bytes of code ({:+.1}% vs original)",
        hardened.code_size(),
        (hardened.code_size() as f64 - exe.code_size() as f64) / exe.code_size() as f64 * 100.0
    );

    for (label, input) in [("good", &workload.good_input), ("bad", &workload.bad_input)] {
        let original = rr_emu::execute(&exe, input, 1_000_000);
        let rewritten = rr_emu::execute(&hardened, input, 100_000_000);
        assert!(original.same_behavior(&rewritten), "behaviour must be preserved");
        println!(
            "{label} input: {:?} (outputs identical, {}x slower in steps)",
            original.outcome,
            rewritten.steps / original.steps.max(1)
        );
    }
    Ok(())
}
