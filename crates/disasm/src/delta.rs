//! Listing deltas: what a binary rewrite changed, instruction by
//! instruction.
//!
//! A [`ListingDelta`] compares the listing of one harden iteration with
//! the patched listing that produced the next binary, and classifies
//! every instruction as **unchanged** (carried over verbatim, possibly at
//! a shifted address), **changed** (replaced or removed), or **inserted**
//! (new code with no counterpart in the old binary). The unchanged set
//! carries an exact old→new address remap.
//!
//! This is the foundation of incremental re-campaigning: the
//! Faulter+Patcher loop patches a handful of instructions per iteration,
//! so the next fault campaign can reuse every prior classification whose
//! injection point and downstream trace window the delta left untouched,
//! and re-execute only the rest (see `rr-fault`'s `ClassificationCache`).

use crate::listing::{Line, Listing};
use rr_isa::{decode, MAX_INSTR_LEN};
use rr_obj::Executable;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;

/// Why a delta could not be computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaError {
    /// Walking a listing against its binary did not land exactly on the
    /// end of the text section — the listing does not describe that
    /// binary's layout.
    LayoutMismatch {
        /// Where the walk ended.
        cursor: u64,
        /// Where the text section ends.
        text_end: u64,
    },
    /// A code line's bytes did not decode during the layout walk.
    Undecodable {
        /// Address of the undecodable bytes.
        addr: u64,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::LayoutMismatch { cursor, text_end } => {
                write!(f, "listing layout walk ended at {cursor:#x}, text ends at {text_end:#x}")
            }
            DeltaError::Undecodable { addr } => {
                write!(f, "undecodable code bytes at {addr:#x}")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// The instruction-level difference between two consecutive binaries of
/// a harden loop, with an old→new address remap for everything that
/// survived the rewrite. Build one with [`ListingDelta::compute`] (or
/// [`ListingDelta::identity`] for "nothing changed"); the incremental
/// fault campaign in `rr-fault` consumes it to decide which prior
/// classifications are still valid.
#[derive(Debug, Clone, Default)]
pub struct ListingDelta {
    /// Old address → new address for instructions carried over verbatim.
    remap: BTreeMap<u64, u64>,
    /// The inverse of `remap` (injective by construction: each new
    /// address holds at most one carried-over instruction).
    remap_back: BTreeMap<u64, u64>,
    /// Old-binary byte ranges whose instructions were replaced or
    /// removed, merged and sorted.
    changed: Vec<Range<u64>>,
    /// New-binary byte ranges holding code with no unchanged old
    /// counterpart (inserted patterns and replacement instructions),
    /// merged and sorted.
    inserted: Vec<Range<u64>>,
    /// Old-binary byte ranges of unchanged instructions whose address
    /// moved (`remap(a) != a`), merged and sorted.
    shifted: Vec<Range<u64>>,
    /// `true` for [`ListingDelta::identity`]: every address maps to
    /// itself and nothing changed.
    identity: bool,
}

/// One code line's placement, produced by walking a listing against the
/// binary it describes.
struct LayoutSlot {
    /// Index into `listing.text`.
    index: usize,
    /// The line's address in the walked binary.
    addr: u64,
    /// Encoded length in bytes.
    len: usize,
}

impl ListingDelta {
    /// The delta of a rewrite that changed nothing: every old address
    /// remaps to itself, and the changed/inserted/shifted sets are empty.
    ///
    /// The harden loop uses this for back-to-back campaigns on the same
    /// binary (e.g. the final re-measurement pass), where every prior
    /// classification is reusable.
    pub fn identity() -> ListingDelta {
        ListingDelta { identity: true, ..ListingDelta::default() }
    }

    /// Whether this is an [identity](ListingDelta::identity) delta.
    pub fn is_identity(&self) -> bool {
        self.identity
    }

    /// Whether the delta changes nothing at all: an identity delta, or a
    /// computed one with no changed, inserted, or shifted range — every
    /// instruction kept its exact address and bytes. Strictly stronger
    /// than "this instruction is unchanged": consumers whose faults are
    /// sensitive to absolute layout (persistent encoding corruption can
    /// turn an instruction into a branch whose landing site depends on
    /// where everything else lives) reuse only under a no-op delta.
    pub fn is_noop(&self) -> bool {
        self.identity
            || (self.changed.is_empty() && self.inserted.is_empty() && self.shifted.is_empty())
    }

    /// Computes the delta of one patch step.
    ///
    /// * `old` is the listing disassembled from `old_exe` (the binary the
    ///   prior campaign ran against);
    /// * `patched` is that listing after the patcher edited it — original
    ///   lines keep their `orig_addr` (pointing into `old_exe`), inserted
    ///   or replaced lines carry `None`;
    /// * `rebuilt` is the executable assembled from `patched`.
    ///
    /// Both listings are walked against their binaries in layout order
    /// (the assembler emits text lines in listing order, which the
    /// disassembly round-trip test pins), giving every line an exact
    /// address and length. A patched line is *unchanged* when its
    /// `orig_addr` names an old instruction with an identical symbolic
    /// rendering; it is remapped to its new address. Everything else is
    /// *changed* (old side) and *inserted* (new side).
    ///
    /// # Errors
    ///
    /// [`DeltaError`] when either listing fails to describe its binary's
    /// text layout — the caller should fall back to a full re-campaign.
    pub fn compute(
        old: &Listing,
        old_exe: &Executable,
        patched: &Listing,
        rebuilt: &Executable,
    ) -> Result<ListingDelta, DeltaError> {
        let old_layout = layout(old, old_exe)?;
        let new_layout = layout(patched, rebuilt)?;

        // Old instructions by address; remapped entries are removed, so
        // what remains at the end is the changed/removed set.
        let mut old_code: BTreeMap<u64, (usize, usize)> = BTreeMap::new(); // addr → (index, len)
        for slot in &old_layout {
            old_code.insert(slot.addr, (slot.index, slot.len));
        }

        let mut delta = ListingDelta::default();
        let mut shifted_old: Vec<Range<u64>> = Vec::new();
        for slot in &new_layout {
            let Line::Code { orig_addr, insn } = &patched.text[slot.index] else {
                unreachable!("layout slots are code lines");
            };
            let carried = orig_addr.and_then(|a| {
                let (old_index, old_len) = old_code.get(&a).copied()?;
                let Line::Code { insn: old_insn, .. } = &old.text[old_index] else {
                    return None;
                };
                (old_insn == insn).then_some((a, old_len))
            });
            match carried {
                Some((a, old_len)) => {
                    delta.remap.insert(a, slot.addr);
                    delta.remap_back.insert(slot.addr, a);
                    old_code.remove(&a);
                    if slot.addr != a {
                        push_range(&mut shifted_old, a..a + old_len as u64);
                    }
                }
                None => push_range(&mut delta.inserted, slot.addr..slot.addr + slot.len as u64),
            }
        }
        for (addr, (_, len)) in old_code {
            push_range(&mut delta.changed, addr..addr + len as u64);
        }
        delta.shifted = shifted_old;
        Ok(delta)
    }

    /// The new-binary address of the unchanged old instruction at
    /// `old_addr`, or `None` when the delta changed or removed it.
    pub fn remap(&self, old_addr: u64) -> Option<u64> {
        if self.identity {
            return Some(old_addr);
        }
        self.remap.get(&old_addr).copied()
    }

    /// The old-binary address of the unchanged instruction now at
    /// `new_addr` — the inverse of [`ListingDelta::remap`].
    pub fn remap_back(&self, new_addr: u64) -> Option<u64> {
        if self.identity {
            return Some(new_addr);
        }
        self.remap_back.get(&new_addr).copied()
    }

    /// Whether `old_addr` falls in a changed (replaced/removed) range of
    /// the old binary.
    pub fn is_changed(&self, old_addr: u64) -> bool {
        contains(&self.changed, old_addr)
    }

    /// Whether `new_addr` falls in an inserted range of the new binary.
    pub fn is_inserted(&self, new_addr: u64) -> bool {
        contains(&self.inserted, new_addr)
    }

    /// Old-binary byte ranges whose instructions were replaced or
    /// removed, sorted and merged.
    pub fn changed_ranges(&self) -> &[Range<u64>] {
        &self.changed
    }

    /// New-binary byte ranges of code with no unchanged old counterpart,
    /// sorted and merged.
    pub fn inserted_ranges(&self) -> &[Range<u64>] {
        &self.inserted
    }

    /// Old-binary byte ranges of unchanged instructions whose address
    /// moved, sorted and merged.
    pub fn shifted_ranges(&self) -> &[Range<u64>] {
        &self.shifted
    }

    /// Number of unchanged (remapped) instructions.
    pub fn unchanged_count(&self) -> usize {
        self.remap.len()
    }
}

impl fmt::Display for ListingDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.identity {
            return write!(f, "identity (nothing changed)");
        }
        let bytes = |ranges: &[Range<u64>]| ranges.iter().map(|r| r.end - r.start).sum::<u64>();
        write!(
            f,
            "{} unchanged instruction(s) ({} B shifted), {} B changed, {} B inserted",
            self.remap.len(),
            bytes(&self.shifted),
            bytes(&self.changed),
            bytes(&self.inserted),
        )
    }
}

/// Walks `listing`'s text lines against `exe`'s text section, assigning
/// each code line its address and encoded length.
fn layout(listing: &Listing, exe: &Executable) -> Result<Vec<LayoutSlot>, DeltaError> {
    let text = exe.text_range();
    let mut cursor = text.start;
    let mut slots = Vec::new();
    for (index, line) in listing.text.iter().enumerate() {
        match line {
            Line::Label { .. } => {}
            Line::RawBytes { bytes, .. } => cursor += bytes.len() as u64,
            Line::Code { .. } => {
                let available = (text.end.saturating_sub(cursor)).min(MAX_INSTR_LEN as u64);
                let len = exe
                    .read_bytes(cursor, available as usize)
                    .and_then(|bytes| decode(bytes).ok())
                    .map(|(_, len)| len)
                    .ok_or(DeltaError::Undecodable { addr: cursor })?;
                slots.push(LayoutSlot { index, addr: cursor, len });
                cursor += len as u64;
            }
        }
    }
    if cursor != text.end {
        return Err(DeltaError::LayoutMismatch { cursor, text_end: text.end });
    }
    Ok(slots)
}

/// Appends `range` to a sorted range list, merging with the last entry
/// when adjacent or overlapping. Ranges arrive in increasing order from
/// the layout walks and `BTreeMap` iteration.
fn push_range(ranges: &mut Vec<Range<u64>>, range: Range<u64>) {
    if let Some(last) = ranges.last_mut() {
        if range.start <= last.end {
            last.end = last.end.max(range.end);
            return;
        }
    }
    ranges.push(range);
}

/// Point-in-sorted-ranges query.
fn contains(ranges: &[Range<u64>], addr: u64) -> bool {
    let i = ranges.partition_point(|r| r.end <= addr);
    ranges.get(i).is_some_and(|r| r.contains(&addr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::listing::SymInstr;
    use rr_isa::Instr;

    fn listing_pair() -> (Listing, Executable) {
        let exe = rr_asm::assemble_and_link(
            "    .global _start\n\
             _start:\n\
                 mov r1, 1\n\
                 mov r2, 2\n\
                 cmp r1, r2\n\
                 jne .out\n\
                 mov r1, 0\n\
             .out:\n\
                 svc 0\n",
        )
        .unwrap();
        let listing = crate::disassemble(&exe).unwrap().listing;
        (listing, exe)
    }

    #[test]
    fn identity_delta_maps_everything_to_itself() {
        let delta = ListingDelta::identity();
        assert!(delta.is_identity());
        assert_eq!(delta.remap(0x1234), Some(0x1234));
        assert!(!delta.is_changed(0x1234));
        assert!(!delta.is_inserted(0x1234));
        assert!(delta.to_string().contains("identity"));
    }

    #[test]
    fn unpatched_listing_yields_an_empty_delta() {
        let (listing, exe) = listing_pair();
        let delta = ListingDelta::compute(&listing, &exe, &listing, &exe).unwrap();
        assert!(!delta.is_identity());
        assert!(delta.changed_ranges().is_empty());
        assert!(delta.inserted_ranges().is_empty());
        assert!(delta.shifted_ranges().is_empty());
        for (_, addr, _) in listing.original_code() {
            assert_eq!(delta.remap(addr), Some(addr));
        }
        assert_eq!(delta.unchanged_count(), listing.instr_count());
    }

    #[test]
    fn insertion_shifts_downstream_and_marks_the_new_bytes() {
        let (listing, exe) = listing_pair();
        let mut patched = listing.clone();
        // Insert a nop before the third instruction (cmp).
        let index =
            patched.original_code().nth(2).map(|(i, _, _)| i).expect("third instruction exists");
        let cmp_addr = match &patched.text[index] {
            Line::Code { orig_addr: Some(a), .. } => *a,
            _ => unreachable!(),
        };
        patched
            .text
            .insert(index, Line::Code { orig_addr: None, insn: SymInstr::Plain(Instr::Nop) });
        let rebuilt = rr_asm::assemble_and_link(&patched.to_source()).unwrap();
        let delta = ListingDelta::compute(&listing, &exe, &patched, &rebuilt).unwrap();

        assert!(delta.changed_ranges().is_empty(), "{delta}");
        assert_eq!(delta.inserted_ranges().len(), 1, "{delta}");
        let inserted = &delta.inserted_ranges()[0];
        assert_eq!(inserted.start, cmp_addr, "nop lands where the cmp was");
        let nop_len = (inserted.end - inserted.start) as usize;
        for (_, addr, _) in listing.original_code() {
            let expected = if addr < cmp_addr { addr } else { addr + nop_len as u64 };
            assert_eq!(delta.remap(addr), Some(expected), "addr {addr:#x}");
            assert!(!delta.is_changed(addr));
        }
        // Shifted ranges cover exactly the instructions at or after the
        // insertion point.
        assert!(delta.shifted_ranges().iter().all(|r| r.start >= cmp_addr));
        assert!(contains(delta.shifted_ranges(), cmp_addr));
        assert!(delta.to_string().contains("inserted"), "{delta}");
    }

    #[test]
    fn replacement_is_changed_old_side_and_inserted_new_side() {
        let (listing, exe) = listing_pair();
        let mut patched = listing.clone();
        let (index, addr, _) = patched.original_code().nth(1).expect("second instruction");
        // Replace `mov r2, 2` with two inserted nops (orig_addr dropped,
        // as the patcher's replacement helpers do).
        patched.replace_code(
            index,
            vec![
                Line::Code { orig_addr: None, insn: SymInstr::Plain(Instr::Nop) },
                Line::Code { orig_addr: None, insn: SymInstr::Plain(Instr::Nop) },
            ],
        );
        let rebuilt = rr_asm::assemble_and_link(&patched.to_source()).unwrap();
        let delta = ListingDelta::compute(&listing, &exe, &patched, &rebuilt).unwrap();

        assert_eq!(delta.remap(addr), None);
        assert!(delta.is_changed(addr));
        assert_eq!(delta.changed_ranges().len(), 1);
        assert_eq!(delta.inserted_ranges().len(), 1);
        // Every other instruction is still remapped.
        for (_, a, _) in listing.original_code() {
            if a != addr {
                assert!(delta.remap(a).is_some(), "addr {a:#x}");
            }
        }
    }

    #[test]
    fn layout_mismatch_is_reported() {
        let (listing, exe) = listing_pair();
        let mut truncated = listing.clone();
        // Drop the last code line: the walk ends short of the text end.
        let last =
            truncated.text.iter().rposition(|l| matches!(l, Line::Code { .. })).expect("has code");
        truncated.text.remove(last);
        let err = ListingDelta::compute(&listing, &exe, &truncated, &exe).unwrap_err();
        assert!(matches!(err, DeltaError::LayoutMismatch { .. }), "{err}");
        assert!(!err.to_string().is_empty());
    }
}
