//! Symbolization: turning concrete addresses back into names.
//!
//! This is the step the paper's §III-C compares rewriters by. After
//! linking, an immediate like `0x2008` is just a number — but if it is
//! *used as an address*, patched code that shifts the data section will
//! silently break unless the immediate is replaced by a label. Conversely,
//! symbolizing a plain constant that merely *looks* like an address
//! corrupts program semantics. UROBOROS's naïve range heuristic produces
//! both false positives and false negatives; Ddisasm refines
//! classification with register-value and data-access analyses.

use crate::discover::{CodeMap, DisasmError};
use crate::listing::{DataLine, DataSection, Line, Listing, SymInstr};
use rr_isa::{Instr, Reg};
use rr_obj::{Executable, SectionKind, SymbolKind, ENTRY_SYMBOL};
use std::collections::{BTreeMap, BTreeSet};

/// How aggressively immediates are classified as addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymbolizationPolicy {
    /// UROBOROS-style: any immediate that falls inside a mapped section
    /// becomes a label (code targets must still be instruction starts).
    /// Prone to false positives on constants that happen to look like
    /// addresses.
    Naive,
    /// Ddisasm-style refinement: additionally require *data-access
    /// evidence* — the loaded register must plausibly be used as an
    /// address (memory base, indirect jump/call target, or escaping the
    /// local block). Immediates whose register is overwritten before any
    /// use are left as plain constants.
    DataAccessRefined,
}

/// Builds the reassembleable [`Listing`] for `exe` under `policy`.
///
/// # Errors
///
/// Returns [`DisasmError::MisalignedTarget`] if a previously discovered
/// control-flow target has no label position (cannot happen for code maps
/// produced by [`crate::discover`]; kept as a defensive check).
pub fn symbolize(
    exe: &Executable,
    code: &CodeMap,
    policy: SymbolizationPolicy,
) -> Result<Listing, DisasmError> {
    let mut state = Symbolizer::new(exe, code, policy);
    state.assign_code_labels();
    state.scan_immediates();
    state.scan_data_pointers();
    state.build_listing()
}

struct Symbolizer<'a> {
    exe: &'a Executable,
    code: &'a CodeMap,
    policy: SymbolizationPolicy,
    /// Code address → label names (first is canonical).
    code_labels: BTreeMap<u64, Vec<(String, bool)>>,
    /// Referenced data addresses needing labels.
    data_refs: BTreeSet<u64>,
    /// Classification result per MovRI site: address → target address.
    mov_syms: BTreeMap<u64, u64>,
    /// Data-section word offsets classified as pointers: addr → target.
    quad_syms: BTreeMap<u64, u64>,
}

impl<'a> Symbolizer<'a> {
    fn new(exe: &'a Executable, code: &'a CodeMap, policy: SymbolizationPolicy) -> Self {
        Symbolizer {
            exe,
            code,
            policy,
            code_labels: BTreeMap::new(),
            data_refs: BTreeSet::new(),
            mov_syms: BTreeMap::new(),
            quad_syms: BTreeMap::new(),
        }
    }

    /// A section's range if `addr` belongs to one.
    fn section_of(&self, addr: u64) -> Option<SectionKind> {
        SectionKind::ALL
            .into_iter()
            .find(|&k| self.exe.section_range(k).is_some_and(|r| r.contains(&addr)))
    }

    fn symbol_name_at(&self, addr: u64, kinds: &[SymbolKind]) -> Option<String> {
        self.exe
            .symbols
            .iter()
            .find(|s| s.addr == addr && kinds.contains(&s.kind))
            .map(|s| s.name.clone())
    }

    fn assign_code_labels(&mut self) {
        for &entry in &self.code.function_entries {
            let name = self
                .symbol_name_at(entry, &[SymbolKind::Func, SymbolKind::Label])
                .unwrap_or_else(|| format!("f_{entry:x}"));
            self.code_labels.entry(entry).or_default().push((name, false));
        }
        for &target in &self.code.branch_targets {
            if self.code_labels.contains_key(&target) {
                continue;
            }
            let name = self
                .symbol_name_at(target, &[SymbolKind::Label, SymbolKind::Func])
                .unwrap_or_else(|| format!(".L_{target:x}"));
            self.code_labels.entry(target).or_default().push((name, false));
        }
        // The entry point must carry the (global) entry symbol for relink.
        let entry = self.exe.entry;
        let labels = self.code_labels.entry(entry).or_default();
        if let Some(existing) = labels.iter_mut().find(|(n, _)| n == ENTRY_SYMBOL) {
            existing.1 = true;
        } else {
            labels.push((ENTRY_SYMBOL.to_owned(), true));
        }
    }

    /// Classifies `MovRI` immediates (and register-indirect targets).
    fn scan_immediates(&mut self) {
        let sites: Vec<(u64, Reg, u64)> = self
            .code
            .instrs
            .iter()
            .filter_map(|(&addr, &(insn, _))| match insn {
                Instr::MovRI { rd, imm } => Some((addr, rd, imm)),
                _ => None,
            })
            .collect();
        for (addr, rd, imm) in sites {
            let Some(section) = self.section_of(imm) else { continue };
            if section == SectionKind::Text && !self.code.is_instr_start(imm) {
                continue; // cannot label the middle of an instruction
            }
            if self.policy == SymbolizationPolicy::DataAccessRefined
                && !self.has_address_evidence(addr, rd)
            {
                continue;
            }
            self.mov_syms.insert(addr, imm);
            if section == SectionKind::Text {
                let name = self
                    .symbol_name_at(imm, &[SymbolKind::Func, SymbolKind::Label])
                    .unwrap_or_else(|| format!("f_{imm:x}"));
                self.code_labels.entry(imm).or_default().push((name, false));
            } else {
                self.data_refs.insert(imm);
            }
        }
    }

    /// Forward def-use scan from the instruction after `addr`: does `rd`
    /// plausibly hold an address? Approximates Ddisasm's data-access
    /// pattern (DAP) analysis.
    ///
    /// Returns `false` only when `rd` is provably overwritten before any
    /// use; any address-like use, escape, or end-of-scan is evidence.
    fn has_address_evidence(&self, addr: u64, rd: Reg) -> bool {
        let mut cursor = addr;
        for _ in 0..64 {
            let Some(&(insn, len)) = self.code.instrs.get(&cursor) else { return true };
            if cursor != addr {
                if uses_as_address(&insn, rd) {
                    return true;
                }
                if escapes(&insn, rd) {
                    return true;
                }
                if insn.is_block_terminator()
                    || matches!(insn, Instr::Call { .. } | Instr::CallR { .. })
                {
                    // Value is live across control flow we do not track.
                    return true;
                }
                if overwrites(&insn, rd) {
                    return false;
                }
            }
            cursor += len as u64;
        }
        true
    }

    /// Scans data sections for pointer-sized words whose value lands in a
    /// mapped section (the classic UROBOROS data heuristic; code targets
    /// additionally require an instruction-start hit).
    fn scan_data_pointers(&mut self) {
        for kind in [SectionKind::Rodata, SectionKind::Data] {
            let Some(range) = self.exe.section_range(kind) else { continue };
            let mut addr = range.start;
            while addr + 8 <= range.end {
                if let Some(bytes) = self.exe.read_bytes(addr, 8) {
                    let value = u64::from_le_bytes(bytes.try_into().expect("len 8"));
                    if let Some(target_section) = self.section_of(value) {
                        let ok = if target_section == SectionKind::Text {
                            self.code.is_instr_start(value)
                        } else {
                            true
                        };
                        if ok && value != 0 {
                            self.quad_syms.insert(addr, value);
                            if target_section == SectionKind::Text {
                                let name = self
                                    .symbol_name_at(value, &[SymbolKind::Func, SymbolKind::Label])
                                    .unwrap_or_else(|| format!("f_{value:x}"));
                                self.code_labels.entry(value).or_default().push((name, false));
                            } else {
                                self.data_refs.insert(value);
                            }
                        }
                    }
                }
                addr += 8;
            }
        }
    }

    fn data_label_for(&self, addr: u64) -> String {
        self.exe
            .symbols
            .iter()
            .find(|s| s.addr == addr && s.kind == SymbolKind::Object)
            .map(|s| s.name.clone())
            .unwrap_or_else(|| format!("d_{addr:x}"))
    }

    fn build_listing(mut self) -> Result<Listing, DisasmError> {
        // Deduplicate label names per address.
        for labels in self.code_labels.values_mut() {
            let mut seen = BTreeSet::new();
            labels.retain(|(name, _)| seen.insert(name.clone()));
        }

        let mut listing = Listing::new();

        // Text section.
        let text_range = self.exe.text_range();
        let mut gap_iter = self.code.gaps.iter().peekable();
        let mut addr = text_range.start;
        while addr < text_range.end {
            if let Some(labels) = self.code_labels.get(&addr) {
                for (name, global) in labels {
                    listing.text.push(Line::Label { name: name.clone(), global: *global });
                }
            }
            if let Some(&&(gap_start, gap_end)) = gap_iter.peek() {
                if gap_start == addr {
                    gap_iter.next();
                    let bytes = self
                        .exe
                        .read_bytes(gap_start, (gap_end - gap_start) as usize)
                        .unwrap_or_default()
                        .to_vec();
                    listing.text.push(Line::RawBytes { orig_addr: gap_start, bytes });
                    addr = gap_end;
                    continue;
                }
            }
            let Some(&(insn, len)) = self.code.instrs.get(&addr) else {
                return Err(DisasmError::MisalignedTarget { addr });
            };
            let sym_insn = self.symbolic_instr(addr, insn, len);
            listing.text.push(Line::Code { orig_addr: Some(addr), insn: sym_insn });
            addr += len as u64;
        }

        // Data sections.
        for kind in [SectionKind::Rodata, SectionKind::Data, SectionKind::Bss] {
            let Some(range) = self.exe.section_range(kind) else { continue };
            let section = self.build_data_section(kind, range.clone());
            listing.data.push(section);
        }

        Ok(listing)
    }

    fn symbolic_instr(&self, addr: u64, insn: Instr, len: usize) -> SymInstr {
        if let Some(rel) = insn.rel_target() {
            let target = (addr + len as u64).wrapping_add(rel as i64 as u64);
            let label = self.code_labels[&target][0].0.clone();
            return match insn {
                Instr::Jmp { .. } => SymInstr::Branch { cond: None, is_call: false, target: label },
                Instr::Jcc { cc, .. } => {
                    SymInstr::Branch { cond: Some(cc), is_call: false, target: label }
                }
                Instr::Call { .. } => SymInstr::Branch { cond: None, is_call: true, target: label },
                _ => unreachable!("rel_target implies a direct branch"),
            };
        }
        if let Instr::MovRI { rd, .. } = insn {
            if let Some(&target) = self.mov_syms.get(&addr) {
                let sym = if self.section_of(target) == Some(SectionKind::Text) {
                    self.code_labels[&target][0].0.clone()
                } else {
                    self.data_label_for(target)
                };
                return SymInstr::MovSym { rd, sym, addend: 0 };
            }
        }
        SymInstr::Plain(insn)
    }

    fn build_data_section(&self, kind: SectionKind, range: std::ops::Range<u64>) -> DataSection {
        // Label positions: retained Object symbols plus referenced targets.
        let mut label_addrs: BTreeSet<u64> = self
            .exe
            .symbols
            .iter()
            .filter(|s| s.kind == SymbolKind::Object && range.contains(&s.addr))
            .map(|s| s.addr)
            .collect();
        label_addrs.extend(self.data_refs.iter().copied().filter(|a| range.contains(a)));

        let mut lines = Vec::new();
        let seg = self
            .exe
            .segments
            .iter()
            .find(|s| s.section == kind)
            .expect("section range implies segment");
        let initialized_end = seg.addr + seg.data.len() as u64;

        let mut addr = range.start;
        let mut pending_bytes: Vec<u8> = Vec::new();
        let flush = |pending: &mut Vec<u8>, lines: &mut Vec<DataLine>| {
            if !pending.is_empty() {
                lines.push(DataLine::Bytes(std::mem::take(pending)));
            }
        };
        while addr < range.end {
            if label_addrs.contains(&addr) {
                flush(&mut pending_bytes, &mut lines);
                lines.push(DataLine::Label { name: self.data_label_for(addr), global: false });
            }
            if addr >= initialized_end {
                // Zero tail (all of .bss, or trailing zeroes): one .space up
                // to the next label or section end.
                flush(&mut pending_bytes, &mut lines);
                let next_label = label_addrs.range(addr + 1..).next().copied().unwrap_or(range.end);
                lines.push(DataLine::Space(next_label - addr));
                addr = next_label;
                continue;
            }
            // Symbolized word?
            if self.quad_syms.contains_key(&addr)
                && addr + 8 <= initialized_end
                && label_addrs.range(addr + 1..addr + 8).next().is_none()
            {
                flush(&mut pending_bytes, &mut lines);
                let target = self.quad_syms[&addr];
                let sym = if self.section_of(target) == Some(SectionKind::Text) {
                    self.code_labels[&target][0].0.clone()
                } else {
                    self.data_label_for(target)
                };
                lines.push(DataLine::QuadSym { sym, addend: 0 });
                addr += 8;
                continue;
            }
            let byte = self.exe.read_bytes(addr, 1).map(|b| b[0]).unwrap_or(0);
            pending_bytes.push(byte);
            addr += 1;
        }
        flush(&mut pending_bytes, &mut lines);
        DataSection { kind, lines }
    }
}

fn overwrites(insn: &Instr, reg: Reg) -> bool {
    match *insn {
        Instr::MovRR { rd, .. }
        | Instr::MovRI { rd, .. }
        | Instr::Load { rd, .. }
        | Instr::LoadB { rd, .. }
        | Instr::Lea { rd, .. }
        | Instr::Pop { rd }
        | Instr::SetCc { rd, .. } => rd == reg,
        _ => false,
    }
}

fn uses_as_address(insn: &Instr, reg: Reg) -> bool {
    match *insn {
        Instr::Load { base, .. }
        | Instr::LoadB { base, .. }
        | Instr::Store { base, .. }
        | Instr::StoreB { base, .. }
        | Instr::Lea { base, .. }
        | Instr::CmpRM { base, .. } => base == reg,
        Instr::JmpR { rs } | Instr::CallR { rs } => rs == reg,
        _ => false,
    }
}

/// Whether the value in `reg` escapes the local analysis (copied, stored,
/// pushed, or used as an ALU operand that may form an address).
fn escapes(insn: &Instr, reg: Reg) -> bool {
    match *insn {
        Instr::MovRR { rs, .. } => rs == reg,
        Instr::Store { rs, .. } | Instr::StoreB { rs, .. } | Instr::Push { rs } => rs == reg,
        Instr::AluRR { rd, rs, .. } => rd == reg || rs == reg,
        Instr::AluRI { rd, .. } => rd == reg,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discover::discover;
    use rr_asm::assemble_and_link;

    fn listing_for(src: &str, policy: SymbolizationPolicy) -> Listing {
        let exe = assemble_and_link(src).unwrap();
        let code = discover(&exe).unwrap();
        symbolize(&exe, &code, policy).unwrap()
    }

    #[test]
    fn branch_targets_become_labels() {
        let listing = listing_for(
            "    .global _start\n_start:\n    jmp .end\n.end:\n    svc 0\n",
            SymbolizationPolicy::DataAccessRefined,
        );
        let source = listing.to_source();
        assert!(source.contains("jmp .end") || source.contains("jmp .L_"), "{source}");
    }

    #[test]
    fn data_addresses_are_symbolized_when_accessed() {
        let listing = listing_for(
            "    .global _start\n\
             _start:\n\
                 mov r2, value\n\
                 load r1, [r2]\n\
                 svc 0\n\
                 .data\n\
             value:\n\
                 .quad 7\n",
            SymbolizationPolicy::DataAccessRefined,
        );
        let source = listing.to_source();
        assert!(source.contains("mov r2, value"), "{source}");
    }

    #[test]
    fn refined_policy_skips_dead_constants() {
        // r2 is overwritten before use → the first mov keeps its constant
        // under the refined policy but is symbolized naively.
        let src = "    .global _start\n\
             _start:\n\
                 mov r2, value\n\
                 mov r2, 1\n\
                 mov r1, 0\n\
                 svc 0\n\
                 .data\n\
             value:\n\
                 .quad 7\n";
        let refined = listing_for(src, SymbolizationPolicy::DataAccessRefined);
        let naive = listing_for(src, SymbolizationPolicy::Naive);
        let refined_src = refined.to_source();
        let naive_src = naive.to_source();
        assert!(!refined_src.contains("mov r2, value"), "{refined_src}");
        assert!(naive_src.contains("mov r2, value"), "{naive_src}");
    }

    #[test]
    fn code_pointers_are_symbolized() {
        let listing = listing_for(
            "    .global _start\n\
             _start:\n\
                 mov r6, helper\n\
                 callr r6\n\
                 svc 0\n\
             helper:\n\
                 mov r1, 0\n\
                 ret\n",
            SymbolizationPolicy::DataAccessRefined,
        );
        let source = listing.to_source();
        assert!(source.contains("mov r6, helper"), "{source}");
    }

    #[test]
    fn data_to_data_pointers_are_recovered() {
        let listing = listing_for(
            "    .global _start\n\
             _start:\n\
                 mov r2, table\n\
                 load r3, [r2]\n\
                 load r1, [r3]\n\
                 svc 0\n\
                 .data\n\
             table:\n\
                 .quad cell\n\
             cell:\n\
                 .quad 1\n",
            SymbolizationPolicy::DataAccessRefined,
        );
        let source = listing.to_source();
        assert!(source.contains(".quad cell"), "{source}");
    }

    #[test]
    fn entry_label_is_always_start() {
        // Even for a stripped binary the listing defines a global _start.
        let exe = assemble_and_link("    .global _start\n_start:\n    svc 0\n").unwrap().stripped();
        let code = discover(&exe).unwrap();
        let listing = symbolize(&exe, &code, SymbolizationPolicy::DataAccessRefined).unwrap();
        let source = listing.to_source();
        assert!(source.contains(".global _start"), "{source}");
        rr_asm::assemble_and_link(&source).expect("stripped round trip");
    }

    #[test]
    fn bss_is_reconstructed_as_space() {
        let listing = listing_for(
            "    .global _start\n\
             _start:\n\
                 mov r2, buf\n\
                 store [r2], r1\n\
                 svc 0\n\
                 .bss\n\
             buf:\n\
                 .space 32\n",
            SymbolizationPolicy::DataAccessRefined,
        );
        let bss =
            listing.data.iter().find(|s| s.kind == SectionKind::Bss).expect("bss section present");
        assert!(bss.lines.iter().any(|l| matches!(l, DataLine::Space(32))), "{bss:?}");
    }
}
