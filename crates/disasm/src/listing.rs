//! The reassembleable listing: symbolic assembly that can be edited and
//! rebuilt.

use rr_isa::{Cond, Instr, Reg};
use rr_obj::SectionKind;
use std::fmt::Write as _;

/// An instruction with symbolic (relocatable) operands.
///
/// This is the unit the patcher edits: branch targets and materialized
/// addresses are *names*, so inserted code can move everything downstream
/// without breaking references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymInstr {
    /// An instruction with no relocatable operand.
    ///
    /// Invariant: never a direct `jmp`/`j<cc>`/`call` — those are
    /// [`SymInstr::Branch`] so their targets survive code motion.
    Plain(Instr),
    /// A direct branch or call to a labelled target.
    Branch {
        /// `None` for `jmp`/`call`, `Some(cc)` for `j<cc>`.
        cond: Option<Cond>,
        /// Whether this is a `call`.
        is_call: bool,
        /// Target label.
        target: String,
    },
    /// `mov rd, label(+addend)` — address materialization.
    MovSym {
        /// Destination register.
        rd: Reg,
        /// Referenced label.
        sym: String,
        /// Constant offset.
        addend: i64,
    },
}

impl SymInstr {
    /// Renders the instruction in assembler-accepted syntax.
    pub fn render(&self) -> String {
        match self {
            SymInstr::Plain(insn) => {
                debug_assert!(
                    insn.rel_target().is_none(),
                    "direct branches must be SymInstr::Branch, got {insn}"
                );
                insn.to_string()
            }
            SymInstr::Branch { cond, is_call, target } => match (cond, is_call) {
                (Some(cc), _) => format!("j{cc} {target}"),
                (None, true) => format!("call {target}"),
                (None, false) => format!("jmp {target}"),
            },
            SymInstr::MovSym { rd, sym, addend } => {
                if *addend == 0 {
                    format!("mov {rd}, {sym}")
                } else if *addend > 0 {
                    format!("mov {rd}, {sym}+{addend}")
                } else {
                    format!("mov {rd}, {sym}-{}", -addend)
                }
            }
        }
    }

    /// The underlying instruction kind where recoverable (plain and mov
    /// forms); branches report their shape through the variant itself.
    pub fn plain(&self) -> Option<&Instr> {
        match self {
            SymInstr::Plain(i) => Some(i),
            _ => None,
        }
    }
}

/// One line of the recovered text section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Line {
    /// A label definition. `global` labels get a `.global` directive.
    Label {
        /// Label name.
        name: String,
        /// Whether the label is globally visible.
        global: bool,
    },
    /// An instruction.
    Code {
        /// Address in the *original* binary (`None` for patcher-inserted
        /// code).
        orig_addr: Option<u64>,
        /// The symbolic instruction.
        insn: SymInstr,
    },
    /// Verbatim bytes for discovery gaps (alignment padding,
    /// data-in-code).
    RawBytes {
        /// Address in the original binary.
        orig_addr: u64,
        /// The bytes.
        bytes: Vec<u8>,
    },
}

/// One line of a recovered data section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataLine {
    /// A label definition.
    Label {
        /// Label name.
        name: String,
        /// Whether the label is globally visible.
        global: bool,
    },
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// A symbolized pointer-sized word.
    QuadSym {
        /// Referenced label.
        sym: String,
        /// Constant offset.
        addend: i64,
    },
    /// Zero-initialized space (`.bss`, or zero runs elsewhere).
    Space(u64),
}

/// A recovered data section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSection {
    /// Which section.
    pub kind: SectionKind,
    /// Its content in layout order.
    pub lines: Vec<DataLine>,
}

/// A complete reassembleable program listing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Listing {
    /// The text section.
    pub text: Vec<Line>,
    /// Data sections in layout order.
    pub data: Vec<DataSection>,
    fresh: u64,
}

impl Listing {
    /// Creates an empty listing.
    pub fn new() -> Listing {
        Listing::default()
    }

    /// Index into [`Listing::text`] of the instruction that originated at
    /// `addr` in the original binary.
    pub fn find_code(&self, addr: u64) -> Option<usize> {
        self.text
            .iter()
            .position(|line| matches!(line, Line::Code { orig_addr: Some(a), .. } if *a == addr))
    }

    /// Replaces the line at `index` with `replacement` lines (in place,
    /// preserving order). Used by the patcher to swap one vulnerable
    /// instruction for a hardened sequence.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn replace_code(&mut self, index: usize, replacement: Vec<Line>) {
        self.text.splice(index..=index, replacement);
    }

    /// Replaces `count` consecutive lines starting at `index` with
    /// `replacement` (used for fused multi-instruction patterns).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn replace_code_range(&mut self, index: usize, count: usize, replacement: Vec<Line>) {
        self.text.splice(index..index + count, replacement);
    }

    /// Generates a label name guaranteed not to collide with any label
    /// currently in the listing.
    pub fn fresh_label(&mut self, prefix: &str) -> String {
        loop {
            let name = format!(".{}_{}", prefix, self.fresh);
            self.fresh += 1;
            if !self.has_label(&name) {
                return name;
            }
        }
    }

    /// Whether any text or data line defines `name`.
    pub fn has_label(&self, name: &str) -> bool {
        self.text.iter().any(|l| matches!(l, Line::Label { name: n, .. } if n == name))
            || self.data.iter().any(|s| {
                s.lines.iter().any(|l| matches!(l, DataLine::Label { name: n, .. } if n == name))
            })
    }

    /// Appends lines at the end of the text section (e.g. an injected
    /// fault-handler function).
    pub fn append_text(&mut self, lines: impl IntoIterator<Item = Line>) {
        self.text.extend(lines);
    }

    /// Iterates over `(text_index, original_address, instruction)` for all
    /// original (non-inserted) instructions.
    pub fn original_code(&self) -> impl Iterator<Item = (usize, u64, &SymInstr)> {
        self.text.iter().enumerate().filter_map(|(i, line)| match line {
            Line::Code { orig_addr: Some(addr), insn } => Some((i, *addr, insn)),
            _ => None,
        })
    }

    /// Renders the listing as assembly source accepted by `rr-asm`.
    pub fn to_source(&self) -> String {
        let mut out = String::new();
        // Global declarations first.
        for line in &self.text {
            if let Line::Label { name, global: true } = line {
                let _ = writeln!(out, "    .global {name}");
            }
        }
        for section in &self.data {
            for line in &section.lines {
                if let DataLine::Label { name, global: true } = line {
                    let _ = writeln!(out, "    .global {name}");
                }
            }
        }
        let _ = writeln!(out, "    .text");
        for line in &self.text {
            match line {
                Line::Label { name, .. } => {
                    let _ = writeln!(out, "{name}:");
                }
                Line::Code { insn, .. } => {
                    let _ = writeln!(out, "    {}", insn.render());
                }
                Line::RawBytes { bytes, .. } => render_bytes(&mut out, bytes),
            }
        }
        for section in &self.data {
            let _ = writeln!(out, "    {}", section.kind.name());
            for line in &section.lines {
                match line {
                    DataLine::Label { name, .. } => {
                        let _ = writeln!(out, "{name}:");
                    }
                    DataLine::Bytes(bytes) => render_bytes(&mut out, bytes),
                    DataLine::QuadSym { sym, addend } => {
                        if *addend == 0 {
                            let _ = writeln!(out, "    .quad {sym}");
                        } else if *addend > 0 {
                            let _ = writeln!(out, "    .quad {sym}+{addend}");
                        } else {
                            let _ = writeln!(out, "    .quad {sym}-{}", -addend);
                        }
                    }
                    DataLine::Space(n) => {
                        let _ = writeln!(out, "    .space {n}");
                    }
                }
            }
        }
        out
    }

    /// Counts the instructions in the text section (labels and raw bytes
    /// excluded) — the "instruction count" metric of Table IV.
    pub fn instr_count(&self) -> usize {
        self.text.iter().filter(|l| matches!(l, Line::Code { .. })).count()
    }
}

fn render_bytes(out: &mut String, bytes: &[u8]) {
    for chunk in bytes.chunks(16) {
        let list: Vec<String> = chunk.iter().map(|b| format!("{b:#04x}")).collect();
        let _ = writeln!(out, "    .byte {}", list.join(", "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sym_instr_rendering() {
        assert_eq!(
            SymInstr::Plain(Instr::MovRR { rd: Reg::R1, rs: Reg::R2 }).render(),
            "mov r1, r2"
        );
        assert_eq!(
            SymInstr::Branch { cond: Some(Cond::Ne), is_call: false, target: "deny".into() }
                .render(),
            "jne deny"
        );
        assert_eq!(
            SymInstr::Branch { cond: None, is_call: true, target: "f".into() }.render(),
            "call f"
        );
        assert_eq!(
            SymInstr::MovSym { rd: Reg::R6, sym: "msg".into(), addend: 4 }.render(),
            "mov r6, msg+4"
        );
        assert_eq!(
            SymInstr::MovSym { rd: Reg::R6, sym: "msg".into(), addend: -2 }.render(),
            "mov r6, msg-2"
        );
    }

    #[test]
    fn rendered_listing_reassembles() {
        let mut listing = Listing::new();
        listing.text = vec![
            Line::Label { name: "_start".into(), global: true },
            Line::Code {
                orig_addr: Some(0x1000),
                insn: SymInstr::MovSym { rd: Reg::R1, sym: "value".into(), addend: 0 },
            },
            Line::Code { orig_addr: Some(0x100A), insn: SymInstr::Plain(Instr::Svc { num: 0 }) },
        ];
        listing.data = vec![DataSection {
            kind: SectionKind::Data,
            lines: vec![
                DataLine::Label { name: "value".into(), global: false },
                DataLine::Bytes(vec![1, 2, 3]),
                DataLine::Space(5),
            ],
        }];
        let source = listing.to_source();
        let exe = rr_asm::assemble_and_link(&source).expect("listing must reassemble");
        assert!(exe.symbol("value").is_some());
    }

    #[test]
    fn fresh_labels_do_not_collide() {
        let mut listing = Listing::new();
        listing.text.push(Line::Label { name: ".h_0".into(), global: false });
        let l1 = listing.fresh_label("h");
        let l2 = listing.fresh_label("h");
        assert_ne!(l1, ".h_0");
        assert_ne!(l1, l2);
    }

    #[test]
    fn replace_code_splices() {
        let mut listing = Listing::new();
        listing.text = vec![
            Line::Code { orig_addr: Some(0x1000), insn: SymInstr::Plain(Instr::Nop) },
            Line::Code { orig_addr: Some(0x1001), insn: SymInstr::Plain(Instr::Ret) },
        ];
        let idx = listing.find_code(0x1001).unwrap();
        listing.replace_code(
            idx,
            vec![
                Line::Code { orig_addr: None, insn: SymInstr::Plain(Instr::Nop) },
                Line::Code { orig_addr: Some(0x1001), insn: SymInstr::Plain(Instr::Ret) },
            ],
        );
        assert_eq!(listing.text.len(), 3);
        assert_eq!(listing.instr_count(), 3);
    }

    #[test]
    fn find_code_ignores_inserted_lines() {
        let mut listing = Listing::new();
        listing.text = vec![
            Line::Code { orig_addr: None, insn: SymInstr::Plain(Instr::Nop) },
            Line::Code { orig_addr: Some(0x1000), insn: SymInstr::Plain(Instr::Ret) },
        ];
        assert_eq!(listing.find_code(0x1000), Some(1));
        assert_eq!(listing.find_code(0x9999), None);
    }
}
