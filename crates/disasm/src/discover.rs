//! Code discovery: recursive-descent instruction recovery.

use rr_isa::{decode, DecodeError, Instr, MAX_INSTR_LEN};
use rr_obj::{Executable, SymbolKind};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Why disassembly failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DisasmError {
    /// Reachable bytes that do not decode.
    Undecodable {
        /// Address of the bad bytes.
        addr: u64,
        /// The decoder's complaint.
        cause: DecodeError,
    },
    /// A control-flow edge targets the middle of an already-decoded
    /// instruction (overlapping code).
    MisalignedTarget {
        /// The offending target address.
        addr: u64,
    },
    /// A direct branch/call leaves the text section.
    TargetOutsideText {
        /// The offending target address.
        addr: u64,
    },
}

impl fmt::Display for DisasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DisasmError::Undecodable { addr, cause } => {
                write!(f, "undecodable code at {addr:#x}: {cause}")
            }
            DisasmError::MisalignedTarget { addr } => {
                write!(f, "branch target {addr:#x} is inside another instruction")
            }
            DisasmError::TargetOutsideText { addr } => {
                write!(f, "branch target {addr:#x} is outside .text")
            }
        }
    }
}

impl std::error::Error for DisasmError {}

/// The recovered instruction map of an executable's text section.
#[derive(Debug, Clone, Default)]
pub struct CodeMap {
    /// Every recovered instruction: address → (instruction, length).
    pub instrs: BTreeMap<u64, (Instr, usize)>,
    /// Addresses that are targets of direct branches (`jmp`/`j<cc>`).
    pub branch_targets: BTreeSet<u64>,
    /// Addresses that are function entries (program entry, call targets,
    /// retained `Func` symbols).
    pub function_entries: BTreeSet<u64>,
    /// Byte ranges inside `.text` never reached by discovery (padding or
    /// data-in-code); preserved verbatim on re-emission.
    pub gaps: Vec<(u64, u64)>,
}

impl CodeMap {
    /// Whether `addr` is the start of a recovered instruction.
    pub fn is_instr_start(&self, addr: u64) -> bool {
        self.instrs.contains_key(&addr)
    }

    /// The recovered instruction at exactly `addr`.
    pub fn instr_at(&self, addr: u64) -> Option<&(Instr, usize)> {
        self.instrs.get(&addr)
    }

    /// The resolved absolute target of a direct branch/call at `addr`.
    pub fn direct_target(&self, addr: u64) -> Option<u64> {
        let (insn, len) = self.instrs.get(&addr)?;
        let rel = insn.rel_target()?;
        Some((addr + *len as u64).wrapping_add(rel as i64 as u64))
    }
}

/// Recovers the instruction map of `exe` by recursive descent from the
/// entry point and all retained `Func` symbols.
///
/// # Errors
///
/// See [`DisasmError`]. Discovery is *sound but conservative*: it refuses
/// binaries with overlapping instructions rather than guessing.
pub fn discover(exe: &Executable) -> Result<CodeMap, DisasmError> {
    let text = exe.text_range();
    let mut map = CodeMap::default();
    let mut worklist: Vec<u64> = Vec::new();
    let mut covered: BTreeMap<u64, u64> = BTreeMap::new(); // start -> end, for overlap checks

    map.function_entries.insert(exe.entry);
    worklist.push(exe.entry);
    for sym in &exe.symbols {
        if sym.kind == SymbolKind::Func && text.contains(&sym.addr) {
            map.function_entries.insert(sym.addr);
            worklist.push(sym.addr);
        }
    }

    while let Some(start) = worklist.pop() {
        if !text.contains(&start) {
            return Err(DisasmError::TargetOutsideText { addr: start });
        }
        let mut pc = start;
        loop {
            if let Some((_, len)) = map.instrs.get(&pc) {
                let _ = len;
                break; // already decoded from here on
            }
            // Overlap check: pc must not fall strictly inside a decoded range.
            if let Some((&prev_start, &prev_end)) = covered.range(..=pc).next_back() {
                if pc > prev_start && pc < prev_end {
                    return Err(DisasmError::MisalignedTarget { addr: pc });
                }
            }
            let available = (text.end - pc).min(MAX_INSTR_LEN as u64) as usize;
            let bytes = exe
                .read_bytes(pc, available)
                .ok_or(DisasmError::Undecodable { addr: pc, cause: DecodeError::Empty })?;
            let (insn, len) =
                decode(bytes).map_err(|cause| DisasmError::Undecodable { addr: pc, cause })?;
            map.instrs.insert(pc, (insn, len));
            covered.insert(pc, pc + len as u64);
            let next = pc + len as u64;

            if let Some(rel) = insn.rel_target() {
                let target = next.wrapping_add(rel as i64 as u64);
                if !text.contains(&target) {
                    return Err(DisasmError::TargetOutsideText { addr: target });
                }
                if matches!(insn, Instr::Call { .. }) {
                    map.function_entries.insert(target);
                } else {
                    map.branch_targets.insert(target);
                }
                worklist.push(target);
            }

            // Conditional jumps fall through, so linear scanning continues;
            // only unconditional control transfers end the scan.
            if insn.is_block_terminator() && !matches!(insn, Instr::Jcc { .. }) {
                break;
            }
            if next >= text.end {
                break;
            }
            pc = next;
        }
    }

    // Validate that every branch target / entry is an instruction start.
    for &target in map.branch_targets.iter().chain(map.function_entries.iter()) {
        if !map.is_instr_start(target) {
            return Err(DisasmError::MisalignedTarget { addr: target });
        }
    }

    // Compute gaps (unreached byte ranges) for verbatim preservation.
    let mut cursor = text.start;
    for (&addr, &(_, len)) in &map.instrs {
        if addr > cursor {
            map.gaps.push((cursor, addr));
        }
        cursor = cursor.max(addr + len as u64);
    }
    if cursor < text.end {
        map.gaps.push((cursor, text.end));
    }

    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_asm::assemble_and_link;

    #[test]
    fn discovers_straight_line_code() {
        let exe = assemble_and_link(
            "    .global _start\n_start:\n    mov r1, 1\n    add r1, 2\n    svc 0\n",
        )
        .unwrap();
        let map = discover(&exe).unwrap();
        assert_eq!(map.instrs.len(), 3);
        assert!(map.gaps.is_empty());
        assert!(map.function_entries.contains(&exe.entry));
    }

    #[test]
    fn follows_branches_and_calls() {
        let exe = assemble_and_link(
            "    .global _start\n\
             _start:\n\
                 call f\n\
                 cmp r0, 0\n\
                 je .end\n\
                 nop\n\
             .end:\n\
                 mov r1, 0\n\
                 svc 0\n\
             f:\n\
                 mov r0, 0\n\
                 ret\n",
        )
        .unwrap();
        let map = discover(&exe).unwrap();
        assert_eq!(map.instrs.len(), 8);
        assert_eq!(map.function_entries.len(), 2); // _start and f
        assert_eq!(map.branch_targets.len(), 1); // .end
    }

    #[test]
    fn code_after_unconditional_jump_is_reached_via_label() {
        // The unlabelled nop after the jmp is unreachable. (A label would
        // create a retained Func symbol and seed discovery.)
        let exe = assemble_and_link(
            "    .global _start\n\
             _start:\n\
                 jmp over\n\
                 nop\n\
             over:\n\
                 mov r1, 0\n\
                 svc 0\n",
        )
        .unwrap();
        let map = discover(&exe).unwrap();
        // The unreachable nop is a gap, preserved verbatim.
        assert_eq!(map.gaps.len(), 1);
        let (gap_start, gap_end) = map.gaps[0];
        assert_eq!(gap_end - gap_start, 1); // one nop byte
    }

    #[test]
    fn direct_target_resolution() {
        let exe = assemble_and_link(
            "    .global _start\n_start:\n    jmp next\nnext:\n    mov r1, 0\n    svc 0\n",
        )
        .unwrap();
        let map = discover(&exe).unwrap();
        let target = map.direct_target(exe.entry).unwrap();
        assert_eq!(target, exe.entry + 5);
        assert!(map.is_instr_start(target));
    }

    #[test]
    fn rejects_branch_into_immediate() {
        // Hand-build: jmp .+(-3) jumps into the middle of itself.
        // jmp rel32: opcode 0x50, rel = -3 → target = pc+5-3 = pc+2 (mid-instruction).
        let mut obj = rr_obj::ObjectFile::new("bad");
        obj.section_mut(rr_obj::SectionKind::Text).data = vec![0x50, 0xFD, 0xFF, 0xFF, 0xFF, 0x01];
        obj.symbols.push(rr_obj::Symbol::global(
            "_start",
            rr_obj::SectionKind::Text,
            0,
            rr_obj::SymbolKind::Func,
        ));
        let exe = rr_obj::link(&[obj]).unwrap();
        assert!(matches!(discover(&exe), Err(DisasmError::MisalignedTarget { .. })));
    }

    #[test]
    fn rejects_undecodable_reachable_bytes() {
        let mut obj = rr_obj::ObjectFile::new("bad");
        obj.section_mut(rr_obj::SectionKind::Text).data = vec![0xEE];
        obj.symbols.push(rr_obj::Symbol::global(
            "_start",
            rr_obj::SectionKind::Text,
            0,
            rr_obj::SymbolKind::Func,
        ));
        let exe = rr_obj::link(&[obj]).unwrap();
        assert!(matches!(discover(&exe), Err(DisasmError::Undecodable { .. })));
    }

    #[test]
    fn func_symbols_seed_unreachable_functions() {
        // `helper` is only reachable via callr (indirect), but its Func
        // symbol seeds discovery.
        let exe = assemble_and_link(
            "    .global _start\n\
             _start:\n\
                 mov r6, helper\n\
                 callr r6\n\
                 svc 0\n\
             helper:\n\
                 mov r1, 0\n\
                 ret\n",
        )
        .unwrap();
        let map = discover(&exe).unwrap();
        let helper_addr = exe.symbol("helper").unwrap().addr;
        assert!(map.is_instr_start(helper_addr));
        assert!(map.function_entries.contains(&helper_addr));
    }
}
