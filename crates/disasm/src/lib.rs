//! # rr-disasm — reassembleable disassembly for RRVM
//!
//! The Ddisasm/GTIRB stand-in of this workspace and the foundation of the
//! paper's first rewriting scheme: recover, from a *linked* executable, a
//! relocatable assembly [`Listing`] that can be edited (by `rr-patch`) and
//! fed back through `rr-asm` into a working binary.
//!
//! The pipeline mirrors Fig. 1 of the paper:
//!
//! 1. **Disassembly** ([`discover`]) — recursive-descent instruction
//!    recovery seeded from the entry point and any retained function
//!    symbols.
//! 2. **Structural recovery** ([`build_functions`]) — basic blocks, CFG
//!    edges, and function partitioning.
//! 3. **Symbolization** ([`symbolize`]) — the hard part: deciding which
//!    immediates are *addresses* (must become labels so patched code can
//!    move) and which are plain constants (must stay fixed). Two policies
//!    are provided: a naïve UROBOROS-style range check, and a Ddisasm-style
//!    refinement that also requires a *data access* through the loaded
//!    register ([`SymbolizationPolicy`]), for the false-positive
//!    comparison discussed in §III-C of the paper.
//! 4. **Listing emission** ([`Listing`]) — symbolic assembly text that
//!    `rr_asm::assemble_and_link` turns back into an executable.
//!
//! For iterative rewriting, [`ListingDelta`] compares the listing of one
//! rewrite step with the patched listing that produced the next binary —
//! changed, inserted, and address-shifted instruction ranges plus an
//! old→new address remap — so downstream consumers (the incremental
//! fault campaign in `rr-fault`) can tell exactly which code a rewrite
//! touched.
//!
//! The round trip `disassemble → to_source → assemble_and_link` is
//! byte-identical for binaries produced by this workspace's assembler —
//! property-tested in `tests/roundtrip.rs`.
//!
//! ## Example
//!
//! ```
//! use rr_disasm::disassemble;
//! use rr_asm::assemble_and_link;
//!
//! let exe = assemble_and_link(
//!     "    .global _start\n_start:\n    mov r1, 0\n    svc 0\n",
//! )?;
//! let disasm = disassemble(&exe)?;
//! let rebuilt = assemble_and_link(&disasm.listing.to_source())?;
//! assert_eq!(rebuilt.text_bytes(), exe.text_bytes());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

mod cfg;
mod delta;
mod discover;
mod listing;
mod symbolize;

pub use cfg::{build_functions, BasicBlock, Function};
pub use delta::{DeltaError, ListingDelta};
pub use discover::{discover, CodeMap, DisasmError};
pub use listing::{DataLine, DataSection, Line, Listing, SymInstr};
pub use symbolize::{symbolize, SymbolizationPolicy};

use rr_obj::Executable;

/// The complete result of disassembling an executable.
#[derive(Debug, Clone)]
pub struct Disassembly {
    /// The reassembleable listing (code + data, fully symbolic).
    pub listing: Listing,
    /// Recovered functions with basic blocks and CFG edges.
    pub functions: Vec<Function>,
    /// The raw instruction map.
    pub code: CodeMap,
}

/// Disassembles `exe` with the default (data-access–refined)
/// symbolization policy.
///
/// # Errors
///
/// Returns a [`DisasmError`] if code discovery fails (undecodable reachable
/// bytes, branch into the middle of an instruction, …).
pub fn disassemble(exe: &Executable) -> Result<Disassembly, DisasmError> {
    disassemble_with(exe, SymbolizationPolicy::DataAccessRefined)
}

/// Disassembles `exe` with an explicit [`SymbolizationPolicy`].
///
/// # Errors
///
/// Same as [`disassemble`].
pub fn disassemble_with(
    exe: &Executable,
    policy: SymbolizationPolicy,
) -> Result<Disassembly, DisasmError> {
    let code = discover(exe)?;
    let functions = build_functions(exe, &code);
    let listing = symbolize(exe, &code, policy)?;
    Ok(Disassembly { listing, functions, code })
}
