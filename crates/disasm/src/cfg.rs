//! Structural recovery: basic blocks, CFG edges, function partitioning.

use crate::discover::CodeMap;
use rr_isa::{Instr, InstrKind};
use rr_obj::Executable;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A maximal straight-line run of instructions with a single entry and a
/// single exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub addr: u64,
    /// Instructions as `(address, instruction)` pairs.
    pub instrs: Vec<(u64, Instr)>,
    /// Addresses of successor blocks within the same function.
    pub succs: Vec<u64>,
}

impl BasicBlock {
    /// Address and instruction of the terminator (last instruction).
    ///
    /// # Panics
    ///
    /// Panics if the block is empty (never produced by
    /// [`build_functions`]).
    pub fn terminator(&self) -> (u64, Instr) {
        *self.instrs.last().expect("basic blocks are non-empty")
    }

    /// The address one past the last instruction.
    pub fn end_addr(&self, code: &CodeMap) -> u64 {
        let (addr, _) = self.terminator();
        addr + code.instr_at(addr).map(|&(_, len)| len as u64).unwrap_or(0)
    }
}

/// A recovered function: an entry block plus every block reachable from it
/// through non-call edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Entry address.
    pub entry: u64,
    /// Name (retained symbol if present, synthetic otherwise).
    pub name: String,
    /// Blocks sorted by address; the first is the entry block.
    pub blocks: Vec<BasicBlock>,
}

impl Function {
    /// The block starting at `addr`.
    pub fn block_at(&self, addr: u64) -> Option<&BasicBlock> {
        self.blocks.iter().find(|b| b.addr == addr)
    }

    /// Total number of instructions.
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }
}

/// Computes block leaders: function entries, branch targets, and
/// fall-throughs of terminators.
fn leaders(code: &CodeMap) -> BTreeSet<u64> {
    let mut leaders: BTreeSet<u64> = BTreeSet::new();
    leaders.extend(code.function_entries.iter().copied());
    leaders.extend(code.branch_targets.iter().copied());
    for (&addr, &(insn, len)) in &code.instrs {
        if insn.is_block_terminator() || matches!(insn.kind(), InstrKind::CondJump) {
            let next = addr + len as u64;
            if code.is_instr_start(next) {
                leaders.insert(next);
            }
        }
    }
    leaders
}

/// Partitions the recovered code into [`Function`]s with intra-function
/// CFG edges.
///
/// Edges: fall-through (non-terminators and untaken conditional jumps),
/// direct jump targets. Calls produce a fall-through edge only (the callee
/// is a separate function); `ret`, `halt`, `jmpr`, and `svc 0` end a block
/// with no successors (indirect jump targets are unknown statically).
pub fn build_functions(exe: &Executable, code: &CodeMap) -> Vec<Function> {
    let leaders = leaders(code);

    // Build all blocks, keyed by start address.
    let mut blocks: BTreeMap<u64, BasicBlock> = BTreeMap::new();
    let mut current: Option<BasicBlock> = None;
    let mut prev_end: Option<u64> = None;
    for (&addr, &(insn, len)) in &code.instrs {
        let discontinuous = prev_end != Some(addr);
        if leaders.contains(&addr) || discontinuous {
            if let Some(block) = current.take() {
                blocks.insert(block.addr, block);
            }
            current = Some(BasicBlock { addr, instrs: Vec::new(), succs: Vec::new() });
        }
        let block = current.as_mut().expect("block opened above");
        block.instrs.push((addr, insn));
        let next = addr + len as u64;
        prev_end = Some(next);
        if insn.is_block_terminator() {
            if let Some(block) = current.take() {
                blocks.insert(block.addr, block);
            }
        }
    }
    if let Some(block) = current.take() {
        blocks.insert(block.addr, block);
    }

    // Successor edges.
    let addrs: Vec<u64> = blocks.keys().copied().collect();
    for &addr in &addrs {
        let block = &blocks[&addr];
        let (term_addr, term) = block.terminator();
        let next = term_addr + code.instr_at(term_addr).map(|&(_, len)| len as u64).unwrap_or(0);
        let mut succs = Vec::new();
        match term.kind() {
            InstrKind::Jump => {
                if let Some(target) = code.direct_target(term_addr) {
                    succs.push(target);
                }
            }
            InstrKind::CondJump => {
                if let Some(target) = code.direct_target(term_addr) {
                    succs.push(target);
                }
                if code.is_instr_start(next) {
                    succs.push(next);
                }
            }
            InstrKind::Ret | InstrKind::Halt | InstrKind::IndirectJump => {}
            // Block ended because the next address is a leader. Fall-through
            // into a *function entry* is not an edge (functions are hard
            // boundaries; the bytes before an entry typically end in an
            // `svc 0` exit or a `ret`).
            _ => {
                if code.is_instr_start(next) && !code.function_entries.contains(&next) {
                    succs.push(next);
                }
            }
        }
        blocks.get_mut(&addr).expect("exists").succs = succs;
    }

    // Partition into functions by reachability from entries.
    let mut functions = Vec::new();
    let mut claimed: BTreeSet<u64> = BTreeSet::new();
    for &entry in &code.function_entries {
        if !blocks.contains_key(&entry) {
            continue;
        }
        let mut members: BTreeSet<u64> = BTreeSet::new();
        let mut queue = VecDeque::from([entry]);
        while let Some(addr) = queue.pop_front() {
            if !members.insert(addr) {
                continue;
            }
            if let Some(block) = blocks.get(&addr) {
                for &succ in &block.succs {
                    // Do not cross into another function's entry.
                    if !code.function_entries.contains(&succ) {
                        queue.push_back(succ);
                    }
                }
            }
        }
        claimed.extend(members.iter().copied());
        let name = exe
            .symbols
            .iter()
            .find(|s| s.addr == entry && s.kind == rr_obj::SymbolKind::Func)
            .map(|s| s.name.clone())
            .unwrap_or_else(|| format!("f_{entry:x}"));
        let function_blocks = members.iter().filter_map(|addr| blocks.get(addr)).cloned().collect();
        functions.push(Function { entry, name, blocks: function_blocks });
    }
    functions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discover::discover;
    use rr_asm::assemble_and_link;

    fn analyze(src: &str) -> (Executable, Vec<Function>) {
        let exe = assemble_and_link(src).unwrap();
        let code = discover(&exe).unwrap();
        let functions = build_functions(&exe, &code);
        (exe, functions)
    }

    #[test]
    fn single_block_function() {
        let (_, funcs) = analyze("    .global _start\n_start:\n    mov r1, 0\n    svc 0\n");
        assert_eq!(funcs.len(), 1);
        assert_eq!(funcs[0].name, "_start");
        assert_eq!(funcs[0].blocks.len(), 1);
        assert!(funcs[0].blocks[0].succs.is_empty() || funcs[0].blocks[0].succs.len() <= 1);
    }

    #[test]
    fn diamond_cfg() {
        let (exe, funcs) = analyze(
            "    .global _start\n\
             _start:\n\
                 cmp r1, 0\n\
                 je .then\n\
             .else:\n\
                 mov r2, 1\n\
                 jmp .join\n\
             .then:\n\
                 mov r2, 2\n\
             .join:\n\
                 mov r1, 0\n\
                 svc 0\n",
        );
        assert_eq!(funcs.len(), 1);
        let f = &funcs[0];
        assert_eq!(f.blocks.len(), 4, "{f:#?}");
        // Entry block has two successors (then + fallthrough else).
        let entry = f.block_at(exe.entry).unwrap();
        assert_eq!(entry.succs.len(), 2);
        // Both branches converge on .join.
        let join_addr = f.blocks.iter().map(|b| b.addr).max().unwrap();
        let preds = f.blocks.iter().filter(|b| b.succs.contains(&join_addr)).count();
        assert_eq!(preds, 2);
    }

    #[test]
    fn functions_are_partitioned_at_call_boundaries() {
        let (exe, funcs) = analyze(
            "    .global _start\n\
             _start:\n\
                 call helper\n\
                 mov r1, 0\n\
                 svc 0\n\
             helper:\n\
                 nop\n\
                 ret\n",
        );
        assert_eq!(funcs.len(), 2);
        let start = funcs.iter().find(|f| f.entry == exe.entry).unwrap();
        let helper = funcs.iter().find(|f| f.name == "helper").unwrap();
        // The call block falls through to the post-call block, but no edge
        // crosses into helper.
        for block in &start.blocks {
            assert!(!block.succs.contains(&helper.entry));
        }
        assert_eq!(helper.instr_count(), 2);
    }

    #[test]
    fn loop_back_edge() {
        let (_, funcs) = analyze(
            "    .global _start\n\
             _start:\n\
                 mov r1, 10\n\
             .loop:\n\
                 sub r1, 1\n\
                 cmp r1, 0\n\
                 jne .loop\n\
                 svc 0\n",
        );
        let f = &funcs[0];
        // Find the loop block and check it points at itself.
        let loop_block =
            f.blocks.iter().find(|b| b.succs.contains(&b.addr)).expect("loop block with self edge");
        assert_eq!(loop_block.succs.len(), 2);
    }

    #[test]
    fn ret_blocks_have_no_successors() {
        let (_, funcs) = analyze(
            "    .global _start\n\
             _start:\n\
                 call f\n\
                 svc 0\n\
             f:\n\
                 ret\n",
        );
        let f = funcs.iter().find(|f| f.name == "f").unwrap();
        assert!(f.blocks[0].succs.is_empty());
    }
}
