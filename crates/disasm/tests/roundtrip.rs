//! Round-trip tests: `exe → disassemble → to_source → assemble → exe'`
//! must preserve bytes and behaviour.

use proptest::prelude::*;
use rr_asm::assemble_and_link;
use rr_disasm::{disassemble, disassemble_with, SymbolizationPolicy};
use rr_emu::execute;

/// Asserts the byte-identical round trip for a source program.
fn assert_roundtrip(src: &str) {
    let exe = assemble_and_link(src).expect("original must build");
    let disasm = disassemble(&exe).expect("must disassemble");
    let source = disasm.listing.to_source();
    let rebuilt = assemble_and_link(&source)
        .unwrap_or_else(|e| panic!("listing must reassemble: {e}\n{source}"));
    assert_eq!(rebuilt.text_bytes(), exe.text_bytes(), "text must be byte-identical\n{source}");
    assert_eq!(rebuilt.entry, exe.entry);
    for kind in [rr_obj::SectionKind::Rodata, rr_obj::SectionKind::Data, rr_obj::SectionKind::Bss] {
        let orig = exe.section_range(kind);
        let new = rebuilt.section_range(kind);
        assert_eq!(orig, new, "{kind} layout must match\n{source}");
    }
}

#[test]
fn roundtrip_minimal() {
    assert_roundtrip("    .global _start\n_start:\n    mov r1, 0\n    svc 0\n");
}

#[test]
fn roundtrip_branches_and_calls() {
    assert_roundtrip(
        "    .global _start\n\
         _start:\n\
             mov r1, 3\n\
         .loop:\n\
             sub r1, 1\n\
             cmp r1, 0\n\
             jne .loop\n\
             call f\n\
             svc 0\n\
         f:\n\
             add r1, 1\n\
             ret\n",
    );
}

#[test]
fn roundtrip_all_workloads() {
    for w in rr_workloads::all_workloads() {
        let exe = w.build().unwrap();
        let disasm = disassemble(&exe).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let source = disasm.listing.to_source();
        let rebuilt = assemble_and_link(&source)
            .unwrap_or_else(|e| panic!("{}: reassembly failed: {e}", w.name));
        assert_eq!(
            rebuilt.text_bytes(),
            exe.text_bytes(),
            "{}: text must be byte-identical",
            w.name
        );
        // Behavioural equivalence on both inputs.
        for input in [&w.good_input, &w.bad_input] {
            let original = execute(&exe, input, 500_000);
            let roundtripped = execute(&rebuilt, input, 500_000);
            assert!(
                original.same_behavior(&roundtripped),
                "{}: behaviour changed by round trip",
                w.name
            );
        }
    }
}

#[test]
fn roundtrip_under_both_policies() {
    for w in rr_workloads::all_workloads() {
        let exe = w.build().unwrap();
        for policy in [SymbolizationPolicy::Naive, SymbolizationPolicy::DataAccessRefined] {
            let disasm = disassemble_with(&exe, policy).unwrap();
            let rebuilt = assemble_and_link(&disasm.listing.to_source())
                .unwrap_or_else(|e| panic!("{} under {policy:?}: {e}", w.name));
            let original = execute(&exe, &w.good_input, 500_000);
            let result = execute(&rebuilt, &w.good_input, 500_000);
            assert!(
                original.same_behavior(&result),
                "{} under {policy:?}: behaviour changed",
                w.name
            );
        }
    }
}

#[test]
fn roundtrip_stripped_binary() {
    // Without symbols the disassembler must still recover everything
    // reachable from the entry point.
    let w = rr_workloads::pincheck();
    let exe = w.build().unwrap().stripped();
    let disasm = disassemble(&exe).unwrap();
    let rebuilt = assemble_and_link(&disasm.listing.to_source()).unwrap();
    for input in [&w.good_input, &w.bad_input] {
        let original = execute(&exe, input, 500_000);
        let result = execute(&rebuilt, input, 500_000);
        assert!(original.same_behavior(&result), "stripped round trip changed behaviour");
    }
}

/// Random straight-line programs: generate a list of safe instructions,
/// wrap them with an exit, and round-trip.
fn safe_instr() -> impl Strategy<Value = String> {
    let reg = (0u8..14).prop_map(|i| format!("r{i}"));
    prop_oneof![
        Just("nop".to_owned()),
        (reg.clone(), any::<u32>()).prop_map(|(r, v)| format!("mov {r}, {v}")),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| format!("mov {a}, {b}")),
        (reg.clone(), any::<i32>()).prop_map(|(r, v)| format!("add {r}, {v}")),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| format!("xor {a}, {b}")),
        (reg.clone(), any::<i32>()).prop_map(|(r, v)| format!("cmp {r}, {v}")),
        (reg.clone(), 0u8..64).prop_map(|(r, v)| format!("shl {r}, {v}")),
        (reg.clone(), reg).prop_map(|(a, b)| format!("test {a}, {b}")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn roundtrip_random_straightline(instrs in proptest::collection::vec(safe_instr(), 1..40)) {
        let mut src = String::from("    .global _start\n_start:\n");
        for i in &instrs {
            src.push_str("    ");
            src.push_str(i);
            src.push('\n');
        }
        src.push_str("    mov r1, 0\n    svc 0\n");
        let exe = assemble_and_link(&src).expect("generated source must build");
        let disasm = disassemble(&exe).expect("must disassemble");
        let rebuilt = assemble_and_link(&disasm.listing.to_source()).expect("must reassemble");
        prop_assert_eq!(rebuilt.text_bytes(), exe.text_bytes());
    }
}
