//! Property tests for [`rr_disasm::ListingDelta`]: a random single-site
//! patch must yield a delta that marks exactly the patched and shifted
//! ranges, and the old→new address remap must round-trip on every
//! unchanged instruction.

use proptest::prelude::*;
use rr_disasm::{disassemble, Line, Listing, ListingDelta, SymInstr};
use rr_isa::{decode, Instr, MAX_INSTR_LEN};
use rr_obj::Executable;

/// Decodes the instruction starting at `addr` in `exe`.
fn decode_at(exe: &Executable, addr: u64) -> (Instr, usize) {
    let text = exe.text_range();
    let available = (text.end - addr).min(MAX_INSTR_LEN as u64) as usize;
    decode(exe.read_bytes(addr, available).expect("mapped")).expect("decodable")
}

/// The original-code (index, addr) pairs of a listing.
fn code_sites(listing: &Listing) -> Vec<(usize, u64)> {
    listing.original_code().map(|(i, a, _)| (i, a)).collect()
}

fn workload_listing() -> (Listing, Executable) {
    let exe = rr_workloads::pincheck().build().expect("pincheck builds");
    let listing = disassemble(&exe).expect("pincheck disassembles").listing;
    (listing, exe)
}

fn inserted_line() -> Line {
    Line::Code { orig_addr: None, insn: SymInstr::Plain(Instr::Nop) }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Inserting code before one random site shifts exactly the
    /// instructions at or after it, changes nothing, and the remap
    /// round-trips (and preserves the instruction) everywhere.
    #[test]
    fn single_site_insertion_marks_exactly_the_shifted_ranges(
        site in any::<prop::sample::Index>(),
        extra_nops in 0usize..3,
    ) {
        let (listing, exe) = workload_listing();
        let sites = code_sites(&listing);
        let (index, patch_addr) = sites[site.index(sites.len())];

        let mut patched = listing.clone();
        for _ in 0..=extra_nops {
            patched.text.insert(index, inserted_line());
        }
        let rebuilt = rr_asm::assemble_and_link(&patched.to_source()).expect("reassembles");
        let delta = ListingDelta::compute(&listing, &exe, &patched, &rebuilt).expect("delta");

        // Nothing changed on the old side; exactly one inserted range on
        // the new side, landing where the patched site used to start.
        prop_assert!(delta.changed_ranges().is_empty(), "{delta}");
        prop_assert_eq!(delta.inserted_ranges().len(), 1, "{}", delta);
        let inserted = delta.inserted_ranges()[0].clone();
        prop_assert_eq!(inserted.start, patch_addr);
        let shift = inserted.end - inserted.start;
        prop_assert_eq!(shift, (1 + extra_nops as u64) * rr_isa::encoded_len(&Instr::Nop) as u64);

        for &(_, addr) in &sites {
            // Every instruction survives, shifted iff at/after the patch.
            let expected = if addr < patch_addr { addr } else { addr + shift };
            prop_assert_eq!(delta.remap(addr), Some(expected), "addr {:#x}", addr);
            prop_assert!(!delta.is_changed(addr));
            // The remap round-trips…
            prop_assert_eq!(delta.remap_back(expected), Some(addr));
            // …and the instruction at the remapped address has the same
            // shape (identical bytes for non-relative instructions; for
            // relative branches the offset re-encodes, the length and
            // kind may not change).
            let (old_insn, old_len) = decode_at(&exe, addr);
            let (new_insn, new_len) = decode_at(&rebuilt, expected);
            prop_assert_eq!(old_len, new_len);
            prop_assert_eq!(old_insn.kind(), new_insn.kind());
            if old_insn.rel_target().is_none() {
                prop_assert_eq!(old_insn, new_insn);
            }
        }
        // Shifted ranges cover exactly the tail: every remapped address
        // at/after the patch is in a shifted range, none before it.
        for &(_, addr) in &sites {
            let shifted = delta.shifted_ranges().iter().any(|r| r.contains(&addr));
            prop_assert_eq!(shifted, addr >= patch_addr, "addr {:#x}", addr);
        }
    }

    /// Replacing one random site marks exactly that instruction changed
    /// (old side) and its replacement inserted (new side); every other
    /// instruction stays remapped.
    #[test]
    fn single_site_replacement_marks_exactly_the_patched_range(
        site in any::<prop::sample::Index>(),
    ) {
        let (listing, exe) = workload_listing();
        let sites = code_sites(&listing);
        let (index, patch_addr) = sites[site.index(sites.len())];
        let (_, patched_len) = decode_at(&exe, patch_addr);

        let mut patched = listing.clone();
        // The patcher's replacement helpers drop orig_addr: model that.
        patched.replace_code(index, vec![inserted_line(), inserted_line()]);
        let rebuilt = rr_asm::assemble_and_link(&patched.to_source()).expect("reassembles");
        let delta = ListingDelta::compute(&listing, &exe, &patched, &rebuilt).expect("delta");

        prop_assert_eq!(delta.remap(patch_addr), None);
        prop_assert!(delta.is_changed(patch_addr));
        prop_assert_eq!(delta.changed_ranges().len(), 1);
        prop_assert_eq!(
            delta.changed_ranges()[0].clone(),
            patch_addr..patch_addr + patched_len as u64
        );
        prop_assert_eq!(delta.inserted_ranges().len(), 1);
        prop_assert!(delta.is_inserted(delta.inserted_ranges()[0].start));
        for &(_, addr) in &sites {
            if addr == patch_addr {
                continue;
            }
            let new_addr = delta.remap(addr);
            prop_assert!(new_addr.is_some(), "addr {:#x} lost", addr);
            prop_assert_eq!(delta.remap_back(new_addr.unwrap()), Some(addr));
            prop_assert!(!delta.is_changed(addr));
        }
        prop_assert_eq!(delta.unchanged_count(), sites.len() - 1);
    }
}
