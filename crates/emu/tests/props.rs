//! Property tests for the emulator: determinism, crash-freedom of the
//! host, and agreement between `run` and manual stepping.

use proptest::prelude::*;
use rr_asm::assemble_and_link;
use rr_emu::{execute, BlockCache, BlockStats, Machine, OptLevel, RunOutcome, UopConfig};

/// Random but *assemblable* straight-line programs over safe instructions
/// (no unbalanced memory, no control flow — those are covered by
/// targeted tests). Balanced `push`/`pop` pairs, `not`/`neg`, and dead
/// compares are included so the uop optimizer's forwarding and
/// flag-elimination paths see real work.
fn safe_line() -> impl Strategy<Value = String> {
    let reg = (0u8..14).prop_map(|i| format!("r{i}"));
    prop_oneof![
        (reg.clone(), any::<i32>()).prop_map(|(r, v)| format!("mov {r}, {v}")),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| format!("add {a}, {b}")),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| format!("sub {a}, {b}")),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| format!("mul {a}, {b}")),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| format!("xor {a}, {b}")),
        (reg.clone(), 0u8..64).prop_map(|(r, v)| format!("shl {r}, {v}")),
        (reg.clone(), 0u8..64).prop_map(|(r, v)| format!("sar {r}, {v}")),
        (reg.clone(), any::<i32>()).prop_map(|(r, v)| format!("cmp {r}, {v}")),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| format!("test {a}, {b}")),
        (reg.clone()).prop_map(|r| format!("not {r}")),
        (reg.clone()).prop_map(|r| format!("neg {r}")),
        (reg.clone(), reg).prop_map(|(a, b)| format!("push {a}\n    pop {b}")),
        Just("nop".to_owned()),
        Just("pushf".to_owned()),
        Just("popf".to_owned()),
    ]
}

fn program(lines: &[String]) -> String {
    let mut src = String::from("    .global _start\n_start:\n");
    for line in lines {
        src.push_str("    ");
        src.push_str(line);
        src.push('\n');
    }
    src.push_str("    mov r1, r2\n    and r1, 0xff\n    svc 0\n");
    src
}

/// Like [`program`], but the random body runs inside a countdown loop so
/// the block executor sees real control flow (back edges, a conditional
/// exit) instead of one straight-line superblock.
fn looped_program(lines: &[String], iters: u64) -> String {
    let mut src = format!("    .global _start\n_start:\n    mov r13, {iters}\n.loop:\n");
    for line in lines {
        src.push_str("    ");
        src.push_str(line);
        src.push('\n');
    }
    src.push_str("    sub r13, 1\n    cmp r13, 0\n    jne .loop\n");
    src.push_str("    mov r1, r2\n    and r1, 0xff\n    svc 0\n");
    src
}

/// Runs `machine` to completion through the block executor in
/// `chunk`-step slices (so fences land at arbitrary mid-block steps) and
/// returns `(outcome, total_steps)`.
fn run_blocks_chunked(
    machine: &mut Machine,
    cache: &BlockCache,
    chunk: u64,
    max_steps: u64,
) -> (RunOutcome, u64) {
    let mut stats = BlockStats::default();
    let mut total = 0u64;
    while machine.stopped().is_none() && total < max_steps {
        let result = machine.run_blocks(cache, chunk.min(max_steps - total), &mut stats);
        total += result.steps;
    }
    (machine.stopped().unwrap_or(RunOutcome::TimedOut), total)
}

/// [`run_blocks_chunked`] for the uop tier: drives `run_uops` in
/// `chunk`-step slices under the given tiering threshold.
fn run_uops_chunked(
    machine: &mut Machine,
    cache: &BlockCache,
    config: UopConfig,
    chunk: u64,
    max_steps: u64,
) -> (RunOutcome, u64) {
    let mut stats = BlockStats::default();
    let mut total = 0u64;
    while machine.stopped().is_none() && total < max_steps {
        let result = machine.run_uops(cache, config, chunk.min(max_steps - total), &mut stats);
        total += result.steps;
    }
    (machine.stopped().unwrap_or(RunOutcome::TimedOut), total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Identical runs produce identical executions, bit for bit.
    #[test]
    fn execution_is_deterministic(lines in proptest::collection::vec(safe_line(), 0..32)) {
        let exe = assemble_and_link(&program(&lines)).expect("program builds");
        let a = execute(&exe, &[], 100_000);
        let b = execute(&exe, &[], 100_000);
        prop_assert_eq!(a, b);
    }

    /// `run` and manual single-stepping agree on the outcome.
    #[test]
    fn stepping_agrees_with_run(lines in proptest::collection::vec(safe_line(), 0..16)) {
        let exe = assemble_and_link(&program(&lines)).expect("program builds");
        let run_result = {
            let mut m = Machine::new(&exe, &[]);
            m.run(100_000)
        };
        let step_result = {
            let mut m = Machine::new(&exe, &[]);
            let mut steps = 0u64;
            while m.stopped().is_none() && steps < 100_000 {
                let _ = m.step();
                steps += 1;
            }
            m.stopped().expect("straight-line programs terminate")
        };
        prop_assert_eq!(run_result.outcome, step_result);
    }

    /// Random single-byte corruption of the code never breaks the *host*:
    /// the machine either runs to some outcome or crashes cleanly.
    #[test]
    fn corrupted_binaries_cannot_harm_the_host(
        lines in proptest::collection::vec(safe_line(), 1..16),
        offset in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let exe = assemble_and_link(&program(&lines)).expect("program builds");
        let mut m = Machine::new(&exe, &[]);
        let text = exe.text_range();
        let len = (text.end - text.start) as usize;
        let addr = text.start + offset.index(len) as u64;
        let byte = m.peek_bytes(addr, 1).expect("text is mapped")[0];
        m.poke_bytes(addr, &[byte ^ flip]);
        let result = m.run(50_000);
        // Any outcome is fine; the property is that we got one.
        let _ = result.outcome;
    }

    /// Block-cached execution is bit-identical to the interpreter over
    /// random looped programs, for every fence placement: the same
    /// outcome after the same number of steps, with the same registers,
    /// flags, program counter, and output — even when the run is driven
    /// in chunks whose boundaries land mid-block.
    #[test]
    fn block_cached_execution_matches_the_interpreter(
        lines in proptest::collection::vec(safe_line(), 0..24),
        iters in 1u64..6,
        chunk in 1u64..97,
    ) {
        let exe = assemble_and_link(&looped_program(&lines, iters)).expect("program builds");
        let text = exe.text_range();
        // Every text offset as a candidate leader: undecodable or
        // mid-instruction candidates are dropped by the builder, so this
        // maximizes block-entry coverage without knowing the CFG.
        let cache = BlockCache::build(&exe, text.start..text.end).expect("text decodes");
        let max_steps = 50_000u64;

        let mut interp = Machine::new(&exe, &[]);
        let interp_result = interp.run(max_steps);

        let mut blocks = Machine::new(&exe, &[]);
        let (outcome, steps) = run_blocks_chunked(&mut blocks, &cache, chunk, max_steps);

        prop_assert_eq!(interp_result.outcome, outcome);
        prop_assert_eq!(interp_result.steps, steps);
        prop_assert_eq!(interp.pc(), blocks.pc());
        prop_assert_eq!(interp.flags(), blocks.flags());
        for i in 0..16u8 {
            let reg = rr_isa::Reg::from_index(i);
            prop_assert_eq!(interp.reg(reg), blocks.reg(reg), "r{}", i);
        }
        prop_assert_eq!(interp.take_output(), blocks.take_output());
    }

    /// Compiled uop execution is bit-identical to the interpreter over
    /// random looped programs, for every fence placement, every tiering
    /// threshold — eager compilation (0), promote-on-reentry (1), and a
    /// threshold the short run may never cross (8, leaving some or all
    /// blocks on the decoded tier) — and both optimization levels (the
    /// straight lowering and the `rr-ir`-optimized trace). Full
    /// architectural state is compared at the end of every chunked run:
    /// outcome, step count, pc, **NZCV flags** (the lazy-materialization
    /// and dead-flag-elimination contract), all sixteen registers, and
    /// output.
    #[test]
    fn uop_execution_matches_the_interpreter_across_thresholds(
        lines in proptest::collection::vec(safe_line(), 0..24),
        iters in 1u64..6,
        chunk in 1u64..97,
    ) {
        let exe = assemble_and_link(&looped_program(&lines, iters)).expect("program builds");
        let text = exe.text_range();
        let max_steps = 50_000u64;

        let mut interp = Machine::new(&exe, &[]);
        let interp_result = interp.run(max_steps);
        let interp_output = interp.take_output();

        for opt in [OptLevel::None, OptLevel::Full] {
            for hot_threshold in [0u32, 1, 8] {
                // A fresh cache per configuration: heat accumulated (and
                // bodies compiled) under one configuration must not leak
                // into the next.
                let cache = BlockCache::build(&exe, text.start..text.end).expect("text decodes");
                let config = UopConfig { hot_threshold, opt };
                let mut uops = Machine::new(&exe, &[]);
                let (outcome, steps) =
                    run_uops_chunked(&mut uops, &cache, config, chunk, max_steps);

                let ctx = |what: &str| format!("{what} threshold {hot_threshold} opt {opt}");
                prop_assert_eq!(interp_result.outcome, outcome, "{}", ctx("outcome"));
                prop_assert_eq!(interp_result.steps, steps, "{}", ctx("steps"));
                prop_assert_eq!(interp.pc(), uops.pc(), "{}", ctx("pc"));
                prop_assert_eq!(interp.flags(), uops.flags(), "{}", ctx("flags"));
                for i in 0..16u8 {
                    let reg = rr_isa::Reg::from_index(i);
                    prop_assert_eq!(interp.reg(reg), uops.reg(reg), "{}", ctx("reg"));
                }
                prop_assert_eq!(&interp_output, &uops.take_output(), "{}", ctx("output"));
            }
        }
    }

    /// Flag state after arithmetic matches the ISA-level flag model.
    #[test]
    fn machine_flags_match_isa_model(a in any::<i64>(), b in any::<i64>()) {
        let src = format!(
            "    .global _start\n_start:\n    mov r1, {a}\n    cmp r1, {b}\n    mov r1, 0\n    svc 0\n"
        );
        // cmp with 64-bit immediates won't assemble if b overflows i32;
        // clamp into range instead of discarding.
        let b32 = (b as i32) as i64;
        let src = src.replace(&format!("cmp r1, {b}"), &format!("cmp r1, {b32}"));
        let exe = assemble_and_link(&src).expect("program builds");
        let mut m = Machine::new(&exe, &[]);
        // Execute mov + cmp only.
        m.step().expect("mov");
        m.step().expect("cmp");
        let expected = rr_isa::Flags::from_sub(a as u64, b32 as u64);
        prop_assert_eq!(m.flags(), expected);
    }
}
