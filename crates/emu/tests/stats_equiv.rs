//! Property-based equivalence for the paged memory's *accounting*:
//! [`rr_emu::MemoryStats`] residency and `dirtied_since` page counts
//! must match a flat reference model of page identities under arbitrary
//! interleavings of pokes, snapshots, and restores.
//!
//! The reference tracks each stack page as `Zero` or `Data(id)`, minting
//! a fresh id exactly when the real memory materializes or copies a
//! page: on the first non-absorbed write to a zero page, and on any
//! write to a page whose backing is still shared with a live snapshot.
//! Any divergence in `resident_pages` / `zero_pages` or in a
//! per-snapshot dirty-page count is a bug in the copy-on-write sharing,
//! the zero-write absorption, or the straddle mirrors (a write into the
//! first [`STRADDLE_TAIL`] bytes of a page also rewrites the
//! predecessor's mirror tail, which must dirty the predecessor too).
//! This accounting is what the engine's checkpoint byte budget and the
//! telemetry `retained_snapshot_bytes` gauge are built on.

use proptest::prelude::*;
use rr_emu::{Machine, Snapshot, PAGE_SIZE, STRADDLE_TAIL};
use rr_isa::{STACK_SIZE, STACK_TOP};
use rr_obj::{Executable, SectionKind, Segment, SegmentPerms};

const STACK_BASE: u64 = STACK_TOP - STACK_SIZE;
const STACK_PAGES: usize = STACK_SIZE as usize / PAGE_SIZE;

/// A minimal executable: one nonzero text page plus the standard stack
/// (every poke in the property lands in the stack).
fn tiny_exe() -> Executable {
    Executable {
        segments: vec![Segment {
            addr: 0x1000,
            data: vec![0x01, 0x02, 0x03, 0x04],
            mem_size: PAGE_SIZE as u64,
            perms: SegmentPerms::RX,
            section: SectionKind::Text,
        }],
        entry: 0x1000,
        symbols: vec![],
    }
}

/// A stack page in the reference model: on the shared zero path, or
/// materialized with an identity standing in for the real `Arc` backing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageId {
    Zero,
    Data(u64),
}

/// The flat reference: page identities for the machine's stack, plus
/// the identities each live snapshot pinned.
struct RefModel {
    pages: Vec<PageId>,
    snaps: Vec<Vec<PageId>>,
    next_id: u64,
}

impl RefModel {
    fn new() -> RefModel {
        RefModel { pages: vec![PageId::Zero; STACK_PAGES], snaps: Vec::new(), next_id: 0 }
    }

    /// Whether a live snapshot still references this identity (the model
    /// of `Arc` strong count > 1, which is what makes `Arc::make_mut`
    /// copy).
    fn shared(&self, id: u64) -> bool {
        self.snaps.iter().any(|s| s.contains(&PageId::Data(id)))
    }

    /// One page receiving one write chunk, mirroring `Region::write`:
    /// all-zero chunks are absorbed by zero pages; any other write
    /// materializes a zero page or copies a snapshot-shared one (fresh
    /// identity) and mutates an unshared page in place (same identity).
    fn touch(&mut self, p: usize, chunk_zero: bool) {
        match self.pages[p] {
            PageId::Zero if chunk_zero => {}
            PageId::Zero => {
                self.pages[p] = PageId::Data(self.next_id);
                self.next_id += 1;
            }
            PageId::Data(id) if self.shared(id) => {
                self.pages[p] = PageId::Data(self.next_id);
                self.next_id += 1;
            }
            PageId::Data(_) => {}
        }
    }

    /// A poke at stack offset `offset`, split per page exactly like the
    /// real write path: body chunks first, then the straddle-mirror
    /// refreshes of each predecessor page the write's head bytes touch.
    fn poke(&mut self, offset: usize, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let end = offset + data.len();
        let first = offset / PAGE_SIZE;
        let last = (end - 1) / PAGE_SIZE;
        for p in first..=last {
            let base = p * PAGE_SIZE;
            let lo = offset.max(base);
            let hi = end.min(base + PAGE_SIZE);
            let zero = data[lo - offset..hi - offset].iter().all(|&b| b == 0);
            self.touch(p, zero);
        }
        for p in first.max(1)..=last {
            let base = p * PAGE_SIZE;
            let lo = offset.max(base);
            let hi = end.min(base + STRADDLE_TAIL);
            if lo < hi {
                let zero = data[lo - offset..hi - offset].iter().all(|&b| b == 0);
                self.touch(p - 1, zero);
            }
        }
    }

    fn resident(&self) -> u64 {
        self.pages.iter().filter(|p| !matches!(p, PageId::Zero)).count() as u64
    }

    fn dirty_since(&self, snap: &[PageId]) -> u64 {
        self.pages.iter().zip(snap).filter(|(a, b)| a != b).count() as u64
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn page_accounting_matches_flat_reference(
        ops in prop::collection::vec(
            (
                0u8..8,                       // op kind: 0-4 poke, 5-6 snapshot, 7 restore
                prop_oneof![0usize..6, 0usize..STACK_PAGES], // page (biased to collide)
                0usize..PAGE_SIZE,            // offset within the page
                1usize..16,                   // poke length (may cross a page boundary)
                0u8..4,                       // fill byte; 0 probes zero-write absorption
            ),
            1..120,
        )
    ) {
        let exe = tiny_exe();
        let mut machine = Machine::new(&exe, b"");
        let base_resident = machine.memory().stats().resident_pages;
        let total_pages = machine.memory().stats().total_pages;
        let mut snaps: Vec<Snapshot> = Vec::new();
        let mut model = RefModel::new();

        for (kind, page, offset, len, byte) in ops {
            match kind {
                0..=4 => {
                    let at = (page * PAGE_SIZE + offset).min(STACK_SIZE as usize - len);
                    let data = vec![byte; len];
                    prop_assert!(machine.poke_bytes(STACK_BASE + at as u64, &data));
                    model.poke(at, &data);
                }
                5 | 6 => {
                    snaps.push(machine.snapshot());
                    model.snaps.push(model.pages.clone());
                }
                _ => {
                    if !snaps.is_empty() {
                        let i = offset % snaps.len();
                        machine.restore(&snaps[i]);
                        model.pages = model.snaps[i].clone();
                    }
                }
            }

            // Residency must match the model after every operation...
            let stats = machine.memory().stats();
            prop_assert_eq!(stats.resident_pages, base_resident + model.resident());
            prop_assert_eq!(stats.zero_pages, total_pages - stats.resident_pages);
            prop_assert_eq!(stats.resident_bytes, stats.resident_pages * PAGE_SIZE as u64);
            // ...and so must the dirty-page count against every live
            // snapshot (only stack pages can ever diverge here).
            for (snap, pages) in snaps.iter().zip(&model.snaps) {
                prop_assert_eq!(machine.dirtied_since(snap).pages, model.dirty_since(pages));
            }
        }
    }
}
