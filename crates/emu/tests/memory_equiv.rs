//! Property-based equivalence: the paged copy-on-write [`Memory`] must
//! behave bit-for-bit like a naive flat-`Vec<u8>` reference memory under
//! arbitrary interleavings of reads, writes, pokes, peeks, fetches,
//! snapshots (clones), and restores — including word accesses that
//! straddle page boundaries and permission faults.
//!
//! The reference is a direct port of the pre-paging implementation (one
//! `Vec<u8>` per region), so any divergence is a bug in the page table,
//! the straddle mirrors, or the copy-on-write sharing.

use proptest::prelude::*;
use rr_emu::{AccessKind, MemResult, Memory, PAGE_SIZE, STRADDLE_TAIL};
use rr_isa::{STACK_SIZE, STACK_TOP};
use rr_obj::{Executable, SectionKind, Segment, SegmentPerms};

const TEXT_BASE: u64 = 0x1000;
const TEXT_LEN: usize = PAGE_SIZE + 700; // spans two pages
const DATA_BASE: u64 = 0x20000;
const DATA_INIT: usize = 2 * PAGE_SIZE + 100; // initialized prefix
const DATA_LEN: usize = 3 * PAGE_SIZE + 123; // zero-extended tail

/// The shared test layout: a two-page RX text segment, a RW data segment
/// with a zero tail, and the standard stack.
fn layout_exe() -> Executable {
    let text: Vec<u8> = (0..TEXT_LEN).map(|i| (i * 7 % 253) as u8 | 1).collect();
    let data: Vec<u8> = (0..DATA_INIT).map(|i| (i * 13 % 251) as u8).collect();
    Executable {
        segments: vec![
            Segment {
                addr: TEXT_BASE,
                data: text,
                mem_size: TEXT_LEN as u64,
                perms: SegmentPerms::RX,
                section: SectionKind::Text,
            },
            Segment {
                addr: DATA_BASE,
                data,
                mem_size: DATA_LEN as u64,
                perms: SegmentPerms::RW,
                section: SectionKind::Data,
            },
        ],
        entry: TEXT_BASE,
        symbols: vec![],
    }
}

// ---------------------------------------------------------------------
// The flat reference memory: a port of the pre-paging implementation.
// ---------------------------------------------------------------------

#[derive(Clone)]
struct FlatRegion {
    start: u64,
    perms: SegmentPerms,
    bytes: Vec<u8>,
}

impl FlatRegion {
    fn end(&self) -> u64 {
        self.start + self.bytes.len() as u64
    }

    fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end()
    }
}

#[derive(Clone)]
struct FlatMemory {
    regions: Vec<FlatRegion>,
}

impl FlatMemory {
    fn for_executable(exe: &Executable) -> FlatMemory {
        let mut regions: Vec<FlatRegion> = exe
            .segments
            .iter()
            .map(|seg| {
                let mut bytes = seg.data.clone();
                bytes.resize(seg.mem_size as usize, 0);
                FlatRegion { start: seg.addr, perms: seg.perms, bytes }
            })
            .collect();
        regions.push(FlatRegion {
            start: STACK_TOP - STACK_SIZE,
            perms: SegmentPerms::RW,
            bytes: vec![0; STACK_SIZE as usize],
        });
        regions.sort_by_key(|r| r.start);
        FlatMemory { regions }
    }

    fn region(&self, addr: u64) -> Option<&FlatRegion> {
        self.regions.iter().find(|r| r.contains(addr))
    }

    fn slice(&self, addr: u64, len: usize, access: AccessKind) -> MemResult<&[u8]> {
        let region = self.region(addr).ok_or((addr, access))?;
        let allowed = match access {
            AccessKind::Read => region.perms.read,
            AccessKind::Write => region.perms.write,
            AccessKind::Execute => region.perms.exec,
        };
        if !allowed {
            return Err((addr, access));
        }
        let offset = (addr - region.start) as usize;
        region.bytes.get(offset..offset + len).ok_or((addr, access))
    }

    fn read_u64(&self, addr: u64) -> MemResult<u64> {
        let bytes = self.slice(addr, 8, AccessKind::Read)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("length checked")))
    }

    fn read_u8(&self, addr: u64) -> MemResult<u8> {
        Ok(self.slice(addr, 1, AccessKind::Read)?[0])
    }

    fn write_checked(&mut self, addr: u64, data: &[u8]) -> MemResult<()> {
        let region =
            self.regions.iter_mut().find(|r| r.contains(addr)).ok_or((addr, AccessKind::Write))?;
        if !region.perms.write {
            return Err((addr, AccessKind::Write));
        }
        let offset = (addr - region.start) as usize;
        let dst =
            region.bytes.get_mut(offset..offset + data.len()).ok_or((addr, AccessKind::Write))?;
        dst.copy_from_slice(data);
        Ok(())
    }

    fn fetch(&self, addr: u64, max_len: usize) -> MemResult<&[u8]> {
        let region = self.region(addr).ok_or((addr, AccessKind::Execute))?;
        if !region.perms.exec {
            return Err((addr, AccessKind::Execute));
        }
        let offset = (addr - region.start) as usize;
        let end = (offset + max_len).min(region.bytes.len());
        Ok(&region.bytes[offset..end])
    }

    fn poke(&mut self, addr: u64, data: &[u8]) -> bool {
        if let Some(region) = self.regions.iter_mut().find(|r| r.contains(addr)) {
            let offset = (addr - region.start) as usize;
            if offset + data.len() <= region.bytes.len() {
                region.bytes[offset..offset + data.len()].copy_from_slice(data);
                return true;
            }
        }
        false
    }

    fn peek(&self, addr: u64, len: usize) -> Option<&[u8]> {
        let region = self.region(addr)?;
        let offset = (addr - region.start) as usize;
        region.bytes.get(offset..offset + len)
    }
}

// ---------------------------------------------------------------------
// Random operations, biased toward page boundaries and region edges.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    WriteU64 { addr: u64, value: u64 },
    WriteU8 { addr: u64, value: u8 },
    ReadU64 { addr: u64 },
    ReadU8 { addr: u64 },
    Fetch { addr: u64, max_len: usize },
    Poke { addr: u64, data: Vec<u8> },
    Peek { addr: u64, len: usize },
    Snapshot,
    Restore { pick: prop::sample::Index },
}

/// Addresses worth hammering: page boundaries, region starts/ends (both
/// sides), the zero tail, the stack top, and unmapped space.
fn address_pool() -> Vec<u64> {
    let mut pool = Vec::new();
    for base in [TEXT_BASE, DATA_BASE] {
        for page in 0..4u64 {
            let boundary = base + page * PAGE_SIZE as u64;
            for jitter in -9i64..=9 {
                pool.push(boundary.wrapping_add_signed(jitter));
            }
        }
    }
    for end in [TEXT_BASE + TEXT_LEN as u64, DATA_BASE + DATA_LEN as u64] {
        for jitter in -9i64..=2 {
            pool.push(end.wrapping_add_signed(jitter));
        }
    }
    pool.push(DATA_BASE + DATA_INIT as u64); // start of the zero tail
    for jitter in -16i64..=0 {
        pool.push(STACK_TOP.wrapping_add_signed(jitter));
    }
    pool.push(STACK_TOP - STACK_SIZE); // stack bottom
    pool.push(STACK_TOP - STACK_SIZE / 2 - 3); // deep, page-misaligned
    pool.extend([0u64, 0x500, 0x9999_0000]); // unmapped
    pool
}

fn addr_strategy() -> impl Strategy<Value = u64> {
    let pool = address_pool();
    (0..pool.len()).prop_map(move |i| pool[i])
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (addr_strategy(), any::<u64>()).prop_map(|(addr, value)| Op::WriteU64 { addr, value }),
        (addr_strategy(), any::<u8>()).prop_map(|(addr, value)| Op::WriteU8 { addr, value }),
        addr_strategy().prop_map(|addr| Op::ReadU64 { addr }),
        addr_strategy().prop_map(|addr| Op::ReadU8 { addr }),
        (addr_strategy(), 1usize..16).prop_map(|(addr, max_len)| Op::Fetch { addr, max_len }),
        (addr_strategy(), proptest::collection::vec(any::<u8>(), 1..12))
            .prop_map(|(addr, data)| Op::Poke { addr, data }),
        (addr_strategy(), 0usize..=STRADDLE_TAIL).prop_map(|(addr, len)| Op::Peek { addr, len }),
        Just(Op::Snapshot),
        any::<prop::sample::Index>().prop_map(|pick| Op::Restore { pick }),
    ]
}

/// Applies one op to both memories, asserting identical observable
/// behaviour (values *and* error/None outcomes).
fn apply(
    op: &Op,
    paged: &mut Memory,
    flat: &mut FlatMemory,
    snapshots: &mut Vec<(Memory, FlatMemory)>,
) {
    match op {
        Op::WriteU64 { addr, value } => {
            assert_eq!(
                paged.write_u64(*addr, *value),
                flat.write_checked(*addr, &value.to_le_bytes()),
                "write_u64 {addr:#x}"
            );
        }
        Op::WriteU8 { addr, value } => {
            assert_eq!(
                paged.write_u8(*addr, *value),
                flat.write_checked(*addr, &[*value]),
                "write_u8 {addr:#x}"
            );
        }
        Op::ReadU64 { addr } => {
            assert_eq!(paged.read_u64(*addr), flat.read_u64(*addr), "read_u64 {addr:#x}");
        }
        Op::ReadU8 { addr } => {
            assert_eq!(paged.read_u8(*addr), flat.read_u8(*addr), "read_u8 {addr:#x}");
        }
        Op::Fetch { addr, max_len } => {
            assert_eq!(
                paged.fetch(*addr, *max_len).map(<[u8]>::to_vec),
                flat.fetch(*addr, *max_len).map(<[u8]>::to_vec),
                "fetch {addr:#x}+{max_len}"
            );
        }
        Op::Poke { addr, data } => {
            assert_eq!(paged.poke(*addr, data), flat.poke(*addr, data), "poke {addr:#x}");
        }
        Op::Peek { addr, len } => {
            assert_eq!(
                paged.peek(*addr, *len).map(<[u8]>::to_vec),
                flat.peek(*addr, *len).map(<[u8]>::to_vec),
                "peek {addr:#x}+{len}"
            );
        }
        Op::Snapshot => {
            snapshots.push((paged.clone(), flat.clone()));
        }
        Op::Restore { pick } => {
            if !snapshots.is_empty() {
                let (p, f) = &snapshots[pick.index(snapshots.len())];
                *paged = p.clone();
                *flat = f.clone();
            }
        }
    }
}

/// Full-content comparison in aligned 64-byte chunks (aligned chunks of
/// up to [`STRADDLE_TAIL`] bytes never cross a page buffer). The text
/// and data regions are scanned completely; the 1 MiB stack is scanned
/// in the windows the address pool can touch.
fn assert_same_contents(paged: &Memory, flat: &FlatMemory) {
    for (base, len) in [
        (TEXT_BASE, TEXT_LEN),
        (DATA_BASE, DATA_LEN),
        (STACK_TOP - 128, 128),
        (STACK_TOP - STACK_SIZE, 128),
        (STACK_TOP - STACK_SIZE / 2 - 64, 128),
    ] {
        let mut offset = 0usize;
        while offset < len {
            let chunk = STRADDLE_TAIL.min(len - offset);
            let addr = base + offset as u64;
            assert_eq!(
                paged.peek(addr, chunk).map(<[u8]>::to_vec),
                flat.peek(addr, chunk).map(<[u8]>::to_vec),
                "contents at {addr:#x}"
            );
            offset += chunk;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary op interleavings are observationally identical on the
    /// paged and the flat memory, and every retained snapshot pair stays
    /// identical too (copy-on-write never leaks later writes backward).
    #[test]
    fn paged_memory_matches_flat_reference(
        ops in proptest::collection::vec(op_strategy(), 0..160),
    ) {
        let exe = layout_exe();
        let mut paged = Memory::for_executable(&exe);
        let mut flat = FlatMemory::for_executable(&exe);
        let mut snapshots = Vec::new();
        for op in &ops {
            apply(op, &mut paged, &mut flat, &mut snapshots);
        }
        assert_same_contents(&paged, &flat);
        for (p, f) in &snapshots {
            assert_same_contents(p, f);
        }
    }

    /// Directed straddle hammering: words written across every page
    /// boundary of the data region read back identically through every
    /// overlapping access width.
    #[test]
    fn page_straddling_words_round_trip(
        value in any::<u64>(),
        back in 1u64..8,
        page in 0u64..3,
    ) {
        let exe = layout_exe();
        let mut paged = Memory::for_executable(&exe);
        let mut flat = FlatMemory::for_executable(&exe);
        let addr = DATA_BASE + (page + 1) * PAGE_SIZE as u64 - back;
        prop_assert_eq!(
            paged.write_u64(addr, value),
            flat.write_checked(addr, &value.to_le_bytes())
        );
        prop_assert_eq!(paged.read_u64(addr), flat.read_u64(addr));
        for i in 0..8u64 {
            prop_assert_eq!(paged.read_u8(addr + i), flat.read_u8(addr + i), "byte {}", i);
        }
    }
}
