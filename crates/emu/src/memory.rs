//! The emulated flat memory: permissioned regions.
//!
//! Region contents are stored behind [`Arc`] so that cloning a `Memory`
//! (and therefore snapshotting a machine) is O(regions) pointer copies
//! rather than a byte copy of the whole address space. Writes go through
//! [`Arc::make_mut`], which transparently copies a region the first time
//! it is written after a clone — copy-on-write at *region* granularity:
//! one write to a region costs a private copy of that whole region (for
//! the stack, 1 MiB), not just the touched bytes. The checkpointed
//! replay engine in `rr-engine` depends on this: snapshots of untouched
//! regions stay shared, and a checkpoint pays only for the regions its
//! interval dirtied (see `ReplayConfig::max_checkpoints` for the
//! resulting retention bound; per-page COW is a roadmap item).

use rr_isa::{STACK_SIZE, STACK_TOP};
use rr_obj::{Executable, SegmentPerms};
use std::sync::Arc;

/// The kind of memory access that failed (or is being checked).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Execute => "execute",
        })
    }
}

#[derive(Debug, Clone)]
struct Region {
    start: u64,
    perms: SegmentPerms,
    /// Copy-on-write contents: cloning the region shares the allocation;
    /// the first write after a clone copies it.
    bytes: Arc<Vec<u8>>,
}

impl Region {
    fn end(&self) -> u64 {
        self.start + self.bytes.len() as u64
    }

    fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end()
    }
}

/// The emulated address space: a small set of non-overlapping permissioned
/// regions (program segments plus the stack).
#[derive(Debug, Clone)]
pub struct Memory {
    regions: Vec<Region>,
}

/// Result of a memory access: the value, or the failed access description.
pub type MemResult<T> = Result<T, (u64, AccessKind)>;

impl Memory {
    /// Builds the address space for `exe`: every segment, zero-extended to
    /// its `mem_size`, plus a zeroed read-write stack of [`STACK_SIZE`]
    /// bytes ending at [`STACK_TOP`].
    pub fn for_executable(exe: &Executable) -> Memory {
        let mut regions: Vec<Region> = exe
            .segments
            .iter()
            .map(|seg| {
                let mut bytes = seg.data.clone();
                bytes.resize(seg.mem_size as usize, 0);
                Region { start: seg.addr, perms: seg.perms, bytes: Arc::new(bytes) }
            })
            .collect();
        regions.push(Region {
            start: STACK_TOP - STACK_SIZE,
            perms: SegmentPerms::RW,
            bytes: Arc::new(vec![0; STACK_SIZE as usize]),
        });
        regions.sort_by_key(|r| r.start);
        Memory { regions }
    }

    fn region(&self, addr: u64) -> Option<&Region> {
        self.regions.iter().find(|r| r.contains(addr))
    }

    fn region_mut(&mut self, addr: u64) -> Option<&mut Region> {
        self.regions.iter_mut().find(|r| r.contains(addr))
    }

    /// Checked slice access: `len` bytes at `addr`, all within one region
    /// that satisfies `access` permissions.
    pub fn slice(&self, addr: u64, len: usize, access: AccessKind) -> MemResult<&[u8]> {
        let region = self.region(addr).ok_or((addr, access))?;
        let allowed = match access {
            AccessKind::Read => region.perms.read,
            AccessKind::Write => region.perms.write,
            AccessKind::Execute => region.perms.exec,
        };
        if !allowed {
            return Err((addr, access));
        }
        let offset = (addr - region.start) as usize;
        region.bytes.get(offset..offset + len).ok_or((addr, access))
    }

    /// Reads an unsigned 64-bit little-endian word.
    pub fn read_u64(&self, addr: u64) -> MemResult<u64> {
        let bytes = self.slice(addr, 8, AccessKind::Read)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("length checked")))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> MemResult<u8> {
        Ok(self.slice(addr, 1, AccessKind::Read)?[0])
    }

    /// Writes a 64-bit little-endian word (permission-checked).
    pub fn write_u64(&mut self, addr: u64, value: u64) -> MemResult<()> {
        self.write_checked(addr, &value.to_le_bytes())
    }

    /// Writes one byte (permission-checked).
    pub fn write_u8(&mut self, addr: u64, value: u8) -> MemResult<()> {
        self.write_checked(addr, &[value])
    }

    fn write_checked(&mut self, addr: u64, data: &[u8]) -> MemResult<()> {
        let region = self.region_mut(addr).ok_or((addr, AccessKind::Write))?;
        if !region.perms.write {
            return Err((addr, AccessKind::Write));
        }
        let offset = (addr - region.start) as usize;
        let dst = Arc::make_mut(&mut region.bytes)
            .get_mut(offset..offset + data.len())
            .ok_or((addr, AccessKind::Write))?;
        dst.copy_from_slice(data);
        Ok(())
    }

    /// Fetches up to `max_len` executable bytes starting at `addr` (fewer if
    /// the region ends sooner). Errors if `addr` is not executable.
    pub fn fetch(&self, addr: u64, max_len: usize) -> MemResult<&[u8]> {
        let region = self.region(addr).ok_or((addr, AccessKind::Execute))?;
        if !region.perms.exec {
            return Err((addr, AccessKind::Execute));
        }
        let offset = (addr - region.start) as usize;
        let end = (offset + max_len).min(region.bytes.len());
        Ok(&region.bytes[offset..end])
    }

    /// Writes bytes ignoring permissions — the *physical* access a fault
    /// injector has (a laser does not consult the MMU).
    ///
    /// Returns `false` if the range is not fully inside one mapped region.
    pub fn poke(&mut self, addr: u64, data: &[u8]) -> bool {
        if let Some(region) = self.region_mut(addr) {
            let offset = (addr - region.start) as usize;
            if offset + data.len() <= region.bytes.len() {
                Arc::make_mut(&mut region.bytes)[offset..offset + data.len()].copy_from_slice(data);
                return true;
            }
        }
        false
    }

    /// Reads bytes ignoring permissions (inspection/forensics counterpart
    /// of [`Memory::poke`]).
    pub fn peek(&self, addr: u64, len: usize) -> Option<&[u8]> {
        let region = self.region(addr)?;
        let offset = (addr - region.start) as usize;
        region.bytes.get(offset..offset + len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_obj::{SectionKind, Segment};

    fn demo_memory() -> Memory {
        let exe = Executable {
            segments: vec![
                Segment {
                    addr: 0x1000,
                    data: vec![0x01, 0x02],
                    mem_size: 2,
                    perms: SegmentPerms::RX,
                    section: SectionKind::Text,
                },
                Segment {
                    addr: 0x2000,
                    data: vec![0xAA; 4],
                    mem_size: 16,
                    perms: SegmentPerms::RW,
                    section: SectionKind::Data,
                },
            ],
            entry: 0x1000,
            symbols: vec![],
        };
        Memory::for_executable(&exe)
    }

    #[test]
    fn zero_extension_of_segments() {
        let mem = demo_memory();
        assert_eq!(mem.read_u8(0x2003).unwrap(), 0xAA);
        assert_eq!(mem.read_u8(0x2004).unwrap(), 0); // zero tail
        assert_eq!(mem.read_u8(0x200F).unwrap(), 0);
        assert!(mem.read_u8(0x2010).is_err());
    }

    #[test]
    fn permissions_enforced() {
        let mut mem = demo_memory();
        // Writing code faults (W^X).
        assert_eq!(mem.write_u8(0x1000, 0), Err((0x1000, AccessKind::Write)));
        // Executing data faults.
        assert_eq!(mem.fetch(0x2000, 4).unwrap_err(), (0x2000, AccessKind::Execute));
        // Reading code is allowed.
        assert_eq!(mem.read_u8(0x1000).unwrap(), 0x01);
        // Writing data is allowed.
        mem.write_u64(0x2000, 7).unwrap();
        assert_eq!(mem.read_u64(0x2000).unwrap(), 7);
    }

    #[test]
    fn word_access_must_fit_one_region() {
        let mem = demo_memory();
        // 8-byte read straddling the end of the data region fails.
        assert!(mem.read_u64(0x2008).is_ok());
        assert!(mem.read_u64(0x2009).is_err());
    }

    #[test]
    fn stack_is_mapped_rw() {
        let mut mem = demo_memory();
        let sp = STACK_TOP - 8;
        mem.write_u64(sp, 0xFEED).unwrap();
        assert_eq!(mem.read_u64(sp).unwrap(), 0xFEED);
        // Just below the stack is unmapped (stack overflow detection).
        assert!(mem.write_u64(STACK_TOP - STACK_SIZE - 8, 1).is_err());
    }

    #[test]
    fn fetch_truncates_at_region_end() {
        let mem = demo_memory();
        assert_eq!(mem.fetch(0x1001, 10).unwrap(), &[0x02]);
        assert!(mem.fetch(0x0, 1).is_err());
    }

    #[test]
    fn clones_share_until_written() {
        let mut mem = demo_memory();
        let snapshot = mem.clone();
        // All regions are shared allocations right after the clone.
        for (a, b) in mem.regions.iter().zip(&snapshot.regions) {
            assert!(Arc::ptr_eq(&a.bytes, &b.bytes));
        }
        // Writing the data region unshares only the data region.
        mem.write_u64(0x2000, 0xDEAD_BEEF).unwrap();
        assert!(!Arc::ptr_eq(&mem.regions[1].bytes, &snapshot.regions[1].bytes));
        assert!(Arc::ptr_eq(&mem.regions[0].bytes, &snapshot.regions[0].bytes));
        // The snapshot still sees the pre-write value.
        assert_eq!(snapshot.read_u64(0x2000).unwrap(), 0xAAAA_AAAA);
        assert_eq!(mem.read_u64(0x2000).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn poke_also_unshares() {
        let mut mem = demo_memory();
        let snapshot = mem.clone();
        assert!(mem.poke(0x1000, &[0x55]));
        assert_eq!(snapshot.peek(0x1000, 1).unwrap(), &[0x01]);
        assert_eq!(mem.peek(0x1000, 1).unwrap(), &[0x55]);
    }

    #[test]
    fn poke_ignores_permissions() {
        let mut mem = demo_memory();
        assert!(mem.poke(0x1000, &[0xFF]));
        assert_eq!(mem.peek(0x1000, 1).unwrap(), &[0xFF]);
        // Out-of-bounds poke reports failure.
        assert!(!mem.poke(0x1001, &[0, 0]));
        assert!(!mem.poke(0x9999_0000, &[1]));
    }
}
