//! The emulated flat memory: permissioned regions over page-granular
//! copy-on-write storage.
//!
//! Each region is a two-level structure: a page table of fixed-size
//! [`PAGE_SIZE`]-byte pages, each either the shared all-zero page (the
//! fast path that makes the untouched 1 MiB stack cost nothing) or an
//! [`Arc`]-shared data page. Cloning a `Memory` (and therefore
//! snapshotting a machine) is O(pages) reference-count bumps; a write
//! after a clone copies only the touched 4 KiB page via
//! [`Arc::make_mut`], not the whole region. Both the first-write cost
//! after a snapshot restore and the retained footprint of a checkpoint
//! are therefore proportional to the bytes actually dirtied — the
//! property the `rr-engine` checkpointed replay engine's byte-budget
//! retention ([`ReplayConfig::max_retained_bytes`] there) is built on.
//!
//! ## Contiguous reads over paged storage
//!
//! The read API still hands out contiguous `&[u8]` slices
//! ([`Memory::slice`], [`Memory::fetch`], [`Memory::peek`]) even though
//! storage is paged: every page buffer carries a [`STRADDLE_TAIL`]-byte
//! *mirror* of the following page's first bytes, so any access of up to
//! [`STRADDLE_TAIL`] bytes — larger than the biggest architectural
//! access, a [`MAX_INSTR_LEN`]-byte instruction fetch — is contiguous
//! inside a single page buffer no matter where it falls. Writes keep the
//! mirrors coherent (a write into the first bytes of a page also updates
//! the tail of its predecessor). Reads longer than the tail succeed only
//! when they do not cross a page-buffer boundary; no emulator or
//! campaign path issues one (use [`Memory::read_bytes`] for an owned
//! gather of arbitrary length).
//!
//! ## Dirty accounting
//!
//! [`Memory::stats`] reports residency (materialized vs zero pages) and
//! [`Memory::delta`] compares two memories of the same layout by page
//! *identity*, counting pages whose backing is no longer shared. The
//! delta also reports what region-granular COW (the previous design)
//! would have retained for the same divergence, which is how the
//! snapshot-footprint benchmark gates the ≥10× improvement.

use rr_isa::{MAX_INSTR_LEN, STACK_SIZE, STACK_TOP};
use rr_obj::{Executable, SegmentPerms};
use std::sync::Arc;

/// Bytes per copy-on-write page.
pub const PAGE_SIZE: usize = 4096;

/// Bytes of the following page mirrored at the end of each page buffer;
/// the maximum length guaranteed to be readable as one contiguous slice
/// from any mapped, permitted address.
pub const STRADDLE_TAIL: usize = 64;

/// Stored bytes per page: the page itself plus the straddle mirror.
const PAGE_STORE: usize = PAGE_SIZE + STRADDLE_TAIL;

/// Backing store for every [`Page::Zero`] read.
static ZERO_STORE: [u8; PAGE_STORE] = [0; PAGE_STORE];

const _: () = assert!(MAX_INSTR_LEN <= STRADDLE_TAIL, "fetch must fit the straddle window");

/// The kind of memory access that failed (or is being checked).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Execute => "execute",
        })
    }
}

/// One fixed-size unit of copy-on-write storage.
#[derive(Clone)]
enum Page {
    /// Entirely zero (including the mirror tail); reads are served from
    /// one shared static buffer and no allocation exists.
    Zero,
    /// Materialized contents, shared between clones until written.
    Data(Arc<[u8; PAGE_STORE]>),
}

impl Page {
    fn as_slice(&self) -> &[u8; PAGE_STORE] {
        match self {
            Page::Zero => &ZERO_STORE,
            Page::Data(bytes) => bytes,
        }
    }

    /// Whether two pages share the same backing (zero pages all do).
    fn same_backing(&self, other: &Page) -> bool {
        match (self, other) {
            (Page::Zero, Page::Zero) => true,
            (Page::Data(a), Page::Data(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Page::Zero => f.write_str("Zero"),
            Page::Data(_) => f.write_str("Data(..)"),
        }
    }
}

#[derive(Debug, Clone)]
struct Region {
    start: u64,
    /// Mapped length in bytes (the page table may cover slightly more).
    len: usize,
    perms: SegmentPerms,
    pages: Vec<Page>,
}

impl Region {
    /// Builds a region from initial contents zero-extended to `mem_size`.
    fn new(start: u64, perms: SegmentPerms, data: &[u8], mem_size: usize) -> Region {
        let pages = (0..mem_size.div_ceil(PAGE_SIZE))
            .map(|p| {
                let base = p * PAGE_SIZE;
                if base >= data.len() {
                    return Page::Zero;
                }
                // The buffer takes PAGE_STORE bytes starting at the page
                // base, which seeds the mirror tail from the next page's
                // data in the same copy.
                let mut buf = [0u8; PAGE_STORE];
                let end = data.len().min(base + PAGE_STORE);
                buf[..end - base].copy_from_slice(&data[base..end]);
                if buf.iter().all(|&b| b == 0) {
                    Page::Zero
                } else {
                    Page::Data(Arc::new(buf))
                }
            })
            .collect();
        Region { start, len: mem_size, perms, pages }
    }

    fn end(&self) -> u64 {
        self.start + self.len as u64
    }

    fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end()
    }

    /// Contiguous view of `len` bytes at region offset `offset`, if the
    /// range is mapped and fits one page buffer (always true for
    /// `len <= STRADDLE_TAIL`).
    fn read(&self, offset: usize, len: usize) -> Option<&[u8]> {
        let end = offset.checked_add(len)?;
        if end > self.len {
            return None;
        }
        if len == 0 {
            return Some(&[]);
        }
        let page = offset / PAGE_SIZE;
        let in_page = offset % PAGE_SIZE;
        self.pages[page].as_slice().get(in_page..in_page + len)
    }

    /// Mutable access to page `p`, materializing zero pages and copying
    /// shared ones (the page-granular copy-on-write step).
    fn page_mut(&mut self, p: usize) -> &mut [u8; PAGE_STORE] {
        let page = &mut self.pages[p];
        if let Page::Zero = page {
            *page = Page::Data(Arc::new([0u8; PAGE_STORE]));
        }
        match page {
            Page::Data(bytes) => Arc::make_mut(bytes),
            Page::Zero => unreachable!("zero page was just materialized"),
        }
    }

    /// Writes `data` at region offset `offset`, keeping the mirror tails
    /// of preceding pages coherent. Returns `false` when the range is not
    /// fully mapped. Zero writes to zero pages are absorbed without
    /// materializing, so zero-filling untouched memory stays free.
    fn write(&mut self, offset: usize, data: &[u8]) -> bool {
        let Some(end) = offset.checked_add(data.len()) else { return false };
        if end > self.len {
            return false;
        }
        if data.is_empty() {
            return true;
        }
        let first = offset / PAGE_SIZE;
        let last = (end - 1) / PAGE_SIZE;
        for p in first..=last {
            let base = p * PAGE_SIZE;
            let lo = offset.max(base);
            let hi = end.min(base + PAGE_SIZE);
            let chunk = &data[lo - offset..hi - offset];
            if matches!(self.pages[p], Page::Zero) && chunk.iter().all(|&b| b == 0) {
                continue;
            }
            self.page_mut(p)[lo - base..hi - base].copy_from_slice(chunk);
        }
        // A page buffer mirrors the first STRADDLE_TAIL bytes of its
        // successor; refresh the mirrors the write touched.
        for p in first.max(1)..=last {
            let base = p * PAGE_SIZE;
            let lo = offset.max(base);
            let hi = end.min(base + STRADDLE_TAIL);
            if lo < hi {
                let chunk = &data[lo - offset..hi - offset];
                if matches!(self.pages[p - 1], Page::Zero) && chunk.iter().all(|&b| b == 0) {
                    continue;
                }
                self.page_mut(p - 1)[PAGE_SIZE + lo - base..PAGE_SIZE + hi - base]
                    .copy_from_slice(chunk);
            }
        }
        true
    }
}

/// The emulated address space: a small set of non-overlapping permissioned
/// regions (program segments plus the stack).
#[derive(Debug, Clone)]
pub struct Memory {
    regions: Vec<Region>,
    /// Byte ranges of *executable* memory overwritten since load: pokes
    /// from fault injection, plus checked writes in the (unusual) case
    /// of a region mapped write+exec. Cloned with the memory, so
    /// snapshot/restore rewinds it together with the bytes — the
    /// block-cached execution fast path consults this to fall back to
    /// interpretation over modified code.
    exec_dirty: Vec<std::ops::Range<u64>>,
}

/// Result of a memory access: the value, or the failed access description.
pub type MemResult<T> = Result<T, (u64, AccessKind)>;

/// Residency of one [`Memory`]: how much of the mapped address space is
/// materialized versus on the shared zero-page fast path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Total mapped bytes across all regions.
    pub mapped_bytes: u64,
    /// Total pages across all regions.
    pub total_pages: u64,
    /// Pages on the shared zero fast path (no allocation).
    pub zero_pages: u64,
    /// Materialized pages (each holds a private or shared allocation).
    pub resident_pages: u64,
    /// `resident_pages × PAGE_SIZE`.
    pub resident_bytes: u64,
}

/// Divergence between two memories of identical layout, measured by page
/// *identity*: a page counts as dirty when its backing is no longer the
/// same allocation (or both the shared zero page).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryDelta {
    /// Pages whose backing differs.
    pub pages: u64,
    /// `pages × PAGE_SIZE` — what page-granular COW retains privately.
    pub bytes: u64,
    /// Regions with at least one differing page.
    pub regions: u64,
    /// Total mapped length of those regions — what region-granular COW
    /// (one allocation per region) would retain for the same divergence.
    pub region_bytes: u64,
}

impl MemoryDelta {
    /// No page diverged.
    pub fn is_empty(&self) -> bool {
        self.pages == 0
    }
}

impl Memory {
    /// Builds the address space for `exe`: every segment, zero-extended to
    /// its `mem_size`, plus a zeroed read-write stack of [`STACK_SIZE`]
    /// bytes ending at [`STACK_TOP`]. The stack (and every zero tail)
    /// starts on the shared zero page, costing no allocation until
    /// written.
    pub fn for_executable(exe: &Executable) -> Memory {
        let mut regions: Vec<Region> = exe
            .segments
            .iter()
            .map(|seg| Region::new(seg.addr, seg.perms, &seg.data, seg.mem_size as usize))
            .collect();
        regions.push(Region::new(
            STACK_TOP - STACK_SIZE,
            SegmentPerms::RW,
            &[],
            STACK_SIZE as usize,
        ));
        regions.sort_by_key(|r| r.start);
        Memory { regions, exec_dirty: Vec::new() }
    }

    fn region(&self, addr: u64) -> Option<&Region> {
        self.regions.iter().find(|r| r.contains(addr))
    }

    fn region_mut(&mut self, addr: u64) -> Option<&mut Region> {
        self.regions.iter_mut().find(|r| r.contains(addr))
    }

    /// Checked slice access: `len` bytes at `addr`, all within one region
    /// that satisfies `access` permissions. Lengths up to
    /// [`STRADDLE_TAIL`] are always contiguously servable; longer
    /// requests fail if they cross a page buffer.
    pub fn slice(&self, addr: u64, len: usize, access: AccessKind) -> MemResult<&[u8]> {
        let region = self.region(addr).ok_or((addr, access))?;
        let allowed = match access {
            AccessKind::Read => region.perms.read,
            AccessKind::Write => region.perms.write,
            AccessKind::Execute => region.perms.exec,
        };
        if !allowed {
            return Err((addr, access));
        }
        let offset = (addr - region.start) as usize;
        region.read(offset, len).ok_or((addr, access))
    }

    /// Reads an unsigned 64-bit little-endian word.
    pub fn read_u64(&self, addr: u64) -> MemResult<u64> {
        let bytes = self.slice(addr, 8, AccessKind::Read)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("length checked")))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> MemResult<u8> {
        Ok(self.slice(addr, 1, AccessKind::Read)?[0])
    }

    /// Writes a 64-bit little-endian word (permission-checked).
    pub fn write_u64(&mut self, addr: u64, value: u64) -> MemResult<()> {
        self.write_checked(addr, &value.to_le_bytes())
    }

    /// Writes one byte (permission-checked).
    pub fn write_u8(&mut self, addr: u64, value: u8) -> MemResult<()> {
        self.write_checked(addr, &[value])
    }

    fn write_checked(&mut self, addr: u64, data: &[u8]) -> MemResult<()> {
        let region = self.region_mut(addr).ok_or((addr, AccessKind::Write))?;
        if !region.perms.write {
            return Err((addr, AccessKind::Write));
        }
        let offset = (addr - region.start) as usize;
        let exec = region.perms.exec;
        if region.write(offset, data) {
            if exec && !data.is_empty() {
                self.exec_dirty.push(addr..addr + data.len() as u64);
            }
            Ok(())
        } else {
            Err((addr, AccessKind::Write))
        }
    }

    /// Fetches up to `max_len` executable bytes starting at `addr` (fewer if
    /// the region ends sooner). Errors if `addr` is not executable.
    pub fn fetch(&self, addr: u64, max_len: usize) -> MemResult<&[u8]> {
        let region = self.region(addr).ok_or((addr, AccessKind::Execute))?;
        if !region.perms.exec {
            return Err((addr, AccessKind::Execute));
        }
        let offset = (addr - region.start) as usize;
        let len = max_len.min(region.len - offset);
        region.read(offset, len).ok_or((addr, AccessKind::Execute))
    }

    /// Writes bytes ignoring permissions — the *physical* access a fault
    /// injector has (a laser does not consult the MMU).
    ///
    /// Returns `false` if the range is not fully inside one mapped region.
    pub fn poke(&mut self, addr: u64, data: &[u8]) -> bool {
        let Some(region) = self.region_mut(addr) else { return false };
        let offset = (addr - region.start) as usize;
        let exec = region.perms.exec;
        if !region.write(offset, data) {
            return false;
        }
        if exec && !data.is_empty() {
            self.exec_dirty.push(addr..addr + data.len() as u64);
        }
        true
    }

    /// Whether any executable byte in `start..end` has been overwritten
    /// since this memory was built (or, for a restored machine, since the
    /// snapshot it came from was captured — the dirty list rewinds with
    /// the bytes). The block-cached execution path uses this to fall back
    /// to interpretation over code a fault injection has modified.
    pub fn exec_dirty_intersects(&self, start: u64, end: u64) -> bool {
        !self.exec_dirty.is_empty()
            && self.exec_dirty.iter().any(|r| r.start < end && start < r.end)
    }

    /// Monotonic count of executable-range overwrites — a cheap "did code
    /// change since I last looked" check for callers holding decoded
    /// instructions (grows on every exec-range [`Memory::poke`]/write,
    /// rewinds on restore).
    pub fn exec_dirty_epoch(&self) -> usize {
        self.exec_dirty.len()
    }

    /// Whether every writable region is also readable. This is the
    /// precondition for the uop optimizer's store-to-load forwarding: a
    /// load may only be replaced by the value a preceding store wrote if
    /// reading the stored-to address back would itself have been a
    /// permitted access.
    pub fn writable_implies_readable(&self) -> bool {
        self.regions.iter().all(|r| !r.perms.write || r.perms.read)
    }

    /// Reads bytes ignoring permissions (inspection/forensics counterpart
    /// of [`Memory::poke`]). Same contiguity contract as [`Memory::slice`].
    pub fn peek(&self, addr: u64, len: usize) -> Option<&[u8]> {
        let region = self.region(addr)?;
        region.read((addr - region.start) as usize, len)
    }

    /// Owned read of arbitrary length ignoring permissions, gathering
    /// across pages — for inspection paths that need more than the
    /// [`STRADDLE_TAIL`] zero-copy window.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Option<Vec<u8>> {
        let region = self.region(addr)?;
        let offset = (addr - region.start) as usize;
        if offset.checked_add(len)? > region.len {
            return None;
        }
        let mut out = Vec::with_capacity(len);
        let mut at = offset;
        while at < offset + len {
            let chunk = (offset + len - at).min(PAGE_SIZE - at % PAGE_SIZE);
            out.extend_from_slice(region.read(at, chunk)?);
            at += chunk;
        }
        Some(out)
    }

    /// Residency of this memory (see [`MemoryStats`]).
    pub fn stats(&self) -> MemoryStats {
        let mut stats = MemoryStats::default();
        for region in &self.regions {
            stats.mapped_bytes += region.len as u64;
            stats.total_pages += region.pages.len() as u64;
            for page in &region.pages {
                match page {
                    Page::Zero => stats.zero_pages += 1,
                    Page::Data(_) => stats.resident_pages += 1,
                }
            }
        }
        stats.resident_bytes = stats.resident_pages * PAGE_SIZE as u64;
        stats
    }

    /// What page-granular COW would retain for this memory against
    /// `baseline` under a **hypothetical** page size, in bytes: exact
    /// byte-level diffing resampled onto a `page_size`-aligned grid.
    ///
    /// [`PAGE_SIZE`] is a compile-time constant, so alternative
    /// granularities can't be measured by recompiling per point; this
    /// analytic sweep answers "what would 1 KiB / 16 KiB pages have
    /// retained?" for the same recording instead. Pages with identical
    /// backing are skipped wholesale, so the scan only touches pages the
    /// real COW copied. Byte-identical rewrites (a page copied for a
    /// write that stored the same value) count as clean here but dirty
    /// in [`Memory::delta`]'s identity accounting, so the result at
    /// `PAGE_SIZE` is a lower bound on [`MemoryDelta::bytes`].
    pub fn retained_bytes_at(&self, baseline: &Memory, page_size: usize) -> u64 {
        assert!(page_size > 0, "page size must be positive");
        assert_eq!(self.regions.len(), baseline.regions.len(), "memory layouts differ");
        fn visible(page: &Page) -> &[u8] {
            const ZERO: [u8; PAGE_SIZE] = [0u8; PAGE_SIZE];
            match page {
                Page::Zero => &ZERO[..],
                Page::Data(buf) => &buf[..PAGE_SIZE],
            }
        }
        let mut chunks = std::collections::BTreeSet::new();
        for (a, b) in self.regions.iter().zip(&baseline.regions) {
            assert_eq!((a.start, a.len), (b.start, b.len), "memory layouts differ");
            for (p, (pa, pb)) in a.pages.iter().zip(&b.pages).enumerate() {
                if pa.same_backing(pb) {
                    continue;
                }
                let page_base = p * PAGE_SIZE;
                let mapped = a.len.saturating_sub(page_base).min(PAGE_SIZE);
                let (da, db) = (visible(pa), visible(pb));
                let mut i = 0;
                while i < mapped {
                    if da[i] == db[i] {
                        i += 1;
                        continue;
                    }
                    let addr = a.start + (page_base + i) as u64;
                    let chunk = addr / page_size as u64;
                    chunks.insert(chunk);
                    // The whole chunk is retained either way; skip to
                    // its end.
                    let chunk_end = (chunk + 1) * page_size as u64;
                    i = ((chunk_end - a.start) as usize - page_base).clamp(i + 1, mapped);
                }
            }
        }
        chunks.len() as u64 * page_size as u64
    }

    /// Page-identity divergence from `baseline` (see [`MemoryDelta`]).
    /// Both memories must come from the same executable.
    pub fn delta(&self, baseline: &Memory) -> MemoryDelta {
        assert_eq!(self.regions.len(), baseline.regions.len(), "memory layouts differ");
        let mut delta = MemoryDelta::default();
        for (a, b) in self.regions.iter().zip(&baseline.regions) {
            assert_eq!((a.start, a.len), (b.start, b.len), "memory layouts differ");
            let dirty =
                a.pages.iter().zip(&b.pages).filter(|(pa, pb)| !pa.same_backing(pb)).count() as u64;
            if dirty > 0 {
                delta.pages += dirty;
                delta.regions += 1;
                delta.region_bytes += a.len as u64;
            }
        }
        delta.bytes = delta.pages * PAGE_SIZE as u64;
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_obj::{SectionKind, Segment};

    fn demo_memory() -> Memory {
        let exe = Executable {
            segments: vec![
                Segment {
                    addr: 0x1000,
                    data: vec![0x01, 0x02],
                    mem_size: 2,
                    perms: SegmentPerms::RX,
                    section: SectionKind::Text,
                },
                Segment {
                    addr: 0x2000,
                    data: vec![0xAA; 4],
                    mem_size: 16,
                    perms: SegmentPerms::RW,
                    section: SectionKind::Data,
                },
            ],
            entry: 0x1000,
            symbols: vec![],
        };
        Memory::for_executable(&exe)
    }

    /// A RW region spanning several pages, for boundary tests.
    fn paged_memory() -> Memory {
        let mut data = vec![0u8; 2 * PAGE_SIZE];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let exe = Executable {
            segments: vec![Segment {
                addr: 0x10000,
                data,
                mem_size: (3 * PAGE_SIZE + 100) as u64,
                perms: SegmentPerms::RW,
                section: SectionKind::Data,
            }],
            entry: 0x10000,
            symbols: vec![],
        };
        Memory::for_executable(&exe)
    }

    #[test]
    fn zero_extension_of_segments() {
        let mem = demo_memory();
        assert_eq!(mem.read_u8(0x2003).unwrap(), 0xAA);
        assert_eq!(mem.read_u8(0x2004).unwrap(), 0); // zero tail
        assert_eq!(mem.read_u8(0x200F).unwrap(), 0);
        assert!(mem.read_u8(0x2010).is_err());
    }

    #[test]
    fn permissions_enforced() {
        let mut mem = demo_memory();
        // Writing code faults (W^X).
        assert_eq!(mem.write_u8(0x1000, 0), Err((0x1000, AccessKind::Write)));
        // Executing data faults.
        assert_eq!(mem.fetch(0x2000, 4).unwrap_err(), (0x2000, AccessKind::Execute));
        // Reading code is allowed.
        assert_eq!(mem.read_u8(0x1000).unwrap(), 0x01);
        // Writing data is allowed.
        mem.write_u64(0x2000, 7).unwrap();
        assert_eq!(mem.read_u64(0x2000).unwrap(), 7);
    }

    #[test]
    fn word_access_must_fit_one_region() {
        let mem = demo_memory();
        // 8-byte read straddling the end of the data region fails.
        assert!(mem.read_u64(0x2008).is_ok());
        assert!(mem.read_u64(0x2009).is_err());
    }

    #[test]
    fn stack_is_mapped_rw() {
        let mut mem = demo_memory();
        let sp = STACK_TOP - 8;
        mem.write_u64(sp, 0xFEED).unwrap();
        assert_eq!(mem.read_u64(sp).unwrap(), 0xFEED);
        // Just below the stack is unmapped (stack overflow detection).
        assert!(mem.write_u64(STACK_TOP - STACK_SIZE - 8, 1).is_err());
    }

    #[test]
    fn fetch_truncates_at_region_end() {
        let mem = demo_memory();
        assert_eq!(mem.fetch(0x1001, 10).unwrap(), &[0x02]);
        assert!(mem.fetch(0x0, 1).is_err());
    }

    #[test]
    fn untouched_stack_stays_on_the_zero_page() {
        let mem = demo_memory();
        let stats = mem.stats();
        let stack_pages = (STACK_SIZE as usize / PAGE_SIZE) as u64;
        assert!(stats.zero_pages >= stack_pages, "{stats:?}");
        // The demo segments fit two materialized pages at most.
        assert!(stats.resident_pages <= 2, "{stats:?}");
        assert_eq!(stats.resident_bytes, stats.resident_pages * PAGE_SIZE as u64);
        assert_eq!(stats.total_pages, stats.zero_pages + stats.resident_pages);
    }

    #[test]
    fn clones_share_until_written() {
        let mut mem = demo_memory();
        let snapshot = mem.clone();
        // All pages are shared right after the clone.
        assert!(mem.delta(&snapshot).is_empty());
        // Writing the data region unshares exactly one 4 KiB page of it.
        mem.write_u64(0x2000, 0xDEAD_BEEF).unwrap();
        let delta = mem.delta(&snapshot);
        assert_eq!(delta.pages, 1);
        assert_eq!(delta.bytes, PAGE_SIZE as u64);
        assert_eq!(delta.regions, 1);
        assert_eq!(delta.region_bytes, 16, "region-COW would retain the whole region");
        // The snapshot still sees the pre-write value.
        assert_eq!(snapshot.read_u64(0x2000).unwrap(), 0xAAAA_AAAA);
        assert_eq!(mem.read_u64(0x2000).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn stack_write_dirties_one_page_not_the_region() {
        let mut mem = demo_memory();
        let snapshot = mem.clone();
        mem.write_u64(STACK_TOP - 8, 0xFEED).unwrap();
        let delta = mem.delta(&snapshot);
        assert_eq!(delta.pages, 1, "one page of the 1 MiB stack");
        assert_eq!(delta.region_bytes, STACK_SIZE, "region-COW would retain the whole stack");
        assert!(delta.bytes * 10 <= delta.region_bytes);
    }

    #[test]
    fn poke_also_unshares() {
        let mut mem = demo_memory();
        let snapshot = mem.clone();
        assert!(mem.poke(0x1000, &[0x55]));
        assert_eq!(snapshot.peek(0x1000, 1).unwrap(), &[0x01]);
        assert_eq!(mem.peek(0x1000, 1).unwrap(), &[0x55]);
        assert_eq!(mem.delta(&snapshot).pages, 1);
    }

    #[test]
    fn poke_ignores_permissions() {
        let mut mem = demo_memory();
        assert!(mem.poke(0x1000, &[0xFF]));
        assert_eq!(mem.peek(0x1000, 1).unwrap(), &[0xFF]);
        // Out-of-bounds poke reports failure.
        assert!(!mem.poke(0x1001, &[0, 0]));
        assert!(!mem.poke(0x9999_0000, &[1]));
    }

    #[test]
    fn exec_dirty_tracks_code_overwrites_and_rewinds_with_clones() {
        let mut mem = demo_memory();
        assert!(!mem.exec_dirty_intersects(0x1000, 0x1002));
        assert_eq!(mem.exec_dirty_epoch(), 0);
        let clean = mem.clone();
        // Data writes don't touch the exec-dirty list.
        mem.write_u64(0x2000, 7).unwrap();
        assert_eq!(mem.exec_dirty_epoch(), 0);
        // A poke into the text region records the range.
        assert!(mem.poke(0x1001, &[0x55]));
        assert_eq!(mem.exec_dirty_epoch(), 1);
        assert!(mem.exec_dirty_intersects(0x1000, 0x1002));
        assert!(mem.exec_dirty_intersects(0x1001, 0x1002));
        assert!(!mem.exec_dirty_intersects(0x1002, 0x1010));
        // Pokes into data regions don't.
        assert!(mem.poke(0x2000, &[0xFF]));
        assert_eq!(mem.exec_dirty_epoch(), 1);
        // The clone taken before the poke is still clean — restoring a
        // snapshot rewinds the dirty list together with the bytes.
        assert!(!clean.exec_dirty_intersects(0x1000, 0x1002));
        // Failed pokes record nothing.
        assert!(!mem.poke(0x9999_0000, &[1]));
        assert_eq!(mem.exec_dirty_epoch(), 1);
    }

    #[test]
    fn retained_bytes_resample_to_hypothetical_page_sizes() {
        let mut mem = paged_memory();
        let baseline = mem.clone();
        let base = 0x10000u64;
        // Two dirty bytes in the same 4 KiB page but different 1 KiB
        // subpages, plus one in the next 4 KiB page.
        mem.write_u8(base + 5, 0x99).unwrap();
        mem.write_u8(base + 2000, 0x99).unwrap();
        mem.write_u8(base + PAGE_SIZE as u64 + 1, 0x99).unwrap();
        assert_eq!(mem.retained_bytes_at(&baseline, 1024), 3 * 1024);
        assert_eq!(mem.retained_bytes_at(&baseline, PAGE_SIZE), 2 * PAGE_SIZE as u64);
        // Both dirty 4 KiB pages share one 8 KiB superpage (region base
        // is aligned).
        assert_eq!(mem.retained_bytes_at(&baseline, 2 * PAGE_SIZE), 2 * PAGE_SIZE as u64);
        // Coverage is monotone in the page size on the aligned grid.
        let sweep: Vec<u64> = [1024usize, 2048, 4096, 8192, 16384]
            .iter()
            .map(|&p| mem.retained_bytes_at(&baseline, p))
            .collect();
        assert!(sweep.windows(2).all(|w| w[0] <= w[1]), "{sweep:?}");
        // A byte-identical rewrite copies the page (delta counts it) but
        // retains nothing by byte diffing.
        let mut same = baseline.clone();
        let original = same.read_u8(base + 5).unwrap();
        same.write_u8(base + 5, original).unwrap();
        assert!(same.delta(&baseline).bytes > 0);
        assert_eq!(same.retained_bytes_at(&baseline, PAGE_SIZE), 0);
    }

    #[test]
    fn reads_straddling_a_page_boundary_are_contiguous() {
        let mem = paged_memory();
        let base = 0x10000u64;
        for back in 1..8u64 {
            let addr = base + PAGE_SIZE as u64 - back;
            let word = mem.read_u64(addr).unwrap();
            let mut expected = [0u8; 8];
            for (i, b) in expected.iter_mut().enumerate() {
                let off = (PAGE_SIZE as u64 - back) as usize + i;
                *b = if off < 2 * PAGE_SIZE { (off % 251) as u8 } else { 0 };
            }
            assert_eq!(word, u64::from_le_bytes(expected), "straddle at -{back}");
        }
        // The full straddle window is readable from the last byte of a page.
        assert!(mem.peek(base + PAGE_SIZE as u64 - 1, STRADDLE_TAIL).is_some());
    }

    #[test]
    fn writes_straddling_a_page_boundary_stay_coherent() {
        let mut mem = paged_memory();
        let base = 0x10000u64;
        // Write across the page-1/page-2 boundary, then read it back both
        // through the straddling view and byte-by-byte.
        let addr = base + 2 * PAGE_SIZE as u64 - 3;
        mem.write_u64(addr, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(mem.read_u64(addr).unwrap(), 0x1122_3344_5566_7788);
        for (i, expected) in 0x1122_3344_5566_7788u64.to_le_bytes().iter().enumerate() {
            assert_eq!(mem.read_u8(addr + i as u64).unwrap(), *expected, "byte {i}");
        }
        // The mirror means a later single-byte write at a page start is
        // visible through reads from the previous page's window.
        mem.write_u8(base + 2 * PAGE_SIZE as u64, 0x99).unwrap();
        assert_eq!(mem.read_u64(addr).unwrap() >> 24 & 0xFF, 0x99);
    }

    #[test]
    fn pokes_straddling_pages_match_writes() {
        let mut mem = paged_memory();
        let base = 0x10000u64;
        let addr = base + PAGE_SIZE as u64 - 2;
        assert!(mem.poke(addr, &[1, 2, 3, 4, 5]));
        assert_eq!(mem.peek(addr, 5).unwrap(), &[1, 2, 3, 4, 5]);
        // A poke crossing the region end fails without partial effects on
        // the out-of-range side.
        let end = base + (3 * PAGE_SIZE + 100) as u64;
        assert!(!mem.poke(end - 2, &[9, 9, 9]));
    }

    #[test]
    fn zero_writes_do_not_materialize_zero_pages() {
        let mut mem = paged_memory();
        let before = mem.stats();
        // Page 2 (mem_size tail) is a zero page; writing zeros keeps it so.
        mem.write_u64(0x10000 + 2 * PAGE_SIZE as u64 + 512, 0).unwrap();
        assert_eq!(mem.stats(), before);
        // Writing a nonzero value materializes exactly one page.
        mem.write_u64(0x10000 + 2 * PAGE_SIZE as u64 + 512, 7).unwrap();
        assert_eq!(mem.stats().resident_pages, before.resident_pages + 1);
    }

    #[test]
    fn read_bytes_gathers_across_pages() {
        let mem = paged_memory();
        let base = 0x10000u64;
        let all = mem.read_bytes(base, 2 * PAGE_SIZE + 32).unwrap();
        assert_eq!(all.len(), 2 * PAGE_SIZE + 32);
        for (i, b) in all.iter().enumerate() {
            let expected = if i < 2 * PAGE_SIZE { (i % 251) as u8 } else { 0 };
            assert_eq!(*b, expected, "byte {i}");
        }
        // Out-of-range gathers fail like peeks.
        assert!(mem.read_bytes(base, 4 * PAGE_SIZE).is_none());
        assert!(mem.read_bytes(0x9999_0000, 1).is_none());
    }
}
