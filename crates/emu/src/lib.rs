//! # rr-emu — the RRVM emulator
//!
//! An instruction-accurate interpreter for linked [`rr_obj::Executable`]s.
//! It plays the role Qiling/Unicorn play in the paper: the substrate the
//! *faulter* drives to (1) record execution traces and (2) observe how the
//! program behaves after a fault — normal exit, wrong output, or one of the
//! crash outcomes in [`CpuFault`].
//!
//! Design points relevant to fault injection:
//!
//! * **Physical access** — [`Machine::poke_bytes`] writes memory ignoring
//!   permissions, modelling a hardware glitch that flips bits in the
//!   instruction stream (the "single bit flip" fault model).
//! * **Skip** — [`Machine::skip_instruction`] advances the program counter
//!   over the current instruction (the "instruction skip" fault model).
//! * **Crash taxonomy** — decode errors, permission violations, unmapped
//!   accesses, division by zero and runaway execution are all distinct
//!   outcomes, because campaigns classify faults by them.
//!
//! ## Execution tiers
//!
//! Three tiers share one observable behaviour. [`Machine::run`] is the
//! instruction-at-a-time interpreter. [`Machine::run_blocks`] executes
//! pre-decoded superblocks from a [`BlockCache`], removing fetch/decode
//! from the hot path. [`Machine::run_uops`] additionally compiles blocks
//! that cross [`UopConfig::hot_threshold`] into flat micro-op traces with
//! pre-extracted operands and lazy NZCV materialization — flags are
//! recomputed only when a consumer or a block exit reads them, so
//! architectural state is exact at every observable point. All three are
//! bit-identical; the uop tier is the default for replay campaigns.
//!
//! ## Program I/O
//!
//! Programs talk to the runtime through `svc`:
//!
//! | `svc n` | service                                            |
//! |---------|----------------------------------------------------|
//! | 0       | exit with code in `r1`                             |
//! | 1       | write low byte of `r1` to the output stream        |
//! | 2       | read one input byte into `r0` (`u64::MAX` on EOF)  |
//! | 3       | write `r1` to output as decimal text               |
//!
//! ## Example
//!
//! ```
//! use rr_asm::assemble_and_link;
//! use rr_emu::{Machine, RunOutcome};
//!
//! let exe = assemble_and_link(
//!     "    .global _start\n_start:\n    mov r1, 41\n    add r1, 1\n    svc 0\n",
//! )?;
//! let mut m = Machine::new(&exe, &[]);
//! let result = m.run(1_000);
//! assert_eq!(result.outcome, RunOutcome::Exited { code: 42 });
//! # Ok::<(), rr_asm::BuildError>(())
//! ```

#![forbid(unsafe_code)]

mod blockexec;
mod machine;
mod memory;
mod outcome;
mod uop;
mod uopopt;

pub use blockexec::{BlockCache, BlockStats};
pub use machine::{Machine, RunResult, Snapshot, DEFAULT_MAX_STEPS};
pub use memory::{
    AccessKind, MemResult, Memory, MemoryDelta, MemoryStats, PAGE_SIZE, STRADDLE_TAIL,
};
pub use outcome::{CpuFault, Execution, RunOutcome};
pub use uop::lower_block_to_ir;
pub use uop::{OptLevel, UopConfig};

use rr_obj::Executable;

/// Runs `exe` to completion on `input` and captures everything a behaviour
/// oracle needs: outcome, output bytes, and step count.
///
/// This is the one-shot convenience used throughout the fault campaigns;
/// construct a [`Machine`] directly when you need stepping or tracing.
///
/// # Example
///
/// ```
/// use rr_asm::assemble_and_link;
/// use rr_emu::{execute, RunOutcome};
///
/// let exe = assemble_and_link(
///     "    .global _start\n_start:\n    svc 2\n    mov r1, r0\n    svc 1\n    mov r1, 0\n    svc 0\n",
/// )?;
/// let exec = execute(&exe, b"X", 1_000);
/// assert_eq!(exec.outcome, RunOutcome::Exited { code: 0 });
/// assert_eq!(exec.output, b"X");
/// # Ok::<(), rr_asm::BuildError>(())
/// ```
pub fn execute(exe: &Executable, input: &[u8], max_steps: u64) -> Execution {
    let mut machine = Machine::new(exe, input);
    let result = machine.run(max_steps);
    Execution { outcome: result.outcome, output: machine.take_output(), steps: result.steps }
}

/// Like [`execute`], but also records the program counter of every executed
/// instruction — the *trace* the faulter enumerates fault sites from.
pub fn execute_traced(exe: &Executable, input: &[u8], max_steps: u64) -> (Execution, Vec<u64>) {
    let mut machine = Machine::new(exe, input);
    let mut trace = Vec::new();
    let result = machine.run_with(max_steps, |m| trace.push(m.pc()));
    (
        Execution { outcome: result.outcome, output: machine.take_output(), steps: result.steps },
        trace,
    )
}
