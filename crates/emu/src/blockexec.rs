//! Block-cached execution: basic blocks pre-decoded once, executed
//! without per-step fetch/decode.
//!
//! [`Machine::step`] pays a code fetch against the COW page tables and a
//! decode on every instruction, even though replay campaigns execute the
//! same (unchanging) text millions of times. A [`BlockCache`] decodes
//! the executable's text into straight-line superblocks *once*;
//! [`Machine::run_blocks`] then executes whole cached block bodies via
//! the pre-decoded instructions and touches memory only for data.
//!
//! Soundness is by construction, not by trust:
//!
//! * cached instructions come from the **same bytes and the same
//!   decoder** ([`rr_isa::decode`] over the executable's text) the
//!   interpreter would use;
//! * after every cached instruction the machine's PC is compared against
//!   the block's recorded next address — *any* control transfer (taken
//!   branch, call, fault, mid-block `svc` exit) leaves the block body
//!   and re-enters through the cache lookup, so blocks need no
//!   terminator special-casing;
//! * blocks overlapping an exec-dirty range
//!   ([`Memory::exec_dirty_intersects`](crate::Memory::exec_dirty_intersects))
//!   — code a fault injection poked — fall back to the interpreter, and
//!   a write that dirties text *mid-block* (a self-modifying store to a
//!   write+exec mapping) is caught by the per-step epoch check;
//! * step budgets are exact: the fence is checked before every cached
//!   instruction, so a fence landing mid-block stops precisely there.
//!
//! The result is bit-identical to stepping the interpreter — pinned by
//! the equivalence tests here and the engine/fault proptests upstream.

use crate::machine::{Machine, RunResult};
use crate::outcome::RunOutcome;
use crate::uop::CompiledBlock;
use rr_isa::{decode, Instr};
use rr_obj::Executable;
use std::collections::BTreeSet;
use std::ops::Range;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

/// How a [`Machine::run_blocks`] / [`Machine::run_uops`] call split its
/// work between the execution tiers. Accumulate across calls and feed
/// the totals to telemetry in one batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Instructions executed from pre-decoded block bodies.
    pub block_steps: u64,
    /// Instructions executed by the plain interpreter (cache miss,
    /// exec-dirty fallback, or control flow outside the text).
    pub interp_steps: u64,
    /// Instructions executed from compiled micro-op bodies (the uop
    /// tier, [`Machine::run_uops`]).
    pub uop_steps: u64,
    /// Superblocks lowered to micro-op bodies by this call.
    pub blocks_compiled: u64,
    /// Blocks whose execution count crossed the hot threshold here,
    /// promoting them to the uop tier.
    pub tier_promotions: u64,
    /// Times the uop tier materialized the NZCV flags from a deferred
    /// flag-setting operation (consumer reads and block exits).
    pub flag_materializations: u64,
    /// Compiled superblocks for which the `rr-ir` optimization stage
    /// produced an improved trace (counted once, at compile time).
    pub blocks_optimized: u64,
    /// Uop slots the optimization stage replaced with a cheaper form,
    /// summed over freshly optimized blocks.
    pub uops_eliminated: u64,
    /// Redundant loads the optimization stage removed (forwarded from
    /// an earlier load or store of the same address).
    pub loads_forwarded: u64,
    /// Provably dead NZCV definitions the optimization stage dropped.
    pub flag_defs_killed: u64,
}

impl BlockStats {
    /// Total instructions executed under this accounting.
    pub fn total(&self) -> u64 {
        self.block_steps + self.interp_steps + self.uop_steps
    }
}

/// One pre-decoded straight-line run of instructions.
#[derive(Debug)]
pub(crate) struct DecodedBlock {
    /// Address of the first instruction.
    pub(crate) start: u64,
    /// One past the last encoded byte (the exec-dirty probe range).
    pub(crate) end: u64,
    /// Instruction addresses, parallel to `body`.
    pub(crate) pcs: Vec<u64>,
    /// Pre-decoded instructions with their encoded lengths.
    pub(crate) body: Vec<(Instr, u8)>,
    /// Executions of this block observed by the uop tier, driving hot
    /// promotion (`UopConfig::hot_threshold`). Atomic so worker threads
    /// sharing the cache behind an `Arc` can tier concurrently.
    pub(crate) heat: AtomicU32,
    /// The compiled micro-op body, produced once on crossing the hot
    /// threshold and shared by every subsequent execution.
    pub(crate) compiled: OnceLock<CompiledBlock>,
}

impl Clone for DecodedBlock {
    fn clone(&self) -> DecodedBlock {
        DecodedBlock {
            start: self.start,
            end: self.end,
            pcs: self.pcs.clone(),
            body: self.body.clone(),
            heat: AtomicU32::new(self.heat.load(Ordering::Relaxed)),
            compiled: self.compiled.clone(),
        }
    }
}

/// Pre-decoded superblocks over an executable's text, built once per
/// session and shared (behind an `Arc`) by every replay that executes
/// the same binary.
///
/// # Example
///
/// ```
/// use rr_asm::assemble_and_link;
/// use rr_emu::{BlockCache, BlockStats, Machine, RunOutcome};
///
/// let exe = assemble_and_link(
///     "    .global _start\n_start:\n    mov r1, 41\n    add r1, 1\n    svc 0\n",
/// )?;
/// let cache = BlockCache::build(&exe, [exe.entry]).expect("text decodes");
/// let mut m = Machine::new(&exe, &[]);
/// let mut stats = BlockStats::default();
/// let result = m.run_blocks(&cache, 1_000, &mut stats);
/// assert_eq!(result.outcome, RunOutcome::Exited { code: 42 });
/// assert_eq!(stats.block_steps, 3);
/// assert_eq!(stats.interp_steps, 0);
/// # Ok::<(), rr_asm::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BlockCache {
    /// Start address of the decoded text.
    text_start: u64,
    /// The text bytes the blocks were decoded from — callers compare
    /// against a rebuilt binary's text to decide whether the cache can
    /// be carried across a rewrite verbatim.
    text: Vec<u8>,
    blocks: Vec<DecodedBlock>,
    /// Per text byte: index into `blocks` when the byte starts an
    /// instruction of a decoded block, else `u32::MAX`.
    block_of: Vec<u32>,
    /// Parallel to `block_of`: the instruction's index within its block.
    instr_of: Vec<u32>,
}

impl BlockCache {
    /// Decodes the text of `exe` into superblocks starting at `leaders`
    /// (block entry addresses — typically the CFG's basic-block starts;
    /// addresses outside the text are ignored). Each block extends until
    /// a block-terminating instruction, the next leader, or the end of
    /// text. Undecodable leader runs are skipped (those addresses fall
    /// back to the interpreter); returns `None` when nothing decodes.
    ///
    /// Entering a block *mid-body* is supported: every decoded
    /// instruction start is indexed, so a branch target inside a
    /// superblock executes the cached tail from that point.
    pub fn build(exe: &Executable, leaders: impl IntoIterator<Item = u64>) -> Option<BlockCache> {
        let text_start = exe.text_range().start;
        let text = exe.text_bytes().to_vec();
        let text_end = text_start + text.len() as u64;
        let sorted: BTreeSet<u64> =
            leaders.into_iter().filter(|&a| a >= text_start && a < text_end).collect();
        let mut blocks = Vec::new();
        let mut block_of = vec![u32::MAX; text.len()];
        let mut instr_of = vec![u32::MAX; text.len()];
        let mut iter = sorted.iter().peekable();
        while let Some(&leader) = iter.next() {
            let limit = iter.peek().map_or(text_end, |&&next| next);
            let mut pc = leader;
            let mut pcs = Vec::new();
            let mut body = Vec::new();
            while pc < limit {
                let off = (pc - text_start) as usize;
                let Ok((insn, len)) = decode(&text[off..]) else { break };
                pcs.push(pc);
                body.push((insn, len as u8));
                pc += len as u64;
                if insn.is_block_terminator() {
                    break;
                }
            }
            if body.is_empty() {
                continue;
            }
            let index = u32::try_from(blocks.len()).ok()?;
            for (i, &ipc) in pcs.iter().enumerate() {
                block_of[(ipc - text_start) as usize] = index;
                instr_of[(ipc - text_start) as usize] = i as u32;
            }
            blocks.push(DecodedBlock {
                start: leader,
                end: pc,
                pcs,
                body,
                heat: AtomicU32::new(0),
                compiled: OnceLock::new(),
            });
        }
        if blocks.is_empty() {
            return None;
        }
        Some(BlockCache { text_start, text, blocks, block_of, instr_of })
    }

    /// Number of decoded superblocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total pre-decoded instructions across all blocks.
    pub fn decoded_instrs(&self) -> u64 {
        self.blocks.iter().map(|b| b.body.len() as u64).sum()
    }

    /// Start address of the decoded text.
    pub fn text_start(&self) -> u64 {
        self.text_start
    }

    /// The exact text bytes the blocks were decoded from.
    pub fn text_bytes(&self) -> &[u8] {
        &self.text
    }

    /// Byte ranges of the decoded blocks (for invalidation accounting
    /// against a rewrite's listing delta).
    pub fn block_ranges(&self) -> impl Iterator<Item = Range<u64>> + '_ {
        self.blocks.iter().map(|b| b.start..b.end)
    }

    /// The block containing an instruction that starts at `pc`, and the
    /// instruction's index within it.
    pub(crate) fn lookup(&self, pc: u64) -> Option<(&DecodedBlock, usize)> {
        let off = usize::try_from(pc.checked_sub(self.text_start)?).ok()?;
        let block = *self.block_of.get(off)?;
        if block == u32::MAX {
            return None;
        }
        Some((&self.blocks[block as usize], self.instr_of[off] as usize))
    }
}

impl Machine {
    /// Runs like [`Machine::run`] but executes pre-decoded block bodies
    /// from `cache` wherever the current PC hits a cached, unmodified
    /// block, falling back to the interpreter everywhere else.
    /// Bit-identical to [`Machine::run`]: same outcome, same step count,
    /// same final state.
    pub fn run_blocks(
        &mut self,
        cache: &BlockCache,
        max_steps: u64,
        stats: &mut BlockStats,
    ) -> RunResult {
        self.run_blocks_inner(cache, max_steps, stats, None)
    }

    /// [`Machine::run_blocks`] recording the PC of every executed
    /// instruction into `trace` — the block-cached counterpart of
    /// [`Machine::run_with`] with a trace-pushing callback.
    pub fn run_blocks_traced(
        &mut self,
        cache: &BlockCache,
        max_steps: u64,
        stats: &mut BlockStats,
        trace: &mut Vec<u64>,
    ) -> RunResult {
        self.run_blocks_inner(cache, max_steps, stats, Some(trace))
    }

    fn run_blocks_inner(
        &mut self,
        cache: &BlockCache,
        max_steps: u64,
        stats: &mut BlockStats,
        mut trace: Option<&mut Vec<u64>>,
    ) -> RunResult {
        let mut steps = 0u64;
        while steps < max_steps {
            if let Some(outcome) = self.stopped() {
                return RunResult { outcome, steps };
            }
            match cache.lookup(self.pc()) {
                Some((block, entry))
                    if !self.memory().exec_dirty_intersects(block.start, block.end) =>
                {
                    self.run_decoded_body(block, entry, max_steps, &mut steps, stats, &mut trace);
                }
                _ => {
                    if let Some(trace) = trace.as_deref_mut() {
                        trace.push(self.pc());
                    }
                    let _ = self.step();
                    steps += 1;
                    stats.interp_steps += 1;
                }
            }
        }
        match self.stopped() {
            Some(outcome) => RunResult { outcome, steps },
            None => RunResult { outcome: RunOutcome::TimedOut, steps },
        }
    }

    /// Executes one pre-decoded block body precisely (the blocks tier's
    /// inner loop), starting at instruction `entry`, until a fault, stop,
    /// fence, exec-dirty write into the block, or control transfer out of
    /// it. Shared with the uop tier, whose cold blocks run here until
    /// they cross the hot threshold.
    pub(crate) fn run_decoded_body(
        &mut self,
        block: &DecodedBlock,
        entry: usize,
        max_steps: u64,
        steps: &mut u64,
        stats: &mut BlockStats,
        trace: &mut Option<&mut Vec<u64>>,
    ) {
        let mut index = entry;
        let mut epoch = self.memory().exec_dirty_epoch();
        loop {
            let (insn, len) = block.body[index];
            if let Some(trace) = trace.as_deref_mut() {
                trace.push(self.pc());
            }
            let result = self.step_decoded(insn, len as usize);
            *steps += 1;
            stats.block_steps += 1;
            if result.is_err() || self.stopped().is_some() || *steps >= max_steps {
                break;
            }
            let now = self.memory().exec_dirty_epoch();
            if now != epoch {
                // A store landed in executable memory: the cached
                // decodes may be stale; if the write hit elsewhere,
                // re-entry through the outer lookup resumes block
                // execution.
                epoch = now;
                if self.memory().exec_dirty_intersects(block.start, block.end) {
                    break;
                }
            }
            index += 1;
            if index >= block.body.len() || self.pc() != block.pcs[index] {
                // Fell off the block or control transferred (branch,
                // call, ret, corrupted pc) — resume through the cache
                // lookup.
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_asm::assemble_and_link;

    /// A small program with a loop, a call, branches, and output.
    const LOOPY: &str = "    .global _start\n\
         _start:\n\
             mov r2, 5\n\
         .loop:\n\
             mov r1, r2\n\
             call emit\n\
             sub r2, 1\n\
             cmp r2, 0\n\
             jne .loop\n\
             mov r1, 0\n\
             svc 0\n\
         emit:\n\
             add r1, '0'\n\
             svc 1\n\
             ret\n";

    fn cache_for(exe: &Executable) -> BlockCache {
        // Entry plus every byte offset as candidate leaders: offsets that
        // are not instruction starts simply fail to decode and are
        // skipped, instruction starts in the middle of real blocks are
        // legal extra leaders (blocks just get shorter).
        BlockCache::build(exe, [exe.entry]).expect("text decodes")
    }

    fn interp_reference(exe: &Executable, input: &[u8], max_steps: u64) -> (RunResult, Machine) {
        let mut m = Machine::new(exe, input);
        let r = m.run(max_steps);
        (r, m)
    }

    #[test]
    fn block_execution_matches_interpreter_exactly() {
        let exe = assemble_and_link(LOOPY).unwrap();
        let (reference, mut ref_machine) = interp_reference(&exe, &[], 10_000);

        let cache = cache_for(&exe);
        let mut m = Machine::new(&exe, &[]);
        let mut stats = BlockStats::default();
        let result = m.run_blocks(&cache, 10_000, &mut stats);

        assert_eq!(result, reference);
        assert_eq!(m.pc(), ref_machine.pc());
        assert_eq!(m.flags(), ref_machine.flags());
        assert_eq!(m.take_output(), ref_machine.take_output());
        assert_eq!(m.memory_stats(), ref_machine.memory_stats());
        assert_eq!(stats.total(), result.steps);
        assert!(stats.block_steps > 0, "{stats:?}");
    }

    #[test]
    fn fences_landing_mid_block_are_precise() {
        let exe = assemble_and_link(LOOPY).unwrap();
        let total = interp_reference(&exe, &[], 10_000).0.steps;
        let cache = cache_for(&exe);
        for fence in 0..=total + 2 {
            let (reference, ref_machine) = interp_reference(&exe, &[], fence);
            let mut m = Machine::new(&exe, &[]);
            let mut stats = BlockStats::default();
            let result = m.run_blocks(&cache, fence, &mut stats);
            assert_eq!(result, reference, "fence={fence}");
            assert_eq!(m.pc(), ref_machine.pc(), "fence={fence}");
            assert_eq!(m.output(), ref_machine.output(), "fence={fence}");
            assert_eq!(stats.total(), result.steps, "fence={fence}");
        }
    }

    #[test]
    fn traced_block_run_matches_interpreter_trace() {
        let exe = assemble_and_link(LOOPY).unwrap();
        let mut ref_trace = Vec::new();
        let mut ref_machine = Machine::new(&exe, &[]);
        let reference = ref_machine.run_with(10_000, |m| ref_trace.push(m.pc()));

        let cache = cache_for(&exe);
        let mut m = Machine::new(&exe, &[]);
        let mut stats = BlockStats::default();
        let mut trace = Vec::new();
        let result = m.run_blocks_traced(&cache, 10_000, &mut stats, &mut trace);
        assert_eq!(result, reference);
        assert_eq!(trace, ref_trace);
    }

    #[test]
    fn poked_code_falls_back_to_the_interpreter() {
        let exe = assemble_and_link(LOOPY).unwrap();
        let cache = cache_for(&exe);
        // Corrupt the `sub r2, 1` update the same way a bit-flip fault
        // model would, in both machines, and require identical behaviour.
        let mut reference = Machine::new(&exe, &[]);
        let mut blocked = Machine::new(&exe, &[]);
        let target = exe.entry;
        for m in [&mut reference, &mut blocked] {
            let byte = m.peek_bytes(target, 1).unwrap()[0];
            assert!(m.poke_bytes(target, &[byte ^ 0x40]));
        }
        let want = reference.run(10_000);
        let mut stats = BlockStats::default();
        let got = blocked.run_blocks(&cache, 10_000, &mut stats);
        assert_eq!(got, want);
        assert_eq!(blocked.take_output(), reference.take_output());
        assert!(stats.interp_steps > 0, "dirty block must interpret: {stats:?}");
    }

    #[test]
    fn control_flow_outside_the_cache_is_interpreted() {
        // Indirect jump into .data: the cache has no block there, and the
        // crash taxonomy must match the interpreter's.
        let src = "    .global _start\n\
             _start:\n\
                 mov r1, target\n\
                 jmpr r1\n\
                 .data\n\
             target:\n\
                 .quad 0\n";
        let exe = assemble_and_link(src).unwrap();
        let cache = cache_for(&exe);
        let (reference, _) = interp_reference(&exe, &[], 100);
        let mut m = Machine::new(&exe, &[]);
        let mut stats = BlockStats::default();
        let result = m.run_blocks(&cache, 100, &mut stats);
        assert_eq!(result, reference);
        assert!(stats.interp_steps > 0, "{stats:?}");
    }

    #[test]
    fn extra_and_bogus_leaders_do_not_change_semantics() {
        let exe = assemble_and_link(LOOPY).unwrap();
        let range = exe.text_range();
        // Every text byte as a leader: non-instruction offsets decode
        // garbage or fail, but execution must still be exact because
        // every executed instruction is PC-checked.
        let cache = BlockCache::build(&exe, range.clone().chain([exe.entry])).expect("builds");
        let (reference, _) = interp_reference(&exe, &[], 10_000);
        let mut m = Machine::new(&exe, &[]);
        let mut stats = BlockStats::default();
        assert_eq!(m.run_blocks(&cache, 10_000, &mut stats), reference);
        // Leaders entirely outside the text build nothing.
        assert!(BlockCache::build(&exe, [range.end + 0x1000]).is_none());
    }

    #[test]
    fn cache_metadata_reflects_the_decoded_text() {
        let exe = assemble_and_link(LOOPY).unwrap();
        let cache = cache_for(&exe);
        assert!(cache.block_count() >= 1);
        assert!(cache.decoded_instrs() >= 6);
        assert_eq!(cache.text_start(), exe.text_range().start);
        assert_eq!(cache.text_bytes(), exe.text_bytes());
        for range in cache.block_ranges() {
            assert!(range.start >= cache.text_start());
            assert!(range.end <= cache.text_start() + cache.text_bytes().len() as u64);
        }
    }
}
