//! Run outcomes and the crash taxonomy.

use crate::memory::AccessKind;
use rr_isa::DecodeError;
use std::fmt;

/// A machine-level fault that terminates execution.
///
/// This is the crash taxonomy fault-injection campaigns classify outcomes
/// with; anything here counts as "crashed" for the purpose of deciding
/// whether an injected fault was *successful* (it wasn't — crashes are
/// detectable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuFault {
    /// The bytes at the program counter do not decode (illegal instruction).
    IllegalInstruction(DecodeError),
    /// A data access violated the memory map.
    MemoryFault {
        /// The faulting address.
        addr: u64,
        /// What kind of access failed.
        access: AccessKind,
    },
    /// The program counter left executable memory.
    ExecFault {
        /// The faulting program counter.
        addr: u64,
    },
    /// `udiv` by zero.
    DivideByZero,
    /// `svc` with an unassigned service number.
    BadService(u8),
    /// `halt` executed (abnormal stop; normal exit is `svc 0`).
    Halted,
}

impl fmt::Display for CpuFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuFault::IllegalInstruction(e) => write!(f, "illegal instruction: {e}"),
            CpuFault::MemoryFault { addr, access } => {
                write!(f, "memory fault: {access} at {addr:#x}")
            }
            CpuFault::ExecFault { addr } => write!(f, "execution left mapped code at {addr:#x}"),
            CpuFault::DivideByZero => write!(f, "division by zero"),
            CpuFault::BadService(n) => write!(f, "unknown service {n}"),
            CpuFault::Halted => write!(f, "halt instruction executed"),
        }
    }
}

impl std::error::Error for CpuFault {}

/// How a bounded run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunOutcome {
    /// The program exited via `svc 0`.
    Exited {
        /// The exit code from `r1`.
        code: u64,
    },
    /// The machine faulted.
    Crashed {
        /// Why.
        fault: CpuFault,
        /// Program counter at the fault.
        pc: u64,
    },
    /// The step budget ran out (hang / infinite loop).
    TimedOut,
}

impl RunOutcome {
    /// Whether the program completed normally.
    pub fn is_exit(&self) -> bool {
        matches!(self, RunOutcome::Exited { .. })
    }

    /// Whether the run ended in a detectable failure (crash or timeout).
    pub fn is_failure(&self) -> bool {
        !self.is_exit()
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::Exited { code } => write!(f, "exited with code {code}"),
            RunOutcome::Crashed { fault, pc } => write!(f, "crashed at {pc:#x}: {fault}"),
            RunOutcome::TimedOut => write!(f, "timed out"),
        }
    }
}

/// The complete observable behaviour of one run: what oracles compare.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Execution {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Everything the program wrote.
    pub output: Vec<u8>,
    /// Instructions executed.
    pub steps: u64,
}

impl Execution {
    /// Whether two executions are behaviourally identical from an
    /// attacker-observable standpoint (outcome and output; step counts may
    /// differ, e.g. after patching).
    pub fn same_behavior(&self, other: &Execution) -> bool {
        self.outcome == other.outcome && self.output == other.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_classification() {
        assert!(RunOutcome::Exited { code: 0 }.is_exit());
        assert!(RunOutcome::TimedOut.is_failure());
        assert!(RunOutcome::Crashed { fault: CpuFault::DivideByZero, pc: 0 }.is_failure());
    }

    #[test]
    fn behaviour_ignores_steps() {
        let a = Execution {
            outcome: RunOutcome::Exited { code: 1 },
            output: b"ok".to_vec(),
            steps: 10,
        };
        let mut b = a.clone();
        b.steps = 99;
        assert!(a.same_behavior(&b));
        b.output = b"no".to_vec();
        assert!(!a.same_behavior(&b));
    }

    #[test]
    fn displays_are_informative() {
        let fault = CpuFault::MemoryFault { addr: 0x42, access: AccessKind::Write };
        assert!(fault.to_string().contains("0x42"));
        let outcome = RunOutcome::Crashed { fault, pc: 0x1000 };
        assert!(outcome.to_string().contains("0x1000"));
    }
}
