//! The uop compiler's optimization stage: `rr-ir` round trip.
//!
//! [`optimize`] lowers a decoded superblock to an `rr-ir` function (one
//! *slot* of arena values per instruction), runs the block pass
//! pipeline over it — constant folding, dead-code elimination,
//! redundant-load/store-to-load forwarding, dead-flag elimination, the
//! IR verifier checking the module after every pass — and maps the
//! optimized function back onto a flat uop trace through the
//! `rr-lower` [`plan_slots`] backend.
//!
//! ## Why the optimized trace stays safe
//!
//! Refinement is strictly slot-for-slot: the optimized body has the
//! same length, the same per-slot `pc`/`next`, and therefore the same
//! step accounting and instruction trace as the exact body. Every
//! refinement preserves the slot's register and memory effects exactly;
//! only *provably dead* flag updates are dropped. Dead-flag elimination
//! treats loads, stores, services, stack ops, and divisions — every op
//! that can fault or observe state — as barriers, and the block end as
//! an observer, so at each point an optimized body can exit (fault,
//! stop, exec-dirty break, fence at a pass boundary, fall-through) the
//! latest flag definition was retained and the materialized NZCV
//! matches the exact body bit-for-bit. Interior slots between barriers
//! may carry stale deferred flags, which is why the dispatch loop only
//! enters an optimized body when a whole pass fits under the step
//! fence (no mid-body fence can observe the interior).
//!
//! A load is only ever dropped when the pass pipeline proved the same
//! address was accessed earlier in the block (so re-accessing cannot
//! introduce *or* lose a fault), and store-to-load forwarding is
//! additionally gated on the machine's memory map making every
//! writable range readable ([`crate::Memory::writable_implies_readable`]).
//!
//! In debug builds every optimized lowering is differentially tested
//! against its exact form through the `rr-ir` interpreter (random cell
//! files, both branch directions observable) before it is accepted.

use crate::blockexec::DecodedBlock;
use crate::uop::{lower_decoded_slotted, Operand, Uop, UopEntry};
use rr_ir::passes::{ConstFold, DeadCodeElimination, DeadFlagElimination, LoadForwarding};
use rr_ir::{Module, PassManager};
use rr_isa::{AluOp, Reg};
use rr_lower::{plan_slots, ResolvedValue, SlotPlan};

/// What the optimization stage removed from one block (telemetry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct OptStats {
    /// Slots whose exact uop was replaced by a cheaper form (dropped
    /// outright, downgraded to a move, stripped of flag bookkeeping,
    /// or given a pre-resolved immediate/address).
    pub(crate) uops_eliminated: u64,
    /// Loads the pipeline proved redundant and the refined trace no
    /// longer issues.
    pub(crate) loads_forwarded: u64,
    /// Flag definitions dropped as provably dead.
    pub(crate) flag_defs_killed: u64,
}

/// Runs the `rr-ir` pipeline over `block` and refines `fallback` (the
/// exact uop trace) into a cheaper, slot-identical one. Returns `None`
/// when the block is outside the bridged subset, a pass reports a
/// verification error, or nothing improved.
pub(crate) fn optimize(
    block: &DecodedBlock,
    fallback: &[UopEntry],
    store_to_load: bool,
) -> Option<(Vec<UopEntry>, OptStats)> {
    let (f, starts) = lower_decoded_slotted(block)?;
    let mut module = Module::new();
    module.entry = f.name.clone();
    module.push_function(f);
    #[cfg(debug_assertions)]
    let pristine = module.clone();

    let mut pm = PassManager::new();
    pm.add(ConstFold);
    pm.add(DeadCodeElimination);
    pm.add(LoadForwarding { store_to_load });
    pm.add(DeadFlagElimination);
    pm.add(DeadCodeElimination);
    match pm.run(&mut module) {
        Ok(true) => {}
        // Nothing changed, or the verifier rejected a pass's output:
        // either way the exact body stands alone.
        Ok(false) | Err(_) => return None,
    }

    #[cfg(debug_assertions)]
    differential_check(&pristine, &module, block.start);

    let f = module.functions().first()?;
    let plans = plan_slots(f, &starts);
    let (opt, stats) = refine(fallback, &plans);
    if stats.uops_eliminated == 0 {
        return None;
    }
    Some((opt, stats))
}

/// Maps each slot's [`SlotPlan`] onto the cheapest uop that preserves
/// the slot's exact architectural effects.
fn refine(fallback: &[UopEntry], plans: &[SlotPlan]) -> (Vec<UopEntry>, OptStats) {
    let mut stats = OptStats::default();
    let mut out = Vec::with_capacity(fallback.len());
    for (i, e) in fallback.iter().enumerate() {
        // Slots past the plan table (tail terminators the bridge
        // returned early on) stay exact.
        let op = plans.get(i).map_or(e.op, |p| refine_op(e.op, p));
        if op != e.op {
            stats.uops_eliminated += 1;
            if sets_flags(e.op) && !sets_flags(op) {
                stats.flag_defs_killed += 1;
            }
            if is_load(e.op) && !touches_memory(op) {
                stats.loads_forwarded += 1;
            }
        }
        out.push(UopEntry { pc: e.pc, next: e.next, op });
    }
    (out, stats)
}

fn refine_op(op: Uop, p: &SlotPlan) -> Uop {
    // A slot the planner could not fully account for stays exact.
    if p.has_side_effects || p.multi_reg_write {
        return op;
    }
    let flags_dead = !p.writes_flags;
    match op {
        Uop::Alu { op: alu, rd, rhs } if alu != AluOp::Udiv && p.mem_ops == 0 => {
            let rhs = upgrade_rhs(rhs, p);
            if !flags_dead {
                return Uop::Alu { op: alu, rd, rhs };
            }
            reg_move(p, rd).unwrap_or(Uop::AluNF { op: alu, rd, rhs })
        }
        Uop::Shift { op: sh, rd, amt } if flags_dead => {
            reg_move(p, rd).unwrap_or(Uop::ShiftNF { op: sh, rd, amt })
        }
        Uop::Not { rd } | Uop::Neg { rd } if flags_dead => reg_move(p, rd).unwrap_or(op),
        Uop::Cmp { rs1, rhs } if p.mem_ops == 0 => {
            if flags_dead && p.reg_write.is_none() {
                Uop::Nop
            } else {
                Uop::Cmp { rs1, rhs: upgrade_rhs(rhs, p) }
            }
        }
        Uop::Test { .. } if flags_dead && p.reg_write.is_none() && p.mem_ops == 0 => Uop::Nop,
        // Fused compare-and-branch slots are never weakened beyond an
        // immediate upgrade: folding the comparison into the
        // terminator makes the slot *look* flag-dead, but the branch
        // itself still consumes the operands.
        Uop::CmpJcc { rs1, rhs, cc, target, jcc_next } => {
            Uop::CmpJcc { rs1, rhs: upgrade_rhs(rhs, p), cc, target, jcc_next }
        }
        Uop::MovRR { rd, .. } | Uop::Lea { rd, .. } if p.mem_ops == 0 => {
            reg_move(p, rd).unwrap_or(op)
        }
        Uop::Load { rd, base: _, disp: _ } => {
            if p.mem_ops == 0 {
                // The load was forwarded away. If the value is not
                // materializable from a constant or a live register,
                // re-issuing the (provably readable) load stays exact.
                reg_move(p, rd).unwrap_or(op)
            } else {
                match p.mem_addr {
                    Some(addr) => Uop::LoadA { rd, addr },
                    None => op,
                }
            }
        }
        Uop::LoadB { rd, .. } if p.mem_ops == 0 => reg_move(p, rd).unwrap_or(op),
        Uop::Store { base: _, disp: _, rs } => match p.mem_addr {
            Some(addr) => Uop::StoreA { addr, rs },
            None => op,
        },
        _ => op,
    }
}

/// The move that realizes a slot whose single register write resolved
/// to a constant or another register's live value — or `None` when the
/// plan disagrees with the exact lowering's destination (stay exact).
fn reg_move(p: &SlotPlan, rd: Reg) -> Option<Uop> {
    let w = p.reg_write.as_ref()?;
    if w.cell != rd.index() {
        return None;
    }
    match w.value {
        ResolvedValue::Const(imm) => Some(Uop::MovRI { rd, imm }),
        // The destination already holds the value: the write (and the
        // whole slot, its flags being dead) is a no-op.
        ResolvedValue::InCell(s) if s == rd.index() => Some(Uop::Nop),
        // Flag cells (16..) have no runtime register to copy from.
        ResolvedValue::InCell(s) if s < 16 => Some(Uop::MovRR { rd, rs: Reg::from_index(s) }),
        _ => None,
    }
}

/// Pre-resolves a register right-hand operand the pipeline proved
/// constant. `rhs_imm` comes from the slot's own binary op, so the
/// value is exactly what the register holds when the slot executes.
fn upgrade_rhs(rhs: Operand, p: &SlotPlan) -> Operand {
    match (rhs, p.rhs_imm) {
        (Operand::Reg(_), Some(imm)) => Operand::Imm(imm),
        _ => rhs,
    }
}

fn sets_flags(op: Uop) -> bool {
    matches!(
        op,
        Uop::Alu { .. }
            | Uop::Shift { .. }
            | Uop::Not { .. }
            | Uop::Neg { .. }
            | Uop::Cmp { .. }
            | Uop::CmpM { .. }
            | Uop::Test { .. }
    )
}

fn is_load(op: Uop) -> bool {
    matches!(op, Uop::Load { .. } | Uop::LoadB { .. } | Uop::LoadA { .. })
}

fn touches_memory(op: Uop) -> bool {
    matches!(
        op,
        Uop::Load { .. }
            | Uop::LoadB { .. }
            | Uop::LoadA { .. }
            | Uop::Store { .. }
            | Uop::StoreB { .. }
            | Uop::StoreA { .. }
            | Uop::CmpM { .. }
            | Uop::Push { .. }
            | Uop::Pop { .. }
            | Uop::PushF
            | Uop::PopF
    )
}

/// Debug-build differential check: the optimized IR must be
/// observationally identical to the exact lowering under the `rr-ir`
/// interpreter — same outcome, same output bytes, same final cell file
/// (branch directions made observable through marker writes in the
/// terminator arms), over randomized initial cell files.
#[cfg(debug_assertions)]
fn differential_check(pre: &Module, post: &Module, start: u64) {
    use rr_ir::interp::Interp;
    use rr_ir::Cell;

    let lcg = |s: u64| s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    for seed in [start | 1, lcg(start ^ 0x9e37_79b9_7f4a_7c15)] {
        let observe = |m: &Module| {
            let mut m = m.clone();
            instrument_arms(&mut m);
            let mut interp = Interp::new(&m, b"\x11\x22\x33");
            let mut s = seed;
            for c in 0..Cell::COUNT {
                s = lcg(s);
                let v = if Cell(c).is_flag() { s & 1 } else { s };
                interp.set_cell(Cell(c), v);
            }
            interp
                .with_max_steps(1_000_000)
                .run_with_cells()
                .map(|(r, cells)| (r.outcome, r.output, cells))
        };
        assert_eq!(
            observe(pre),
            observe(post),
            "uop optimizer: optimized IR for block {start:#x} diverges from its exact lowering"
        );
    }
}

/// Writes a distinct marker to `r14` in every non-entry block so the
/// branch direction of a `CondBr` function shows up in the final cells.
#[cfg(debug_assertions)]
fn instrument_arms(m: &mut Module) {
    use rr_ir::{Cell, Op};
    for f in m.functions_mut() {
        let blocks: Vec<_> = f.block_ids().skip(1).collect();
        for (i, b) in blocks.into_iter().enumerate() {
            let marker = f.append(b, Op::Const(0xd1ff_0000 + i as u64));
            f.append(b, Op::WriteCell { cell: Cell::reg(14), value: marker });
        }
    }
}
