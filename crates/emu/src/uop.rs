//! The micro-op execution tier: hot superblocks compiled once into
//! pre-lowered uop traces, executed with lazy NZCV materialization.
//!
//! The blocks tier ([`Machine::run_blocks`]) removed fetch/decode from
//! the hot path, but every executed instruction still pays full operand
//! extraction, the interpreter's opcode `match`, and an eager flags
//! recomputation. This module removes those too, in the only way a
//! `#![forbid(unsafe_code)]` workspace can "compile" code — by lowering
//! each decoded superblock **once** into a flat [`Uop`] trace:
//!
//! * operands, immediates, and shift amounts are extracted at compile
//!   time (immediates pre-sign-extended to `u64`, shift counts
//!   pre-masked, zero-count shifts lowered to `Nop`);
//! * memory-op address expressions are pre-split into `base + disp`
//!   with the displacement already extended;
//! * intra-block control flow is pre-resolved to absolute targets, and
//!   the dominant `cmp`/`test` + `j<cc>` idiom is **fused** into one
//!   micro-op that branches straight off the comparison operands;
//! * flag-setting ops record a deferred [`Pending`] tuple instead of
//!   computing NZCV; the flags materialize only when a consumer
//!   (conditional instruction or block exit) reads them, so traces,
//!   snapshots, and injections always observe architecturally exact
//!   state — laziness never escapes a block body.
//!
//! Tiering is driven by per-block execution counts: a block runs
//! decoded ([`Machine::run_decoded_body`]) until it crosses
//! [`UopConfig::hot_threshold`], then compiles once (shared via
//! `OnceLock` across threads) and stays compiled. Compiled bodies live
//! alongside the decoded ones in [`BlockCache`], inheriting the blocks
//! tier's safety rails verbatim: per-instruction pc-expectation checks,
//! exec-dirty ranges forcing precise interpretation of faulted code,
//! mid-block fence tails, and cache invalidation dropping compiled
//! bodies together with decoded ones.
//!
//! ## The optimization stage
//!
//! Compilation runs an optional (default-on) optimization stage: the
//! superblock is lowered to `rr-ir` SSA through the bridge
//! ([`lower_block_to_ir`]), the block pass pipeline — constant folding,
//! dead-code elimination, redundant-load/store-to-load forwarding,
//! dead-flag elimination, each verified by the IR verifier — runs over
//! it, and the optimized function is distilled back into a second,
//! cheaper uop trace through the `rr-lower` slot-plan backend (the
//! `uopopt` module). The
//! optimized body is slot-exact — same length, same per-slot pc/step
//! accounting, same register/memory state at every boundary — and only
//! its *interior* lazy-flag bookkeeping may lag, so it runs only when a
//! whole pass over the body fits under the step fence; every fenced or
//! mid-block entry takes the exact body. Debug builds additionally
//! differentially test each optimized lowering against its unoptimized
//! form through the `rr-ir` interpreter at compile time.
//!
//! The result is bit-identical to the interpreter — pinned by the
//! equivalence tests here, the emu proptests, and the engine/fault
//! equivalence suites upstream.

use crate::blockexec::{BlockCache, BlockStats, DecodedBlock};
use crate::machine::{Machine, RunResult};
use crate::outcome::{CpuFault, RunOutcome};
use crate::uopopt::{self, OptStats};
use rr_isa::{AluOp, Cond, Flags, Instr, Reg, ShiftOp};
use std::sync::atomic::Ordering;

/// How hard the uop compiler works on a hot superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// Straight lowering only — every slot keeps its exact uop. The
    /// escape hatch for debugging and A/B measurement.
    None,
    /// Lower through `rr-ir`, run the block pass pipeline, and execute
    /// the optimized trace where the fence rules allow.
    #[default]
    Full,
}

impl std::str::FromStr for OptLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<OptLevel, String> {
        match s {
            "none" => Ok(OptLevel::None),
            "full" => Ok(OptLevel::Full),
            other => Err(format!("unknown opt level {other:?} (expected none|full)")),
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OptLevel::None => "none",
            OptLevel::Full => "full",
        })
    }
}

/// Tiering knobs for the micro-op execution tier.
///
/// # Example
///
/// ```
/// use rr_emu::{OptLevel, UopConfig};
///
/// assert_eq!(UopConfig::default().hot_threshold, 2);
/// assert_eq!(UopConfig::default().opt, OptLevel::Full);
/// // Compile on first entry, without the IR optimization stage:
/// let eager = UopConfig { hot_threshold: 0, opt: OptLevel::None };
/// assert!(eager.hot_threshold < UopConfig::default().hot_threshold);
/// assert_eq!("none".parse::<OptLevel>(), Ok(OptLevel::None));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UopConfig {
    /// How many times a block executes decoded before it is compiled to
    /// micro-ops. `0` compiles eagerly on first entry; one-shot blocks
    /// never pay compile cost under the default. `u32::MAX` never
    /// promotes (the tier degenerates to the blocks tier).
    pub hot_threshold: u32,
    /// Whether compilation runs the `rr-ir` optimization stage. A block
    /// is optimized (or not) once, by the configuration in effect when
    /// it first crosses the hot threshold; at run time an optimized
    /// body is only *used* under [`OptLevel::Full`].
    pub opt: OptLevel,
}

impl Default for UopConfig {
    fn default() -> UopConfig {
        UopConfig { hot_threshold: 2, opt: OptLevel::Full }
    }
}

/// A pre-resolved right-hand operand: register read or immediate,
/// already sign-extended to the machine word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Operand {
    Reg(Reg),
    Imm(u64),
}

/// One pre-lowered micro-op. Every field an instruction's execution
/// needs is extracted at compile time; the dispatch loop only reads
/// registers, touches memory, and writes the pc.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Uop {
    Nop,
    Halt,
    MovRR {
        rd: Reg,
        rs: Reg,
    },
    MovRI {
        rd: Reg,
        imm: u64,
    },
    Alu {
        op: AluOp,
        rd: Reg,
        rhs: Operand,
    },
    /// Shift with the amount pre-masked to 1–63 (zero-count shifts
    /// lower to [`Uop::Nop`]: they change neither value nor flags).
    Shift {
        op: ShiftOp,
        rd: Reg,
        amt: u32,
    },
    Not {
        rd: Reg,
    },
    Neg {
        rd: Reg,
    },
    Cmp {
        rs1: Reg,
        rhs: Operand,
    },
    CmpM {
        rs1: Reg,
        base: Reg,
        disp: u64,
    },
    Test {
        rs1: Reg,
        rs2: Reg,
    },
    Load {
        rd: Reg,
        base: Reg,
        disp: u64,
    },
    Store {
        base: Reg,
        disp: u64,
        rs: Reg,
    },
    LoadB {
        rd: Reg,
        base: Reg,
        disp: u64,
    },
    StoreB {
        base: Reg,
        disp: u64,
        rs: Reg,
    },
    Lea {
        rd: Reg,
        base: Reg,
        disp: u64,
    },
    Push {
        rs: Reg,
    },
    Pop {
        rd: Reg,
    },
    PushF,
    PopF,
    Jmp {
        target: u64,
    },
    Jcc {
        cc: Cond,
        target: u64,
    },
    /// Fused `cmp` + `j<cc>`: branches straight off the comparison
    /// operands without forming NZCV. Lives at the compare's slot and
    /// consumes two architectural steps; the following slot keeps a
    /// plain [`Uop::Jcc`] so mid-block entry at the branch still works.
    CmpJcc {
        rs1: Reg,
        rhs: Operand,
        cc: Cond,
        target: u64,
        jcc_next: u64,
    },
    /// Fused `test` + `j<cc>`, same shape as [`Uop::CmpJcc`].
    TestJcc {
        rs1: Reg,
        rs2: Reg,
        cc: Cond,
        target: u64,
        jcc_next: u64,
    },
    Call {
        target: u64,
    },
    CallR {
        rs: Reg,
    },
    JmpR {
        rs: Reg,
    },
    Ret,
    SetCc {
        rd: Reg,
        cc: Cond,
    },
    Svc {
        num: u8,
    },
    /// ALU op whose flag results are provably dead (dead-flag
    /// elimination): skips the deferred-flags bookkeeping entirely.
    /// Never `Udiv` — a division's flag write survives as the crash
    /// barrier keeps it observable.
    AluNF {
        op: AluOp,
        rd: Reg,
        rhs: Operand,
    },
    /// [`Uop::Shift`] with provably dead flags.
    ShiftNF {
        op: ShiftOp,
        rd: Reg,
        amt: u32,
    },
    /// Load from a constant-folded absolute address.
    LoadA {
        rd: Reg,
        addr: u64,
    },
    /// Store to a constant-folded absolute address.
    StoreA {
        addr: u64,
        rs: Reg,
    },
}

/// One compiled slot: the instruction's address, its fallthrough
/// successor, and the pre-lowered micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct UopEntry {
    pub(crate) pc: u64,
    pub(crate) next: u64,
    pub(crate) op: Uop,
}

/// A superblock's compiled micro-op body, parallel to the decoded one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CompiledBlock {
    /// The exact lowering: one slot per instruction, bit-identical
    /// semantics at every step. Always present; mid-block entries and
    /// fence-constrained runs execute this body.
    pub(crate) entries: Vec<UopEntry>,
    /// The optimized lowering (same slot structure, cheaper uops), when
    /// the block was compiled under [`OptLevel::Full`] and the `rr-ir`
    /// pipeline improved it. Only its interior flag bookkeeping may lag
    /// the architectural state, so it runs only full-body, under the
    /// fence headroom check.
    pub(crate) opt: Option<Vec<UopEntry>>,
    /// What the optimization stage removed (for telemetry).
    pub(crate) opt_stats: OptStats,
}

/// The deferred flag-setting operation of the uop tier: the
/// `(lastop, operands, result)` tuple NZCV can be recomputed from.
/// Recorded by flag-setting micro-ops, materialized only when a
/// consumer or a block exit reads the flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    /// The machine's flags are current; nothing is deferred.
    Clean,
    Add {
        a: u64,
        b: u64,
    },
    Sub {
        a: u64,
        b: u64,
    },
    Logic {
        r: u64,
    },
    Mul {
        r: u64,
        overflow: bool,
    },
    Shift {
        r: u64,
        carry: bool,
    },
}

impl Pending {
    /// The deferred flags, clearing the pending state — `None` when the
    /// machine's flags are already current.
    fn take(&mut self) -> Option<Flags> {
        let flags = match *self {
            Pending::Clean => return None,
            Pending::Add { a, b } => Flags::from_add(a, b),
            Pending::Sub { a, b } => Flags::from_sub(a, b),
            Pending::Logic { r } => Flags::from_logic(r),
            Pending::Mul { r, overflow } => {
                let mut f = Flags::from_logic(r);
                f.c = overflow;
                f.v = overflow;
                f
            }
            Pending::Shift { r, carry } => {
                let mut f = Flags::from_logic(r);
                f.c = carry;
                f
            }
        };
        *self = Pending::Clean;
        Some(flags)
    }
}

/// Writes any deferred flags into the machine (a consumer is about to
/// read them, or a block is exiting to an observable point).
fn materialize(pending: &mut Pending, machine: &mut Machine, stats: &mut BlockStats) {
    if let Some(flags) = pending.take() {
        machine.set_flags(flags);
        stats.flag_materializations += 1;
    }
}

/// `cc.eval(Flags::from_sub(a, b))` computed directly from the
/// comparison operands, without forming the flag tuple.
fn cond_of_sub(cc: Cond, a: u64, b: u64) -> bool {
    match cc {
        Cond::Eq => a == b,
        Cond::Ne => a != b,
        Cond::Lt => (a as i64) < (b as i64),
        Cond::Le => (a as i64) <= (b as i64),
        Cond::Gt => (a as i64) > (b as i64),
        Cond::Ge => (a as i64) >= (b as i64),
        Cond::B => a < b,
        Cond::Be => a <= b,
        Cond::A => a > b,
        Cond::Ae => a >= b,
    }
}

/// `cc.eval(Flags::from_logic(r))` computed directly from the result
/// (`c` and `v` are clear after logic ops).
fn cond_of_logic(cc: Cond, r: u64) -> bool {
    let z = r == 0;
    let n = (r as i64) < 0;
    match cc {
        Cond::Eq => z,
        Cond::Ne => !z,
        Cond::Lt => n,
        Cond::Le => z || n,
        Cond::Gt => !z && !n,
        Cond::Ge => !n,
        Cond::B => false,
        Cond::Be => z,
        Cond::A => !z,
        Cond::Ae => true,
    }
}

/// Lowers a decoded superblock into its micro-op trace. Pure: the same
/// block always compiles to the same body.
pub(crate) fn compile_block(block: &DecodedBlock) -> CompiledBlock {
    let mut entries = Vec::with_capacity(block.body.len());
    for (i, (&pc, &(insn, len))) in block.pcs.iter().zip(&block.body).enumerate() {
        let next = pc.wrapping_add(u64::from(len));
        let op = fuse(insn, next, block, i).unwrap_or_else(|| lower(insn, next));
        entries.push(UopEntry { pc, next, op });
    }
    CompiledBlock { entries, opt: None, opt_stats: OptStats::default() }
}

/// Fuses a flag-setting compare/test with an immediately following
/// conditional branch. The fused op replaces the compare's slot; the
/// branch keeps its own plain slot for mid-block entry.
fn fuse(insn: Instr, next: u64, block: &DecodedBlock, i: usize) -> Option<Uop> {
    let (follower, jcc_len) = *block.body.get(i + 1)?;
    let Instr::Jcc { cc, rel } = follower else { return None };
    debug_assert_eq!(block.pcs[i + 1], next, "blocks decode consecutively");
    let jcc_next = next.wrapping_add(u64::from(jcc_len));
    let target = jcc_next.wrapping_add(rel as i64 as u64);
    match insn {
        Instr::CmpRR { rs1, rs2 } => {
            Some(Uop::CmpJcc { rs1, rhs: Operand::Reg(rs2), cc, target, jcc_next })
        }
        Instr::CmpRI { rs1, imm } => {
            Some(Uop::CmpJcc { rs1, rhs: Operand::Imm(imm as i64 as u64), cc, target, jcc_next })
        }
        Instr::TestRR { rs1, rs2 } => Some(Uop::TestJcc { rs1, rs2, cc, target, jcc_next }),
        // CmpRM is deliberately not fused: its load can fault, and the
        // fault must be observed with the compare's pc semantics.
        _ => None,
    }
}

/// Lowers one instruction to its micro-op (no fusion), with `next` the
/// fallthrough address.
fn lower(insn: Instr, next: u64) -> Uop {
    let ext = |disp: i32| disp as i64 as u64;
    let rel_target = |rel: i32| next.wrapping_add(rel as i64 as u64);
    match insn {
        Instr::Nop => Uop::Nop,
        Instr::Halt => Uop::Halt,
        Instr::MovRR { rd, rs } => Uop::MovRR { rd, rs },
        Instr::MovRI { rd, imm } => Uop::MovRI { rd, imm },
        Instr::AluRR { op, rd, rs } => Uop::Alu { op, rd, rhs: Operand::Reg(rs) },
        Instr::AluRI { op, rd, imm } => Uop::Alu { op, rd, rhs: Operand::Imm(imm as i64 as u64) },
        Instr::ShiftRI { op, rd, amt } => match u32::from(amt & 63) {
            0 => Uop::Nop, // zero-count shifts change neither value nor flags
            amt => Uop::Shift { op, rd, amt },
        },
        Instr::Not { rd } => Uop::Not { rd },
        Instr::Neg { rd } => Uop::Neg { rd },
        Instr::CmpRR { rs1, rs2 } => Uop::Cmp { rs1, rhs: Operand::Reg(rs2) },
        Instr::CmpRI { rs1, imm } => Uop::Cmp { rs1, rhs: Operand::Imm(imm as i64 as u64) },
        Instr::CmpRM { rs1, base, disp } => Uop::CmpM { rs1, base, disp: ext(disp) },
        Instr::TestRR { rs1, rs2 } => Uop::Test { rs1, rs2 },
        Instr::Load { rd, base, disp } => Uop::Load { rd, base, disp: ext(disp) },
        Instr::Store { base, disp, rs } => Uop::Store { base, disp: ext(disp), rs },
        Instr::LoadB { rd, base, disp } => Uop::LoadB { rd, base, disp: ext(disp) },
        Instr::StoreB { base, disp, rs } => Uop::StoreB { base, disp: ext(disp), rs },
        Instr::Lea { rd, base, disp } => Uop::Lea { rd, base, disp: ext(disp) },
        Instr::Push { rs } => Uop::Push { rs },
        Instr::Pop { rd } => Uop::Pop { rd },
        Instr::PushF => Uop::PushF,
        Instr::PopF => Uop::PopF,
        Instr::Jmp { rel } => Uop::Jmp { target: rel_target(rel) },
        Instr::Jcc { cc, rel } => Uop::Jcc { cc, target: rel_target(rel) },
        Instr::Call { rel } => Uop::Call { target: rel_target(rel) },
        Instr::CallR { rs } => Uop::CallR { rs },
        Instr::JmpR { rs } => Uop::JmpR { rs },
        Instr::Ret => Uop::Ret,
        Instr::SetCc { rd, cc } => Uop::SetCc { rd, cc },
        Instr::Svc { num } => Uop::Svc { num },
    }
}

impl DecodedBlock {
    /// The block's compiled body, compiling it when this execution
    /// crosses the hot threshold. Returns `None` while the block is
    /// still cold (callers run the decoded body instead). Each call
    /// counts one execution of the block.
    ///
    /// `store_to_load` tells the optimizer whether forwarding a stored
    /// value into a later load of the same address is a permitted
    /// access pattern (see [`crate::Memory::writable_implies_readable`]).
    /// The configuration in effect on the *first* promotion decides the
    /// shared body — including whether an optimized variant exists.
    pub(crate) fn compiled(
        &self,
        config: UopConfig,
        store_to_load: bool,
        stats: &mut BlockStats,
    ) -> Option<&CompiledBlock> {
        if let Some(body) = self.compiled.get() {
            return Some(body);
        }
        let heat = self.heat.fetch_add(1, Ordering::Relaxed).saturating_add(1);
        if heat <= config.hot_threshold {
            return None;
        }
        if heat == config.hot_threshold.saturating_add(1) {
            stats.tier_promotions += 1;
        }
        let mut fresh = false;
        let body = self.compiled.get_or_init(|| {
            fresh = true;
            let mut body = compile_block(self);
            if config.opt == OptLevel::Full {
                if let Some((opt, opt_stats)) = uopopt::optimize(self, &body.entries, store_to_load)
                {
                    body.opt = Some(opt);
                    body.opt_stats = opt_stats;
                }
            }
            body
        });
        if fresh {
            stats.blocks_compiled += 1;
            if body.opt.is_some() {
                stats.blocks_optimized += 1;
                stats.uops_eliminated += body.opt_stats.uops_eliminated;
                stats.loads_forwarded += body.opt_stats.loads_forwarded;
                stats.flag_defs_killed += body.opt_stats.flag_defs_killed;
            }
        }
        Some(body)
    }
}

impl Machine {
    /// Runs like [`Machine::run`] but executes hot superblocks as
    /// compiled micro-op traces, warm blocks as pre-decoded bodies, and
    /// everything else through the interpreter. Bit-identical to
    /// [`Machine::run`]: same outcome, same step count, same final
    /// state — including NZCV at every exit.
    ///
    /// # Example
    ///
    /// ```
    /// use rr_asm::assemble_and_link;
    /// use rr_emu::{BlockCache, BlockStats, Machine, RunOutcome, UopConfig};
    ///
    /// let exe = assemble_and_link(
    ///     "    .global _start\n_start:\n    mov r1, 41\n    add r1, 1\n    svc 0\n",
    /// )?;
    /// let cache = BlockCache::build(&exe, [exe.entry]).expect("text decodes");
    /// let mut m = Machine::new(&exe, &[]);
    /// let mut stats = BlockStats::default();
    /// let config = UopConfig { hot_threshold: 0, ..UopConfig::default() };
    /// let result = m.run_uops(&cache, config, 1_000, &mut stats);
    /// assert_eq!(result.outcome, RunOutcome::Exited { code: 42 });
    /// assert_eq!(stats.uop_steps, 3);
    /// assert_eq!(stats.blocks_compiled, 1);
    /// # Ok::<(), rr_asm::BuildError>(())
    /// ```
    pub fn run_uops(
        &mut self,
        cache: &BlockCache,
        config: UopConfig,
        max_steps: u64,
        stats: &mut BlockStats,
    ) -> RunResult {
        self.run_uops_inner(cache, config, max_steps, stats, None)
    }

    /// [`Machine::run_uops`] recording the PC of every executed
    /// instruction into `trace` (fused micro-ops record both halves).
    pub fn run_uops_traced(
        &mut self,
        cache: &BlockCache,
        config: UopConfig,
        max_steps: u64,
        stats: &mut BlockStats,
        trace: &mut Vec<u64>,
    ) -> RunResult {
        self.run_uops_inner(cache, config, max_steps, stats, Some(trace))
    }

    fn run_uops_inner(
        &mut self,
        cache: &BlockCache,
        config: UopConfig,
        max_steps: u64,
        stats: &mut BlockStats,
        mut trace: Option<&mut Vec<u64>>,
    ) -> RunResult {
        let mut steps = 0u64;
        let store_to_load = self.memory().writable_implies_readable();
        while steps < max_steps {
            if let Some(outcome) = self.stopped() {
                return RunResult { outcome, steps };
            }
            match cache.lookup(self.pc()) {
                Some((block, entry))
                    if !self.memory().exec_dirty_intersects(block.start, block.end) =>
                {
                    match block.compiled(config, store_to_load, stats) {
                        Some(body) => {
                            // The optimized body is only interior-exact
                            // for flags, so it runs only when a whole
                            // pass fits under the step fence and entry
                            // is at the leader; otherwise the exact
                            // body takes over.
                            let opt = match (&body.opt, config.opt) {
                                (Some(opt), OptLevel::Full)
                                    if entry == 0
                                        && steps.saturating_add(opt.len() as u64) <= max_steps =>
                                {
                                    Some(opt.as_slice())
                                }
                                _ => None,
                            };
                            match opt {
                                Some(entries) => self.run_uop_body(
                                    block, entries, 0, true, max_steps, &mut steps, stats,
                                    &mut trace,
                                ),
                                None => self.run_uop_body(
                                    block,
                                    &body.entries,
                                    entry,
                                    false,
                                    max_steps,
                                    &mut steps,
                                    stats,
                                    &mut trace,
                                ),
                            }
                        }
                        None => self.run_decoded_body(
                            block, entry, max_steps, &mut steps, stats, &mut trace,
                        ),
                    }
                }
                _ => {
                    if let Some(trace) = trace.as_deref_mut() {
                        trace.push(self.pc());
                    }
                    let _ = self.step();
                    steps += 1;
                    stats.interp_steps += 1;
                }
            }
        }
        match self.stopped() {
            Some(outcome) => RunResult { outcome, steps },
            None => RunResult { outcome: RunOutcome::TimedOut, steps },
        }
    }

    /// The uop tier's dispatch loop: executes one compiled body (the
    /// exact trace, or under `optimized` the pass-pipeline one) from
    /// slot `entry` until a fault, stop, fence, exec-dirty write into
    /// the block, or control transfer out of it. Deferred flags never
    /// escape — every exit path materializes them, so the machine state
    /// is architecturally exact whenever this returns. (In an optimized
    /// body every reachable exit sits at a flag barrier or block end,
    /// where dead-flag elimination provably kept the latest flag
    /// definition, so the materialized state matches the exact trace.)
    #[allow(clippy::too_many_arguments)]
    fn run_uop_body(
        &mut self,
        block: &DecodedBlock,
        entries: &[UopEntry],
        entry: usize,
        optimized: bool,
        max_steps: u64,
        steps: &mut u64,
        stats: &mut BlockStats,
        trace: &mut Option<&mut Vec<u64>>,
    ) {
        let mut index = entry;
        let mut epoch = self.memory().exec_dirty_epoch();
        let mut pending = Pending::Clean;
        'body: loop {
            let e = &entries[index];
            if let Some(trace) = trace.as_deref_mut() {
                trace.push(e.pc);
            }
            *steps += 1;
            stats.uop_steps += 1;
            let mut next_index = index + 1;
            // Contract per op, mirroring `exec_decoded`: the pc is set
            // to the successor *before* the semantics run, so a fault
            // records `Crashed { pc: next }` — except `halt`, which
            // records its own site.
            match e.op {
                Uop::Nop => self.set_pc(e.next),
                Uop::Halt => {
                    self.stop_crashed(CpuFault::Halted);
                    break 'body;
                }
                Uop::MovRR { rd, rs } => {
                    self.set_pc(e.next);
                    let value = self.reg(rs);
                    self.set_reg(rd, value);
                }
                Uop::MovRI { rd, imm } => {
                    self.set_pc(e.next);
                    self.set_reg(rd, imm);
                }
                Uop::Alu { op, rd, rhs } => {
                    self.set_pc(e.next);
                    let a = self.reg(rd);
                    let b = self.operand(rhs);
                    let res = match op {
                        AluOp::Add => {
                            pending = Pending::Add { a, b };
                            a.wrapping_add(b)
                        }
                        AluOp::Sub => {
                            pending = Pending::Sub { a, b };
                            a.wrapping_sub(b)
                        }
                        AluOp::And => {
                            let r = a & b;
                            pending = Pending::Logic { r };
                            r
                        }
                        AluOp::Or => {
                            let r = a | b;
                            pending = Pending::Logic { r };
                            r
                        }
                        AluOp::Xor => {
                            let r = a ^ b;
                            pending = Pending::Logic { r };
                            r
                        }
                        AluOp::Mul => {
                            let (r, overflow) = a.overflowing_mul(b);
                            pending = Pending::Mul { r, overflow };
                            r
                        }
                        AluOp::Udiv => {
                            if b == 0 {
                                // The failed division writes neither rd
                                // nor flags.
                                self.stop_crashed(CpuFault::DivideByZero);
                                break 'body;
                            }
                            let r = a / b;
                            pending = Pending::Logic { r };
                            r
                        }
                    };
                    self.set_reg(rd, res);
                }
                Uop::Shift { op, rd, amt } => {
                    self.set_pc(e.next);
                    let value = self.reg(rd);
                    let (res, carry) = match op {
                        ShiftOp::Shl => (value << amt, value >> (64 - amt) & 1 == 1),
                        ShiftOp::Shr => (value >> amt, value >> (amt - 1) & 1 == 1),
                        ShiftOp::Sar => {
                            (((value as i64) >> amt) as u64, (value as i64) >> (amt - 1) & 1 == 1)
                        }
                    };
                    self.set_reg(rd, res);
                    pending = Pending::Shift { r: res, carry };
                }
                Uop::Not { rd } => {
                    self.set_pc(e.next);
                    let res = !self.reg(rd);
                    self.set_reg(rd, res);
                    pending = Pending::Logic { r: res };
                }
                Uop::Neg { rd } => {
                    self.set_pc(e.next);
                    let value = self.reg(rd);
                    self.set_reg(rd, value.wrapping_neg());
                    pending = Pending::Sub { a: 0, b: value };
                }
                Uop::Cmp { rs1, rhs } => {
                    self.set_pc(e.next);
                    pending = Pending::Sub { a: self.reg(rs1), b: self.operand(rhs) };
                }
                Uop::CmpM { rs1, base, disp } => {
                    self.set_pc(e.next);
                    let addr = self.reg(base).wrapping_add(disp);
                    match self.memory().read_u64(addr) {
                        Ok(value) => pending = Pending::Sub { a: self.reg(rs1), b: value },
                        Err(fault) => {
                            self.stop_crashed(Machine::mem_fault(fault));
                            break 'body;
                        }
                    }
                }
                Uop::Test { rs1, rs2 } => {
                    self.set_pc(e.next);
                    pending = Pending::Logic { r: self.reg(rs1) & self.reg(rs2) };
                }
                Uop::Load { rd, base, disp } => {
                    self.set_pc(e.next);
                    let addr = self.reg(base).wrapping_add(disp);
                    match self.memory().read_u64(addr) {
                        Ok(value) => self.set_reg(rd, value),
                        Err(fault) => {
                            self.stop_crashed(Machine::mem_fault(fault));
                            break 'body;
                        }
                    }
                }
                Uop::Store { base, disp, rs } => {
                    self.set_pc(e.next);
                    let addr = self.reg(base).wrapping_add(disp);
                    let value = self.reg(rs);
                    if let Err(fault) = self.memory_mut().write_u64(addr, value) {
                        self.stop_crashed(Machine::mem_fault(fault));
                        break 'body;
                    }
                }
                Uop::LoadB { rd, base, disp } => {
                    self.set_pc(e.next);
                    let addr = self.reg(base).wrapping_add(disp);
                    match self.memory().read_u8(addr) {
                        Ok(value) => self.set_reg(rd, u64::from(value)),
                        Err(fault) => {
                            self.stop_crashed(Machine::mem_fault(fault));
                            break 'body;
                        }
                    }
                }
                Uop::StoreB { base, disp, rs } => {
                    self.set_pc(e.next);
                    let addr = self.reg(base).wrapping_add(disp);
                    let value = self.reg(rs) as u8;
                    if let Err(fault) = self.memory_mut().write_u8(addr, value) {
                        self.stop_crashed(Machine::mem_fault(fault));
                        break 'body;
                    }
                }
                Uop::Lea { rd, base, disp } => {
                    self.set_pc(e.next);
                    let addr = self.reg(base).wrapping_add(disp);
                    self.set_reg(rd, addr);
                }
                Uop::Push { rs } => {
                    self.set_pc(e.next);
                    if let Err(fault) = self.push(self.reg(rs)) {
                        self.stop_crashed(fault);
                        break 'body;
                    }
                }
                Uop::Pop { rd } => {
                    self.set_pc(e.next);
                    match self.pop() {
                        Ok(value) => self.set_reg(rd, value),
                        Err(fault) => {
                            self.stop_crashed(fault);
                            break 'body;
                        }
                    }
                }
                Uop::PushF => {
                    self.set_pc(e.next);
                    materialize(&mut pending, self, stats);
                    if let Err(fault) = self.push(self.flags().to_bits()) {
                        self.stop_crashed(fault);
                        break 'body;
                    }
                }
                Uop::PopF => {
                    self.set_pc(e.next);
                    match self.pop() {
                        Ok(bits) => {
                            // The architectural restore replaces any
                            // deferred flags outright.
                            pending = Pending::Clean;
                            self.set_flags(Flags::from_bits(bits));
                        }
                        // A failed popf leaves the flags untouched: the
                        // older pending state materializes on exit.
                        Err(fault) => {
                            self.stop_crashed(fault);
                            break 'body;
                        }
                    }
                }
                Uop::Jmp { target } => self.set_pc(target),
                Uop::Jcc { cc, target } => {
                    self.set_pc(e.next);
                    materialize(&mut pending, self, stats);
                    if cc.eval(self.flags()) {
                        self.set_pc(target);
                    }
                }
                Uop::CmpJcc { rs1, rhs, cc, target, jcc_next } => {
                    // First half: the compare. Its successor is the
                    // branch's own slot.
                    self.set_pc(e.next);
                    let a = self.reg(rs1);
                    let b = self.operand(rhs);
                    pending = Pending::Sub { a, b };
                    if *steps >= max_steps {
                        break 'body; // fence between the fused halves
                    }
                    if let Some(trace) = trace.as_deref_mut() {
                        trace.push(e.next);
                    }
                    *steps += 1;
                    stats.uop_steps += 1;
                    // Second half: branch straight off the operands —
                    // the NZCV tuple is never formed.
                    self.set_pc(if cond_of_sub(cc, a, b) { target } else { jcc_next });
                    next_index = index + 2;
                }
                Uop::TestJcc { rs1, rs2, cc, target, jcc_next } => {
                    self.set_pc(e.next);
                    let r = self.reg(rs1) & self.reg(rs2);
                    pending = Pending::Logic { r };
                    if *steps >= max_steps {
                        break 'body;
                    }
                    if let Some(trace) = trace.as_deref_mut() {
                        trace.push(e.next);
                    }
                    *steps += 1;
                    stats.uop_steps += 1;
                    self.set_pc(if cond_of_logic(cc, r) { target } else { jcc_next });
                    next_index = index + 2;
                }
                Uop::Call { target } => {
                    self.set_pc(e.next);
                    if let Err(fault) = self.push(e.next) {
                        self.stop_crashed(fault);
                        break 'body;
                    }
                    self.set_pc(target);
                }
                Uop::CallR { rs } => {
                    self.set_pc(e.next);
                    let target = self.reg(rs);
                    if let Err(fault) = self.push(e.next) {
                        self.stop_crashed(fault);
                        break 'body;
                    }
                    self.set_pc(target);
                }
                Uop::JmpR { rs } => {
                    let target = self.reg(rs);
                    self.set_pc(target);
                }
                Uop::Ret => {
                    self.set_pc(e.next);
                    match self.pop() {
                        Ok(target) => self.set_pc(target),
                        Err(fault) => {
                            self.stop_crashed(fault);
                            break 'body;
                        }
                    }
                }
                Uop::SetCc { rd, cc } => {
                    self.set_pc(e.next);
                    materialize(&mut pending, self, stats);
                    let value = u64::from(cc.eval(self.flags()));
                    self.set_reg(rd, value);
                }
                Uop::Svc { num } => {
                    self.set_pc(e.next);
                    if let Err(fault) = self.service(num) {
                        self.stop_crashed(fault);
                        break 'body;
                    }
                }
                Uop::AluNF { op, rd, rhs } => {
                    self.set_pc(e.next);
                    let a = self.reg(rd);
                    let b = self.operand(rhs);
                    let res = match op {
                        AluOp::Add => a.wrapping_add(b),
                        AluOp::Sub => a.wrapping_sub(b),
                        AluOp::And => a & b,
                        AluOp::Or => a | b,
                        AluOp::Xor => a ^ b,
                        AluOp::Mul => a.wrapping_mul(b),
                        // Unreachable by construction (the optimizer
                        // never drops a division's flags), but a crash
                        // must still be a crash.
                        AluOp::Udiv => {
                            if b == 0 {
                                self.stop_crashed(CpuFault::DivideByZero);
                                break 'body;
                            }
                            a / b
                        }
                    };
                    self.set_reg(rd, res);
                }
                Uop::ShiftNF { op, rd, amt } => {
                    self.set_pc(e.next);
                    let value = self.reg(rd);
                    let res = match op {
                        ShiftOp::Shl => value << amt,
                        ShiftOp::Shr => value >> amt,
                        ShiftOp::Sar => ((value as i64) >> amt) as u64,
                    };
                    self.set_reg(rd, res);
                }
                Uop::LoadA { rd, addr } => {
                    self.set_pc(e.next);
                    match self.memory().read_u64(addr) {
                        Ok(value) => self.set_reg(rd, value),
                        Err(fault) => {
                            self.stop_crashed(Machine::mem_fault(fault));
                            break 'body;
                        }
                    }
                }
                Uop::StoreA { addr, rs } => {
                    self.set_pc(e.next);
                    let value = self.reg(rs);
                    if let Err(fault) = self.memory_mut().write_u64(addr, value) {
                        self.stop_crashed(Machine::mem_fault(fault));
                        break 'body;
                    }
                }
            }
            if self.stopped().is_some() || *steps >= max_steps {
                break;
            }
            let now = self.memory().exec_dirty_epoch();
            if now != epoch {
                // A store landed in executable memory: the compiled
                // body may be stale; re-entry through the outer lookup
                // decides (and falls back to precise interpretation for
                // this block if it was hit).
                epoch = now;
                if self.memory().exec_dirty_intersects(block.start, block.end) {
                    break;
                }
            }
            index = next_index;
            if index < entries.len() && self.pc() == entries[index].pc {
                continue;
            }
            if self.pc() == entries[0].pc {
                // Back-edge to this block's own leader (a self-loop):
                // stay in the compiled body instead of paying the cache
                // lookup and tier bookkeeping once per iteration. The
                // per-entry fence, stop, and exec-dirty-epoch checks
                // above are the same rails the outer loop would apply.
                if optimized && steps.saturating_add(entries.len() as u64) > max_steps {
                    // Another full pass no longer fits under the fence;
                    // exit so the outer loop re-enters through the
                    // exact body for the fenced tail.
                    break;
                }
                index = 0;
                continue;
            }
            // Fell off the block or control transferred — resume
            // through the cache lookup.
            break;
        }
        // Every observable point (trace fence, snapshot, injection,
        // block exit of any kind) sees exact architectural state.
        materialize(&mut pending, self, stats);
    }

    fn operand(&self, operand: Operand) -> u64 {
        match operand {
            Operand::Reg(r) => self.reg(r),
            Operand::Imm(v) => v,
        }
    }
}

/// Bridge into the `rr-ir` SSA form: the front end of the uop
/// compiler's optimization stage (and available standalone for
/// inspection tooling).
pub use bridge::lower_block_to_ir;
pub(crate) use bridge::lower_decoded_slotted;

pub(crate) mod bridge {
    use crate::blockexec::{BlockCache, DecodedBlock};
    use rr_ir::{BinOp, BlockId, Cell, Function, Op, Pred, Terminator, ValueId, Width};
    use rr_isa::{AluOp, Cond, Instr, Reg, ShiftOp};

    /// Lowers the decoded superblock containing `pc` into a verified
    /// standalone [`rr_ir::Function`]: straight-line semantics become
    /// cell/memory ops with eager NZCV writes, and a trailing
    /// conditional branch becomes a [`Terminator::CondBr`] whose
    /// condition is recomputed from the flag cells.
    ///
    /// Returns `None` when no block starts at `pc` or the block uses an
    /// instruction outside the bridged subset (`mul`/`udiv` flags,
    /// stack flag transfers, calls, and indirect control flow are left
    /// to the interpreter tiers).
    pub fn lower_block_to_ir(cache: &BlockCache, pc: u64) -> Option<Function> {
        let (block, _) = cache.lookup(pc)?;
        lower_decoded_slotted(block).map(|(f, _)| f)
    }

    /// [`lower_block_to_ir`] plus the slot table the uop backend needs:
    /// `starts[i]` is the arena index instruction `i`'s lowering began
    /// at. Tail-terminator early returns may leave `starts` shorter
    /// than the block body; the emulator keeps unplanned tail slots
    /// exact.
    pub(crate) fn lower_decoded_slotted(block: &DecodedBlock) -> Option<(Function, Vec<u32>)> {
        let mut f = Function::new(format!("block_{:#x}", block.start));
        let mut starts = Vec::with_capacity(block.body.len());
        let entry = f.entry();
        let mut b = Builder { f: &mut f, block: entry };
        let last = block.body.len() - 1;
        for (i, &(insn, _)) in block.body.iter().enumerate() {
            starts.push(b.f.value_count() as u32);
            match insn {
                Instr::Nop => {}
                Instr::Halt => {
                    b.f.set_terminator(entry, Terminator::Abort);
                    return Some((f, starts));
                }
                Instr::MovRR { rd, rs } => {
                    let v = b.read(rs);
                    b.write(rd, v);
                }
                Instr::MovRI { rd, imm } => {
                    let v = b.konst(imm);
                    b.write(rd, v);
                }
                Instr::AluRR { op, rd, rs } => {
                    let rhs = b.read(rs);
                    b.alu(op, rd, rhs)?;
                }
                Instr::AluRI { op, rd, imm } => {
                    let rhs = b.konst(imm as i64 as u64);
                    b.alu(op, rd, rhs)?;
                }
                Instr::ShiftRI { op, rd, amt } => b.shift(op, rd, u32::from(amt & 63)),
                Instr::Not { rd } => {
                    let v = b.read(rd);
                    let res = b.f.append(b.block, Op::Not(v));
                    b.write(rd, res);
                    b.flags_logic(res);
                }
                Instr::Neg { rd } => {
                    let v = b.read(rd);
                    let res = b.f.append(b.block, Op::Neg(v));
                    b.write(rd, res);
                    let zero = b.konst(0);
                    b.flags_sub(zero, v, res);
                }
                Instr::CmpRR { rs1, rs2 } => {
                    let (a, bb) = (b.read(rs1), b.read(rs2));
                    let res = b.bin(BinOp::Sub, a, bb);
                    b.flags_sub(a, bb, res);
                }
                Instr::CmpRI { rs1, imm } => {
                    let a = b.read(rs1);
                    let bb = b.konst(imm as i64 as u64);
                    let res = b.bin(BinOp::Sub, a, bb);
                    b.flags_sub(a, bb, res);
                }
                Instr::CmpRM { rs1, base, disp } => {
                    let addr = b.addr(base, disp);
                    let bb = b.f.append(b.block, Op::Load { addr, width: Width::Q });
                    let a = b.read(rs1);
                    let res = b.bin(BinOp::Sub, a, bb);
                    b.flags_sub(a, bb, res);
                }
                Instr::TestRR { rs1, rs2 } => {
                    let (a, bb) = (b.read(rs1), b.read(rs2));
                    let res = b.bin(BinOp::And, a, bb);
                    b.flags_logic(res);
                }
                Instr::Load { rd, base, disp } => {
                    let addr = b.addr(base, disp);
                    let v = b.f.append(b.block, Op::Load { addr, width: Width::Q });
                    b.write(rd, v);
                }
                Instr::Store { base, disp, rs } => {
                    let addr = b.addr(base, disp);
                    let v = b.read(rs);
                    b.f.append(b.block, Op::Store { addr, value: v, width: Width::Q });
                }
                Instr::LoadB { rd, base, disp } => {
                    let addr = b.addr(base, disp);
                    let v = b.f.append(b.block, Op::Load { addr, width: Width::B });
                    b.write(rd, v);
                }
                Instr::StoreB { base, disp, rs } => {
                    let addr = b.addr(base, disp);
                    let v = b.read(rs);
                    b.f.append(b.block, Op::Store { addr, value: v, width: Width::B });
                }
                Instr::Lea { rd, base, disp } => {
                    let addr = b.addr(base, disp);
                    b.write(rd, addr);
                }
                Instr::Push { rs } => {
                    let v = b.read(rs);
                    b.push(v);
                }
                Instr::Pop { rd } => {
                    let v = b.pop();
                    b.write(rd, v);
                }
                Instr::SetCc { rd, cc } => {
                    let v = b.cond_value(cc);
                    b.write(rd, v);
                }
                Instr::Svc { num } => {
                    b.f.append(b.block, Op::Svc { num });
                }
                Instr::Jmp { .. } if i == last => {
                    b.f.set_terminator(entry, Terminator::Ret);
                    return Some((f, starts));
                }
                Instr::Jcc { cc, .. } if i == last => {
                    let cond = b.cond_value(cc);
                    let taken = f.new_block();
                    let fallthrough = f.new_block();
                    f.set_terminator(
                        entry,
                        Terminator::CondBr { cond, if_true: taken, if_false: fallthrough },
                    );
                    f.set_terminator(taken, Terminator::Ret);
                    f.set_terminator(fallthrough, Terminator::Ret);
                    return Some((f, starts));
                }
                Instr::Ret if i == last => {
                    // The block-level function returns to its driver;
                    // the architectural return address stays on the
                    // machine stack for the caller to consume.
                    let mut b = Builder { f: &mut f, block: entry };
                    let target = b.pop();
                    let _ = target;
                    f.set_terminator(entry, Terminator::Ret);
                    return Some((f, starts));
                }
                // Outside the bridged subset: flag stack transfers,
                // calls, indirect control flow, or a terminator that is
                // somehow not in tail position.
                _ => return None,
            }
            b = Builder { f: &mut f, block: entry };
        }
        f.set_terminator(entry, Terminator::Ret);
        Some((f, starts))
    }

    struct Builder<'a> {
        f: &'a mut Function,
        block: BlockId,
    }

    impl Builder<'_> {
        fn konst(&mut self, v: u64) -> ValueId {
            self.f.append(self.block, Op::Const(v))
        }

        fn read(&mut self, r: Reg) -> ValueId {
            self.f.append(self.block, Op::ReadCell(Cell::reg(r.index())))
        }

        fn write(&mut self, r: Reg, v: ValueId) {
            self.f.append(self.block, Op::WriteCell { cell: Cell::reg(r.index()), value: v });
        }

        fn bin(&mut self, op: BinOp, lhs: ValueId, rhs: ValueId) -> ValueId {
            self.f.append(self.block, Op::BinOp { op, lhs, rhs })
        }

        fn icmp(&mut self, pred: Pred, lhs: ValueId, rhs: ValueId) -> ValueId {
            self.f.append(self.block, Op::ICmp { pred, lhs, rhs })
        }

        fn addr(&mut self, base: Reg, disp: i32) -> ValueId {
            let b = self.read(base);
            let d = self.konst(disp as i64 as u64);
            self.bin(BinOp::Add, b, d)
        }

        fn push(&mut self, v: ValueId) {
            let sp = self.read(Reg::SP);
            let eight = self.konst(8);
            let new_sp = self.bin(BinOp::Sub, sp, eight);
            self.f.append(self.block, Op::Store { addr: new_sp, value: v, width: Width::Q });
            self.f.append(
                self.block,
                Op::WriteCell { cell: Cell::reg(Reg::SP.index()), value: new_sp },
            );
        }

        fn pop(&mut self) -> ValueId {
            let sp = self.read(Reg::SP);
            let v = self.f.append(self.block, Op::Load { addr: sp, width: Width::Q });
            let eight = self.konst(8);
            let new_sp = self.bin(BinOp::Add, sp, eight);
            self.f.append(
                self.block,
                Op::WriteCell { cell: Cell::reg(Reg::SP.index()), value: new_sp },
            );
            v
        }

        fn alu(&mut self, op: AluOp, rd: Reg, rhs: ValueId) -> Option<()> {
            let lhs = self.read(rd);
            match op {
                AluOp::Add => {
                    let res = self.bin(BinOp::Add, lhs, rhs);
                    self.write(rd, res);
                    self.flags_add(lhs, rhs, res);
                }
                AluOp::Sub => {
                    let res = self.bin(BinOp::Sub, lhs, rhs);
                    self.write(rd, res);
                    self.flags_sub(lhs, rhs, res);
                }
                AluOp::And | AluOp::Or | AluOp::Xor => {
                    let bin = match op {
                        AluOp::And => BinOp::And,
                        AluOp::Or => BinOp::Or,
                        _ => BinOp::Xor,
                    };
                    let res = self.bin(bin, lhs, rhs);
                    self.write(rd, res);
                    self.flags_logic(res);
                }
                // Overflow detection for mul and the trapping udiv are
                // outside the bridged subset.
                AluOp::Mul | AluOp::Udiv => return None,
            }
            Some(())
        }

        fn shift(&mut self, op: ShiftOp, rd: Reg, amt: u32) {
            if amt == 0 {
                return; // zero-count shifts change neither value nor flags
            }
            let value = self.read(rd);
            let amount = self.konst(u64::from(amt));
            let bin = match op {
                ShiftOp::Shl => BinOp::Shl,
                ShiftOp::Shr => BinOp::Lshr,
                ShiftOp::Sar => BinOp::Ashr,
            };
            let res = self.bin(bin, value, amount);
            self.write(rd, res);
            // Carry is the last bit shifted out.
            let carry_shift = self.konst(match op {
                ShiftOp::Shl => u64::from(64 - amt),
                ShiftOp::Shr | ShiftOp::Sar => u64::from(amt - 1),
            });
            let carry_bin = if op == ShiftOp::Sar { BinOp::Ashr } else { BinOp::Lshr };
            let shifted = self.bin(carry_bin, value, carry_shift);
            let one = self.konst(1);
            let carry = self.bin(BinOp::And, shifted, one);
            self.flags_zn(res);
            self.write_flag(Cell::C, carry);
            let zero = self.konst(0);
            self.write_flag(Cell::V, zero);
        }

        fn write_flag(&mut self, cell: Cell, v: ValueId) {
            self.f.append(self.block, Op::WriteCell { cell, value: v });
        }

        fn flags_zn(&mut self, res: ValueId) {
            let zero = self.konst(0);
            let z = self.icmp(Pred::Eq, res, zero);
            let n = self.icmp(Pred::Slt, res, zero);
            self.write_flag(Cell::Z, z);
            self.write_flag(Cell::N, n);
        }

        fn flags_logic(&mut self, res: ValueId) {
            self.flags_zn(res);
            let zero = self.konst(0);
            self.write_flag(Cell::C, zero);
            self.write_flag(Cell::V, zero);
        }

        /// NZCV of `a - b = res`: borrow is `a <u b`, signed overflow is
        /// `((a ^ b) & (a ^ res)) >> 63`.
        fn flags_sub(&mut self, a: ValueId, b: ValueId, res: ValueId) {
            self.flags_zn(res);
            let c = self.icmp(Pred::Ult, a, b);
            self.write_flag(Cell::C, c);
            let ab = self.bin(BinOp::Xor, a, b);
            let ar = self.bin(BinOp::Xor, a, res);
            let both = self.bin(BinOp::And, ab, ar);
            let sixty_three = self.konst(63);
            let v = self.bin(BinOp::Lshr, both, sixty_three);
            self.write_flag(Cell::V, v);
        }

        /// NZCV of `a + b = res`: carry is `res <u a`, signed overflow
        /// is `((a ^ res) & (b ^ res)) >> 63`.
        fn flags_add(&mut self, a: ValueId, b: ValueId, res: ValueId) {
            self.flags_zn(res);
            let c = self.icmp(Pred::Ult, res, a);
            self.write_flag(Cell::C, c);
            let ar = self.bin(BinOp::Xor, a, res);
            let br = self.bin(BinOp::Xor, b, res);
            let both = self.bin(BinOp::And, ar, br);
            let sixty_three = self.konst(63);
            let v = self.bin(BinOp::Lshr, both, sixty_three);
            self.write_flag(Cell::V, v);
        }

        /// The condition's 0/1 value recomputed from the flag cells
        /// (each holding 0 or 1).
        fn cond_value(&mut self, cc: Cond) -> ValueId {
            match cc {
                Cond::Eq => self.f.append(self.block, Op::ReadCell(Cell::Z)),
                Cond::Ne => {
                    let z = self.f.append(self.block, Op::ReadCell(Cell::Z));
                    self.not01(z)
                }
                Cond::Lt => {
                    let (n, v) = self.read_nv();
                    self.bin(BinOp::Xor, n, v)
                }
                Cond::Ge => {
                    let lt = self.cond_value(Cond::Lt);
                    self.not01(lt)
                }
                Cond::Le => {
                    let lt = self.cond_value(Cond::Lt);
                    let z = self.f.append(self.block, Op::ReadCell(Cell::Z));
                    self.bin(BinOp::Or, z, lt)
                }
                Cond::Gt => {
                    let le = self.cond_value(Cond::Le);
                    self.not01(le)
                }
                Cond::B => self.f.append(self.block, Op::ReadCell(Cell::C)),
                Cond::Ae => {
                    let c = self.f.append(self.block, Op::ReadCell(Cell::C));
                    self.not01(c)
                }
                Cond::Be => {
                    let c = self.f.append(self.block, Op::ReadCell(Cell::C));
                    let z = self.f.append(self.block, Op::ReadCell(Cell::Z));
                    self.bin(BinOp::Or, c, z)
                }
                Cond::A => {
                    let be = self.cond_value(Cond::Be);
                    self.not01(be)
                }
            }
        }

        fn read_nv(&mut self) -> (ValueId, ValueId) {
            let n = self.f.append(self.block, Op::ReadCell(Cell::N));
            let v = self.f.append(self.block, Op::ReadCell(Cell::V));
            (n, v)
        }

        fn not01(&mut self, v: ValueId) -> ValueId {
            let one = self.konst(1);
            self.bin(BinOp::Xor, v, one)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_asm::assemble_and_link;
    use rr_obj::Executable;

    /// A small program with a loop, a call, branches, and output —
    /// exercises the fused cmp+jne idiom every iteration.
    const LOOPY: &str = "    .global _start\n\
         _start:\n\
             mov r2, 5\n\
         .loop:\n\
             mov r1, r2\n\
             call emit\n\
             sub r2, 1\n\
             cmp r2, 0\n\
             jne .loop\n\
             mov r1, 0\n\
             svc 0\n\
         emit:\n\
             add r1, '0'\n\
             svc 1\n\
             ret\n";

    /// Flags survive across pushf/clobber/popf, shifts and setcc
    /// consume deferred flags, and test+jcc fuses.
    const FLAGGY: &str = "    .global _start\n\
         _start:\n\
             mov r1, 6\n\
             cmp r1, 6\n\
             pushf\n\
             add r1, 100\n\
             popf\n\
             je .ok\n\
             halt\n\
         .ok:\n\
             mov r2, 3\n\
             test r2, r2\n\
             jne .go\n\
             halt\n\
         .go:\n\
             shl r2, 2\n\
             setne r3\n\
             add r1, r3\n\
             neg r1\n\
             neg r1\n\
             not r4\n\
             not r4\n\
             svc 0\n";

    fn cache_for(exe: &Executable) -> BlockCache {
        BlockCache::build(exe, [exe.entry]).expect("text decodes")
    }

    fn assert_state_matches(label: &str, got: &Machine, want: &Machine) {
        assert_eq!(got.pc(), want.pc(), "{label}: pc");
        assert_eq!(got.flags(), want.flags(), "{label}: flags");
        for r in 0..16 {
            let r = rr_isa::Reg::from_index(r);
            assert_eq!(got.reg(r), want.reg(r), "{label}: {r:?}");
        }
        assert_eq!(got.output(), want.output(), "{label}: output");
        assert_eq!(got.stopped(), want.stopped(), "{label}: stopped");
    }

    #[test]
    fn fused_predicates_match_eager_flag_evaluation() {
        let values: [u64; 8] =
            [0, 1, 7, 0x8000, u64::MAX, i64::MIN as u64, i64::MAX as u64, u64::MAX - 1];
        for cc in Cond::ALL {
            for &a in &values {
                for &b in &values {
                    assert_eq!(
                        cond_of_sub(cc, a, b),
                        cc.eval(Flags::from_sub(a, b)),
                        "cond_of_sub {cc} {a} {b}"
                    );
                }
                assert_eq!(
                    cond_of_logic(cc, a),
                    cc.eval(Flags::from_logic(a)),
                    "cond_of_logic {cc} {a}"
                );
            }
        }
    }

    #[test]
    fn pending_materializes_exact_flags() {
        let values: [u64; 6] = [0, 1, u64::MAX, i64::MIN as u64, i64::MAX as u64, 42];
        for &a in &values {
            for &b in &values {
                let mut p = Pending::Add { a, b };
                assert_eq!(p.take(), Some(Flags::from_add(a, b)));
                assert_eq!(p, Pending::Clean);
                assert_eq!(p.take(), None);
                let mut p = Pending::Sub { a, b };
                assert_eq!(p.take(), Some(Flags::from_sub(a, b)));
            }
            let mut p = Pending::Logic { r: a };
            assert_eq!(p.take(), Some(Flags::from_logic(a)));
            for overflow in [false, true] {
                let mut p = Pending::Mul { r: a, overflow };
                let f = p.take().unwrap();
                assert_eq!((f.z, f.n), (a == 0, (a as i64) < 0));
                assert_eq!((f.c, f.v), (overflow, overflow));
            }
            for carry in [false, true] {
                let mut p = Pending::Shift { r: a, carry };
                let f = p.take().unwrap();
                assert_eq!((f.c, f.v), (carry, false));
            }
        }
    }

    #[test]
    fn uop_execution_matches_interpreter_exactly() {
        for src in [LOOPY, FLAGGY] {
            let exe = assemble_and_link(src).unwrap();
            let mut reference = Machine::new(&exe, &[]);
            let want = reference.run(10_000);

            let cache = cache_for(&exe);
            let mut m = Machine::new(&exe, &[]);
            let mut stats = BlockStats::default();
            let got = m.run_uops(
                &cache,
                UopConfig { hot_threshold: 0, ..UopConfig::default() },
                10_000,
                &mut stats,
            );

            assert_eq!(got, want);
            assert_state_matches("eager uops", &m, &reference);
            assert_eq!(stats.total(), got.steps);
            assert!(stats.uop_steps > 0, "{stats:?}");
            assert_eq!(stats.block_steps, 0, "eager tiering never runs decoded: {stats:?}");
            assert!(stats.blocks_compiled > 0, "{stats:?}");
        }
    }

    #[test]
    fn fused_idioms_skip_flag_materialization() {
        let exe = assemble_and_link(LOOPY).unwrap();
        let cache = cache_for(&exe);
        let mut m = Machine::new(&exe, &[]);
        let mut stats = BlockStats::default();
        m.run_uops(
            &cache,
            UopConfig { hot_threshold: 0, ..UopConfig::default() },
            10_000,
            &mut stats,
        );
        // Five loop iterations execute five fused cmp+jne pairs; only
        // block exits materialize, so materializations stay far below
        // the count of flag-setting instructions executed.
        assert!(
            stats.flag_materializations < stats.uop_steps / 4,
            "lazy flags should rarely materialize: {stats:?}"
        );
    }

    #[test]
    fn fences_landing_mid_block_and_mid_fusion_are_precise() {
        for src in [LOOPY, FLAGGY] {
            let exe = assemble_and_link(src).unwrap();
            let total = {
                let mut m = Machine::new(&exe, &[]);
                m.run(10_000).steps
            };
            let cache = cache_for(&exe);
            for hot_threshold in [0, 1, 8] {
                for fence in 0..=total + 2 {
                    let mut reference = Machine::new(&exe, &[]);
                    let want = reference.run(fence);
                    let mut m = Machine::new(&exe, &[]);
                    let mut stats = BlockStats::default();
                    let config = UopConfig { hot_threshold, ..UopConfig::default() };
                    let got = m.run_uops(&cache, config, fence, &mut stats);
                    assert_eq!(got, want, "fence={fence} hot={hot_threshold}");
                    assert_state_matches(
                        &format!("fence={fence} hot={hot_threshold}"),
                        &m,
                        &reference,
                    );
                    assert_eq!(stats.total(), got.steps, "fence={fence}");
                }
            }
        }
    }

    #[test]
    fn tiering_promotes_blocks_after_the_threshold() {
        let exe = assemble_and_link(LOOPY).unwrap();
        let cache = cache_for(&exe);
        let mut m = Machine::new(&exe, &[]);
        let mut stats = BlockStats::default();
        let result = m.run_uops(
            &cache,
            UopConfig { hot_threshold: 2, ..UopConfig::default() },
            10_000,
            &mut stats,
        );

        let mut reference = Machine::new(&exe, &[]);
        assert_eq!(result, reference.run(10_000));
        // The loop body crosses the threshold and is promoted; the cold
        // prologue keeps running decoded.
        assert!(stats.tier_promotions > 0, "{stats:?}");
        assert!(stats.blocks_compiled > 0, "{stats:?}");
        assert!(stats.uop_steps > 0, "{stats:?}");
        assert!(stats.block_steps > 0, "cold blocks run decoded: {stats:?}");
        assert_eq!(stats.total(), result.steps);
        assert_eq!(stats.blocks_compiled, stats.tier_promotions);
    }

    #[test]
    fn compiled_bodies_are_shared_across_machines() {
        let exe = assemble_and_link(LOOPY).unwrap();
        let cache = cache_for(&exe);
        let mut first_stats = BlockStats::default();
        Machine::new(&exe, &[]).run_uops(&cache, UopConfig::default(), 10_000, &mut first_stats);
        assert!(first_stats.blocks_compiled > 0);
        // A second machine over the same cache reuses every compiled
        // body: no compiles, no promotions, and no decoded warm-up.
        let mut second_stats = BlockStats::default();
        let mut m = Machine::new(&exe, &[]);
        let result = m.run_uops(&cache, UopConfig::default(), 10_000, &mut second_stats);
        assert_eq!(second_stats.blocks_compiled, 0, "{second_stats:?}");
        assert_eq!(second_stats.tier_promotions, 0, "{second_stats:?}");
        assert_eq!(second_stats.block_steps, 0, "{second_stats:?}");
        assert_eq!(second_stats.uop_steps + second_stats.interp_steps, result.steps);
    }

    #[test]
    fn traced_uop_run_matches_interpreter_trace() {
        for hot_threshold in [0, 1, 8] {
            let exe = assemble_and_link(LOOPY).unwrap();
            let mut ref_trace = Vec::new();
            let mut reference = Machine::new(&exe, &[]);
            let want = reference.run_with(10_000, |m| ref_trace.push(m.pc()));

            let cache = cache_for(&exe);
            let mut m = Machine::new(&exe, &[]);
            let mut stats = BlockStats::default();
            let mut trace = Vec::new();
            let config = UopConfig { hot_threshold, ..UopConfig::default() };
            let got = m.run_uops_traced(&cache, config, 10_000, &mut stats, &mut trace);
            assert_eq!(got, want, "hot={hot_threshold}");
            assert_eq!(trace, ref_trace, "hot={hot_threshold}");
        }
    }

    #[test]
    fn crash_taxonomy_matches_the_interpreter() {
        let prelude = "    .global _start\n_start:\n";
        let cases = [
            format!("{prelude}    mov r1, 1\n    halt\n"),
            format!("{prelude}    mov r1, 4\n    mov r2, 0\n    udiv r1, r2\n    svc 0\n"),
            format!("{prelude}    mov r2, 0x99999000\n    load r1, [r2]\n    svc 0\n"),
            format!("{prelude}    mov r2, 0x1000\n    store [r2], r1\n    svc 0\n"),
            format!("{prelude}    svc 200\n"),
            format!("{prelude}    mov r1, target\n    jmpr r1\n    .data\ntarget:\n    .quad 0\n"),
            format!("{prelude}    cmp r1, 1\n    mov r15, 0x40\n    pushf\n    svc 0\n"),
            format!("{prelude}    mov r15, 0x40\n    cmp r1, 1\n    popf\n    svc 0\n"),
        ];
        for src in &cases {
            let exe = assemble_and_link(src).unwrap();
            let mut reference = Machine::new(&exe, &[]);
            let want = reference.run(100);
            let cache = cache_for(&exe);
            let mut m = Machine::new(&exe, &[]);
            let mut stats = BlockStats::default();
            let got = m.run_uops(
                &cache,
                UopConfig { hot_threshold: 0, ..UopConfig::default() },
                100,
                &mut stats,
            );
            assert_eq!(got, want, "{src}");
            assert_state_matches(src, &m, &reference);
        }
    }

    #[test]
    fn poked_code_falls_back_to_the_interpreter() {
        let exe = assemble_and_link(LOOPY).unwrap();
        let cache = cache_for(&exe);
        // Warm the cache so the corrupted block is already compiled.
        let mut warm = BlockStats::default();
        Machine::new(&exe, &[]).run_uops(
            &cache,
            UopConfig { hot_threshold: 0, ..UopConfig::default() },
            10_000,
            &mut warm,
        );
        assert!(warm.blocks_compiled > 0);

        let mut reference = Machine::new(&exe, &[]);
        let mut m = Machine::new(&exe, &[]);
        let target = exe.entry;
        for machine in [&mut reference, &mut m] {
            let byte = machine.peek_bytes(target, 1).unwrap()[0];
            assert!(machine.poke_bytes(target, &[byte ^ 0x40]));
        }
        let want = reference.run(10_000);
        let mut stats = BlockStats::default();
        let got = m.run_uops(
            &cache,
            UopConfig { hot_threshold: 0, ..UopConfig::default() },
            10_000,
            &mut stats,
        );
        assert_eq!(got, want);
        assert_eq!(m.take_output(), reference.take_output());
        assert!(stats.interp_steps > 0, "dirty block must interpret: {stats:?}");
    }

    #[test]
    fn mid_block_entry_at_a_fused_branch_slot_stays_exact() {
        // Jump straight at the `jne` inside the fused pair: the branch
        // slot must behave as a plain jcc against current flags.
        let src = "    .global _start\n\
             _start:\n\
                 mov r1, 1\n\
                 cmp r1, 1\n\
                 jmp .at_branch\n\
             .dead:\n\
                 cmp r1, 99\n\
             .at_branch:\n\
                 jne .dead\n\
                 mov r1, 7\n\
                 svc 0\n";
        let exe = assemble_and_link(src).unwrap();
        let mut reference = Machine::new(&exe, &[]);
        let want = reference.run(100);
        // Every instruction start as a leader maximizes mid-block entry.
        let cache = BlockCache::build(&exe, exe.text_range().chain([exe.entry])).unwrap();
        let mut m = Machine::new(&exe, &[]);
        let mut stats = BlockStats::default();
        let got = m.run_uops(
            &cache,
            UopConfig { hot_threshold: 0, ..UopConfig::default() },
            100,
            &mut stats,
        );
        assert_eq!(got, want);
        assert_state_matches("mid-block entry", &m, &reference);
    }

    #[test]
    fn compile_is_deterministic_and_fuses_cmp_jcc() {
        let exe = assemble_and_link(LOOPY).unwrap();
        let cache = cache_for(&exe);
        let (block, _) = cache.lookup(exe.entry).unwrap();
        let a = compile_block(block);
        let b = compile_block(block);
        assert_eq!(a, b);
        assert_eq!(a.entries.len(), block.body.len(), "one slot per instruction");
        for (entry, &pc) in a.entries.iter().zip(&block.pcs) {
            assert_eq!(entry.pc, pc);
        }
        // The LOOPY loop block ends `cmp r2, 0` + `jne .loop`.
        let loop_block = cache.block_ranges().zip(0u32..).find_map(|(range, _)| {
            let (b, _) = cache.lookup(range.start)?;
            let fused = compile_block(b).entries.iter().any(|e| matches!(e.op, Uop::CmpJcc { .. }));
            fused.then_some(b.start)
        });
        assert!(loop_block.is_some(), "cmp+jne idiom must fuse");
    }

    /// A single-superblock loop rich in optimizer fodder: a
    /// store-to-load pair (forwarding), back-to-back loads of one
    /// address (redundant-load elimination), and arithmetic whose flags
    /// are immediately redefined (dead-flag elimination).
    const FORWARDY: &str = "    .global _start\n\
         _start:\n\
             mov r4, buffer\n\
             mov r2, 5\n\
         .loop:\n\
             store [r4], r2\n\
             load r1, [r4]\n\
             load r3, [r4]\n\
             add r1, 1\n\
             sub r2, 1\n\
             cmp r2, 0\n\
             jne .loop\n\
             mov r1, 0\n\
             svc 0\n\
             .data\n\
         buffer:\n\
             .space 8\n";

    #[test]
    fn optimized_execution_matches_the_exact_lowering() {
        for src in [LOOPY, FLAGGY, FORWARDY] {
            let exe = assemble_and_link(src).unwrap();
            let mut reference = Machine::new(&exe, &[]);
            let want = reference.run(10_000);

            let mut results = Vec::new();
            for opt in [OptLevel::None, OptLevel::Full] {
                // Fresh cache per level: the first promotion's config
                // decides the shared body.
                let cache = cache_for(&exe);
                let mut m = Machine::new(&exe, &[]);
                let mut stats = BlockStats::default();
                let mut trace = Vec::new();
                let config = UopConfig { hot_threshold: 0, opt };
                let got = m.run_uops_traced(&cache, config, 10_000, &mut stats, &mut trace);
                assert_eq!(got, want, "opt {opt}");
                assert_state_matches(&format!("opt {opt}"), &m, &reference);
                results.push((trace, stats));
            }
            let (none_trace, none_stats) = &results[0];
            let (full_trace, full_stats) = &results[1];
            assert_eq!(none_trace, full_trace, "optimization must not change the trace");
            assert_eq!(none_stats.blocks_optimized, 0, "{none_stats:?}");
            assert_eq!(none_stats.uops_eliminated, 0, "{none_stats:?}");
            assert_eq!(none_stats.total(), full_stats.total());
            if std::ptr::eq(src, FORWARDY) {
                assert!(full_stats.blocks_optimized > 0, "{full_stats:?}");
                assert!(full_stats.uops_eliminated > 0, "{full_stats:?}");
                assert!(full_stats.loads_forwarded >= 2, "{full_stats:?}");
                assert!(full_stats.flag_defs_killed > 0, "{full_stats:?}");
            }
        }
    }

    #[test]
    fn fenced_optimized_runs_stay_exact() {
        // Chunked runs over the forwarding-rich loop: fences land at
        // every offset, forcing constant hand-offs between the
        // optimized body (full passes) and the exact body (tails).
        let exe = assemble_and_link(FORWARDY).unwrap();
        let total = {
            let mut m = Machine::new(&exe, &[]);
            m.run(10_000).steps
        };
        let cache = cache_for(&exe);
        for fence in 0..=total + 2 {
            let mut reference = Machine::new(&exe, &[]);
            let want = reference.run(fence);
            let mut m = Machine::new(&exe, &[]);
            let mut stats = BlockStats::default();
            let config = UopConfig { hot_threshold: 0, opt: OptLevel::Full };
            let got = m.run_uops(&cache, config, fence, &mut stats);
            assert_eq!(got, want, "fence={fence}");
            assert_state_matches(&format!("fence={fence}"), &m, &reference);
        }
    }

    #[test]
    fn opt_level_parses_and_displays() {
        assert_eq!("none".parse::<OptLevel>(), Ok(OptLevel::None));
        assert_eq!("full".parse::<OptLevel>(), Ok(OptLevel::Full));
        assert!("fast".parse::<OptLevel>().is_err());
        assert_eq!(OptLevel::Full.to_string(), "full");
        assert_eq!(OptLevel::default(), OptLevel::Full);
    }

    #[test]
    fn ir_bridge_lowers_blocks_to_verified_functions() {
        let src = "    .global _start\n\
             _start:\n\
                 mov r1, 5\n\
                 add r1, 3\n\
                 mov r2, buffer\n\
                 store [r2], r1\n\
                 load r3, [r2]\n\
                 cmp r3, 8\n\
                 jne .bad\n\
                 mov r1, 0\n\
                 svc 0\n\
             .bad:\n\
                 halt\n\
                 .data\n\
             buffer:\n\
                 .space 8\n";
        let exe = assemble_and_link(src).unwrap();
        let cache = cache_for(&exe);
        let f = lower_block_to_ir(&cache, exe.entry).expect("bridged subset");
        rr_ir::verify_function(&f, None).expect("bridge emits verified IR");
        // The trailing jne becomes a CondBr seam.
        let has_condbr =
            f.block_ids().any(|id| matches!(f.block(id).term, rr_ir::Terminator::CondBr { .. }));
        assert!(has_condbr, "conditional tail lowers to CondBr");
        // No block there at a data address.
        assert!(lower_block_to_ir(&cache, 0).is_none());
    }
}
