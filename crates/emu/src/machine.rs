//! The CPU interpreter.

use crate::memory::{AccessKind, Memory, MemoryDelta, MemoryStats};
use crate::outcome::{CpuFault, RunOutcome};
use rr_isa::{decode, AluOp, Flags, Instr, Reg, ShiftOp, MAX_INSTR_LEN, STACK_TOP};
use rr_obj::Executable;
use std::sync::Arc;

/// Default step budget for [`Machine::run`]-style helpers.
pub const DEFAULT_MAX_STEPS: u64 = 1_000_000;

/// Result of running the machine for a bounded number of steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Instructions actually executed.
    pub steps: u64,
}

/// An RRVM machine instance: registers, flags, memory, and I/O streams.
///
/// See the crate docs for the service (`svc`) table. The machine is
/// deterministic: identical executables and inputs produce identical runs,
/// which fault campaigns rely on to compare faulted runs against golden
/// ones.
#[derive(Debug, Clone)]
pub struct Machine {
    regs: [u64; 16],
    flags: Flags,
    pc: u64,
    memory: Memory,
    /// Shared with snapshots: the input stream is immutable, only the
    /// cursor moves.
    input: Arc<Vec<u8>>,
    input_pos: usize,
    /// Copy-on-write like memory regions: snapshots share the buffer and
    /// the next write after a capture copies it.
    output: Arc<Vec<u8>>,
    /// Set once the machine has stopped (exit or fault); further stepping
    /// is a no-op returning the same outcome.
    stopped: Option<RunOutcome>,
}

/// A point-in-time capture of a machine's complete architectural state:
/// registers, flags, program counter, memory, I/O cursor, accumulated
/// output, and stopped status.
///
/// Snapshots are cheap: memory pages, the input stream, and the output
/// buffer are all copy-on-write, so a capture is O(pages) reference
/// bumps — no byte is copied — and the pages a later run dirties are
/// unshared 4 KiB at a time, so a retained snapshot's footprint is
/// proportional to the bytes its interval actually touched
/// ([`Snapshot::dirtied_since`] measures exactly that). They are also
/// [`Send`] + [`Sync`], so a recording pass can publish snapshots that
/// many replay workers restore concurrently — the foundation of the
/// `rr-engine` checkpointed campaign scheduler.
///
/// Internally a snapshot is simply a (cheap) clone of the whole machine,
/// which makes it impossible to forget a field when the machine grows
/// new state.
#[derive(Debug, Clone)]
pub struct Snapshot(Machine);

impl Snapshot {
    /// Program counter at capture time.
    pub fn pc(&self) -> u64 {
        self.0.pc
    }

    /// Residency of the captured memory (materialized vs zero pages).
    pub fn memory_stats(&self) -> MemoryStats {
        self.0.memory.stats()
    }

    /// Memory pages this capture no longer shares with `baseline` — the
    /// bytes an interval of execution between the two captures dirtied.
    /// Both snapshots must come from machines for the same executable.
    /// This is the accounting the `rr-engine` checkpoint byte budget and
    /// footprint reports are built on.
    pub fn dirtied_since(&self, baseline: &Snapshot) -> MemoryDelta {
        self.0.memory.delta(&baseline.0.memory)
    }

    /// Bytes a page-granular COW with a hypothetical `page_size` would
    /// retain for this snapshot against `baseline`
    /// ([`Memory::retained_bytes_at`]).
    pub fn retained_bytes_at(&self, baseline: &Snapshot, page_size: usize) -> u64 {
        self.0.memory.retained_bytes_at(&baseline.0.memory, page_size)
    }
}

impl Machine {
    /// Creates a machine loaded with `exe`, its PC at the entry point, `sp`
    /// at the stack top, and `input` as the program's input stream.
    pub fn new(exe: &Executable, input: &[u8]) -> Machine {
        let mut regs = [0u64; 16];
        regs[Reg::SP.index() as usize] = STACK_TOP;
        Machine {
            regs,
            flags: Flags::CLEAR,
            pc: exe.entry,
            memory: Memory::for_executable(exe),
            input: Arc::new(input.to_vec()),
            input_pos: 0,
            output: Arc::new(Vec::new()),
            stopped: None,
        }
    }

    /// Captures the machine's complete state. O(pages) reference bumps
    /// thanks to page-granular copy-on-write memory and output; the
    /// returned [`Snapshot`] stays valid no matter how this machine runs
    /// on.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot(self.clone())
    }

    /// Rewinds this machine to a previously captured snapshot. The
    /// snapshot must come from a machine created for the same executable
    /// and input (snapshots carry their input stream, so the pairing is
    /// restored too).
    pub fn restore(&mut self, snapshot: &Snapshot) {
        *self = snapshot.0.clone();
    }

    /// Materializes a fresh machine from a snapshot (equivalent to
    /// rebuilding the original machine and replaying it to the capture
    /// point, but O(pages)).
    pub fn from_snapshot(snapshot: &Snapshot) -> Machine {
        snapshot.0.clone()
    }

    /// Current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Overrides the program counter (used by fault models that corrupt
    /// control flow).
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index() as usize]
    }

    /// Writes a register (used by register-corruption fault models).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        self.regs[r.index() as usize] = value;
    }

    /// Current flags.
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// Overrides the flags (flag-corruption fault models).
    pub fn set_flags(&mut self, flags: Flags) {
        self.flags = flags;
    }

    /// The output written so far.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// Takes ownership of the output buffer (cloning only if a snapshot
    /// still shares it).
    pub fn take_output(&mut self) -> Vec<u8> {
        Arc::unwrap_or_clone(std::mem::take(&mut self.output))
    }

    /// Whether the machine has stopped, and how.
    pub fn stopped(&self) -> Option<RunOutcome> {
        self.stopped
    }

    /// Physical memory write ignoring permissions (bit-flip injection into
    /// code). Returns `false` if the target range is unmapped.
    pub fn poke_bytes(&mut self, addr: u64, data: &[u8]) -> bool {
        self.memory.poke(addr, data)
    }

    /// Physical memory read ignoring permissions.
    pub fn peek_bytes(&self, addr: u64, len: usize) -> Option<&[u8]> {
        self.memory.peek(addr, len)
    }

    /// Checked memory view (respects permissions), for oracles inspecting
    /// program state.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Residency of this machine's memory (materialized vs zero pages).
    pub fn memory_stats(&self) -> MemoryStats {
        self.memory.stats()
    }

    /// Memory pages this machine no longer shares with `snapshot` — the
    /// bytes dirtied since (or, for an unrelated capture of the same
    /// executable, the divergence between the two states).
    pub fn dirtied_since(&self, snapshot: &Snapshot) -> MemoryDelta {
        self.memory.delta(&snapshot.0.memory)
    }

    /// Decodes the instruction at the current PC without executing it.
    ///
    /// # Errors
    ///
    /// Returns the [`CpuFault`] the machine would raise on this fetch.
    pub fn fetch_decode(&self) -> Result<(Instr, usize), CpuFault> {
        let bytes = self
            .memory
            .fetch(self.pc, MAX_INSTR_LEN)
            .map_err(|(addr, _)| CpuFault::ExecFault { addr })?;
        decode(bytes).map_err(CpuFault::IllegalInstruction)
    }

    /// Implements the "instruction skip" fault: advances PC over the
    /// current instruction without executing it.
    ///
    /// # Errors
    ///
    /// Propagates the decode fault if the current bytes are not a valid
    /// instruction (a skip cannot be applied to an undecodable site).
    pub fn skip_instruction(&mut self) -> Result<(), CpuFault> {
        let (_, len) = self.fetch_decode()?;
        self.pc += len as u64;
        Ok(())
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns the [`CpuFault`] that stopped the machine. After any error
    /// (or normal exit) the machine is stopped and further calls return the
    /// recorded outcome's fault or do nothing for exits.
    pub fn step(&mut self) -> Result<(), CpuFault> {
        if let Some(RunOutcome::Crashed { fault, .. }) = self.stopped {
            return Err(fault);
        }
        if self.stopped.is_some() {
            return Ok(());
        }
        match self.step_inner() {
            Ok(()) => Ok(()),
            Err(fault) => {
                self.stopped = Some(RunOutcome::Crashed { fault, pc: self.pc });
                Err(fault)
            }
        }
    }

    /// Executes one *pre-decoded* instruction with the same sticky-stop
    /// contract as [`Machine::step`], but without fetching or decoding —
    /// the block-cached fast path (`Machine::run_blocks`). The caller
    /// guarantees `(insn, len)` is what [`Machine::fetch_decode`] would
    /// return at the current PC (the block cache enforces this with its
    /// exec-dirty fallback and per-instruction PC checks).
    ///
    /// # Errors
    ///
    /// Returns the [`CpuFault`] that stopped the machine, exactly like
    /// [`Machine::step`].
    pub(crate) fn step_decoded(&mut self, insn: Instr, len: usize) -> Result<(), CpuFault> {
        if let Some(RunOutcome::Crashed { fault, .. }) = self.stopped {
            return Err(fault);
        }
        if self.stopped.is_some() {
            return Ok(());
        }
        match self.exec_decoded(insn, len) {
            Ok(()) => Ok(()),
            Err(fault) => {
                self.stopped = Some(RunOutcome::Crashed { fault, pc: self.pc });
                Err(fault)
            }
        }
    }

    pub(crate) fn mem_fault((addr, access): (u64, AccessKind)) -> CpuFault {
        CpuFault::MemoryFault { addr, access }
    }

    /// Mutable memory access for the in-crate execution engines (the
    /// micro-op tier performs its own loads/stores).
    pub(crate) fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// Records a crash at the current PC with the same contract as the
    /// [`Machine::step`] error path: the machine sticks to the recorded
    /// outcome and further stepping returns it.
    pub(crate) fn stop_crashed(&mut self, fault: CpuFault) {
        self.stopped = Some(RunOutcome::Crashed { fault, pc: self.pc });
    }

    fn step_inner(&mut self) -> Result<(), CpuFault> {
        let (insn, len) = self.fetch_decode()?;
        self.exec_decoded(insn, len)
    }

    /// Executes an already-decoded instruction (the shared back half of
    /// [`Machine::step`] and the block-cached path).
    fn exec_decoded(&mut self, insn: Instr, len: usize) -> Result<(), CpuFault> {
        let next_pc = self.pc + len as u64;
        self.pc = next_pc;
        match insn {
            Instr::Nop => {}
            Instr::Halt => {
                // Record the faulting pc as the halt site, not the successor.
                self.pc = next_pc - len as u64;
                return Err(CpuFault::Halted);
            }
            Instr::MovRR { rd, rs } => self.set_reg(rd, self.reg(rs)),
            Instr::MovRI { rd, imm } => self.set_reg(rd, imm),
            Instr::AluRR { op, rd, rs } => self.alu(op, rd, self.reg(rs))?,
            Instr::AluRI { op, rd, imm } => self.alu(op, rd, imm as i64 as u64)?,
            Instr::ShiftRI { op, rd, amt } => self.shift(op, rd, amt),
            Instr::Not { rd } => {
                let res = !self.reg(rd);
                self.set_reg(rd, res);
                self.flags = Flags::from_logic(res);
            }
            Instr::Neg { rd } => {
                let value = self.reg(rd);
                let res = value.wrapping_neg();
                self.set_reg(rd, res);
                self.flags = Flags::from_sub(0, value);
            }
            Instr::CmpRR { rs1, rs2 } => self.flags = Flags::from_sub(self.reg(rs1), self.reg(rs2)),
            Instr::CmpRI { rs1, imm } => {
                self.flags = Flags::from_sub(self.reg(rs1), imm as i64 as u64)
            }
            Instr::CmpRM { rs1, base, disp } => {
                let addr = self.reg(base).wrapping_add(disp as i64 as u64);
                let value = self.memory.read_u64(addr).map_err(Self::mem_fault)?;
                self.flags = Flags::from_sub(self.reg(rs1), value);
            }
            Instr::TestRR { rs1, rs2 } => {
                self.flags = Flags::from_logic(self.reg(rs1) & self.reg(rs2))
            }
            Instr::Load { rd, base, disp } => {
                let addr = self.reg(base).wrapping_add(disp as i64 as u64);
                let value = self.memory.read_u64(addr).map_err(Self::mem_fault)?;
                self.set_reg(rd, value);
            }
            Instr::Store { base, disp, rs } => {
                let addr = self.reg(base).wrapping_add(disp as i64 as u64);
                self.memory.write_u64(addr, self.reg(rs)).map_err(Self::mem_fault)?;
            }
            Instr::LoadB { rd, base, disp } => {
                let addr = self.reg(base).wrapping_add(disp as i64 as u64);
                let value = self.memory.read_u8(addr).map_err(Self::mem_fault)?;
                self.set_reg(rd, u64::from(value));
            }
            Instr::StoreB { base, disp, rs } => {
                let addr = self.reg(base).wrapping_add(disp as i64 as u64);
                self.memory.write_u8(addr, self.reg(rs) as u8).map_err(Self::mem_fault)?;
            }
            Instr::Lea { rd, base, disp } => {
                self.set_reg(rd, self.reg(base).wrapping_add(disp as i64 as u64))
            }
            Instr::Push { rs } => self.push(self.reg(rs))?,
            Instr::Pop { rd } => {
                let value = self.pop()?;
                self.set_reg(rd, value);
            }
            Instr::PushF => self.push(self.flags.to_bits())?,
            Instr::PopF => {
                let bits = self.pop()?;
                self.flags = Flags::from_bits(bits);
            }
            Instr::Jmp { rel } => self.pc = next_pc.wrapping_add(rel as i64 as u64),
            Instr::Jcc { cc, rel } => {
                if cc.eval(self.flags) {
                    self.pc = next_pc.wrapping_add(rel as i64 as u64);
                }
            }
            Instr::Call { rel } => {
                self.push(next_pc)?;
                self.pc = next_pc.wrapping_add(rel as i64 as u64);
            }
            Instr::CallR { rs } => {
                let target = self.reg(rs);
                self.push(next_pc)?;
                self.pc = target;
            }
            Instr::JmpR { rs } => self.pc = self.reg(rs),
            Instr::Ret => self.pc = self.pop()?,
            Instr::SetCc { rd, cc } => self.set_reg(rd, u64::from(cc.eval(self.flags))),
            Instr::Svc { num } => self.service(num)?,
        }
        Ok(())
    }

    pub(crate) fn alu(&mut self, op: AluOp, rd: Reg, rhs: u64) -> Result<(), CpuFault> {
        let lhs = self.reg(rd);
        let (res, flags) = match op {
            AluOp::Add => (lhs.wrapping_add(rhs), Flags::from_add(lhs, rhs)),
            AluOp::Sub => (lhs.wrapping_sub(rhs), Flags::from_sub(lhs, rhs)),
            AluOp::And => {
                let r = lhs & rhs;
                (r, Flags::from_logic(r))
            }
            AluOp::Or => {
                let r = lhs | rhs;
                (r, Flags::from_logic(r))
            }
            AluOp::Xor => {
                let r = lhs ^ rhs;
                (r, Flags::from_logic(r))
            }
            AluOp::Mul => {
                let (r, overflow) = lhs.overflowing_mul(rhs);
                let mut f = Flags::from_logic(r);
                f.c = overflow;
                f.v = overflow;
                (r, f)
            }
            AluOp::Udiv => {
                if rhs == 0 {
                    return Err(CpuFault::DivideByZero);
                }
                let r = lhs / rhs;
                (r, Flags::from_logic(r))
            }
        };
        self.set_reg(rd, res);
        self.flags = flags;
        Ok(())
    }

    fn shift(&mut self, op: ShiftOp, rd: Reg, amt: u8) {
        let amt = u32::from(amt & 63);
        if amt == 0 {
            return; // zero-count shifts leave flags and value unchanged
        }
        let value = self.reg(rd);
        let (res, carry) = match op {
            ShiftOp::Shl => (value << amt, value >> (64 - amt) & 1 == 1),
            ShiftOp::Shr => (value >> amt, value >> (amt - 1) & 1 == 1),
            ShiftOp::Sar => (((value as i64) >> amt) as u64, (value as i64) >> (amt - 1) & 1 == 1),
        };
        self.set_reg(rd, res);
        let mut flags = Flags::from_logic(res);
        flags.c = carry;
        self.flags = flags;
    }

    pub(crate) fn push(&mut self, value: u64) -> Result<(), CpuFault> {
        let sp = self.reg(Reg::SP).wrapping_sub(8);
        self.memory.write_u64(sp, value).map_err(Self::mem_fault)?;
        self.set_reg(Reg::SP, sp);
        Ok(())
    }

    pub(crate) fn pop(&mut self) -> Result<u64, CpuFault> {
        let sp = self.reg(Reg::SP);
        let value = self.memory.read_u64(sp).map_err(Self::mem_fault)?;
        self.set_reg(Reg::SP, sp.wrapping_add(8));
        Ok(value)
    }

    pub(crate) fn service(&mut self, num: u8) -> Result<(), CpuFault> {
        match num {
            0 => {
                self.stopped = Some(RunOutcome::Exited { code: self.reg(Reg::R1) });
                Ok(())
            }
            1 => {
                let byte = self.reg(Reg::R1) as u8;
                Arc::make_mut(&mut self.output).push(byte);
                Ok(())
            }
            2 => {
                let value = match self.input.get(self.input_pos) {
                    Some(&b) => {
                        self.input_pos += 1;
                        u64::from(b)
                    }
                    None => u64::MAX,
                };
                self.set_reg(Reg::R0, value);
                Ok(())
            }
            3 => {
                let text = self.reg(Reg::R1).to_string();
                Arc::make_mut(&mut self.output).extend_from_slice(text.as_bytes());
                Ok(())
            }
            other => Err(CpuFault::BadService(other)),
        }
    }

    /// Runs until exit, fault, or `max_steps` instructions.
    pub fn run(&mut self, max_steps: u64) -> RunResult {
        self.run_with(max_steps, |_| {})
    }

    /// Like [`Machine::run`], invoking `before_step` before each
    /// instruction executes (used for tracing).
    pub fn run_with(&mut self, max_steps: u64, mut before_step: impl FnMut(&Machine)) -> RunResult {
        let mut steps = 0u64;
        while steps < max_steps {
            if let Some(outcome) = self.stopped {
                return RunResult { outcome, steps };
            }
            before_step(self);
            let _ = self.step();
            steps += 1;
        }
        match self.stopped {
            Some(outcome) => RunResult { outcome, steps },
            None => RunResult { outcome: RunOutcome::TimedOut, steps },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_asm::assemble_and_link;

    fn run_src(src: &str) -> (RunOutcome, Vec<u8>) {
        run_src_with_input(src, &[])
    }

    fn run_src_with_input(src: &str, input: &[u8]) -> (RunOutcome, Vec<u8>) {
        let exe = assemble_and_link(src).expect("assembly should succeed");
        let mut m = Machine::new(&exe, input);
        let result = m.run(100_000);
        (result.outcome, m.take_output())
    }

    const PRELUDE: &str = "    .global _start\n_start:\n";

    #[test]
    fn arithmetic_and_exit_code() {
        let (outcome, _) =
            run_src(&format!("{PRELUDE}    mov r1, 6\n    mov r2, 7\n    mul r1, r2\n    svc 0\n"));
        assert_eq!(outcome, RunOutcome::Exited { code: 42 });
    }

    #[test]
    fn flags_drive_conditional_jumps() {
        let (outcome, out) = run_src(&format!(
            "{PRELUDE}\
                 mov r1, 5\n\
                 cmp r1, 5\n\
                 je .eq\n\
                 mov r1, 'N'\n\
                 jmp .print\n\
             .eq:\n\
                 mov r1, 'Y'\n\
             .print:\n\
                 svc 1\n\
                 mov r1, 0\n\
                 svc 0\n"
        ));
        assert_eq!(outcome, RunOutcome::Exited { code: 0 });
        assert_eq!(out, b"Y");
    }

    #[test]
    fn call_ret_and_stack() {
        let (outcome, _) = run_src(
            "    .global _start\n\
             _start:\n\
                 mov r1, 20\n\
                 call double\n\
                 svc 0\n\
             double:\n\
                 add r1, r1\n\
                 ret\n",
        );
        assert_eq!(outcome, RunOutcome::Exited { code: 40 });
    }

    #[test]
    fn push_pop_round_trip() {
        let (outcome, _) = run_src(&format!(
            "{PRELUDE}    mov r1, 99\n    push r1\n    mov r1, 0\n    pop r1\n    svc 0\n"
        ));
        assert_eq!(outcome, RunOutcome::Exited { code: 99 });
    }

    #[test]
    fn pushf_popf_preserve_flags() {
        // Set Z via cmp, clobber flags, restore, then jump on Z.
        let (outcome, _) = run_src(&format!(
            "{PRELUDE}\
                 mov r1, 1\n\
                 cmp r1, 1\n\
                 pushf\n\
                 cmp r1, 0\n\
                 popf\n\
                 je .good\n\
                 mov r1, 1\n\
                 svc 0\n\
             .good:\n\
                 mov r1, 0\n\
                 svc 0\n"
        ));
        assert_eq!(outcome, RunOutcome::Exited { code: 0 });
    }

    #[test]
    fn memory_round_trip_and_byte_ops() {
        let (outcome, out) = run_src(&format!(
            "{PRELUDE}\
                 mov r2, buffer\n\
                 mov r1, 0x4142\n\
                 store [r2], r1\n\
                 loadb r1, [r2+1]\n\
                 svc 1\n\
                 loadb r1, [r2]\n\
                 svc 1\n\
                 mov r1, 0\n\
                 svc 0\n\
                 .data\n\
             buffer:\n\
                 .space 8\n"
        ));
        assert_eq!(outcome, RunOutcome::Exited { code: 0 });
        // 0x4142 little-endian: byte 0 is 0x42 ('B'), byte 1 is 0x41 ('A').
        assert_eq!(out, b"AB");
    }

    #[test]
    fn input_stream_and_eof() {
        let src = format!(
            "{PRELUDE}\
                 svc 2\n\
                 mov r1, r0\n\
                 svc 1\n\
                 svc 2\n\
                 cmp r0, -1\n\
                 jne .more\n\
                 mov r1, 0\n\
                 svc 0\n\
             .more:\n\
                 mov r1, 1\n\
                 svc 0\n"
        );
        let (outcome, out) = run_src_with_input(&src, b"Q");
        assert_eq!(outcome, RunOutcome::Exited { code: 0 });
        assert_eq!(out, b"Q");
    }

    #[test]
    fn decimal_output_service() {
        let (_, out) =
            run_src(&format!("{PRELUDE}    mov r1, 12345\n    svc 3\n    mov r1, 0\n    svc 0\n"));
        assert_eq!(out, b"12345");
    }

    #[test]
    fn crash_taxonomy() {
        // Unmapped read.
        let (outcome, _) =
            run_src(&format!("{PRELUDE}    mov r2, 0x99999000\n    load r1, [r2]\n    svc 0\n"));
        assert!(matches!(
            outcome,
            RunOutcome::Crashed {
                fault: CpuFault::MemoryFault { access: AccessKind::Read, .. },
                ..
            }
        ));

        // Write to .text (W^X).
        let (outcome, _) =
            run_src(&format!("{PRELUDE}    mov r2, 0x1000\n    store [r2], r1\n    svc 0\n"));
        assert!(matches!(
            outcome,
            RunOutcome::Crashed {
                fault: CpuFault::MemoryFault { access: AccessKind::Write, .. },
                ..
            }
        ));

        // Divide by zero.
        let (outcome, _) = run_src(&format!(
            "{PRELUDE}    mov r1, 4\n    mov r2, 0\n    udiv r1, r2\n    svc 0\n"
        ));
        assert!(matches!(outcome, RunOutcome::Crashed { fault: CpuFault::DivideByZero, .. }));

        // Halt is an abnormal stop.
        let (outcome, _) = run_src(&format!("{PRELUDE}    halt\n"));
        assert!(matches!(outcome, RunOutcome::Crashed { fault: CpuFault::Halted, .. }));

        // Unknown service.
        let (outcome, _) = run_src(&format!("{PRELUDE}    svc 200\n"));
        assert!(matches!(outcome, RunOutcome::Crashed { fault: CpuFault::BadService(200), .. }));

        // Indirect jump into data → exec fault.
        let (outcome, _) = run_src(&format!(
            "{PRELUDE}    mov r1, target\n    jmpr r1\n    .data\ntarget:\n    .quad 0\n"
        ));
        assert!(matches!(outcome, RunOutcome::Crashed { fault: CpuFault::ExecFault { .. }, .. }));
    }

    #[test]
    fn timeout_on_infinite_loop() {
        let exe = assemble_and_link(&format!("{PRELUDE}.loop:\n    jmp .loop\n")).unwrap();
        let mut m = Machine::new(&exe, &[]);
        let result = m.run(1000);
        assert_eq!(result.outcome, RunOutcome::TimedOut);
        assert_eq!(result.steps, 1000);
    }

    #[test]
    fn illegal_instruction_after_bit_flip() {
        // Flip a bit in the opcode of the first instruction so it decodes
        // to an unassigned opcode, then observe the crash.
        let exe = assemble_and_link(&format!("{PRELUDE}    mov r1, 0\n    svc 0\n")).unwrap();
        let mut m = Machine::new(&exe, &[]);
        // mov r1, imm64 has opcode 0x06 at entry; flip bit 7 → 0x86 (invalid).
        let entry = exe.entry;
        let byte = m.peek_bytes(entry, 1).unwrap()[0];
        assert!(m.poke_bytes(entry, &[byte ^ 0x80]));
        let result = m.run(10);
        assert!(matches!(
            result.outcome,
            RunOutcome::Crashed { fault: CpuFault::IllegalInstruction(_), .. }
        ));
    }

    #[test]
    fn skip_instruction_advances_pc() {
        let exe = assemble_and_link(&format!("{PRELUDE}    mov r1, 7\n    svc 0\n")).unwrap();
        let mut m = Machine::new(&exe, &[]);
        // Skip the mov: r1 stays 0, so exit code is 0 instead of 7.
        m.skip_instruction().unwrap();
        let result = m.run(10);
        assert_eq!(result.outcome, RunOutcome::Exited { code: 0 });
    }

    #[test]
    fn traces_record_every_pc() {
        let exe =
            assemble_and_link(&format!("{PRELUDE}    nop\n    nop\n    mov r1, 0\n    svc 0\n"))
                .unwrap();
        let (exec, trace) = crate::execute_traced(&exe, &[], 100);
        assert_eq!(exec.outcome, RunOutcome::Exited { code: 0 });
        assert_eq!(trace.len(), 4);
        assert_eq!(trace[0], exe.entry);
        assert_eq!(trace[1], exe.entry + 1);
        assert_eq!(trace[2], exe.entry + 2);
    }

    #[test]
    fn stopped_machine_is_sticky() {
        let exe =
            assemble_and_link(&format!("{PRELUDE}    mov r1, 3\n    svc 0\n    svc 1\n")).unwrap();
        let mut m = Machine::new(&exe, &[]);
        let r1 = m.run(100);
        assert_eq!(r1.outcome, RunOutcome::Exited { code: 3 });
        // Running again does not execute the trailing svc 1.
        let r2 = m.run(100);
        assert_eq!(r2.outcome, RunOutcome::Exited { code: 3 });
        assert!(m.output().is_empty());
    }

    #[test]
    fn shift_semantics() {
        let (outcome, _) =
            run_src(&format!("{PRELUDE}    mov r1, 1\n    shl r1, 4\n    shr r1, 1\n    svc 0\n"));
        assert_eq!(outcome, RunOutcome::Exited { code: 8 });
        // Arithmetic shift preserves sign.
        let (outcome, _) =
            run_src(&format!("{PRELUDE}    mov r1, -16\n    sar r1, 2\n    neg r1\n    svc 0\n"));
        assert_eq!(outcome, RunOutcome::Exited { code: 4 });
    }

    #[test]
    fn setcc_materializes_conditions() {
        let (outcome, _) = run_src(&format!(
            "{PRELUDE}\
                 mov r1, 3\n\
                 cmp r1, 5\n\
                 setlt r1\n\
                 svc 0\n"
        ));
        assert_eq!(outcome, RunOutcome::Exited { code: 1 });
    }

    #[test]
    fn snapshot_restore_round_trips_full_state() {
        // A program exercising registers, flags, memory, input, and output
        // before and after the capture point.
        let src = "    .global _start\n\
                   _start:\n\
                       svc 2\n\
                       mov r1, r0\n\
                       svc 1\n\
                       mov r2, buffer\n\
                       store [r2], r1\n\
                       cmp r1, 'A'\n\
                       svc 2\n\
                       mov r1, r0\n\
                       svc 1\n\
                       load r3, [r2]\n\
                       mov r1, 0\n\
                       svc 0\n\
                       .data\n\
                   buffer:\n\
                       .space 8\n";
        let exe = assemble_and_link(src).unwrap();
        let mut m = Machine::new(&exe, b"AB");
        // Execute up to and including the cmp (6 instructions).
        for _ in 0..6 {
            m.step().unwrap();
        }
        let snap = m.snapshot();
        assert_eq!(snap.pc(), m.pc());

        // Run the original to completion, then restore and re-run: the
        // register file, flags, memory, input cursor, and output must all
        // have rewound, so the completions are identical.
        let first = m.run(100);
        assert_eq!(first.outcome, RunOutcome::Exited { code: 0 });
        let final_output = m.output().to_vec();
        let final_r3 = m.reg(Reg::R3);

        m.restore(&snap);
        assert_eq!(m.pc(), snap.pc());
        assert_eq!(m.stopped(), None);
        assert_eq!(m.output(), b"A", "output rewound to the capture point");
        let again = m.run(100);
        assert_eq!(again.outcome, first.outcome);
        assert_eq!(again.steps, first.steps);
        assert_eq!(m.output(), final_output.as_slice());
        assert_eq!(m.reg(Reg::R3), final_r3);

        // A machine materialized from the snapshot behaves identically.
        let mut fresh = Machine::from_snapshot(&snap);
        assert_eq!(fresh.flags(), snap.0.flags());
        let fresh_run = fresh.run(100);
        assert_eq!(fresh_run.outcome, first.outcome);
        assert_eq!(fresh.output(), final_output.as_slice());
    }

    #[test]
    fn snapshot_isolates_later_memory_writes() {
        let src = format!(
            "{PRELUDE}\
                 mov r2, buffer\n\
                 mov r1, 1\n\
                 store [r2], r1\n\
                 mov r1, 2\n\
                 store [r2], r1\n\
                 svc 0\n\
                 .data\n\
             buffer:\n\
                 .space 8\n"
        );
        let exe = assemble_and_link(&src).unwrap();
        let mut m = Machine::new(&exe, &[]);
        for _ in 0..3 {
            m.step().unwrap(); // first store done: buffer = 1
        }
        let snap = m.snapshot();
        m.run(10); // second store overwrites buffer with 2
        let data_base = exe.section_range(rr_obj::SectionKind::Data).unwrap().start;
        assert_eq!(m.peek_bytes(data_base, 1).unwrap()[0], 2);
        // The snapshot still sees 1 (copy-on-write protected it).
        let restored = Machine::from_snapshot(&snap);
        assert_eq!(restored.peek_bytes(data_base, 1).unwrap()[0], 1);
    }

    #[test]
    fn snapshot_preserves_stopped_state() {
        let exe = assemble_and_link(&format!("{PRELUDE}    mov r1, 9\n    svc 0\n")).unwrap();
        let mut m = Machine::new(&exe, &[]);
        let result = m.run(10);
        assert_eq!(result.outcome, RunOutcome::Exited { code: 9 });
        let snap = m.snapshot();
        let mut restored = Machine::from_snapshot(&snap);
        assert_eq!(restored.stopped(), Some(RunOutcome::Exited { code: 9 }));
        // A stopped machine stays stopped after restore.
        let rerun = restored.run(10);
        assert_eq!(rerun.outcome, RunOutcome::Exited { code: 9 });
        assert_eq!(rerun.steps, 0);
    }

    #[test]
    fn snapshot_preserves_input_cursor() {
        let src = format!(
            "{PRELUDE}    svc 2\n    svc 2\n    mov r1, r0\n    svc 1\n    mov r1, 0\n    svc 0\n"
        );
        let exe = assemble_and_link(&src).unwrap();
        let mut m = Machine::new(&exe, b"XYZ");
        m.step().unwrap(); // consumed 'X'
        let snap = m.snapshot();
        m.run(10);
        assert_eq!(m.output(), b"Y");
        // Restoring rewinds the cursor to after 'X', so the next read is
        // 'Y' again — not 'Z'.
        m.restore(&snap);
        m.run(10);
        assert_eq!(m.output(), b"Y");
    }

    #[test]
    fn callr_through_register() {
        let (outcome, _) = run_src(
            "    .global _start\n\
             _start:\n\
                 mov r6, target\n\
                 mov r1, 5\n\
                 callr r6\n\
                 svc 0\n\
             target:\n\
                 add r1, 10\n\
                 ret\n",
        );
        assert_eq!(outcome, RunOutcome::Exited { code: 15 });
    }
}
