//! Uop backend: per-slot codegen facts for optimized superblock traces.
//!
//! The `rr-emu` uop tier lowers a hot superblock to RRIR (one *slot* —
//! a contiguous arena range — per machine instruction), runs the
//! `rr-ir` block pipeline over it, and needs to turn the optimized
//! function back into a flat uop trace. The uop vocabulary is private
//! to the emulator, so this backend does not emit uops: it distills
//! each slot of the optimized entry block into a [`SlotPlan`] — *what
//! is left* of the instruction after optimization — and the emulator
//! maps plans onto its own instruction set (a constant-writing slot
//! becomes a register-immediate move, a slot with no remaining flag
//! writes drops its lazy-flag bookkeeping, a slot whose load was
//! forwarded away skips memory entirely).
//!
//! Slots are recovered positionally: the bridge records the arena
//! index each instruction's lowering started at, in-place passes keep
//! arena indices stable (deletions only unplace ops), and placement
//! order within the entry block is instruction order — so a placed
//! op's slot is a partition-point lookup away.

use rr_ir::{Cell, Function, Op, ValueId};

/// What one instruction slot still does after optimization.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlotPlan {
    /// The slot still writes at least one condition flag.
    pub writes_flags: bool,
    /// Memory ops (loads + stores) remaining in the slot.
    pub mem_ops: u32,
    /// The slot still performs a call or runtime service.
    pub has_side_effects: bool,
    /// The slot's single general-register write, if it has exactly one.
    pub reg_write: Option<RegWrite>,
    /// The slot writes more than one general register.
    pub multi_reg_write: bool,
    /// The slot's first binary op has a constant right operand.
    pub rhs_imm: Option<u64>,
    /// The slot's single remaining memory op has a constant address.
    pub mem_addr: Option<u64>,
}

/// A write to a general-register cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegWrite {
    /// Target cell index (a general register, never a flag).
    pub cell: u8,
    /// Where the written value comes from.
    pub value: ResolvedValue,
}

/// Provenance of a written value, as far as the backend can resolve it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedValue {
    /// A compile-time constant.
    Const(u64),
    /// The value another cell holds *at the start of this slot*.
    InCell(u8),
    /// Computed by ops within the function (not further resolvable).
    Computed,
}

/// The slot a placed value belongs to: index of the last boundary ≤ it.
fn slot_of(slot_starts: &[u32], v: ValueId) -> usize {
    slot_starts.partition_point(|&start| start <= v.index() as u32).saturating_sub(1)
}

/// Distills each slot of `f`'s entry block into a [`SlotPlan`].
///
/// `slot_starts[i]` is the arena index at which instruction `i`'s
/// lowering began (ascending). Facts that depend on *incoming* values —
/// [`ResolvedValue::InCell`], [`SlotPlan::rhs_imm`] resolution through
/// cell reads — are computed against cell availability as of the end of
/// the previous slot, which is exactly the state the emulator's
/// unoptimized trace guarantees at every slot boundary.
pub fn plan_slots(f: &Function, slot_starts: &[u32]) -> Vec<SlotPlan> {
    let mut plans = vec![SlotPlan::default(); slot_starts.len()];
    if slot_starts.is_empty() {
        return plans;
    }

    // Which value each cell held at the end of the previous slot
    // (`None` = unknown / clobbered).
    let mut avail: [Option<ValueId>; Cell::COUNT as usize] = [None; Cell::COUNT as usize];
    // Updates applied when crossing into the next slot; the flag marks
    // entries that *change* the cell (writes, clobbers) as opposed to
    // read registrations, which only name the value already there.
    let mut pending: Vec<(u8, Option<ValueId>, bool)> = Vec::new();
    // Whether the slot's leading binary op — the instruction's own
    // computation, as opposed to trailing flag-recomputation ops —
    // has been seen (only it may donate `rhs_imm`).
    let mut seen_binop = vec![false; slot_starts.len()];
    let mut current = 0usize;

    let entry = f.entry();
    for &v in &f.block(entry).ops {
        let slot = slot_of(slot_starts, v);
        if slot != current {
            for (cell, value, _) in pending.drain(..) {
                avail[cell as usize] = value;
            }
            current = slot;
        }
        let plan = &mut plans[slot];
        match f.op(v) {
            // A read also *defines* availability: after this slot the
            // cell is known to hold this value (reads don't clobber).
            Op::ReadCell(cell) if avail[cell.0 as usize].is_none() => {
                pending.push((cell.0, Some(v), false));
            }
            Op::WriteCell { cell, value } => {
                if cell.is_flag() {
                    plan.writes_flags = true;
                } else {
                    let same_slot = slot_of(slot_starts, *value) == slot;
                    let resolved = resolve(f, &avail, &pending, same_slot, *value);
                    if let Some(existing) = &plan.reg_write {
                        if existing.cell != cell.0 {
                            plan.multi_reg_write = true;
                        }
                    }
                    plan.reg_write = Some(RegWrite { cell: cell.0, value: resolved });
                }
                pending.push((cell.0, Some(*value), true));
            }
            Op::Load { addr, .. } => {
                plan.mem_ops += 1;
                plan.mem_addr = match (plan.mem_ops, f.op(*addr)) {
                    (1, Op::Const(a)) => Some(*a),
                    _ => None,
                };
            }
            Op::Store { addr, .. } => {
                plan.mem_ops += 1;
                plan.mem_addr = match (plan.mem_ops, f.op(*addr)) {
                    (1, Op::Const(a)) => Some(*a),
                    _ => None,
                };
            }
            // Only the slot's *first* binary op — the instruction's own
            // computation — may donate an immediate. Later binary ops in
            // the slot belong to the NZCV recomputation (shift-by-63
            // sign extractions and the like) and must never be mistaken
            // for the operand.
            Op::BinOp { rhs, .. } if !seen_binop[slot] => {
                seen_binop[slot] = true;
                if let Op::Const(c) = f.op(*rhs) {
                    plan.rhs_imm = Some(*c);
                }
            }
            Op::Svc { .. } | Op::Call { .. } | Op::CallIndirect { .. } => {
                plan.has_side_effects = true;
                // Services and calls clobber cells arbitrarily.
                pending.clear();
                pending.extend((0..Cell::COUNT).map(|c| (c, None, true)));
            }
            _ => {}
        }
    }

    plans
}

/// Resolves a value to its provenance: a constant, or a cell that
/// provably still holds it at the start of the current slot.
///
/// A cell qualifies either because the value *is* a read of it placed in
/// this very slot (`same_slot` — sound as long as this slot has not
/// itself written the cell, checked against `pending`), or because
/// slot-start availability (`avail`) says the cell held the value coming
/// in and no write this slot has clobbered it yet.
fn resolve(
    f: &Function,
    avail: &[Option<ValueId>; Cell::COUNT as usize],
    pending: &[(u8, Option<ValueId>, bool)],
    same_slot: bool,
    v: ValueId,
) -> ResolvedValue {
    if let Op::Const(c) = f.op(v) {
        return ResolvedValue::Const(*c);
    }
    let clobbered = |c: u8| pending.iter().any(|&(p, _, clobber)| p == c && clobber);
    if same_slot {
        if let Op::ReadCell(cell) = f.op(v) {
            if !clobbered(cell.0) {
                return ResolvedValue::InCell(cell.0);
            }
        }
    }
    for c in 0..Cell::COUNT {
        if avail[c as usize] == Some(v) && !clobbered(c) {
            return ResolvedValue::InCell(c);
        }
    }
    ResolvedValue::Computed
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_ir::{BinOp, Terminator, Width};

    /// Builds `mov r1, 5 ; mov r2, r1` as two slots and checks the
    /// plans resolve to a constant and a register copy.
    #[test]
    fn resolves_constants_and_register_copies() {
        let mut f = Function::new("b");
        let e = f.entry();
        let s0 = f.value_count() as u32;
        let five = f.append(e, Op::Const(5));
        f.append(e, Op::WriteCell { cell: Cell::reg(1), value: five });
        let s1 = f.value_count() as u32;
        let r1 = f.append(e, Op::ReadCell(Cell::reg(1)));
        f.append(e, Op::WriteCell { cell: Cell::reg(2), value: r1 });
        f.set_terminator(e, Terminator::Ret);

        let plans = plan_slots(&f, &[s0, s1]);
        assert_eq!(plans[0].reg_write, Some(RegWrite { cell: 1, value: ResolvedValue::Const(5) }));
        assert_eq!(plans[1].reg_write, Some(RegWrite { cell: 2, value: ResolvedValue::InCell(1) }));
        assert!(!plans[0].writes_flags && plans[0].mem_ops == 0);
    }

    /// A read in the *same* slot as the copy does not count as available
    /// at slot start only when an earlier write clobbered it; clobbers
    /// land at the slot boundary.
    #[test]
    fn availability_updates_at_slot_boundaries() {
        let mut f = Function::new("b");
        let e = f.entry();
        // Slot 0: r1 = r0 (r0 read becomes available).
        let s0 = f.value_count() as u32;
        let r0 = f.append(e, Op::ReadCell(Cell::reg(0)));
        f.append(e, Op::WriteCell { cell: Cell::reg(1), value: r0 });
        // Slot 1: r0 = 9 (clobbers r0's availability for later slots)…
        let s1 = f.value_count() as u32;
        let nine = f.append(e, Op::Const(9));
        f.append(e, Op::WriteCell { cell: Cell::reg(0), value: nine });
        // Slot 2: r2 = the old r0 value — no longer in r0, but slot 0
        // parked it in r1, and availability knows that.
        let s2 = f.value_count() as u32;
        f.append(e, Op::WriteCell { cell: Cell::reg(2), value: r0 });
        f.set_terminator(e, Terminator::Ret);

        let plans = plan_slots(&f, &[s0, s1, s2]);
        assert_eq!(plans[2].reg_write, Some(RegWrite { cell: 2, value: ResolvedValue::InCell(1) }));
    }

    #[test]
    fn flag_writes_memory_ops_and_immediates_are_reported() {
        let mut f = Function::new("b");
        let e = f.entry();
        // Slot 0: add r1, 3 with flags.
        let s0 = f.value_count() as u32;
        let r1 = f.append(e, Op::ReadCell(Cell::reg(1)));
        let three = f.append(e, Op::Const(3));
        let sum = f.append(e, Op::BinOp { op: BinOp::Add, lhs: r1, rhs: three });
        f.append(e, Op::WriteCell { cell: Cell::reg(1), value: sum });
        f.append(e, Op::WriteCell { cell: Cell::Z, value: sum });
        // Slot 1: store to a constant address.
        let s1 = f.value_count() as u32;
        let addr = f.append(e, Op::Const(0x2000));
        f.append(e, Op::Store { addr, value: sum, width: Width::Q });
        f.set_terminator(e, Terminator::Ret);

        let plans = plan_slots(&f, &[s0, s1]);
        assert!(plans[0].writes_flags);
        assert_eq!(plans[0].rhs_imm, Some(3));
        assert_eq!(plans[0].reg_write, Some(RegWrite { cell: 1, value: ResolvedValue::Computed }));
        assert_eq!(plans[1].mem_ops, 1);
        assert_eq!(plans[1].mem_addr, Some(0x2000));
        assert!(!plans[1].writes_flags);
    }

    #[test]
    fn services_clobber_availability_and_mark_side_effects() {
        let mut f = Function::new("b");
        let e = f.entry();
        // Slot 0: r1 = 5.
        let s0 = f.value_count() as u32;
        let five = f.append(e, Op::Const(5));
        f.append(e, Op::WriteCell { cell: Cell::reg(1), value: five });
        // Slot 1: svc 2 (writes r0).
        let s1 = f.value_count() as u32;
        f.append(e, Op::Svc { num: 2 });
        // Slot 2: r2 = r0 — unknown after the service.
        let s2 = f.value_count() as u32;
        let r0 = f.append(e, Op::ReadCell(Cell::reg(0)));
        f.append(e, Op::WriteCell { cell: Cell::reg(2), value: r0 });
        f.set_terminator(e, Terminator::Ret);

        let plans = plan_slots(&f, &[s0, s1, s2]);
        assert!(plans[1].has_side_effects);
        // r0 is unknown after the service, but "r2 = a fresh read of r0"
        // is still a plain register copy.
        assert_eq!(plans[2].reg_write, Some(RegWrite { cell: 2, value: ResolvedValue::InCell(0) }));
    }

    #[test]
    fn empty_slots_yield_default_plans() {
        // An instruction whose entire lowering was optimized away (e.g. a
        // dead compare) still owns a boundary; its plan must be inert.
        let mut f = Function::new("b");
        let e = f.entry();
        let s0 = f.value_count() as u32;
        let five = f.append(e, Op::Const(5));
        f.append(e, Op::WriteCell { cell: Cell::reg(1), value: five });
        let s1 = f.value_count() as u32; // slot 1: everything deleted
        let s2 = s1 + 4; // ...its ops spanned arena [s1, s2)
        let r1 = f.append(e, Op::ReadCell(Cell::reg(1)));
        let _ = r1;
        f.set_terminator(e, Terminator::Ret);

        let plans = plan_slots(&f, &[s0, s1, s2]);
        assert_eq!(plans[1], SlotPlan::default());
    }

    #[test]
    fn multi_register_writes_are_flagged() {
        // push r1: writes SP and memory — two register cells would be
        // a pop-into + SP update; model with two explicit writes.
        let mut f = Function::new("b");
        let e = f.entry();
        let s0 = f.value_count() as u32;
        let c = f.append(e, Op::Const(1));
        f.append(e, Op::WriteCell { cell: Cell::reg(15), value: c });
        f.append(e, Op::WriteCell { cell: Cell::reg(3), value: c });
        f.set_terminator(e, Terminator::Ret);

        let plans = plan_slots(&f, &[s0]);
        assert!(plans[0].multi_reg_write);
    }
}
