//! # rr-lower — lowering RRIR back to RRVM executables
//!
//! The back end of the Hybrid rewriting approach (paper §IV-C step 3) and
//! the `llc` stand-in: compiles an [`rr_lift::LiftedProgram`] — or any
//! valid RRIR [`rr_ir::Module`] plus data sections — into a runnable
//! [`rr_obj::Executable`].
//!
//! ## Code generation model
//!
//! Following Rev.ng's recompilation strategy, the *architectural* state of
//! the lifted program (its [`rr_ir::Cell`]s) is materialized in **memory**
//! (`__rr_cells` in `.bss`), leaving the real machine registers free for
//! the generated code:
//!
//! * `r13` — cells base pointer (set once by the entry stub),
//! * `r6`, `r7` — code-generator temporaries,
//! * `sp` — the *native* stack, hosting one frame of spill slots per
//!   function (every SSA value gets a slot); the lifted program's own
//!   stack ("virtual stack", reached through cell `r15`) stays at the
//!   original [`rr_isa::STACK_TOP`] so its memory behaviour is preserved.
//!
//! The generated `_start` stub initializes the native stack (a `.bss`
//! arena), the cells base, and the virtual stack pointer, then calls the
//! lifted entry function.
//!
//! This simple slot-based allocation is deliberate: it reproduces the
//! paper's observation that "the mere act of lifting the binary … and
//! translating it back adds extra overhead" (§IV-D). The
//! `rr_ir::passes::PromoteCells`/`DeadCodeElimination` pipeline recovers
//! part of it, which the benches quantify.
//!
//! ## Example
//!
//! ```
//! use rr_asm::assemble_and_link;
//! use rr_emu::execute;
//!
//! let exe = assemble_and_link(
//!     "    .global _start\n_start:\n    mov r1, 5\n    add r1, 2\n    svc 0\n",
//! )?;
//! let lifted = rr_lift::lift(&exe)?;
//! let relowered = rr_lower::compile(&lifted)?;
//! let a = execute(&exe, &[], 100_000);
//! let b = execute(&relowered, &[], 1_000_000);
//! assert!(a.same_behavior(&b));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

mod codegen;
pub mod uops;

pub use codegen::{compile, emit_listing, LowerError};
pub use uops::{plan_slots, RegWrite, ResolvedValue, SlotPlan};
