//! Slot-based code generation.

use rr_asm::BuildError;
use rr_disasm::{DataLine, DataSection, Line, Listing, SymInstr};
use rr_ir::{BinOp, BlockId, Function, Op, Pred, Terminator, ValueId, Width};
use rr_isa::{AluOp, Cond, Instr, Reg, ShiftOp, STACK_TOP};
use rr_lift::LiftedProgram;
use rr_obj::{Executable, SectionKind};
use std::fmt;

/// Cells base register, set once by the entry stub and never clobbered by
/// generated code.
const CELLS: Reg = Reg::R13;
/// Primary code-generation temporary.
const T0: Reg = Reg::R6;
/// Secondary code-generation temporary.
const T1: Reg = Reg::R7;

/// Size of the native stack arena in bytes.
const NATIVE_STACK_SIZE: u64 = 0x10000;

/// Why lowering failed.
#[derive(Debug)]
pub enum LowerError {
    /// A shift whose amount is not a compile-time constant (RRVM has only
    /// immediate shifts; lifted code always uses constants).
    NonConstShift {
        /// Function containing the shift.
        function: String,
        /// The offending value.
        value: ValueId,
    },
    /// The module failed verification before lowering.
    Verify(rr_ir::VerifyError),
    /// The generated assembly failed to build (codegen bug).
    Build(BuildError),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::NonConstShift { function, value } => {
                write!(f, "{function}: shift amount of {value} is not a constant")
            }
            LowerError::Verify(e) => write!(f, "module invalid before lowering: {e}"),
            LowerError::Build(e) => write!(f, "generated assembly failed to build: {e}"),
        }
    }
}

impl std::error::Error for LowerError {}

impl From<BuildError> for LowerError {
    fn from(e: BuildError) -> Self {
        LowerError::Build(e)
    }
}

/// Compiles a lifted program to an executable.
///
/// # Errors
///
/// See [`LowerError`].
pub fn compile(lifted: &LiftedProgram) -> Result<Executable, LowerError> {
    let listing = emit_listing(lifted)?;
    Ok(rr_asm::assemble_and_link(&listing.to_source())?)
}

/// Lowers to a reassembleable [`Listing`] (inspectable, and the source of
/// the machine-level instruction counts in Table IV).
///
/// # Errors
///
/// See [`LowerError`].
pub fn emit_listing(lifted: &LiftedProgram) -> Result<Listing, LowerError> {
    rr_ir::verify(&lifted.module).map_err(LowerError::Verify)?;
    let mut cg = Codegen::new();
    cg.emit_stub(&lifted.module.entry);
    for (index, function) in lifted.module.functions().iter().enumerate() {
        cg.emit_function(index, function)?;
    }
    let mut listing = Listing::new();
    listing.text = cg.lines;
    listing.data = lifted.data.clone();
    append_runtime_bss(&mut listing);
    Ok(listing)
}

/// Appends the cells arena and native stack to the listing's `.bss`.
fn append_runtime_bss(listing: &mut Listing) {
    let runtime = vec![
        DataLine::Label { name: "__rr_cells".into(), global: false },
        DataLine::Space(8 * u64::from(rr_ir::Cell::COUNT)),
        DataLine::Label { name: "__rr_native_stack".into(), global: false },
        DataLine::Space(NATIVE_STACK_SIZE),
        DataLine::Label { name: "__rr_native_stack_top".into(), global: false },
    ];
    if let Some(bss) = listing.data.iter_mut().find(|s| s.kind == SectionKind::Bss) {
        bss.lines.extend(runtime);
    } else {
        listing.data.push(DataSection { kind: SectionKind::Bss, lines: runtime });
    }
}

struct Codegen {
    lines: Vec<Line>,
    fresh: u64,
}

impl Codegen {
    fn new() -> Codegen {
        Codegen { lines: Vec::new(), fresh: 0 }
    }

    fn fresh_label(&mut self, prefix: &str) -> String {
        let n = self.fresh;
        self.fresh += 1;
        format!(".Lg_{prefix}_{n}")
    }

    fn label(&mut self, name: impl Into<String>, global: bool) {
        self.lines.push(Line::Label { name: name.into(), global });
    }

    fn ins(&mut self, instr: Instr) {
        self.lines.push(Line::Code { orig_addr: None, insn: SymInstr::Plain(instr) });
    }

    fn branch(&mut self, cond: Option<Cond>, target: impl Into<String>) {
        self.lines.push(Line::Code {
            orig_addr: None,
            insn: SymInstr::Branch { cond, is_call: false, target: target.into() },
        });
    }

    fn call(&mut self, target: impl Into<String>) {
        self.lines.push(Line::Code {
            orig_addr: None,
            insn: SymInstr::Branch { cond: None, is_call: true, target: target.into() },
        });
    }

    fn mov_sym(&mut self, rd: Reg, sym: impl Into<String>) {
        self.lines.push(Line::Code {
            orig_addr: None,
            insn: SymInstr::MovSym { rd, sym: sym.into(), addend: 0 },
        });
    }

    /// `_start`: native stack, cells base, virtual stack pointer, then the
    /// lifted entry.
    fn emit_stub(&mut self, entry: &str) {
        self.label("_start", true);
        self.mov_sym(Reg::SP, "__rr_native_stack_top");
        self.mov_sym(CELLS, "__rr_cells");
        self.ins(Instr::MovRI { rd: T0, imm: STACK_TOP });
        self.ins(Instr::Store { base: CELLS, disp: 8 * i32::from(Reg::SP.index()), rs: T0 });
        self.call(entry.to_owned());
        // The lifted entry normally exits via `svc 0`; returning is
        // abnormal.
        self.ins(Instr::Halt);
    }

    fn emit_function(&mut self, index: usize, f: &Function) -> Result<(), LowerError> {
        let frame = FrameLayout::new(f);
        self.label(f.name.clone(), false);
        if frame.size > 0 {
            self.ins(Instr::Lea { rd: Reg::SP, base: Reg::SP, disp: -frame.size });
        }
        for b in f.block_ids() {
            self.label(block_label(index, b), false);
            for &v in &f.block(b).ops {
                self.emit_op(f, &frame, v)?;
            }
            self.emit_terminator(index, f, &frame, b);
        }
        Ok(())
    }

    /// `load reg, [sp + slot(v)]`.
    fn load_slot(&mut self, frame: &FrameLayout, reg: Reg, v: ValueId) {
        self.ins(Instr::Load { rd: reg, base: Reg::SP, disp: frame.slot(v) });
    }

    /// `store [sp + slot(v)], reg`.
    fn store_slot(&mut self, frame: &FrameLayout, v: ValueId, reg: Reg) {
        self.ins(Instr::Store { base: Reg::SP, disp: frame.slot(v), rs: reg });
    }

    fn emit_op(&mut self, f: &Function, frame: &FrameLayout, v: ValueId) -> Result<(), LowerError> {
        match f.op(v).clone() {
            Op::Const(c) => {
                self.ins(Instr::MovRI { rd: T0, imm: c });
                self.store_slot(frame, v, T0);
            }
            Op::SymAddr(sym) => {
                self.mov_sym(T0, sym);
                self.store_slot(frame, v, T0);
            }
            Op::BinOp { op, lhs, rhs } => {
                self.load_slot(frame, T0, lhs);
                match op {
                    BinOp::Shl | BinOp::Lshr | BinOp::Ashr => {
                        let Op::Const(amount) = *f.op(rhs) else {
                            return Err(LowerError::NonConstShift {
                                function: f.name.clone(),
                                value: v,
                            });
                        };
                        let shift_op = match op {
                            BinOp::Shl => ShiftOp::Shl,
                            BinOp::Lshr => ShiftOp::Shr,
                            BinOp::Ashr => ShiftOp::Sar,
                            _ => unreachable!(),
                        };
                        self.ins(Instr::ShiftRI { op: shift_op, rd: T0, amt: (amount & 63) as u8 });
                    }
                    _ => {
                        self.load_slot(frame, T1, rhs);
                        let alu = match op {
                            BinOp::Add => AluOp::Add,
                            BinOp::Sub => AluOp::Sub,
                            BinOp::And => AluOp::And,
                            BinOp::Or => AluOp::Or,
                            BinOp::Xor => AluOp::Xor,
                            BinOp::Mul => AluOp::Mul,
                            BinOp::Udiv => AluOp::Udiv,
                            _ => unreachable!("shifts handled above"),
                        };
                        self.ins(Instr::AluRR { op: alu, rd: T0, rs: T1 });
                    }
                }
                self.store_slot(frame, v, T0);
            }
            Op::Not(a) => {
                self.load_slot(frame, T0, a);
                self.ins(Instr::Not { rd: T0 });
                self.store_slot(frame, v, T0);
            }
            Op::Neg(a) => {
                self.load_slot(frame, T0, a);
                self.ins(Instr::Neg { rd: T0 });
                self.store_slot(frame, v, T0);
            }
            Op::ICmp { pred, lhs, rhs } => {
                self.load_slot(frame, T0, lhs);
                self.load_slot(frame, T1, rhs);
                self.ins(Instr::CmpRR { rs1: T0, rs2: T1 });
                self.ins(Instr::SetCc { rd: T0, cc: pred_to_cond(pred) });
                self.store_slot(frame, v, T0);
            }
            Op::Select { cond, if_true, if_false } => {
                let lf = self.fresh_label("sel_f");
                let ld = self.fresh_label("sel_d");
                self.load_slot(frame, T0, cond);
                self.ins(Instr::CmpRI { rs1: T0, imm: 0 });
                self.branch(Some(Cond::Eq), lf.clone());
                self.load_slot(frame, T0, if_true);
                self.branch(None, ld.clone());
                self.label(lf, false);
                self.load_slot(frame, T0, if_false);
                self.label(ld, false);
                self.store_slot(frame, v, T0);
            }
            Op::Load { addr, width } => {
                self.load_slot(frame, T0, addr);
                let instr = match width {
                    Width::Q => Instr::Load { rd: T1, base: T0, disp: 0 },
                    Width::B => Instr::LoadB { rd: T1, base: T0, disp: 0 },
                };
                self.ins(instr);
                self.store_slot(frame, v, T1);
            }
            Op::Store { addr, value, width } => {
                self.load_slot(frame, T0, addr);
                self.load_slot(frame, T1, value);
                let instr = match width {
                    Width::Q => Instr::Store { base: T0, disp: 0, rs: T1 },
                    Width::B => Instr::StoreB { base: T0, disp: 0, rs: T1 },
                };
                self.ins(instr);
            }
            Op::ReadCell(cell) => {
                self.ins(Instr::Load { rd: T0, base: CELLS, disp: 8 * i32::from(cell.0) });
                self.store_slot(frame, v, T0);
            }
            Op::WriteCell { cell, value } => {
                self.load_slot(frame, T0, value);
                self.ins(Instr::Store { base: CELLS, disp: 8 * i32::from(cell.0), rs: T0 });
            }
            Op::Call { callee } => {
                self.call(callee);
            }
            Op::CallIndirect { target } => {
                self.load_slot(frame, T0, target);
                self.ins(Instr::CallR { rs: T0 });
            }
            Op::Svc { num } => {
                // The machine services read `r1` and (for service 2)
                // write `r0`; bridge them through the cells.
                match num {
                    2 => {
                        self.ins(Instr::Svc { num });
                        self.ins(Instr::Store { base: CELLS, disp: 0, rs: Reg::R0 });
                    }
                    _ => {
                        self.ins(Instr::Load {
                            rd: Reg::R1,
                            base: CELLS,
                            disp: 8 * i32::from(Reg::R1.index()),
                        });
                        self.ins(Instr::Svc { num });
                    }
                }
            }
            Op::Phi { .. } => {} // materialized on incoming edges
        }
        Ok(())
    }

    fn emit_terminator(&mut self, findex: usize, f: &Function, frame: &FrameLayout, b: BlockId) {
        match f.block(b).term.clone() {
            Terminator::Br(succ) => {
                self.emit_phi_copies(f, frame, b, succ);
                self.branch(None, block_label(findex, succ));
            }
            Terminator::CondBr { cond, if_true, if_false } => {
                self.load_slot(frame, T0, cond);
                self.ins(Instr::CmpRI { rs1: T0, imm: 0 });
                let true_has_phis = block_has_phis(f, if_true);
                if true_has_phis {
                    let tramp = self.fresh_label("edge");
                    self.branch(Some(Cond::Ne), tramp.clone());
                    // False edge falls through.
                    self.emit_phi_copies(f, frame, b, if_false);
                    self.branch(None, block_label(findex, if_false));
                    // True edge trampoline.
                    self.label(tramp, false);
                    self.emit_phi_copies(f, frame, b, if_true);
                    self.branch(None, block_label(findex, if_true));
                } else {
                    self.branch(Some(Cond::Ne), block_label(findex, if_true));
                    self.emit_phi_copies(f, frame, b, if_false);
                    self.branch(None, block_label(findex, if_false));
                }
            }
            Terminator::Ret => {
                if frame.size > 0 {
                    self.ins(Instr::Lea { rd: Reg::SP, base: Reg::SP, disp: frame.size });
                }
                self.ins(Instr::Ret);
            }
            Terminator::Abort => self.ins(Instr::Halt),
            Terminator::Unset => unreachable!("verified modules have terminators"),
        }
    }

    /// Two-phase parallel copies for the phis of `succ` along the edge
    /// `pred → succ` (phase 1 into shadow slots, phase 2 into the phi
    /// slots), which is safe for swaps and cycles.
    fn emit_phi_copies(&mut self, f: &Function, frame: &FrameLayout, pred: BlockId, succ: BlockId) {
        let phis: Vec<(ValueId, ValueId)> = f
            .block(succ)
            .ops
            .iter()
            .filter_map(|&p| {
                f.op(p).phi_incomings().and_then(|incomings| {
                    incomings.iter().find(|(from, _)| *from == pred).map(|&(_, value)| (p, value))
                })
            })
            .collect();
        for &(phi, value) in &phis {
            self.load_slot(frame, T0, value);
            self.ins(Instr::Store { base: Reg::SP, disp: frame.shadow(phi), rs: T0 });
        }
        for &(phi, _) in &phis {
            self.ins(Instr::Load { rd: T0, base: Reg::SP, disp: frame.shadow(phi) });
            self.store_slot(frame, phi, T0);
        }
    }
}

fn block_has_phis(f: &Function, b: BlockId) -> bool {
    f.block(b).ops.iter().any(|&v| matches!(f.op(v), Op::Phi { .. }))
}

fn block_label(findex: usize, b: BlockId) -> String {
    format!(".Lf{}_{}", findex, b.index())
}

fn pred_to_cond(pred: Pred) -> Cond {
    match pred {
        Pred::Eq => Cond::Eq,
        Pred::Ne => Cond::Ne,
        Pred::Ult => Cond::B,
        Pred::Ule => Cond::Be,
        Pred::Slt => Cond::Lt,
        Pred::Sle => Cond::Le,
    }
}

/// Stack-frame layout: one 8-byte slot per SSA value plus one shadow slot
/// (for phi parallel copies).
struct FrameLayout {
    values: i32,
    size: i32,
}

impl FrameLayout {
    fn new(f: &Function) -> FrameLayout {
        let values = i32::try_from(f.value_count()).expect("value count fits i32");
        FrameLayout { values, size: values * 16 }
    }

    fn slot(&self, v: ValueId) -> i32 {
        i32::try_from(v.index()).expect("fits") * 8
    }

    fn shadow(&self, v: ValueId) -> i32 {
        (self.values + i32::try_from(v.index()).expect("fits")) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_emu::execute;
    use rr_ir::Cell;

    fn roundtrip_behavior(src: &str, inputs: &[&[u8]]) {
        let exe = rr_asm::assemble_and_link(src).expect("source builds");
        let lifted = rr_lift::lift(&exe).expect("lifts");
        let lowered = compile(&lifted).expect("lowers");
        for input in inputs {
            let original = execute(&exe, input, 1_000_000);
            let recompiled = execute(&lowered, input, 20_000_000);
            assert!(
                original.same_behavior(&recompiled),
                "behaviour diverged on {input:?}:\noriginal {original:?}\nrecompiled {recompiled:?}"
            );
        }
    }

    #[test]
    fn arithmetic_and_flags_survive_the_round_trip() {
        roundtrip_behavior(
            "    .global _start\n\
             _start:\n\
                 mov r1, 100\n\
                 sub r1, 58\n\
                 cmp r1, 42\n\
                 je .ok\n\
                 mov r1, 1\n\
                 svc 0\n\
             .ok:\n\
                 mov r1, 0\n\
                 svc 0\n",
            &[&[]],
        );
    }

    #[test]
    fn loops_and_memory() {
        roundtrip_behavior(
            "    .global _start\n\
             _start:\n\
                 mov r2, buf\n\
                 mov r3, 0\n\
                 mov r4, 5\n\
             .fill:\n\
                 storeb [r2], r3\n\
                 add r2, 1\n\
                 add r3, 1\n\
                 cmp r3, r4\n\
                 jne .fill\n\
                 mov r2, buf\n\
                 loadb r1, [r2+3]\n\
                 svc 0\n\
                 .bss\n\
             buf:\n\
                 .space 8\n",
            &[&[]],
        );
    }

    #[test]
    fn calls_stack_and_push_pop() {
        roundtrip_behavior(
            "    .global _start\n\
             _start:\n\
                 mov r1, 7\n\
                 push r1\n\
                 call double_top\n\
                 pop r1\n\
                 svc 0\n\
             double_top:\n\
                 load r6, [sp+8]\n\
                 add r6, r6\n\
                 store [sp+8], r6\n\
                 ret\n",
            &[&[]],
        );
    }

    #[test]
    fn pushf_popf_and_setcc() {
        roundtrip_behavior(
            "    .global _start\n\
             _start:\n\
                 mov r1, 3\n\
                 cmp r1, 5\n\
                 pushf\n\
                 cmp r1, 1\n\
                 popf\n\
                 setlt r1\n\
                 svc 0\n",
            &[&[]],
        );
    }

    #[test]
    fn io_round_trip() {
        roundtrip_behavior(
            "    .global _start\n\
             _start:\n\
                 svc 2\n\
                 cmp r0, -1\n\
                 je .done\n\
                 mov r1, r0\n\
                 svc 1\n\
             .done:\n\
                 mov r1, 0\n\
                 svc 0\n",
            &[b"A", b""],
        );
    }

    #[test]
    fn shifts_and_unsigned_compares() {
        roundtrip_behavior(
            "    .global _start\n\
             _start:\n\
                 mov r1, -1\n\
                 shr r1, 60\n\
                 cmp r1, 15\n\
                 jae .big\n\
                 mov r1, 0\n\
                 svc 0\n\
             .big:\n\
                 mov r1, 2\n\
                 sar r1, 1\n\
                 svc 0\n",
            &[&[]],
        );
    }

    #[test]
    fn hand_built_module_with_phi_lowers() {
        // max(3, 5) + 1 via a diamond and a phi, written straight in IR.
        let mut f = Function::new("__rr_entry");
        let e = f.entry();
        let t = f.new_block();
        let u = f.new_block();
        let j = f.new_block();
        let a = f.append(e, Op::Const(3));
        let b2 = f.append(e, Op::Const(5));
        let c = f.append(e, Op::ICmp { pred: Pred::Slt, lhs: a, rhs: b2 });
        f.set_terminator(e, Terminator::CondBr { cond: c, if_true: t, if_false: u });
        f.set_terminator(t, Terminator::Br(j));
        f.set_terminator(u, Terminator::Br(j));
        let phi = f.append(j, Op::Phi { incomings: vec![(t, b2), (u, a)] });
        let one = f.append(j, Op::Const(1));
        let sum = f.append(j, Op::BinOp { op: BinOp::Add, lhs: phi, rhs: one });
        f.append(j, Op::WriteCell { cell: Cell::reg(1), value: sum });
        f.append(j, Op::Svc { num: 0 });
        f.set_terminator(j, Terminator::Abort);

        let mut module = rr_ir::Module::new();
        module.entry = "__rr_entry".into();
        module.push_function(f);
        let lifted = rr_lift::LiftedProgram { module, data: Vec::new() };
        let exe = compile(&lifted).expect("lowers");
        let run = execute(&exe, &[], 1_000_000);
        assert_eq!(run.outcome, rr_emu::RunOutcome::Exited { code: 6 });
    }

    #[test]
    fn non_const_shift_is_rejected() {
        let mut f = Function::new("__rr_entry");
        let e = f.entry();
        let a = f.append(e, Op::Const(8));
        let amount = f.append(e, Op::ReadCell(Cell::reg(2)));
        f.append(e, Op::BinOp { op: BinOp::Shl, lhs: a, rhs: amount });
        f.set_terminator(e, Terminator::Abort);
        let mut module = rr_ir::Module::new();
        module.entry = "__rr_entry".into();
        module.push_function(f);
        let lifted = rr_lift::LiftedProgram { module, data: Vec::new() };
        assert!(matches!(compile(&lifted), Err(LowerError::NonConstShift { .. })));
    }

    #[test]
    fn all_workloads_lift_lower_equivalently() {
        for w in rr_workloads::all_workloads() {
            let exe = w.build().unwrap();
            let lifted = rr_lift::lift(&exe).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let lowered = compile(&lifted).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            for input in [&w.good_input, &w.bad_input] {
                let original = execute(&exe, input, 1_000_000);
                let recompiled = execute(&lowered, input, 50_000_000);
                assert!(
                    original.same_behavior(&recompiled),
                    "{}: diverged on {input:?}\noriginal {original:?}\nrecompiled {recompiled:?}",
                    w.name
                );
            }
        }
    }

    #[test]
    fn optimization_passes_preserve_behavior_and_shrink_code() {
        let w = rr_workloads::pincheck();
        let exe = w.build().unwrap();
        let mut lifted = rr_lift::lift(&exe).unwrap();
        let naive = compile(&lifted).unwrap();

        let mut pm = rr_ir::PassManager::new();
        pm.add(rr_ir::passes::PromoteCells);
        pm.add(rr_ir::passes::DeadCodeElimination);
        pm.run(&mut lifted.module).unwrap();
        let optimized = compile(&lifted).unwrap();

        assert!(
            optimized.code_size() < naive.code_size(),
            "promotion must shrink code: {} vs {}",
            optimized.code_size(),
            naive.code_size()
        );
        for input in [&w.good_input, &w.bad_input] {
            let a = execute(&exe, input, 1_000_000);
            let b = execute(&optimized, input, 50_000_000);
            assert!(a.same_behavior(&b), "optimized pipeline diverged");
        }
    }
}
