//! The instruction-by-instruction lifter.

use rr_disasm::{disassemble, DataSection, DisasmError, SymInstr};
use rr_ir::{BinOp, BlockId, Cell, Function, Module, Op, Pred, Terminator, ValueId, Width};
use rr_isa::{AluOp, Cond, Instr, InstrKind, Reg, ShiftOp};
use rr_obj::Executable;
use std::collections::HashMap;
use std::fmt;

/// Name given to the lifted entry function (the machine `_start` is
/// renamed so the backend can emit its own `_start` initialization stub).
pub const ENTRY_FUNCTION: &str = "__rr_entry";

/// A binary lifted to RRIR: the code as a [`Module`] plus the data
/// sections carried through unchanged for the backend to re-emit.
#[derive(Debug, Clone)]
pub struct LiftedProgram {
    /// The lifted code.
    pub module: Module,
    /// Recovered data sections (symbolized), re-emitted by `rr-lower`.
    pub data: Vec<DataSection>,
}

/// Why lifting failed.
#[derive(Debug)]
pub enum LiftError {
    /// The binary could not be disassembled.
    Disasm(DisasmError),
    /// A construct the lifter does not model.
    Unsupported {
        /// Address of the offending instruction.
        addr: u64,
        /// Description.
        what: String,
    },
    /// The lifted module failed verification (lifter bug).
    Verify(rr_ir::VerifyError),
}

impl fmt::Display for LiftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiftError::Disasm(e) => write!(f, "disassembly failed: {e}"),
            LiftError::Unsupported { addr, what } => {
                write!(f, "unsupported construct at {addr:#x}: {what}")
            }
            LiftError::Verify(e) => write!(f, "lifted module is invalid: {e}"),
        }
    }
}

impl std::error::Error for LiftError {}

impl From<DisasmError> for LiftError {
    fn from(e: DisasmError) -> Self {
        LiftError::Disasm(e)
    }
}

/// Lifts `exe` to RRIR.
///
/// # Errors
///
/// See [`LiftError`]; notably indirect jumps are unsupported.
pub fn lift(exe: &Executable) -> Result<LiftedProgram, LiftError> {
    let disasm = disassemble(exe)?;

    // Symbolized form of each original instruction (for address
    // materialization and branch labels).
    let sym_map: HashMap<u64, SymInstr> =
        disasm.listing.original_code().map(|(_, addr, insn)| (addr, insn.clone())).collect();

    // Function entry address → name.
    let fn_names: HashMap<u64, String> =
        disasm.functions.iter().map(|f| (f.entry, f.name.clone())).collect();

    let mut module = Module::new();
    for mf in &disasm.functions {
        let lifted = lift_function(mf, &sym_map, &fn_names)?;
        module.push_function(lifted);
    }

    // Rename the entry function so the backend owns the `_start` symbol.
    let entry_name = fn_names.get(&exe.entry).cloned().expect("entry function always discovered");
    rename_function(&mut module, &entry_name, ENTRY_FUNCTION);
    module.entry = ENTRY_FUNCTION.to_owned();

    rr_ir::verify(&module).map_err(LiftError::Verify)?;
    Ok(LiftedProgram { module, data: disasm.listing.data })
}

fn rename_function(module: &mut Module, from: &str, to: &str) {
    for f in module.functions_mut() {
        if f.name == from {
            f.name = to.to_owned();
        }
        for b in f.block_ids() {
            let ops = f.block(b).ops.clone();
            for v in ops {
                match f.op_mut(v) {
                    Op::Call { callee } if callee == from => *callee = to.to_owned(),
                    Op::SymAddr(s) if s == from => *s = to.to_owned(),
                    _ => {}
                }
            }
        }
    }
}

struct Ctx<'a> {
    f: Function,
    sym_map: &'a HashMap<u64, SymInstr>,
    fn_names: &'a HashMap<u64, String>,
    block_of: HashMap<u64, BlockId>,
}

impl Ctx<'_> {
    fn emit(&mut self, b: BlockId, op: Op) -> ValueId {
        self.f.append(b, op)
    }

    fn konst(&mut self, b: BlockId, value: u64) -> ValueId {
        self.emit(b, Op::Const(value))
    }

    fn read(&mut self, b: BlockId, r: Reg) -> ValueId {
        self.emit(b, Op::ReadCell(Cell::reg(r.index())))
    }

    fn write(&mut self, b: BlockId, r: Reg, value: ValueId) {
        self.emit(b, Op::WriteCell { cell: Cell::reg(r.index()), value });
    }

    fn bin(&mut self, b: BlockId, op: BinOp, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.emit(b, Op::BinOp { op, lhs, rhs })
    }

    fn icmp(&mut self, b: BlockId, pred: Pred, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.emit(b, Op::ICmp { pred, lhs, rhs })
    }

    fn write_flag(&mut self, b: BlockId, cell: Cell, value: ValueId) {
        self.emit(b, Op::WriteCell { cell, value });
    }

    /// NZCV for `a - b = res` (also `cmp`).
    fn flags_sub(&mut self, b: BlockId, a: ValueId, rhs: ValueId, res: ValueId) {
        let zero = self.konst(b, 0);
        let z = self.icmp(b, Pred::Eq, res, zero);
        let n = self.icmp(b, Pred::Slt, res, zero);
        let c = self.icmp(b, Pred::Ult, a, rhs);
        // Signed overflow: (a ^ b) & (a ^ res), sign bit.
        let axb = self.bin(b, BinOp::Xor, a, rhs);
        let axr = self.bin(b, BinOp::Xor, a, res);
        let both = self.bin(b, BinOp::And, axb, axr);
        let s63 = self.konst(b, 63);
        let v = self.bin(b, BinOp::Lshr, both, s63);
        self.write_flag(b, Cell::Z, z);
        self.write_flag(b, Cell::N, n);
        self.write_flag(b, Cell::C, c);
        self.write_flag(b, Cell::V, v);
    }

    /// NZCV for `a + b = res`.
    fn flags_add(&mut self, b: BlockId, a: ValueId, rhs: ValueId, res: ValueId) {
        let zero = self.konst(b, 0);
        let z = self.icmp(b, Pred::Eq, res, zero);
        let n = self.icmp(b, Pred::Slt, res, zero);
        let c = self.icmp(b, Pred::Ult, res, a);
        // Signed overflow: (a ^ res) & (b ^ res), sign bit.
        let axr = self.bin(b, BinOp::Xor, a, res);
        let bxr = self.bin(b, BinOp::Xor, rhs, res);
        let both = self.bin(b, BinOp::And, axr, bxr);
        let s63 = self.konst(b, 63);
        let v = self.bin(b, BinOp::Lshr, both, s63);
        self.write_flag(b, Cell::Z, z);
        self.write_flag(b, Cell::N, n);
        self.write_flag(b, Cell::C, c);
        self.write_flag(b, Cell::V, v);
    }

    /// ZN for a logic result; C and V cleared.
    fn flags_logic(&mut self, b: BlockId, res: ValueId) {
        let zero = self.konst(b, 0);
        let z = self.icmp(b, Pred::Eq, res, zero);
        let n = self.icmp(b, Pred::Slt, res, zero);
        self.write_flag(b, Cell::Z, z);
        self.write_flag(b, Cell::N, n);
        self.write_flag(b, Cell::C, zero);
        self.write_flag(b, Cell::V, zero);
    }

    /// NZCV for `a * b = res` (wrapping): ZN from the result, C = V =
    /// unsigned overflow, matching the machine's `overflowing_mul`.
    ///
    /// RRIR has no widening multiply, so overflow is recovered by
    /// division: for `a != 0`, the wrapped product overflowed iff
    /// `res udiv a != b`. The divisor is forced to 1 when `a == 0`
    /// (`a | (a == 0)`) so the division is total, and the quotient
    /// check is masked out in that case (0 · b never overflows).
    fn flags_mul(&mut self, b: BlockId, a: ValueId, rhs: ValueId, res: ValueId) {
        let zero = self.konst(b, 0);
        let one = self.konst(b, 1);
        let z = self.icmp(b, Pred::Eq, res, zero);
        let n = self.icmp(b, Pred::Slt, res, zero);
        let a_is_zero = self.icmp(b, Pred::Eq, a, zero);
        let denom = self.bin(b, BinOp::Or, a, a_is_zero);
        let q = self.bin(b, BinOp::Udiv, res, denom);
        let q_matches = self.icmp(b, Pred::Eq, q, rhs);
        let q_differs = self.bin(b, BinOp::Xor, q_matches, one);
        let a_nonzero = self.bin(b, BinOp::Xor, a_is_zero, one);
        let overflow = self.bin(b, BinOp::And, q_differs, a_nonzero);
        self.write_flag(b, Cell::Z, z);
        self.write_flag(b, Cell::N, n);
        self.write_flag(b, Cell::C, overflow);
        self.write_flag(b, Cell::V, overflow);
    }

    /// Boolean (0/1) evaluation of a machine condition from flag cells.
    fn eval_cond(&mut self, b: BlockId, cc: Cond) -> ValueId {
        let one = self.konst(b, 1);
        let z = self.emit(b, Op::ReadCell(Cell::Z));
        match cc {
            Cond::Eq => z,
            Cond::Ne => self.bin(b, BinOp::Xor, z, one),
            Cond::Lt | Cond::Ge | Cond::Le | Cond::Gt => {
                let n = self.emit(b, Op::ReadCell(Cell::N));
                let v = self.emit(b, Op::ReadCell(Cell::V));
                let lt = self.bin(b, BinOp::Xor, n, v);
                match cc {
                    Cond::Lt => lt,
                    Cond::Ge => self.bin(b, BinOp::Xor, lt, one),
                    Cond::Le => self.bin(b, BinOp::Or, z, lt),
                    Cond::Gt => {
                        let le = self.bin(b, BinOp::Or, z, lt);
                        self.bin(b, BinOp::Xor, le, one)
                    }
                    _ => unreachable!(),
                }
            }
            Cond::B | Cond::Ae | Cond::Be | Cond::A => {
                let c = self.emit(b, Op::ReadCell(Cell::C));
                match cc {
                    Cond::B => c,
                    Cond::Ae => self.bin(b, BinOp::Xor, c, one),
                    Cond::Be => self.bin(b, BinOp::Or, c, z),
                    Cond::A => {
                        let be = self.bin(b, BinOp::Or, c, z);
                        self.bin(b, BinOp::Xor, be, one)
                    }
                    _ => unreachable!(),
                }
            }
        }
    }

    /// `[base + disp]` address computation.
    fn address(&mut self, b: BlockId, base: Reg, disp: i32) -> ValueId {
        let base_v = self.read(b, base);
        if disp == 0 {
            return base_v;
        }
        let d = self.konst(b, disp as i64 as u64);
        self.bin(b, BinOp::Add, base_v, d)
    }

    /// Virtual push: `sp -= 8; [sp] = value`.
    fn push(&mut self, b: BlockId, value: ValueId) {
        let sp = self.read(b, Reg::SP);
        let eight = self.konst(b, 8);
        let nsp = self.bin(b, BinOp::Sub, sp, eight);
        self.emit(b, Op::Store { addr: nsp, value, width: Width::Q });
        self.write(b, Reg::SP, nsp);
    }

    /// Virtual pop: `value = [sp]; sp += 8`.
    fn pop(&mut self, b: BlockId) -> ValueId {
        let sp = self.read(b, Reg::SP);
        let value = self.emit(b, Op::Load { addr: sp, width: Width::Q });
        let eight = self.konst(b, 8);
        let nsp = self.bin(b, BinOp::Add, sp, eight);
        self.write(b, Reg::SP, nsp);
        value
    }

    /// Packed NZCV word (matching `rr_isa::Flags::to_bits`).
    fn pack_flags(&mut self, b: BlockId) -> ValueId {
        let z = self.emit(b, Op::ReadCell(Cell::Z));
        let n = self.emit(b, Op::ReadCell(Cell::N));
        let c = self.emit(b, Op::ReadCell(Cell::C));
        let v = self.emit(b, Op::ReadCell(Cell::V));
        let one = self.konst(b, 1);
        let two = self.konst(b, 2);
        let three = self.konst(b, 3);
        let n1 = self.bin(b, BinOp::Shl, n, one);
        let c2 = self.bin(b, BinOp::Shl, c, two);
        let v3 = self.bin(b, BinOp::Shl, v, three);
        let zn = self.bin(b, BinOp::Or, z, n1);
        let cv = self.bin(b, BinOp::Or, c2, v3);
        self.bin(b, BinOp::Or, zn, cv)
    }

    fn unpack_flags(&mut self, b: BlockId, word: ValueId) {
        let one = self.konst(b, 1);
        for (shift, cell) in [(0u64, Cell::Z), (1, Cell::N), (2, Cell::C), (3, Cell::V)] {
            let sh = self.konst(b, shift);
            let moved = self.bin(b, BinOp::Lshr, word, sh);
            let bit = self.bin(b, BinOp::And, moved, one);
            self.write_flag(b, cell, bit);
        }
    }
}

fn lift_function(
    mf: &rr_disasm::Function,
    sym_map: &HashMap<u64, SymInstr>,
    fn_names: &HashMap<u64, String>,
) -> Result<Function, LiftError> {
    let mut ctx =
        Ctx { f: Function::new(mf.name.clone()), sym_map, fn_names, block_of: HashMap::new() };
    // Allocate IR blocks: function entry is block 0.
    ctx.block_of.insert(mf.entry, ctx.f.entry());
    for block in &mf.blocks {
        if block.addr != mf.entry {
            let id = ctx.f.new_block();
            ctx.block_of.insert(block.addr, id);
        }
    }

    for block in &mf.blocks {
        lift_block(&mut ctx, block)?;
    }
    Ok(ctx.f)
}

fn lift_block(ctx: &mut Ctx<'_>, mb: &rr_disasm::BasicBlock) -> Result<(), LiftError> {
    let b = ctx.block_of[&mb.addr];
    let (term_addr, term_insn) = mb.terminator();

    for &(addr, insn) in &mb.instrs {
        let is_terminator_slot = addr == term_addr;
        if is_terminator_slot && set_block_terminator(ctx, b, mb, addr, insn)? {
            return Ok(());
        }
        lift_instr(ctx, b, addr, insn)?;
        if is_terminator_slot {
            // Plain final instruction (leader split or svc exit):
            // fall through to the single successor if there is one.
            let term = match mb.succs.as_slice() {
                [next] => Terminator::Br(ctx.block_of[next]),
                [] => Terminator::Abort, // dynamically unreachable fall-off
                _ => unreachable!("plain instructions have at most one successor"),
            };
            ctx.f.set_terminator(b, term);
            return Ok(());
        }
    }
    let _ = term_insn;
    Ok(())
}

/// Handles block-terminating instructions; returns `true` if the
/// terminator was set (the instruction is consumed).
fn set_block_terminator(
    ctx: &mut Ctx<'_>,
    b: BlockId,
    mb: &rr_disasm::BasicBlock,
    addr: u64,
    insn: Instr,
) -> Result<bool, LiftError> {
    match insn.kind() {
        InstrKind::Jump => {
            let target = mb.succs.first().copied().ok_or_else(|| LiftError::Unsupported {
                addr,
                what: "jump without recovered target".into(),
            })?;
            let target_block =
                *ctx.block_of.get(&target).ok_or_else(|| LiftError::Unsupported {
                    addr,
                    what: "jump target outside this function (tail call?)".into(),
                })?;
            ctx.f.set_terminator(b, Terminator::Br(target_block));
            Ok(true)
        }
        InstrKind::CondJump => {
            let Instr::Jcc { cc, .. } = insn else { unreachable!() };
            let [taken, fallthrough] = mb.succs.as_slice() else {
                return Err(LiftError::Unsupported {
                    addr,
                    what: "conditional jump without two successors".into(),
                });
            };
            let cond = ctx.eval_cond(b, cc);
            let if_true = *ctx.block_of.get(taken).ok_or_else(|| LiftError::Unsupported {
                addr,
                what: "branch target outside this function".into(),
            })?;
            let if_false =
                *ctx.block_of.get(fallthrough).ok_or_else(|| LiftError::Unsupported {
                    addr,
                    what: "branch fall-through outside this function".into(),
                })?;
            ctx.f.set_terminator(b, Terminator::CondBr { cond, if_true, if_false });
            Ok(true)
        }
        InstrKind::Ret => {
            // The machine `ret` pops the return address from the stack;
            // the lifted call sequence leaves a dummy slot there (see
            // `lift_instr` for calls), which must be dropped to keep the
            // virtual stack balanced.
            let sp = ctx.read(b, Reg::SP);
            let eight = ctx.konst(b, 8);
            let nsp = ctx.bin(b, BinOp::Add, sp, eight);
            ctx.write(b, Reg::SP, nsp);
            ctx.f.set_terminator(b, Terminator::Ret);
            Ok(true)
        }
        InstrKind::Halt => {
            ctx.f.set_terminator(b, Terminator::Abort);
            Ok(true)
        }
        InstrKind::IndirectJump => Err(LiftError::Unsupported {
            addr,
            what: "indirect jump (jmpr) targets are not statically known".into(),
        }),
        _ => Ok(false),
    }
}

fn lift_instr(ctx: &mut Ctx<'_>, b: BlockId, addr: u64, insn: Instr) -> Result<(), LiftError> {
    match insn {
        Instr::Nop => {}
        Instr::MovRR { rd, rs } => {
            let v = ctx.read(b, rs);
            ctx.write(b, rd, v);
        }
        Instr::MovRI { rd, imm } => {
            // Symbolized address materializations become SymAddr so the
            // lowered binary references the *new* location.
            let v = match ctx.sym_map.get(&addr) {
                Some(SymInstr::MovSym { sym, addend, .. }) => {
                    let base = ctx.emit(b, Op::SymAddr(sym.clone()));
                    if *addend != 0 {
                        let a = ctx.konst(b, *addend as u64);
                        ctx.bin(b, BinOp::Add, base, a)
                    } else {
                        base
                    }
                }
                _ => ctx.konst(b, imm),
            };
            ctx.write(b, rd, v);
        }
        Instr::AluRR { op, rd, rs } => {
            let a = ctx.read(b, rd);
            let rhs = ctx.read(b, rs);
            lift_alu(ctx, b, op, rd, a, rhs);
        }
        Instr::AluRI { op, rd, imm } => {
            let a = ctx.read(b, rd);
            let rhs = ctx.konst(b, imm as i64 as u64);
            lift_alu(ctx, b, op, rd, a, rhs);
        }
        Instr::ShiftRI { op, rd, amt } => {
            let amt = amt & 63;
            if amt == 0 {
                return Ok(()); // value and flags unchanged
            }
            let a = ctx.read(b, rd);
            let amt_v = ctx.konst(b, u64::from(amt));
            let bin = match op {
                ShiftOp::Shl => BinOp::Shl,
                ShiftOp::Shr => BinOp::Lshr,
                ShiftOp::Sar => BinOp::Ashr,
            };
            let res = ctx.bin(b, bin, a, amt_v);
            ctx.write(b, rd, res);
            // Flags: ZN from result, C = last bit shifted out, V = 0.
            let zero = ctx.konst(b, 0);
            let z = ctx.icmp(b, Pred::Eq, res, zero);
            let n = ctx.icmp(b, Pred::Slt, res, zero);
            let carry_shift = match op {
                ShiftOp::Shl => 64 - amt,
                ShiftOp::Shr | ShiftOp::Sar => amt - 1,
            };
            let cs = ctx.konst(b, u64::from(carry_shift));
            let one = ctx.konst(b, 1);
            let moved = ctx.bin(b, BinOp::Lshr, a, cs);
            let c = ctx.bin(b, BinOp::And, moved, one);
            ctx.write_flag(b, Cell::Z, z);
            ctx.write_flag(b, Cell::N, n);
            ctx.write_flag(b, Cell::C, c);
            ctx.write_flag(b, Cell::V, zero);
        }
        Instr::Not { rd } => {
            let a = ctx.read(b, rd);
            let res = ctx.emit(b, Op::Not(a));
            ctx.write(b, rd, res);
            ctx.flags_logic(b, res);
        }
        Instr::Neg { rd } => {
            let a = ctx.read(b, rd);
            let res = ctx.emit(b, Op::Neg(a));
            ctx.write(b, rd, res);
            let zero = ctx.konst(b, 0);
            ctx.flags_sub(b, zero, a, res);
        }
        Instr::CmpRR { rs1, rs2 } => {
            let a = ctx.read(b, rs1);
            let c = ctx.read(b, rs2);
            let res = ctx.bin(b, BinOp::Sub, a, c);
            ctx.flags_sub(b, a, c, res);
        }
        Instr::CmpRI { rs1, imm } => {
            let a = ctx.read(b, rs1);
            let c = ctx.konst(b, imm as i64 as u64);
            let res = ctx.bin(b, BinOp::Sub, a, c);
            ctx.flags_sub(b, a, c, res);
        }
        Instr::CmpRM { rs1, base, disp } => {
            let a = ctx.read(b, rs1);
            let address = ctx.address(b, base, disp);
            let m = ctx.emit(b, Op::Load { addr: address, width: Width::Q });
            let res = ctx.bin(b, BinOp::Sub, a, m);
            ctx.flags_sub(b, a, m, res);
        }
        Instr::TestRR { rs1, rs2 } => {
            let a = ctx.read(b, rs1);
            let c = ctx.read(b, rs2);
            let res = ctx.bin(b, BinOp::And, a, c);
            ctx.flags_logic(b, res);
        }
        Instr::Load { rd, base, disp } => {
            let address = ctx.address(b, base, disp);
            let v = ctx.emit(b, Op::Load { addr: address, width: Width::Q });
            ctx.write(b, rd, v);
        }
        Instr::LoadB { rd, base, disp } => {
            let address = ctx.address(b, base, disp);
            let v = ctx.emit(b, Op::Load { addr: address, width: Width::B });
            ctx.write(b, rd, v);
        }
        Instr::Store { base, disp, rs } => {
            let address = ctx.address(b, base, disp);
            let v = ctx.read(b, rs);
            ctx.emit(b, Op::Store { addr: address, value: v, width: Width::Q });
        }
        Instr::StoreB { base, disp, rs } => {
            let address = ctx.address(b, base, disp);
            let v = ctx.read(b, rs);
            ctx.emit(b, Op::Store { addr: address, value: v, width: Width::B });
        }
        Instr::Lea { rd, base, disp } => {
            let address = ctx.address(b, base, disp);
            ctx.write(b, rd, address);
        }
        Instr::Push { rs } => {
            let v = ctx.read(b, rs);
            ctx.push(b, v);
        }
        Instr::Pop { rd } => {
            let v = ctx.pop(b);
            ctx.write(b, rd, v);
        }
        Instr::PushF => {
            let packed = ctx.pack_flags(b);
            ctx.push(b, packed);
        }
        Instr::PopF => {
            let word = ctx.pop(b);
            ctx.unpack_flags(b, word);
        }
        Instr::SetCc { rd, cc } => {
            let v = ctx.eval_cond(b, cc);
            ctx.write(b, rd, v);
        }
        Instr::Svc { num } => {
            ctx.emit(b, Op::Svc { num });
        }
        Instr::Call { .. } => {
            // Resolve the call target through the symbolized listing.
            let callee = match ctx.sym_map.get(&addr) {
                Some(SymInstr::Branch { is_call: true, target, .. }) => target.clone(),
                _ => {
                    return Err(LiftError::Unsupported {
                        addr,
                        what: "call without symbolized target".into(),
                    })
                }
            };
            // The disassembler names functions after their symbols; the
            // target label is that name.
            if !ctx.fn_names.values().any(|n| *n == callee) {
                return Err(LiftError::Unsupported {
                    addr,
                    what: format!("call to unknown function `{callee}`"),
                });
            }
            // Preserve the machine stack layout: the machine `call` pushes
            // a return address the callee's sp-relative accesses may index
            // past. The lifted transfer is a native call, so push a dummy
            // slot on the *virtual* stack instead (the callee's lifted
            // `ret` drops it).
            let dummy = ctx.konst(b, 0);
            ctx.push(b, dummy);
            ctx.emit(b, Op::Call { callee });
        }
        Instr::CallR { rs } => {
            let target = ctx.read(b, rs);
            let dummy = ctx.konst(b, 0);
            ctx.push(b, dummy);
            ctx.emit(b, Op::CallIndirect { target });
        }
        // Block terminators are handled by `set_block_terminator`.
        Instr::Jmp { .. } | Instr::Jcc { .. } | Instr::Ret | Instr::Halt | Instr::JmpR { .. } => {
            unreachable!("terminators are consumed before lift_instr")
        }
    }
    Ok(())
}

fn lift_alu(ctx: &mut Ctx<'_>, b: BlockId, op: AluOp, rd: Reg, a: ValueId, rhs: ValueId) {
    let bin = match op {
        AluOp::Add => BinOp::Add,
        AluOp::Sub => BinOp::Sub,
        AluOp::And => BinOp::And,
        AluOp::Or => BinOp::Or,
        AluOp::Xor => BinOp::Xor,
        AluOp::Mul => BinOp::Mul,
        AluOp::Udiv => BinOp::Udiv,
    };
    let res = ctx.bin(b, bin, a, rhs);
    ctx.write(b, rd, res);
    match op {
        AluOp::Add => ctx.flags_add(b, a, rhs, res),
        AluOp::Sub => ctx.flags_sub(b, a, rhs, res),
        AluOp::Mul => ctx.flags_mul(b, a, rhs, res),
        AluOp::And | AluOp::Or | AluOp::Xor | AluOp::Udiv => ctx.flags_logic(b, res),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_asm::assemble_and_link;

    fn lift_src(src: &str) -> LiftedProgram {
        let exe = assemble_and_link(src).expect("source builds");
        lift(&exe).expect("lifts")
    }

    #[test]
    fn lifts_straight_line_arithmetic() {
        let lifted = lift_src(
            "    .global _start\n_start:\n    mov r1, 6\n    mov r2, 7\n    mul r1, r2\n    svc 0\n",
        );
        let f = lifted.module.function(ENTRY_FUNCTION).expect("entry renamed");
        assert_eq!(f.block_count(), 1);
        // mov + mov + mul(+flags) + svc ⇒ a dozen-ish ops.
        assert!(f.placed_op_count() >= 8);
        rr_ir::verify(&lifted.module).unwrap();
    }

    #[test]
    fn lifts_branches_into_condbr() {
        let lifted = lift_src(
            "    .global _start\n\
             _start:\n\
                 cmp r1, 0\n\
                 je .z\n\
                 mov r1, 1\n\
                 svc 0\n\
             .z:\n\
                 mov r1, 2\n\
                 svc 0\n",
        );
        let f = lifted.module.function(ENTRY_FUNCTION).unwrap();
        assert_eq!(f.block_count(), 3);
        let entry_term = &f.block(f.entry()).term;
        assert!(matches!(entry_term, Terminator::CondBr { .. }), "{entry_term:?}");
    }

    #[test]
    fn lifts_calls_between_functions() {
        let lifted = lift_src(
            "    .global _start\n\
             _start:\n\
                 call helper\n\
                 svc 0\n\
             helper:\n\
                 mov r0, 1\n\
                 ret\n",
        );
        assert_eq!(lifted.module.functions().len(), 2);
        let helper = lifted.module.function("helper").unwrap();
        assert!(matches!(helper.block(helper.entry()).term, Terminator::Ret));
        let entry = lifted.module.function(ENTRY_FUNCTION).unwrap();
        let has_call = entry
            .iter_ops()
            .any(|(_, _, op)| matches!(op, Op::Call { callee } if callee == "helper"));
        assert!(has_call);
    }

    #[test]
    fn symbolized_addresses_become_symaddr() {
        let lifted = lift_src(
            "    .global _start\n\
             _start:\n\
                 mov r2, value\n\
                 load r1, [r2]\n\
                 svc 0\n\
                 .data\n\
             value:\n\
                 .quad 9\n",
        );
        let f = lifted.module.function(ENTRY_FUNCTION).unwrap();
        let has_symaddr =
            f.iter_ops().any(|(_, _, op)| matches!(op, Op::SymAddr(s) if s == "value"));
        assert!(has_symaddr, "{}", lifted.module);
        // Data carried through.
        assert!(!lifted.data.is_empty());
    }

    #[test]
    fn rejects_indirect_jumps() {
        let exe = assemble_and_link(
            "    .global _start\n\
             _start:\n\
                 mov r1, target\n\
                 jmpr r1\n\
             target:\n\
                 svc 0\n",
        )
        .unwrap();
        assert!(matches!(lift(&exe), Err(LiftError::Unsupported { .. })));
    }

    #[test]
    fn workloads_lift_and_verify() {
        for w in rr_workloads::all_workloads() {
            let exe = w.build().unwrap();
            let lifted = lift(&exe).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            rr_ir::verify(&lifted.module).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(lifted.module.functions().len() >= 2, "{}", w.name);
        }
    }

    #[test]
    fn halt_lifts_to_abort() {
        let lifted = lift_src("    .global _start\n_start:\n    halt\n");
        let f = lifted.module.function(ENTRY_FUNCTION).unwrap();
        assert!(matches!(f.block(f.entry()).term, Terminator::Abort));
    }
}
