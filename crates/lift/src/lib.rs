//! # rr-lift — lifting RRVM binaries to RRIR
//!
//! The front end of the Hybrid rewriting approach (paper §IV-C step 1) and
//! the Rev.ng stand-in: a full translation from machine code to the
//! compiler IR, so that countermeasures can be implemented as IR passes
//! and the result lowered back to a binary by `rr-lower`.
//!
//! The translation follows Rev.ng's CPU-state-variable design: every
//! machine register and condition flag becomes an RRIR [`rr_ir::Cell`];
//! each machine instruction expands into explicit dataflow between cells —
//! including *flag semantics*, so a `cmp` lifts into the four NZCV flag
//! computations and a `j<cc>` into the corresponding boolean expression
//! over the flag cells. Machine basic blocks map 1:1 onto IR blocks;
//! machine `call`/`ret` map to IR calls/returns (state passes through
//! cells and memory, so IR functions have no explicit parameters).
//!
//! ## Known modelling gaps (documented divergences)
//!
//! * Indirect *jumps* (`jmpr`) are rejected ([`LiftError::Unsupported`]) —
//!   their targets are not statically known. Indirect *calls* are
//!   supported (they return).
//!
//! ## Example
//!
//! ```
//! use rr_asm::assemble_and_link;
//! use rr_lift::lift;
//!
//! let exe = assemble_and_link(
//!     "    .global _start\n_start:\n    mov r1, 7\n    svc 0\n",
//! )?;
//! let lifted = lift(&exe)?;
//! assert_eq!(lifted.module.entry, "__rr_entry"); // `_start` is renamed
//! assert!(rr_ir::verify(&lifted.module).is_ok());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

mod lifter;

pub use lifter::{lift, LiftError, LiftedProgram, ENTRY_FUNCTION};
