//! # rr-engine — checkpointed replay and sharded campaign scheduling
//!
//! Fault-injection campaigns replay one golden execution thousands of
//! times: once per candidate fault, each time up to the injection step.
//! Replaying from step 0 makes a campaign over a `T`-step trace cost
//! O(T²) emulated instructions, which caps tractable trace lengths.
//!
//! This crate removes that bound with the classic snapshot-then-resume
//! structure (the same shape lifter runtimes use to fork cheap execution
//! states from one expensive setup):
//!
//! * [`ReplayEngine`] records one pass over the golden run, capturing a
//!   [`rr_emu::Snapshot`] every `k` steps (default `k ≈ √T`). Restoring a
//!   machine at an arbitrary trace step then costs O(regions) for the
//!   snapshot plus at most `k` single steps — O(T·√T) for a whole
//!   exhaustive campaign instead of O(T²).
//! * [`shard`] provides the parallel scheduler: contiguous or
//!   round-robin ([`shard::ShardPolicy`]) work assignment across OS
//!   threads with order-preserving collection and a streaming fold for
//!   aggregation without materializing per-item results.
//!
//! Snapshots are copy-on-write at *page* granularity
//! ([`rr_emu::Memory`] shares fixed 4 KiB pages, with a zero-page fast
//! path for untouched memory), so a checkpoint pays only for the bytes
//! its interval actually dirtied — a stack-writing interval retains the
//! few stack pages it touched, not the whole 1 MiB region — and worker
//! threads restore from the same snapshots concurrently without
//! copying. Retention is budgeted in those terms:
//! [`ReplayConfig::max_retained_bytes`] bounds the summed dirtied-page
//! deltas between consecutive checkpoints (widening the interval when
//! exceeded), [`ReplayEngine::footprint`] reports them, and
//! [`ReplayConfig::record_snapshots`] lets naive-only consumers skip
//! snapshot capture entirely.
//!
//! The campaign-level integration lives in `rr-fault`
//! (`CampaignSession`); this crate stays independent of fault models so
//! it can serve any replay-heavy consumer (differential testing, trace
//! bisection, time-travel debugging).
//!
//! ## Example
//!
//! ```
//! use rr_asm::assemble_and_link;
//! use rr_engine::{ReplayConfig, ReplayEngine};
//!
//! let exe = assemble_and_link(
//!     "    .global _start\n_start:\n    mov r1, 3\n.loop:\n    sub r1, 1\n    cmp r1, 0\n    jne .loop\n    svc 0\n",
//! )?;
//! let engine = ReplayEngine::record(&exe, &[], &ReplayConfig::default());
//! // A machine about to execute trace step 5, without replaying 0..5
//! // from scratch when a checkpoint is closer.
//! let machine = engine.machine_at(5)?;
//! assert_eq!(machine.pc(), engine.trace()[5]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

mod blockcache;
mod replay;
pub mod shard;

pub use blockcache::{build_block_cache, rebuild_block_cache};
pub use replay::{
    auto_interval, flush_block_stats, ExecMode, ReplayConfig, ReplayEngine, ReplayError,
    ReplayFootprint,
};

// The uop tiering and optimization knobs are part of [`ReplayConfig`];
// re-exported so replay consumers don't need an rr-emu dependency to
// set them.
pub use rr_emu::{OptLevel, UopConfig};
