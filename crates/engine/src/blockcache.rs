//! Session-level construction and invalidation of the emulator's
//! pre-decoded [`BlockCache`].
//!
//! The emulator owns block *execution* ([`rr_emu::Machine::run_blocks`]);
//! this module owns the *policy*: where block leaders come from
//! (`rr-disasm`'s recovered CFG), when a session may keep a cache across
//! a binary rewrite (only when the text bytes are identical), and how
//! much of a cache a rewrite invalidated (accounted from the rewrite's
//! [`ListingDelta`] into [`Counter::BlockInvalidations`]).

use rr_disasm::{build_functions, discover, ListingDelta};
use rr_emu::BlockCache;
use rr_obj::Executable;
use rr_telemetry::{Counter, Telemetry};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Decodes `exe`'s text into a block cache, using the recovered CFG's
/// basic-block starts as superblock leaders. Returns `None` when code
/// discovery or decoding finds nothing cacheable — callers simply run
/// the interpreter, which is always correct.
///
/// Counts every decoded superblock into [`Counter::BlocksDecoded`].
pub fn build_block_cache(exe: &Executable, telemetry: &Telemetry) -> Option<Arc<BlockCache>> {
    let code = discover(exe).ok()?;
    let functions = build_functions(exe, &code);
    // Functions may share blocks (e.g. via tail jumps); dedup by address.
    let leaders: BTreeSet<u64> =
        functions.iter().flat_map(|f| f.blocks.iter().map(|b| b.addr)).collect();
    let cache = BlockCache::build(exe, leaders)?;
    telemetry.count(Counter::BlocksDecoded, cache.block_count() as u64);
    Some(Arc::new(cache))
}

/// Carries a block cache across a harden-loop rewrite.
///
/// Reusing pre-decoded bodies is sound only when the new binary's text
/// bytes are *identical* to what the cache was decoded from: a shifted
/// but symbolically unchanged block still re-encodes its relative
/// branches differently, so the delta's unchanged-instruction remap is
/// not sufficient evidence. When the text differs, the old cache is
/// dropped — blocks overlapping the delta's changed or shifted ranges
/// are counted into [`Counter::BlockInvalidations`] — and `exe` is
/// decoded fresh.
pub fn rebuild_block_cache(
    old: Option<&Arc<BlockCache>>,
    delta: &ListingDelta,
    exe: &Executable,
    telemetry: &Telemetry,
) -> Option<Arc<BlockCache>> {
    if let Some(old) = old {
        if old.text_start() == exe.text_range().start && old.text_bytes() == exe.text_bytes() {
            return Some(Arc::clone(old));
        }
        let stale = old
            .block_ranges()
            .filter(|block| {
                delta
                    .changed_ranges()
                    .iter()
                    .chain(delta.shifted_ranges())
                    .any(|r| r.start < block.end && block.start < r.end)
            })
            .count();
        telemetry.count(Counter::BlockInvalidations, stale as u64);
    }
    build_block_cache(exe, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_asm::assemble_and_link;
    use rr_emu::{BlockStats, Machine};

    fn sample() -> Executable {
        assemble_and_link(
            "    .global _start\n\
             _start:\n\
                 mov r1, 5\n\
             .loop:\n\
                 sub r1, 1\n\
                 cmp r1, 0\n\
                 jne .loop\n\
                 svc 0\n",
        )
        .unwrap()
    }

    #[test]
    fn cfg_leaders_produce_an_executable_cache() {
        let exe = sample();
        let telemetry = Telemetry::counters();
        let cache = build_block_cache(&exe, &telemetry).expect("sample decodes");
        assert!(cache.block_count() >= 2, "entry block and loop block");
        assert_eq!(
            telemetry.metrics().unwrap().counter(Counter::BlocksDecoded),
            cache.block_count() as u64
        );
        let mut reference = Machine::new(&exe, &[]);
        let want = reference.run(10_000);
        let mut m = Machine::new(&exe, &[]);
        let mut stats = BlockStats::default();
        assert_eq!(m.run_blocks(&cache, 10_000, &mut stats), want);
        assert_eq!(stats.interp_steps, 0, "fully covered program: {stats:?}");
    }

    #[test]
    fn identical_text_reuses_the_cache_across_a_rewrite() {
        let exe = sample();
        let telemetry = Telemetry::counters();
        let cache = build_block_cache(&exe, &telemetry).unwrap();
        let reused =
            rebuild_block_cache(Some(&cache), &ListingDelta::identity(), &exe, &telemetry).unwrap();
        assert!(Arc::ptr_eq(&cache, &reused));
        assert_eq!(telemetry.metrics().unwrap().counter(Counter::BlockInvalidations), 0);
    }

    #[test]
    fn changed_text_invalidates_and_rebuilds() {
        let exe = sample();
        let telemetry = Telemetry::counters();
        let cache = build_block_cache(&exe, &telemetry).unwrap();

        // Patch the loop count: same layout, different text bytes.
        let listing = rr_disasm::disassemble(&exe).unwrap().listing;
        let mut patched = listing.clone();
        let (index, _, _) = patched.original_code().next().unwrap();
        patched.replace_code(
            index,
            vec![rr_disasm::Line::Code {
                orig_addr: None,
                insn: rr_disasm::SymInstr::Plain(rr_isa::Instr::MovRI {
                    rd: rr_isa::Reg::R1,
                    imm: 7,
                }),
            }],
        );
        let rebuilt = assemble_and_link(&patched.to_source()).unwrap();
        assert_ne!(rebuilt.text_bytes(), exe.text_bytes());
        let delta = ListingDelta::compute(&listing, &exe, &patched, &rebuilt).unwrap();

        let fresh = rebuild_block_cache(Some(&cache), &delta, &rebuilt, &telemetry).unwrap();
        assert!(!Arc::ptr_eq(&cache, &fresh));
        assert_eq!(fresh.text_bytes(), rebuilt.text_bytes());
        assert!(
            telemetry.metrics().unwrap().counter(Counter::BlockInvalidations) >= 1,
            "the changed range overlaps at least the entry block"
        );

        // The fresh cache executes the rebuilt binary exactly.
        let mut reference = Machine::new(&rebuilt, &[]);
        let want = reference.run(10_000);
        let mut m = Machine::new(&rebuilt, &[]);
        let mut stats = BlockStats::default();
        assert_eq!(m.run_blocks(&fresh, 10_000, &mut stats), want);
    }

    #[test]
    fn no_prior_cache_builds_fresh_without_invalidation_counts() {
        let exe = sample();
        let telemetry = Telemetry::counters();
        let cache = rebuild_block_cache(None, &ListingDelta::identity(), &exe, &telemetry);
        assert!(cache.is_some());
        assert_eq!(telemetry.metrics().unwrap().counter(Counter::BlockInvalidations), 0);
    }
}
