//! Recording a golden run with periodic checkpoints and replaying to
//! arbitrary trace steps.

use rr_emu::{
    BlockCache, BlockStats, Execution, Machine, MemoryDelta, RunOutcome, RunResult, Snapshot,
    UopConfig,
};
use rr_obj::Executable;
use rr_telemetry::{Counter, Gauge, SpanKind, Telemetry};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// How recorded and replayed instructions execute.
///
/// All three modes are bit-identical — same traces, same outcomes, same
/// architectural state at every observable point (pinned by the emu
/// proptests and the campaign equivalence suites) — so the choice is
/// purely a speed/robustness knob, surfaced as `--exec` on the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Per-step fetch/decode interpretation everywhere (the reference
    /// implementation).
    Interp,
    /// Pre-decoded superblock execution with interpreter fallback over
    /// modified code (see [`crate::build_block_cache`]).
    Blocks,
    /// The blocks tier plus micro-op compilation: blocks crossing
    /// [`rr_emu::UopConfig::hot_threshold`] are lowered once into
    /// pre-extracted micro-op traces executed with lazy NZCV
    /// materialization ([`rr_emu::Machine::run_uops`]).
    #[default]
    Uops,
}

impl ExecMode {
    /// Whether this mode executes through a pre-decoded block cache.
    pub fn uses_block_cache(self) -> bool {
        self != ExecMode::Interp
    }
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExecMode::Interp => "interp",
            ExecMode::Blocks => "blocks",
            ExecMode::Uops => "uops",
        })
    }
}

impl FromStr for ExecMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interp" => Ok(ExecMode::Interp),
            "blocks" => Ok(ExecMode::Blocks),
            "uops" => Ok(ExecMode::Uops),
            other => Err(format!("unknown exec mode `{other}` (interp|blocks|uops)")),
        }
    }
}

/// Tunables for [`ReplayEngine::record`].
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Step budget for the recording run.
    pub max_steps: u64,
    /// Capture a checkpoint every this many steps; `0` = adaptive
    /// (tracks ≈ √T as the run grows, the total-work optimum when
    /// replays are uniformly distributed over the trace — no probe run
    /// needed).
    pub checkpoint_interval: u64,
    /// Ceiling on the number of retained checkpoints; `0` = unlimited.
    /// With page-granular COW memory the per-checkpoint cost is bytes
    /// dirtied, so [`ReplayConfig::max_retained_bytes`] is the
    /// meaningful memory bound — this count cap remains as a secondary
    /// guard on per-checkpoint fixed overhead.
    pub max_checkpoints: usize,
    /// *Byte* budget for retained checkpoint state, measured as the
    /// page-granular dirtied bytes between consecutive checkpoints
    /// ([`rr_emu::Snapshot::dirtied_since`]). When the recording would
    /// exceed it, the interval doubles and the recorded checkpoints are
    /// thinned — same mechanism as the count cap, but bounding what
    /// actually matters: resident memory. `0` = unlimited.
    pub max_retained_bytes: u64,
    /// When `false`, only the initial state is captured: the trace and
    /// behaviour are still recorded, but [`ReplayEngine::machine_at`]
    /// degrades to replay-from-0. The engine hint for consumers that
    /// will only ever replay naively and shouldn't pay for snapshots.
    pub record_snapshots: bool,
    /// Telemetry handle the recording and every replay report through
    /// (`record`/`snapshot`/`restore` spans, checkpoint-restore counts,
    /// retained-byte gauges). The default handle is disabled and costs a
    /// pointer check per event.
    pub telemetry: Telemetry,
    /// Pre-decoded superblocks over the executable's text (see
    /// [`crate::build_block_cache`]). When set, the recording run and
    /// [`ReplayEngine::machine_at`] forward-stepping execute through
    /// [`rr_emu::Machine::run_blocks`] — bit-identical to the
    /// interpreter, but without per-step fetch/decode outside injection
    /// and capture fences. `None` runs the plain interpreter.
    pub block_cache: Option<Arc<BlockCache>>,
    /// Which tier executes when a block cache is present:
    /// [`ExecMode::Uops`] (default) additionally compiles hot blocks to
    /// micro-op traces, [`ExecMode::Blocks`] stays with decoded bodies.
    /// Without a cache both degrade to interpretation.
    pub exec: ExecMode,
    /// Tiering knob for [`ExecMode::Uops`]: how hot a block runs
    /// decoded before it is compiled.
    pub uop: UopConfig,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            max_steps: 1_000_000,
            checkpoint_interval: 0,
            max_checkpoints: 1024,
            max_retained_bytes: 256 << 20,
            record_snapshots: true,
            telemetry: Telemetry::default(),
            block_cache: None,
            exec: ExecMode::default(),
            uop: UopConfig::default(),
        }
    }
}

/// The checkpoint interval minimizing recorded-state + replay work for a
/// `steps`-long trace: √T, clamped to at least 1.
pub fn auto_interval(steps: u64) -> u64 {
    ((steps as f64).sqrt().ceil() as u64).max(1)
}

/// Why a replay request failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayError {
    /// The requested step lies beyond the recorded trace.
    OutOfTrace {
        /// The requested step.
        requested: u64,
        /// The recorded trace length.
        trace_len: u64,
    },
    /// Re-execution from the nearest checkpoint stopped early — the
    /// machine is not deterministic relative to the recording (a bug in
    /// the caller's state handling, surfaced instead of panicking).
    Diverged {
        /// The step at which re-execution stopped.
        step: u64,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::OutOfTrace { requested, trace_len } => {
                write!(f, "step {requested} is beyond the {trace_len}-step recorded trace")
            }
            ReplayError::Diverged { step } => {
                write!(f, "replay diverged from the recording at step {step}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

#[derive(Debug)]
struct Checkpoint {
    step: u64,
    snapshot: Snapshot,
    /// Pages this checkpoint no longer shares with the *previous retained*
    /// checkpoint — its incremental retained footprint. Zero for the
    /// initial checkpoint (accounted via resident bytes instead).
    delta: MemoryDelta,
}

/// Aggregate memory footprint of a recording's retained checkpoints.
///
/// `retained_bytes` is what the page-granular COW representation keeps
/// privately across checkpoints; `region_cow_bytes` is what the previous
/// region-granular design would have kept for the *same* checkpoints
/// (one whole region per region touched per interval) — the ratio is the
/// win the paged memory buys, and the snapshot-footprint benchmark gates
/// it at ≥ 10× on stack-dirtying workloads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayFootprint {
    /// Retained checkpoints, including the initial state.
    pub checkpoints: usize,
    /// Checkpoint interval in trace steps.
    pub interval: u64,
    /// Materialized bytes of the initial checkpoint (shared by every
    /// later checkpoint that didn't dirty them).
    pub base_resident_bytes: u64,
    /// Pages dirtied between consecutive checkpoints, summed.
    pub retained_pages: u64,
    /// `retained_pages × PAGE_SIZE` — incremental retained state under
    /// page-granular COW.
    pub retained_bytes: u64,
    /// Incremental retained state region-granular COW would have kept
    /// for the same checkpoints.
    pub region_cow_bytes: u64,
}

impl fmt::Display for ReplayFootprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} checkpoints (interval {}): {} KiB retained ({} dirty pages; \
             region-COW would retain {} KiB)",
            self.checkpoints,
            self.interval,
            (self.base_resident_bytes + self.retained_bytes) / 1024,
            self.retained_pages,
            (self.base_resident_bytes + self.region_cow_bytes) / 1024,
        )
    }
}

/// One recorded golden run: its trace, behaviour, and periodic state
/// checkpoints, supporting O(√T) random access to any trace step.
#[derive(Debug)]
pub struct ReplayEngine {
    checkpoints: Vec<Checkpoint>,
    trace: Vec<u64>,
    execution: Execution,
    interval: u64,
    /// Whether periodic snapshots were captured (engine hint; `false`
    /// means only the initial state exists and replay is from step 0).
    snapshots: bool,
    /// Block cache the recording ran under; [`ReplayEngine::machine_at`]
    /// forward-steps through it when present.
    block_cache: Option<Arc<BlockCache>>,
    /// Execution tier the recording ran under; replays use the same one
    /// (compiled bodies accumulated in the shared cache stay warm).
    exec: ExecMode,
    uop: UopConfig,
    telemetry: Telemetry,
}

/// The checkpoint-capture schedule shared by [`ReplayEngine::record`]
/// and [`ReplayEngine::replay_range`], factored out so the interpreter
/// and block-cached drivers follow the identical policy: the interpreter
/// asks [`Recorder::should_capture`] before every step, the block driver
/// asks [`Recorder::next_fence`] for the step it must stop at.
struct Recorder<'a> {
    config: &'a ReplayConfig,
    /// First step eligible for periodic capture; `0` for a full
    /// recording, the last interval boundary at or before the window for
    /// a region-scoped one.
    aligned_start: u64,
    /// Last step eligible for capture; `u64::MAX` for a full recording.
    window_end: u64,
    /// Whether the interval still chases √T as the run grows (adaptive
    /// full recordings); pinned or windowed schedules widen only when a
    /// retention cap demands it.
    adaptive: bool,
    /// Whether periodic captures happen at all.
    enabled: bool,
    interval: u64,
    count_cap: u64,
    byte_cap: u64,
    retained_bytes: u64,
    checkpoints: Vec<Checkpoint>,
}

impl<'a> Recorder<'a> {
    /// Schedule for a full recording ([`ReplayEngine::record`]).
    fn full(machine: &Machine, config: &'a ReplayConfig) -> Recorder<'a> {
        let fixed = config.checkpoint_interval > 0;
        let interval = if fixed { config.checkpoint_interval } else { 1 };
        Recorder::new(machine, config, interval, !fixed, 0, u64::MAX, config.record_snapshots)
    }

    /// Schedule for a region-scoped recording
    /// ([`ReplayEngine::replay_range`]).
    fn windowed(
        machine: &Machine,
        config: &'a ReplayConfig,
        window: &std::ops::Range<u64>,
    ) -> Recorder<'a> {
        let interval = if config.checkpoint_interval > 0 {
            config.checkpoint_interval
        } else {
            auto_interval(window.end.saturating_sub(window.start))
        };
        let aligned_start = window.start - window.start % interval;
        let enabled = config.record_snapshots && !window.is_empty();
        Recorder::new(machine, config, interval, false, aligned_start, window.end, enabled)
    }

    fn new(
        machine: &Machine,
        config: &'a ReplayConfig,
        interval: u64,
        adaptive: bool,
        aligned_start: u64,
        window_end: u64,
        enabled: bool,
    ) -> Recorder<'a> {
        Recorder {
            config,
            aligned_start,
            window_end,
            adaptive,
            enabled,
            interval,
            count_cap: if config.max_checkpoints > 0 {
                config.max_checkpoints as u64
            } else {
                u64::MAX
            },
            byte_cap: if config.max_retained_bytes > 0 {
                config.max_retained_bytes
            } else {
                u64::MAX
            },
            retained_bytes: 0,
            checkpoints: vec![Checkpoint {
                step: 0,
                snapshot: machine.snapshot(),
                delta: MemoryDelta::default(),
            }],
        }
    }

    /// Whether a checkpoint is due with the machine about to execute
    /// trace step `step`.
    fn should_capture(&self, step: u64) -> bool {
        self.enabled
            && step > 0
            && step >= self.aligned_start
            && step <= self.window_end
            && (step - self.aligned_start).is_multiple_of(self.interval)
    }

    /// The next step strictly after `step` at which
    /// [`Recorder::should_capture`] holds — where the block-cached
    /// driver must fence. Recomputed per segment because thinning can
    /// widen the interval mid-run.
    fn next_fence(&self, step: u64) -> Option<u64> {
        if !self.enabled {
            return None;
        }
        let fence = if step < self.aligned_start {
            self.aligned_start
        } else {
            self.aligned_start + ((step - self.aligned_start) / self.interval + 1) * self.interval
        };
        (fence <= self.window_end).then_some(fence)
    }

    /// Captures a checkpoint, then thins the schedule while a retention
    /// cap is exceeded. Adaptive mode additionally chases count ≈
    /// interval (≈ √T); the byte budget may need several doublings, so
    /// this loops — step 0 is always retained, so the thinning
    /// terminates.
    fn capture(&mut self, machine: &Machine, step: u64) {
        let capture_span = self.config.telemetry.span(SpanKind::Snapshot);
        let snapshot = machine.snapshot();
        let delta =
            snapshot.dirtied_since(&self.checkpoints.last().expect("initial state").snapshot);
        drop(capture_span);
        self.retained_bytes += delta.bytes;
        self.checkpoints.push(Checkpoint { step, snapshot, delta });
        loop {
            let grow_at = if self.adaptive {
                (2 * self.interval).min(self.count_cap)
            } else {
                self.count_cap
            };
            let over =
                self.checkpoints.len() as u64 > grow_at || self.retained_bytes > self.byte_cap;
            if !over || self.checkpoints.len() <= 1 {
                break;
            }
            self.interval *= 2;
            // Widening keeps the schedule's alignment: aligned_start
            // stays on an interval boundary when the interval doubles.
            let (start, interval) = (self.aligned_start, self.interval);
            self.checkpoints.retain(|c| {
                c.step == 0 || (c.step >= start && (c.step - start).is_multiple_of(interval))
            });
            self.retained_bytes = recompute_deltas(&mut self.checkpoints);
        }
    }
}

/// Drives one recorded execution under `recorder`'s capture schedule:
/// the interpreter path checks the schedule before every step; the
/// block-cached path executes fence-to-fence segments through
/// [`Machine::run_blocks_traced`], paying the schedule check once per
/// segment instead of once per instruction.
fn run_recorded(
    machine: &mut Machine,
    config: &ReplayConfig,
    recorder: &mut Recorder<'_>,
    trace: &mut Vec<u64>,
) -> RunResult {
    let Some(cache) = config.block_cache.as_deref() else {
        return machine.run_with(config.max_steps, |m| {
            let step = trace.len() as u64;
            if recorder.should_capture(step) {
                recorder.capture(m, step);
            }
            trace.push(m.pc());
        });
    };
    let mut stats = BlockStats::default();
    let result = loop {
        let step = trace.len() as u64;
        if let Some(outcome) = machine.stopped() {
            break RunResult { outcome, steps: step };
        }
        if step >= config.max_steps {
            break RunResult { outcome: RunOutcome::TimedOut, steps: step };
        }
        if recorder.should_capture(step) {
            recorder.capture(machine, step);
        }
        let fence = recorder.next_fence(step).map_or(config.max_steps, |f| f.min(config.max_steps));
        match config.exec {
            ExecMode::Uops => {
                machine.run_uops_traced(cache, config.uop, fence - step, &mut stats, trace)
            }
            _ => machine.run_blocks_traced(cache, fence - step, &mut stats, trace),
        };
    };
    flush_block_stats(&config.telemetry, stats);
    result
}

/// Batches a run's per-tier step counts (and the uop tier's compile and
/// lazy-flag events) into the telemetry handle.
pub fn flush_block_stats(telemetry: &Telemetry, stats: BlockStats) {
    if stats.block_steps > 0 {
        telemetry.count(Counter::BlockSteps, stats.block_steps);
    }
    if stats.interp_steps > 0 {
        telemetry.count(Counter::InterpSteps, stats.interp_steps);
    }
    if stats.uop_steps > 0 {
        telemetry.count(Counter::UopSteps, stats.uop_steps);
    }
    if stats.blocks_compiled > 0 {
        telemetry.count(Counter::BlocksCompiled, stats.blocks_compiled);
    }
    if stats.flag_materializations > 0 {
        telemetry.count(Counter::FlagMaterializations, stats.flag_materializations);
    }
    if stats.tier_promotions > 0 {
        telemetry.count(Counter::TierPromotions, stats.tier_promotions);
    }
    if stats.blocks_optimized > 0 {
        telemetry.count(Counter::BlocksOptimized, stats.blocks_optimized);
    }
    if stats.uops_eliminated > 0 {
        telemetry.count(Counter::UopsEliminated, stats.uops_eliminated);
    }
    if stats.loads_forwarded > 0 {
        telemetry.count(Counter::LoadsForwarded, stats.loads_forwarded);
    }
    if stats.flag_defs_killed > 0 {
        telemetry.count(Counter::FlagDefsKilled, stats.flag_defs_killed);
    }
}

impl ReplayEngine {
    /// Runs `exe` on `input`, recording the program counter of every
    /// executed instruction and a state checkpoint every
    /// `config.checkpoint_interval` steps (plus the initial state).
    ///
    /// With `checkpoint_interval = 0` the interval adapts while the run
    /// executes: whenever the checkpoint count overtakes twice the
    /// current interval (or `max_checkpoints`), the interval doubles and
    /// every odd checkpoint is dropped. Interval and count chase each
    /// other, so both end within a factor of two of √T — the optimum —
    /// after a single pass, with no probe run to discover T first, while
    /// the count stays bounded by `max_checkpoints` on very long traces.
    ///
    /// Retained state is additionally bounded by
    /// `config.max_retained_bytes`: every new checkpoint's dirtied-page
    /// delta against its predecessor is accounted, and the interval
    /// widens (thinning recorded checkpoints) whenever the running total
    /// would exceed the byte budget.
    pub fn record(exe: &Executable, input: &[u8], config: &ReplayConfig) -> ReplayEngine {
        let record_span = config.telemetry.span(SpanKind::Record);
        let mut machine = Machine::new(exe, input);
        let mut recorder = Recorder::full(&machine, config);
        let mut trace = Vec::new();
        let result = run_recorded(&mut machine, config, &mut recorder, &mut trace);
        let execution = Execution {
            outcome: result.outcome,
            output: machine.take_output(),
            steps: result.steps,
        };
        drop(record_span);
        let engine = ReplayEngine {
            checkpoints: recorder.checkpoints,
            trace,
            execution,
            interval: recorder.interval,
            snapshots: config.record_snapshots,
            block_cache: config.block_cache.clone(),
            exec: config.exec,
            uop: config.uop,
            telemetry: config.telemetry.clone(),
        };
        engine.publish_footprint();
        engine
    }

    /// Region-scoped recording: like [`ReplayEngine::record`], but state
    /// checkpoints are captured only for the trace-step `window` —
    /// everything before and after is traced without snapshots.
    ///
    /// This is the incremental re-campaign primitive: when a binary
    /// rewrite invalidates only a window of the prior campaign's
    /// classifications, re-recording the bad-input trace needs random
    /// access (and therefore snapshots) only inside that window. The
    /// capture schedule is aligned *down* to the checkpoint interval, so
    /// the first retained checkpoint is the last one preceding the
    /// window's first step; the initial state is always retained, keeping
    /// [`ReplayEngine::machine_at`] correct (merely slower) for steps
    /// outside the window.
    ///
    /// The interval is `config.checkpoint_interval` when pinned, else
    /// ≈ √(window length) — the optimum for replays confined to the
    /// window. `config.max_checkpoints` and `config.max_retained_bytes`
    /// still bound retained state by widening the interval.
    pub fn replay_range(
        exe: &Executable,
        input: &[u8],
        config: &ReplayConfig,
        window: std::ops::Range<u64>,
    ) -> ReplayEngine {
        let record_span = config.telemetry.span(SpanKind::Record);
        let mut machine = Machine::new(exe, input);
        let mut recorder = Recorder::windowed(&machine, config, &window);
        let mut trace = Vec::new();
        let result = run_recorded(&mut machine, config, &mut recorder, &mut trace);
        let execution = Execution {
            outcome: result.outcome,
            output: machine.take_output(),
            steps: result.steps,
        };
        drop(record_span);
        let engine = ReplayEngine {
            checkpoints: recorder.checkpoints,
            trace,
            execution,
            interval: recorder.interval,
            snapshots: config.record_snapshots,
            block_cache: config.block_cache.clone(),
            exec: config.exec,
            uop: config.uop,
            telemetry: config.telemetry.clone(),
        };
        engine.publish_footprint();
        engine
    }

    /// Publishes the retained-state gauges (checkpoint count and
    /// retained snapshot bytes, base included) after a recording.
    fn publish_footprint(&self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let footprint = self.footprint();
        self.telemetry.gauge(
            Gauge::RetainedSnapshotBytes,
            footprint.base_resident_bytes + footprint.retained_bytes,
        );
        self.telemetry.gauge(Gauge::Checkpoints, footprint.checkpoints as u64);
    }

    /// Whether periodic snapshots were recorded
    /// ([`ReplayConfig::record_snapshots`]); when `false`,
    /// [`ReplayEngine::machine_at`] replays from step 0.
    pub fn records_snapshots(&self) -> bool {
        self.snapshots
    }

    /// The recorded program counters, one per executed instruction.
    pub fn trace(&self) -> &[u64] {
        &self.trace
    }

    /// The recorded run's behaviour.
    pub fn execution(&self) -> &Execution {
        &self.execution
    }

    /// The checkpoint interval actually used.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Number of recorded checkpoints (including the initial state).
    pub fn checkpoint_count(&self) -> usize {
        self.checkpoints.len()
    }

    /// Memory footprint of the retained checkpoints: page-granular
    /// retained bytes, and what region-granular COW would have retained
    /// for the same recording.
    pub fn footprint(&self) -> ReplayFootprint {
        let base = self.checkpoints.first().expect("initial state");
        let mut footprint = ReplayFootprint {
            checkpoints: self.checkpoints.len(),
            interval: self.interval,
            base_resident_bytes: base.snapshot.memory_stats().resident_bytes,
            ..ReplayFootprint::default()
        };
        for checkpoint in &self.checkpoints[1..] {
            footprint.retained_pages += checkpoint.delta.pages;
            footprint.retained_bytes += checkpoint.delta.bytes;
            footprint.region_cow_bytes += checkpoint.delta.region_bytes;
        }
        footprint
    }

    /// Incremental retained checkpoint state in bytes (the quantity
    /// [`ReplayConfig::max_retained_bytes`] budgets).
    pub fn retained_bytes(&self) -> u64 {
        self.checkpoints[1..].iter().map(|c| c.delta.bytes).sum()
    }

    /// Bytes this recording's checkpoints would retain under a
    /// **hypothetical** COW page size, from exact byte-level diffs of
    /// adjacent checkpoint snapshots
    /// ([`rr_emu::Snapshot::retained_bytes_at`]). The emulator's page
    /// size is a compile-time constant, so this analytic resample is how
    /// the footprint benchmark sweeps granularities (1–16 KiB) without
    /// per-point rebuilds. Byte-identical page rewrites count as clean
    /// here, so the value at the native page size lower-bounds
    /// [`ReplayEngine::retained_bytes`].
    pub fn retained_bytes_at(&self, page_size: usize) -> u64 {
        self.checkpoints
            .windows(2)
            .map(|pair| pair[1].snapshot.retained_bytes_at(&pair[0].snapshot, page_size))
            .sum()
    }

    /// The trace step of the nearest retained checkpoint at or before
    /// `step` — the restore point [`ReplayEngine::machine_at`] would use,
    /// and the bucketing key for checkpoint-neighbourhood scheduling:
    /// work items that agree on this value restore from the same
    /// snapshot, so grouping them lets a scheduler pay the restore once
    /// per group. Steps beyond the trace report the last checkpoint.
    pub fn checkpoint_step_before(&self, step: u64) -> u64 {
        let index = self.checkpoints.partition_point(|c| c.step <= step).max(1) - 1;
        self.checkpoints[index].step
    }

    /// Produces a machine *about to execute* trace step `step` (so
    /// `machine.pc() == trace()[step]` for in-trace steps; `step ==
    /// trace().len()` yields the final state).
    ///
    /// Restores the nearest checkpoint at or before `step` and steps
    /// forward — at most [`ReplayEngine::interval`] instructions when
    /// the recording captured snapshots; with
    /// [`ReplayConfig::record_snapshots`] disabled only the initial
    /// state exists, so this replays from step 0 (up to `step`
    /// instructions).
    ///
    /// # Errors
    ///
    /// [`ReplayError::OutOfTrace`] for steps beyond the recording;
    /// [`ReplayError::Diverged`] if forward execution stops early (which
    /// a deterministic machine never does).
    pub fn machine_at(&self, step: u64) -> Result<Machine, ReplayError> {
        if step > self.trace.len() as u64 {
            return Err(ReplayError::OutOfTrace {
                requested: step,
                trace_len: self.trace.len() as u64,
            });
        }
        let _restore_span = self.telemetry.span(SpanKind::Restore);
        self.telemetry.count(Counter::CheckpointRestores, 1);
        let index = self.checkpoints.partition_point(|c| c.step <= step) - 1;
        let checkpoint = &self.checkpoints[index];
        let mut machine = Machine::from_snapshot(&checkpoint.snapshot);
        match &self.block_cache {
            Some(cache) => {
                let mut stats = BlockStats::default();
                let budget = step - checkpoint.step;
                let result = match self.exec {
                    ExecMode::Uops => machine.run_uops(cache, self.uop, budget, &mut stats),
                    _ => machine.run_blocks(cache, budget, &mut stats),
                };
                flush_block_stats(&self.telemetry, stats);
                if let RunOutcome::Crashed { .. } = result.outcome {
                    // The last of `result.steps` executed instructions
                    // crashed; a crash with no step executed means the
                    // restored state itself was already stopped.
                    let at = checkpoint.step + result.steps.saturating_sub(1);
                    return Err(ReplayError::Diverged { step: at });
                }
                // Exited or TimedOut: either the budget was consumed (we
                // are at `step`) or the machine stopped normally, where
                // the interpreter loop would no-op the remaining steps.
            }
            None => {
                for at in checkpoint.step..step {
                    if machine.step().is_err() {
                        return Err(ReplayError::Diverged { step: at });
                    }
                }
            }
        }
        Ok(machine)
    }

    /// The block cache the recording ran under, if any — sessions share
    /// it across replays and post-injection continuations.
    pub fn block_cache(&self) -> Option<&Arc<BlockCache>> {
        self.block_cache.as_ref()
    }

    /// The execution tier the recording ran under — replays and
    /// continuations should use the same one so compiled micro-op
    /// bodies in the shared cache stay warm.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec
    }

    /// The uop tiering knob the recording ran under.
    pub fn uop_config(&self) -> UopConfig {
        self.uop
    }
}

/// Re-derives each checkpoint's dirtied-page delta against its (new)
/// predecessor after thinning, returning the summed retained bytes.
fn recompute_deltas(checkpoints: &mut [Checkpoint]) -> u64 {
    let mut retained = 0;
    for i in 1..checkpoints.len() {
        let (before, after) = checkpoints.split_at_mut(i);
        let checkpoint = &mut after[0];
        checkpoint.delta = checkpoint.snapshot.dirtied_since(&before[i - 1].snapshot);
        retained += checkpoint.delta.bytes;
    }
    retained
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_asm::assemble_and_link;
    use rr_emu::RunOutcome;

    fn looping_exe(iterations: u32) -> Executable {
        assemble_and_link(&format!(
            "    .global _start\n\
             _start:\n\
                 mov r1, {iterations}\n\
                 mov r2, 0\n\
             .loop:\n\
                 add r2, 7\n\
                 sub r1, 1\n\
                 cmp r1, 0\n\
                 jne .loop\n\
                 mov r1, r2\n\
                 and r1, 0xff\n\
                 svc 0\n"
        ))
        .expect("loop program builds")
    }

    #[test]
    fn recording_matches_plain_traced_execution() {
        let exe = looping_exe(50);
        let engine = ReplayEngine::record(&exe, &[], &ReplayConfig::default());
        let (exec, trace) = rr_emu::execute_traced(&exe, &[], 1_000_000);
        assert_eq!(engine.execution(), &exec);
        assert_eq!(engine.trace(), trace.as_slice());
        assert!(engine.checkpoint_count() > 1, "long trace must checkpoint");
    }

    #[test]
    fn auto_interval_is_roughly_sqrt() {
        assert_eq!(auto_interval(0), 1);
        assert_eq!(auto_interval(1), 1);
        assert_eq!(auto_interval(100), 10);
        assert_eq!(auto_interval(10_000), 100);
        assert!(auto_interval(1 << 40) >= 1 << 20);
    }

    #[test]
    fn adaptive_interval_tracks_sqrt_of_the_trace() {
        for iterations in [10u32, 200, 2000] {
            let exe = looping_exe(iterations);
            let engine = ReplayEngine::record(&exe, &[], &ReplayConfig::default());
            let steps = engine.execution().steps;
            let sqrt = auto_interval(steps);
            assert!(
                engine.interval() >= sqrt / 2 && engine.interval() <= sqrt * 4,
                "T={steps}: interval {} not within 2x of sqrt {sqrt}",
                engine.interval()
            );
            assert!(
                (engine.checkpoint_count() as u64) <= sqrt * 4 + 1,
                "T={steps}: {} checkpoints for sqrt {sqrt}",
                engine.checkpoint_count()
            );
            // Checkpoints stay sorted with the initial state first, which
            // machine_at's binary search depends on.
            assert_eq!(engine.checkpoints[0].step, 0);
            for pair in engine.checkpoints.windows(2) {
                assert!(pair[0].step < pair[1].step);
            }
        }
    }

    #[test]
    fn max_checkpoints_caps_retained_state() {
        let exe = looping_exe(2000);
        let capped = ReplayEngine::record(
            &exe,
            &[],
            &ReplayConfig { max_checkpoints: 8, ..ReplayConfig::default() },
        );
        assert!(capped.checkpoint_count() <= 8, "{} checkpoints", capped.checkpoint_count());
        // Replay still works, just with longer forward stepping.
        let steps = capped.execution().steps;
        let m = capped.machine_at(steps / 2).unwrap();
        assert_eq!(m.pc(), capped.trace()[(steps / 2) as usize]);
        // A pinned interval is widened rather than blowing past the cap.
        let pinned = ReplayEngine::record(
            &exe,
            &[],
            &ReplayConfig { checkpoint_interval: 1, max_checkpoints: 8, ..ReplayConfig::default() },
        );
        assert!(pinned.checkpoint_count() <= 8, "{} checkpoints", pinned.checkpoint_count());
        assert!(pinned.interval() > 1, "interval must widen under the cap");
        let m = pinned.machine_at(steps / 3).unwrap();
        assert_eq!(m.pc(), pinned.trace()[(steps / 3) as usize]);
    }

    /// A loop that pushes/pops every iteration, dirtying the top stack
    /// page at every checkpoint interval.
    fn stack_churn_exe(iterations: u32) -> Executable {
        assemble_and_link(&format!(
            "    .global _start\n\
             _start:\n\
                 mov r1, {iterations}\n\
             .loop:\n\
                 push r1\n\
                 pop r2\n\
                 sub r1, 1\n\
                 cmp r1, 0\n\
                 jne .loop\n\
                 mov r1, r2\n\
                 svc 0\n"
        ))
        .expect("stack churn program builds")
    }

    #[test]
    fn byte_budget_caps_retained_state() {
        let exe = stack_churn_exe(800);
        let free = ReplayEngine::record(&exe, &[], &ReplayConfig::default());
        assert!(free.retained_bytes() > 0, "stack churn must dirty pages");
        // Budget below the unconstrained footprint forces thinning.
        let budget = free.retained_bytes() / 4;
        let capped = ReplayEngine::record(
            &exe,
            &[],
            &ReplayConfig { max_retained_bytes: budget, ..ReplayConfig::default() },
        );
        assert!(
            capped.retained_bytes() <= budget,
            "retained {} over budget {budget}",
            capped.retained_bytes()
        );
        assert!(capped.checkpoint_count() < free.checkpoint_count());
        // Replay still reaches arbitrary steps, just with longer forward
        // stepping.
        let steps = capped.execution().steps;
        let m = capped.machine_at(steps / 2).unwrap();
        assert_eq!(m.pc(), capped.trace()[(steps / 2) as usize]);
    }

    #[test]
    fn footprint_reports_page_granular_retention() {
        let exe = stack_churn_exe(500);
        let engine = ReplayEngine::record(&exe, &[], &ReplayConfig::default());
        let footprint = engine.footprint();
        assert_eq!(footprint.checkpoints, engine.checkpoint_count());
        assert_eq!(footprint.interval, engine.interval());
        assert_eq!(footprint.retained_bytes, engine.retained_bytes());
        assert_eq!(footprint.retained_bytes, footprint.retained_pages * 4096);
        // Stack churn dirties ~1 page per interval while region-COW would
        // retain the whole 1 MiB stack per checkpoint.
        assert!(footprint.retained_bytes > 0);
        assert!(
            footprint.region_cow_bytes >= 10 * footprint.retained_bytes,
            "region-COW {} vs paged {}",
            footprint.region_cow_bytes,
            footprint.retained_bytes
        );
        let rendered = footprint.to_string();
        assert!(rendered.contains("checkpoints"), "{rendered}");
        assert!(rendered.contains("region-COW"), "{rendered}");
    }

    #[test]
    fn snapshot_recording_can_be_disabled() {
        let exe = looping_exe(200);
        let engine = ReplayEngine::record(
            &exe,
            &[],
            &ReplayConfig { record_snapshots: false, ..ReplayConfig::default() },
        );
        assert!(!engine.records_snapshots());
        assert_eq!(engine.checkpoint_count(), 1, "only the initial state");
        assert_eq!(engine.retained_bytes(), 0);
        // The trace and behaviour are recorded as usual, and machine_at
        // still works — it just replays from step 0.
        let (exec, trace) = rr_emu::execute_traced(&exe, &[], 1_000_000);
        assert_eq!(engine.execution(), &exec);
        assert_eq!(engine.trace(), trace.as_slice());
        let mid = trace.len() as u64 / 2;
        let m = engine.machine_at(mid).unwrap();
        assert_eq!(m.pc(), trace[mid as usize]);
    }

    #[test]
    fn machine_at_agrees_with_replay_from_scratch() {
        let exe = looping_exe(40);
        let engine = ReplayEngine::record(
            &exe,
            &[],
            &ReplayConfig { checkpoint_interval: 16, ..ReplayConfig::default() },
        );
        let total = engine.trace().len() as u64;
        for step in [0, 1, 15, 16, 17, 100, total - 1, total] {
            let via_engine = engine.machine_at(step).unwrap();
            let mut scratch = Machine::new(&exe, &[]);
            for _ in 0..step {
                scratch.step().unwrap();
            }
            assert_eq!(via_engine.pc(), scratch.pc(), "pc at step {step}");
            assert_eq!(via_engine.flags(), scratch.flags(), "flags at step {step}");
            for r in rr_isa_regs() {
                assert_eq!(via_engine.reg(r), scratch.reg(r), "reg {r} at step {step}");
            }
        }
    }

    // Minimal local copy of the register list to avoid an rr-isa dev-dep:
    // the emulator re-exports nothing register-shaped, but Machine::reg
    // takes rr_isa::Reg which rr-emu already depends on.
    fn rr_isa_regs() -> impl Iterator<Item = rr_isa::Reg> {
        rr_isa::Reg::ALL.into_iter()
    }

    #[test]
    fn checkpoint_step_before_names_the_restore_point() {
        let exe = looping_exe(100);
        let engine = ReplayEngine::record(
            &exe,
            &[],
            &ReplayConfig { checkpoint_interval: 16, ..ReplayConfig::default() },
        );
        let total = engine.trace().len() as u64;
        for step in [0, 1, 15, 16, 17, 100, total - 1, total, total + 50] {
            let restore = engine.checkpoint_step_before(step);
            assert!(restore <= step, "restore point must not overshoot step {step}");
            assert!(
                engine.checkpoints.iter().any(|c| c.step == restore),
                "step {step}: {restore} is not a retained checkpoint"
            );
            if step <= total {
                assert!(
                    step - restore < 16 || restore == engine.checkpoints.last().unwrap().step,
                    "step {step}: restore {restore} further than one interval"
                );
            }
        }
        // A snapshot-less recording always restores the initial state.
        let naive = ReplayEngine::record(
            &exe,
            &[],
            &ReplayConfig { record_snapshots: false, ..ReplayConfig::default() },
        );
        assert_eq!(naive.checkpoint_step_before(total / 2), 0);
    }

    #[test]
    fn machine_at_resumes_to_identical_behavior() {
        let exe = looping_exe(64);
        let engine = ReplayEngine::record(&exe, &[], &ReplayConfig::default());
        let mut resumed = engine.machine_at(100).unwrap();
        let result = resumed.run(1_000_000);
        assert_eq!(result.outcome, engine.execution().outcome);
        assert_eq!(resumed.output(), engine.execution().output.as_slice());
        assert_eq!(100 + result.steps, engine.execution().steps);
    }

    #[test]
    fn out_of_trace_requests_error() {
        let exe = looping_exe(3);
        let engine = ReplayEngine::record(&exe, &[], &ReplayConfig::default());
        let len = engine.trace().len() as u64;
        let err = engine.machine_at(len + 1).map(|_| ()).unwrap_err();
        assert_eq!(err, ReplayError::OutOfTrace { requested: len + 1, trace_len: len });
        // The final state is reachable and stopped.
        let at_end = engine.machine_at(len).unwrap();
        assert_eq!(at_end.stopped(), Some(RunOutcome::Exited { code: engine_exit_code(&engine) }));
    }

    fn engine_exit_code(engine: &ReplayEngine) -> u64 {
        match engine.execution().outcome {
            RunOutcome::Exited { code } => code,
            other => panic!("expected exit, got {other:?}"),
        }
    }

    #[test]
    fn replay_range_snapshots_only_the_window() {
        let exe = looping_exe(400);
        let full = ReplayEngine::record(&exe, &[], &ReplayConfig::default());
        let steps = full.execution().steps;
        let window = (steps / 2)..(steps / 2 + steps / 8);
        let config = ReplayConfig { checkpoint_interval: 16, ..ReplayConfig::default() };
        let scoped = ReplayEngine::replay_range(&exe, &[], &config, window.clone());

        // Trace and behaviour match a full recording exactly.
        assert_eq!(scoped.execution(), full.execution());
        assert_eq!(scoped.trace(), full.trace());

        // Checkpoints: the initial state, then only interval-aligned steps
        // from the last boundary preceding the window through its end.
        let aligned_start = window.start - window.start % 16;
        assert!(scoped.checkpoint_count() > 1, "window must be snapshotted");
        for c in &scoped.checkpoints[1..] {
            assert!(
                c.step >= aligned_start && c.step <= window.end,
                "checkpoint at {} outside window {window:?} (aligned start {aligned_start})",
                c.step
            );
        }
        assert_eq!(scoped.checkpoints[1].step, aligned_start.max(16));
        assert!(
            scoped.checkpoint_count() < full.checkpoint_count()
                || full.interval() > scoped.interval(),
            "region scoping must retain less than a full recording"
        );

        // Random access is exact inside the window, and still correct
        // (replay-from-0) before it.
        for step in [0, window.start / 2, window.start, window.start + 7, window.end - 1] {
            let m = scoped.machine_at(step).unwrap();
            assert_eq!(m.pc(), full.trace()[step as usize], "step {step}");
        }
    }

    #[test]
    fn replay_range_degenerate_windows() {
        let exe = looping_exe(100);
        let steps = ReplayEngine::record(&exe, &[], &ReplayConfig::default()).execution().steps;
        // An empty window records the trace but no periodic snapshots.
        let empty = ReplayEngine::replay_range(&exe, &[], &ReplayConfig::default(), 40..40);
        assert_eq!(empty.checkpoint_count(), 1, "initial state only");
        assert_eq!(empty.retained_bytes(), 0);
        assert_eq!(empty.execution().steps, steps);
        // A window past the end of the trace captures nothing.
        let beyond =
            ReplayEngine::replay_range(&exe, &[], &ReplayConfig::default(), steps * 2..steps * 3);
        assert_eq!(beyond.checkpoint_count(), 1);
        // A whole-trace window behaves like a full recording with an
        // auto-selected ≈√T interval.
        let whole = ReplayEngine::replay_range(&exe, &[], &ReplayConfig::default(), 0..steps);
        assert!(whole.checkpoint_count() > 1);
        let m = whole.machine_at(steps / 2).unwrap();
        assert_eq!(m.pc(), whole.trace()[(steps / 2) as usize]);
    }

    #[test]
    fn replay_range_respects_the_byte_budget_guard() {
        let exe = stack_churn_exe(600);
        let steps = ReplayEngine::record(&exe, &[], &ReplayConfig::default()).execution().steps;
        let free = ReplayEngine::replay_range(
            &exe,
            &[],
            &ReplayConfig { checkpoint_interval: 8, ..ReplayConfig::default() },
            0..steps,
        );
        assert!(free.retained_bytes() > 0);
        let budget = free.retained_bytes() / 4;
        let capped = ReplayEngine::replay_range(
            &exe,
            &[],
            &ReplayConfig {
                checkpoint_interval: 8,
                max_retained_bytes: budget,
                ..ReplayConfig::default()
            },
            0..steps,
        );
        assert!(
            capped.retained_bytes() <= budget,
            "retained {} over budget {budget}",
            capped.retained_bytes()
        );
        assert!(capped.interval() > 8, "interval must widen under the cap");
        let m = capped.machine_at(steps / 3).unwrap();
        assert_eq!(m.pc(), capped.trace()[(steps / 3) as usize]);
    }

    /// Accelerated configs for an executable: the same `ReplayConfig`
    /// with a cache built from the recovered CFG and the given tier.
    fn accel(config: &ReplayConfig, exe: &Executable, exec: ExecMode) -> ReplayConfig {
        ReplayConfig {
            block_cache: Some(
                crate::build_block_cache(exe, &config.telemetry).expect("sample decodes"),
            ),
            exec,
            // Threshold 1 exercises the decoded→compiled promotion path
            // inside recorded runs, not just steady-state compiled bodies.
            uop: rr_emu::UopConfig { hot_threshold: 1, ..Default::default() },
            ..config.clone()
        }
    }

    const ACCEL_MODES: [ExecMode; 2] = [ExecMode::Blocks, ExecMode::Uops];

    #[test]
    fn accelerated_recording_is_bit_identical() {
        let exe = looping_exe(300);
        for exec in ACCEL_MODES {
            for base in [
                ReplayConfig::default(),
                ReplayConfig { checkpoint_interval: 16, ..ReplayConfig::default() },
                ReplayConfig { max_checkpoints: 8, ..ReplayConfig::default() },
                ReplayConfig { record_snapshots: false, ..ReplayConfig::default() },
            ] {
                let interp = ReplayEngine::record(&exe, &[], &base);
                let fast = ReplayEngine::record(&exe, &[], &accel(&base, &exe, exec));
                assert_eq!(interp.execution(), fast.execution(), "{exec}");
                assert_eq!(interp.trace(), fast.trace(), "{exec}");
                assert_eq!(interp.interval(), fast.interval(), "{exec}");
                assert_eq!(interp.checkpoint_count(), fast.checkpoint_count(), "{exec}");
                let steps: Vec<u64> = interp.checkpoints.iter().map(|c| c.step).collect();
                let fast_steps: Vec<u64> = fast.checkpoints.iter().map(|c| c.step).collect();
                assert_eq!(steps, fast_steps, "{exec}: capture schedule must not drift");
            }
        }
    }

    #[test]
    fn accelerated_machine_at_matches_the_interpreter() {
        let exe = looping_exe(80);
        let base = ReplayConfig { checkpoint_interval: 16, ..ReplayConfig::default() };
        let interp = ReplayEngine::record(&exe, &[], &base);
        for exec in ACCEL_MODES {
            let fast = ReplayEngine::record(&exe, &[], &accel(&base, &exe, exec));
            assert_eq!(fast.exec_mode(), exec);
            let total = interp.trace().len() as u64;
            for step in [0, 1, 15, 16, 17, 100, total - 1, total] {
                let a = interp.machine_at(step).unwrap();
                let b = fast.machine_at(step).unwrap();
                assert_eq!(a.pc(), b.pc(), "{exec}: pc at step {step}");
                assert_eq!(a.flags(), b.flags(), "{exec}: flags at step {step}");
                assert_eq!(a.stopped(), b.stopped(), "{exec}: stop state at step {step}");
                for r in rr_isa_regs() {
                    assert_eq!(a.reg(r), b.reg(r), "{exec}: reg {r} at step {step}");
                }
            }
        }
    }

    #[test]
    fn accelerated_replay_range_matches_the_interpreter() {
        let exe = looping_exe(400);
        let steps = ReplayEngine::record(&exe, &[], &ReplayConfig::default()).execution().steps;
        let window = (steps / 3)..(steps / 2);
        let base = ReplayConfig { checkpoint_interval: 16, ..ReplayConfig::default() };
        let interp = ReplayEngine::replay_range(&exe, &[], &base, window.clone());
        for exec in ACCEL_MODES {
            let fast =
                ReplayEngine::replay_range(&exe, &[], &accel(&base, &exe, exec), window.clone());
            assert_eq!(interp.execution(), fast.execution(), "{exec}");
            assert_eq!(interp.trace(), fast.trace(), "{exec}");
            let steps_a: Vec<u64> = interp.checkpoints.iter().map(|c| c.step).collect();
            let steps_b: Vec<u64> = fast.checkpoints.iter().map(|c| c.step).collect();
            assert_eq!(steps_a, steps_b, "{exec}: windowed capture schedule must not drift");
            for step in [0, window.start, window.start + 5, window.end - 1] {
                let a = interp.machine_at(step).unwrap();
                let b = fast.machine_at(step).unwrap();
                assert_eq!(a.pc(), b.pc(), "{exec}: step {step}");
            }
        }
    }

    #[test]
    fn accelerated_thinning_keeps_the_schedule_aligned() {
        // Byte-budget thinning doubles the interval mid-run; the block
        // and uop drivers must re-derive their fences from the widened
        // schedule.
        let exe = stack_churn_exe(800);
        let free = ReplayEngine::record(&exe, &[], &ReplayConfig::default());
        let budget = free.retained_bytes() / 4;
        let base = ReplayConfig { max_retained_bytes: budget, ..ReplayConfig::default() };
        let interp = ReplayEngine::record(&exe, &[], &base);
        for exec in ACCEL_MODES {
            let fast = ReplayEngine::record(&exe, &[], &accel(&base, &exe, exec));
            assert_eq!(interp.execution(), fast.execution(), "{exec}");
            assert_eq!(interp.interval(), fast.interval(), "{exec}");
            let steps_a: Vec<u64> = interp.checkpoints.iter().map(|c| c.step).collect();
            let steps_b: Vec<u64> = fast.checkpoints.iter().map(|c| c.step).collect();
            assert_eq!(steps_a, steps_b, "{exec}");
            assert!(fast.retained_bytes() <= budget, "{exec}");
        }
    }

    #[test]
    fn exec_mode_names_parse_and_render() {
        assert_eq!("interp".parse::<ExecMode>().unwrap(), ExecMode::Interp);
        assert_eq!("blocks".parse::<ExecMode>().unwrap(), ExecMode::Blocks);
        assert_eq!("uops".parse::<ExecMode>().unwrap(), ExecMode::Uops);
        assert!("jit".parse::<ExecMode>().is_err());
        assert_eq!(ExecMode::default(), ExecMode::Uops, "uops is the default tier");
        assert_eq!(ExecMode::Interp.to_string(), "interp");
        assert_eq!(ExecMode::Blocks.to_string(), "blocks");
        assert_eq!(ExecMode::Uops.to_string(), "uops");
        assert!(!ExecMode::Interp.uses_block_cache());
        assert!(ExecMode::Blocks.uses_block_cache());
        assert!(ExecMode::Uops.uses_block_cache());
    }

    #[test]
    fn explicit_interval_controls_checkpoint_density() {
        let exe = looping_exe(100);
        let fine = ReplayEngine::record(
            &exe,
            &[],
            &ReplayConfig { checkpoint_interval: 8, ..ReplayConfig::default() },
        );
        let coarse = ReplayEngine::record(
            &exe,
            &[],
            &ReplayConfig { checkpoint_interval: 128, ..ReplayConfig::default() },
        );
        assert!(fine.checkpoint_count() > coarse.checkpoint_count());
        assert_eq!(fine.interval(), 8);
        assert_eq!(coarse.interval(), 128);
    }
}
