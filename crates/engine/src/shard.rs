//! Sharded parallel scheduling: contiguous work ranges across OS threads
//! with order-preserving collection and streaming aggregation.
//!
//! The campaign runner hands each worker a contiguous slice of fault
//! sites. Contiguity matters for the checkpointed engine: neighbouring
//! faults restore from the same checkpoints, so a shard's snapshot
//! restores stay warm in cache instead of ping-ponging across the trace.

use std::num::NonZeroUsize;
use std::ops::Range;

/// Resolves a requested worker count: `0` means all available cores.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    }
}

/// Splits `len` items into at most `shards` contiguous, near-equal,
/// non-empty ranges covering `0..len` in order.
pub fn shard_ranges(len: usize, shards: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, len);
    let chunk = len.div_ceil(shards);
    (0..len).step_by(chunk).map(|start| start..(start + chunk).min(len)).collect()
}

/// Runs `work` over contiguous shards of `items` on up to `threads`
/// workers, returning one result per shard in shard order.
///
/// `work` receives the shard index and the shard's slice. With one thread
/// (or a single shard) everything runs on the caller's thread — campaign
/// results are therefore identical regardless of parallelism.
pub fn run_sharded<T, R, F>(items: &[T], threads: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let ranges = shard_ranges(items.len(), resolve_threads(threads));
    if ranges.len() <= 1 {
        return ranges.into_iter().map(|r| work(0, &items[r])).collect();
    }
    let mut results: Vec<Option<R>> = std::iter::repeat_with(|| None).take(ranges.len()).collect();
    std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = ranges
            .into_iter()
            .enumerate()
            .map(|(index, range)| {
                let slice = &items[range];
                scope.spawn(move || work(index, slice))
            })
            .collect();
        for (slot, handle) in results.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("shard worker panicked"));
        }
    });
    results.into_iter().map(|r| r.expect("every shard reported")).collect()
}

/// Streaming map-reduce over shards: each worker folds its shard into an
/// accumulator seeded from `init`, and the per-shard accumulators are
/// merged in shard order with `merge`. Nothing per-item is ever
/// materialized, so campaigns can aggregate summaries over millions of
/// faults in O(shards) memory.
///
/// `init` must be the identity of `merge` (e.g. a zeroed counter): every
/// shard starts from a clone of it, so a non-identity seed would be
/// counted once per shard.
pub fn sharded_fold<T, A, F, M>(items: &[T], threads: usize, init: A, fold: F, merge: M) -> A
where
    T: Sync,
    A: Clone + Send + Sync,
    F: Fn(A, &T) -> A + Sync,
    M: Fn(A, A) -> A,
{
    let accumulators =
        run_sharded(items, threads, |_, shard| shard.iter().fold(init.clone(), &fold));
    accumulators.into_iter().reduce(merge).unwrap_or(init)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn ranges_cover_everything_in_order() {
        for len in [0usize, 1, 2, 7, 8, 9, 100, 101] {
            for shards in [1usize, 2, 3, 8, 200] {
                let ranges = shard_ranges(len, shards);
                let mut covered = 0;
                for r in &ranges {
                    assert_eq!(r.start, covered, "contiguous in order");
                    assert!(r.end > r.start, "non-empty");
                    covered = r.end;
                }
                assert_eq!(covered, len, "full coverage for len={len} shards={shards}");
                assert!(ranges.len() <= shards.max(1));
            }
        }
    }

    #[test]
    fn sharded_results_preserve_order() {
        let items: Vec<usize> = (0..100).collect();
        let shards = run_sharded(&items, 4, |index, shard| (index, shard.to_vec()));
        let flattened: Vec<usize> = shards.iter().flat_map(|(_, s)| s.iter().copied()).collect();
        assert_eq!(flattened, items);
        for (expected, (index, _)) in shards.iter().enumerate() {
            assert_eq!(expected, *index);
        }
    }

    #[test]
    fn all_threads_participate_for_large_inputs() {
        let items: Vec<u32> = (0..1000).collect();
        let distinct = AtomicUsize::new(0);
        let results = run_sharded(&items, 4, |_, shard| {
            distinct.fetch_add(1, Ordering::Relaxed);
            shard.iter().map(|&x| u64::from(x)).sum::<u64>()
        });
        assert_eq!(distinct.load(Ordering::Relaxed), results.len());
        assert_eq!(results.iter().sum::<u64>(), (0..1000u64).sum::<u64>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let items = [1, 2, 3];
        let results = run_sharded(&items, 1, |_, shard| shard.len());
        assert_eq!(results, vec![3]);
    }

    #[test]
    fn fold_streams_without_materializing() {
        let items: Vec<u64> = (1..=10_000).collect();
        let total = sharded_fold(&items, 0, 0u64, |acc, &x| acc + x, |a, b| a + b);
        assert_eq!(total, 10_000 * 10_001 / 2);
    }

    #[test]
    fn resolve_threads_defaults_to_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
