//! Sharded parallel scheduling: work assignment across OS threads with
//! order-preserving collection and streaming aggregation.
//!
//! Two assignment policies ([`ShardPolicy`]) are provided:
//!
//! * **Contiguous** ([`contiguous_ranges`]) hands each worker a
//!   contiguous slice. Contiguity matters for the checkpointed engine:
//!   neighbouring faults restore from the same checkpoints, so a shard's
//!   snapshot restores stay warm in cache instead of ping-ponging across
//!   the trace.
//! * **Interleaved** ([`interleaved_ranges`]) deals items round-robin,
//!   worker `s` of `n` taking items `s, s+n, s+2n, …`. This trades
//!   checkpoint affinity for balance: fault models with skewed per-site
//!   fault counts (bit flips enumerate `8 × len` faults per site, so
//!   long instructions clustered in one trace region overload one
//!   contiguous shard) spread evenly across workers. Assignments are
//!   lazy [`InterleavedRange`] descriptors — O(shards) memory, not
//!   8 bytes per item.
//!
//! Both policies collect results in item order, so scheduling is
//! invisible in the output — campaigns classify identically under
//! either.

use std::fmt;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::str::FromStr;

/// How work items are assigned to parallel workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// Contiguous ranges ([`contiguous_ranges`]): best checkpoint-restore
    /// locality, the default.
    #[default]
    Contiguous,
    /// Round-robin assignment ([`interleaved_ranges`]): best balance
    /// under skewed per-item cost.
    Interleaved,
}

impl fmt::Display for ShardPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ShardPolicy::Contiguous => "contiguous",
            ShardPolicy::Interleaved => "interleaved",
        })
    }
}

impl FromStr for ShardPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "contiguous" => Ok(ShardPolicy::Contiguous),
            "interleaved" => Ok(ShardPolicy::Interleaved),
            other => Err(format!("unknown shard policy `{other}` (contiguous|interleaved)")),
        }
    }
}

/// Resolves a requested worker count: `0` means all available cores.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    }
}

/// Splits `len` items into at most `shards` contiguous, near-equal,
/// non-empty ranges covering `0..len` in order.
///
/// Degenerate requests degrade instead of erroring: `len == 0` yields no
/// shards, and `shards == 0` (like `shards == 1`) yields a single shard
/// covering everything — the clamp to `1..=len` makes every returned
/// shard non-empty.
pub fn contiguous_ranges(len: usize, shards: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, len);
    let chunk = len.div_ceil(shards);
    (0..len).step_by(chunk).map(|start| start..(start + chunk).min(len)).collect()
}

/// One worker's round-robin assignment: the indices `start, start +
/// stride, start + 2·stride, …` below `len`, produced lazily by
/// [`InterleavedRange::iter`] — a worker's whole assignment is three
/// words, not 8 bytes per item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterleavedRange {
    /// First index (the shard number).
    pub start: usize,
    /// Exclusive upper bound (the total item count).
    pub len: usize,
    /// Distance between consecutive indices (the shard count).
    pub stride: usize,
}

impl InterleavedRange {
    /// The assigned indices, in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> {
        (self.start..self.len).step_by(self.stride.max(1))
    }

    /// Number of assigned indices.
    pub fn count(&self) -> usize {
        (self.len.saturating_sub(self.start)).div_ceil(self.stride.max(1))
    }

    /// Whether no index is assigned.
    pub fn is_empty(&self) -> bool {
        self.start >= self.len
    }
}

impl IntoIterator for InterleavedRange {
    type Item = usize;
    type IntoIter = std::iter::StepBy<Range<usize>>;

    fn into_iter(self) -> Self::IntoIter {
        (self.start..self.len).step_by(self.stride.max(1))
    }
}

/// Round-robin counterpart of [`contiguous_ranges`]: splits the indices
/// `0..len` into at most `shards` non-empty lazy sequences, shard `s` of
/// `n` taking `s, s+n, s+2n, …`.
///
/// Same degenerate-input semantics as [`contiguous_ranges`]: `len == 0`
/// yields no shards and `shards == 0` is treated as one shard, so every
/// returned assignment is non-empty and the whole index space is covered
/// exactly once. Like `contiguous_ranges`, per-shard order is increasing,
/// so collecting shard results in `(shard, position)` order preserves
/// item order.
pub fn interleaved_ranges(len: usize, shards: usize) -> Vec<InterleavedRange> {
    if len == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, len);
    (0..shards).map(|s| InterleavedRange { start: s, len, stride: shards }).collect()
}

/// Runs `work` over contiguous shards of `items` on up to `threads`
/// workers, returning one result per shard in shard order.
///
/// `work` receives the shard index and the shard's slice. With one thread
/// (or a single shard) everything runs on the caller's thread — campaign
/// results are therefore identical regardless of parallelism.
pub fn run_sharded<T, R, F>(items: &[T], threads: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let ranges = contiguous_ranges(items.len(), resolve_threads(threads));
    if ranges.len() <= 1 {
        return ranges.into_iter().map(|r| work(0, &items[r])).collect();
    }
    let mut results: Vec<Option<R>> = std::iter::repeat_with(|| None).take(ranges.len()).collect();
    std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = ranges
            .into_iter()
            .enumerate()
            .map(|(index, range)| {
                let slice = &items[range];
                scope.spawn(move || work(index, slice))
            })
            .collect();
        for (slot, handle) in results.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("shard worker panicked"));
        }
    });
    results.into_iter().map(|r| r.expect("every shard reported")).collect()
}

/// Streaming map-reduce over shards: each worker folds its shard into an
/// accumulator seeded from `init`, and the per-shard accumulators are
/// merged in shard order with `merge`. Nothing per-item is ever
/// materialized, so campaigns can aggregate summaries over millions of
/// faults in O(shards) memory.
///
/// `init` must be the identity of `merge` (e.g. a zeroed counter): every
/// shard starts from a clone of it, so a non-identity seed would be
/// counted once per shard.
pub fn sharded_fold<T, A, F, M>(items: &[T], threads: usize, init: A, fold: F, merge: M) -> A
where
    T: Sync,
    A: Clone + Send + Sync,
    F: Fn(A, &T) -> A + Sync,
    M: Fn(A, A) -> A,
{
    let accumulators =
        run_sharded(items, threads, |_, shard| shard.iter().fold(init.clone(), &fold));
    accumulators.into_iter().reduce(merge).unwrap_or(init)
}

/// Maps every item to a result on up to `threads` workers under the
/// given assignment `policy`, returning the results **in item order**
/// regardless of which worker produced them — scheduling is invisible
/// in the output.
pub fn run_scheduled<T, R, F>(items: &[T], threads: usize, policy: ShardPolicy, map: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    match policy {
        ShardPolicy::Contiguous => {
            run_sharded(items, threads, |_, shard| shard.iter().map(&map).collect::<Vec<R>>())
                .into_iter()
                .flatten()
                .collect()
        }
        ShardPolicy::Interleaved => {
            let assignments = interleaved_ranges(items.len(), resolve_threads(threads));
            if assignments.len() <= 1 {
                return items.iter().map(map).collect();
            }
            let mut slots: Vec<Option<R>> =
                std::iter::repeat_with(|| None).take(items.len()).collect();
            std::thread::scope(|scope| {
                let map = &map;
                let handles: Vec<_> = assignments
                    .iter()
                    .map(|assignment| {
                        scope.spawn(move || {
                            assignment.iter().map(|i| map(&items[i])).collect::<Vec<R>>()
                        })
                    })
                    .collect();
                for (assignment, handle) in assignments.iter().zip(handles) {
                    let results = handle.join().expect("interleaved worker panicked");
                    for (index, result) in assignment.iter().zip(results) {
                        slots[index] = Some(result);
                    }
                }
            });
            slots.into_iter().map(|r| r.expect("every item mapped")).collect()
        }
    }
}

/// Affinity scheduling: groups items into buckets by a caller-supplied
/// key, deals whole buckets to up to `threads` workers (contiguously in
/// ascending key order, so neighbouring buckets land on one worker), and
/// runs `work` once per bucket. Results come back **in item order**, as
/// with [`run_scheduled`] — the bucketing is invisible in the output.
///
/// `work` receives the bucket's key and a run of the bucket's item
/// indices in ascending order, and must return one result per index, in
/// that order. Handing `work` a whole run — rather than one item at a
/// time — is the point: a worker can pay a per-bucket setup cost (e.g.
/// restoring one replay checkpoint) once for every item that shares it.
/// This is the checkpoint-neighbourhood scheduling multi-fault campaigns
/// use: plans keyed by the checkpoint preceding their first injection
/// restore that checkpoint once per run instead of once per plan.
///
/// Scheduling is work-stealing over an atomic cursor: workers claim the
/// next unclaimed unit as they go idle, so a few expensive buckets can
/// no longer serialize the tail of a run behind one worker while the
/// rest sit idle (the old static deal pinned whole bucket ranges to
/// workers up front). **Oversized buckets are additionally split** into
/// contiguous chunks of at most `⌈items / (4 × workers)⌉` indices —
/// each chunk re-pays the bucket's setup cost, but idle workers get to
/// help with a giant neighbourhood instead of watching it run. Both
/// choices are invisible in the output; only wall-clock changes.
pub fn run_bucketed<T, K, R, F>(
    items: &[T],
    threads: usize,
    key_of: impl Fn(&T) -> K,
    work: F,
) -> Vec<R>
where
    T: Sync,
    K: Ord + Send + Sync,
    R: Send,
    F: Fn(&K, &[usize]) -> Vec<R> + Sync,
{
    let mut buckets: std::collections::BTreeMap<K, Vec<usize>> = std::collections::BTreeMap::new();
    for (index, item) in items.iter().enumerate() {
        buckets.entry(key_of(item)).or_default().push(index);
    }
    let buckets: Vec<(K, Vec<usize>)> = buckets.into_iter().collect();
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    let scatter = |slots: &mut Vec<Option<R>>, indices: &[usize], results: Vec<R>| {
        assert_eq!(indices.len(), results.len(), "one result per bucket item");
        for (&index, result) in indices.iter().zip(results) {
            slots[index] = Some(result);
        }
    };
    let workers = resolve_threads(threads).min(buckets.len()).max(1);
    if workers <= 1 {
        for (key, indices) in &buckets {
            let results = work(key, indices);
            scatter(&mut slots, indices, results);
        }
    } else {
        // Claimable units: whole buckets, except buckets larger than the
        // chunk target, which split into contiguous index runs so idle
        // workers can steal part of an oversized neighbourhood. ~4 units
        // per worker keeps claim contention negligible while leaving
        // enough slack for stealing to balance skewed bucket costs.
        let chunk_target = items.len().div_ceil(workers * 4).max(1);
        let units: Vec<(usize, Range<usize>)> = buckets
            .iter()
            .enumerate()
            .flat_map(|(bucket, (_, indices))| {
                contiguous_ranges(indices.len(), indices.len().div_ceil(chunk_target))
                    .into_iter()
                    .map(move |range| (bucket, range))
            })
            .collect();
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let (work, units, buckets, cursor) = (&work, &units, &buckets, &cursor);
            let handles: Vec<_> = (0..workers.min(units.len()))
                .map(|_| {
                    scope.spawn(move || {
                        let mut done: Vec<(usize, Vec<R>)> = Vec::new();
                        loop {
                            let unit = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some((bucket, range)) = units.get(unit) else { break };
                            let (key, indices) = &buckets[*bucket];
                            done.push((unit, work(key, &indices[range.clone()])));
                        }
                        done
                    })
                })
                .collect();
            for handle in handles {
                for (unit, results) in handle.join().expect("bucket worker panicked") {
                    let (bucket, range) = &units[unit];
                    let (_, indices) = &buckets[*bucket];
                    scatter(&mut slots, &indices[range.clone()], results);
                }
            }
        });
    }
    slots.into_iter().map(|r| r.expect("every item evaluated")).collect()
}

/// Streaming map-reduce under an assignment `policy`: like
/// [`sharded_fold`], but the items each worker folds are chosen by
/// `policy`. Per-shard accumulators are merged in shard order, so the
/// result is deterministic for a given `(items, threads, policy)`
/// triple; when `merge` is commutative and associative (e.g. summary
/// counters) the result is identical across policies and thread counts.
///
/// `init` must be the identity of `merge` — see [`sharded_fold`].
pub fn scheduled_fold<T, A, F, M>(
    items: &[T],
    threads: usize,
    policy: ShardPolicy,
    init: A,
    fold: F,
    merge: M,
) -> A
where
    T: Sync,
    A: Clone + Send + Sync,
    F: Fn(A, &T) -> A + Sync,
    M: Fn(A, A) -> A,
{
    match policy {
        ShardPolicy::Contiguous => sharded_fold(items, threads, init, fold, merge),
        ShardPolicy::Interleaved => {
            let assignments = interleaved_ranges(items.len(), resolve_threads(threads));
            if assignments.len() <= 1 {
                return items.iter().fold(init, fold);
            }
            let accumulators: Vec<A> = std::thread::scope(|scope| {
                let fold = &fold;
                let init = &init;
                assignments
                    .iter()
                    .map(|assignment| {
                        scope.spawn(move || {
                            assignment.iter().fold(init.clone(), |acc, i| fold(acc, &items[i]))
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|handle| handle.join().expect("interleaved worker panicked"))
                    .collect()
            });
            accumulators.into_iter().reduce(merge).unwrap_or(init)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn ranges_cover_everything_in_order() {
        for len in [0usize, 1, 2, 7, 8, 9, 100, 101] {
            for shards in [1usize, 2, 3, 8, 200] {
                let ranges = contiguous_ranges(len, shards);
                let mut covered = 0;
                for r in &ranges {
                    assert_eq!(r.start, covered, "contiguous in order");
                    assert!(r.end > r.start, "non-empty");
                    covered = r.end;
                }
                assert_eq!(covered, len, "full coverage for len={len} shards={shards}");
                assert!(ranges.len() <= shards.max(1));
            }
        }
    }

    #[test]
    fn sharded_results_preserve_order() {
        let items: Vec<usize> = (0..100).collect();
        let shards = run_sharded(&items, 4, |index, shard| (index, shard.to_vec()));
        let flattened: Vec<usize> = shards.iter().flat_map(|(_, s)| s.iter().copied()).collect();
        assert_eq!(flattened, items);
        for (expected, (index, _)) in shards.iter().enumerate() {
            assert_eq!(expected, *index);
        }
    }

    #[test]
    fn all_threads_participate_for_large_inputs() {
        let items: Vec<u32> = (0..1000).collect();
        let distinct = AtomicUsize::new(0);
        let results = run_sharded(&items, 4, |_, shard| {
            distinct.fetch_add(1, Ordering::Relaxed);
            shard.iter().map(|&x| u64::from(x)).sum::<u64>()
        });
        assert_eq!(distinct.load(Ordering::Relaxed), results.len());
        assert_eq!(results.iter().sum::<u64>(), (0..1000u64).sum::<u64>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let items = [1, 2, 3];
        let results = run_sharded(&items, 1, |_, shard| shard.len());
        assert_eq!(results, vec![3]);
    }

    #[test]
    fn fold_streams_without_materializing() {
        let items: Vec<u64> = (1..=10_000).collect();
        let total = sharded_fold(&items, 0, 0u64, |acc, &x| acc + x, |a, b| a + b);
        assert_eq!(total, 10_000 * 10_001 / 2);
    }

    #[test]
    fn resolve_threads_defaults_to_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn interleaved_ranges_deal_round_robin() {
        for len in [0usize, 1, 2, 7, 8, 9, 100, 101] {
            for shards in [1usize, 2, 3, 8, 200] {
                let assignments = interleaved_ranges(len, shards);
                if len == 0 {
                    assert!(assignments.is_empty());
                    continue;
                }
                let n = assignments.len();
                assert!(n <= shards.max(1) && n <= len);
                let mut seen = vec![false; len];
                for (s, assignment) in assignments.iter().enumerate() {
                    assert!(!assignment.is_empty(), "len={len} shards={shards}");
                    assert_eq!(assignment.count(), assignment.iter().count());
                    for (k, index) in assignment.iter().enumerate() {
                        assert_eq!(index, s + k * n, "round-robin stride");
                        assert!(!std::mem::replace(&mut seen[index], true), "duplicate {index}");
                    }
                }
                assert!(seen.iter().all(|&s| s), "full coverage for len={len} shards={shards}");
                // Balance: assignment sizes differ by at most one item.
                let sizes: Vec<usize> = assignments.iter().map(InterleavedRange::count).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "skewed deal: {sizes:?}");
            }
        }
    }

    #[test]
    fn interleaved_range_is_lazy_and_word_sized() {
        // The descriptor is the whole assignment: three machine words, no
        // per-item storage (the old representation materialized 8 B per
        // item).
        assert_eq!(std::mem::size_of::<InterleavedRange>(), 3 * std::mem::size_of::<usize>());
        let shard = InterleavedRange { start: 2, len: 1_000_000_007, stride: 5 };
        assert_eq!(shard.count(), 200_000_001);
        assert_eq!(shard.iter().nth(3), Some(17));
        let collected: Vec<usize> = shard.into_iter().take(4).collect();
        assert_eq!(collected, vec![2, 7, 12, 17]);
        assert!(InterleavedRange { start: 4, len: 4, stride: 2 }.is_empty());
        // A zero stride (unreachable through interleaved_ranges, which
        // clamps) degrades to stride 1 instead of looping forever.
        assert_eq!(InterleavedRange { start: 0, len: 3, stride: 0 }.count(), 3);
    }

    // Property coverage for the assignment functions, with the edge cases
    // the example-based tests above skip: `shards > len`, `len == 0`, and
    // `shards == 0` (documented to behave like a single shard).
    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(256))]

        #[test]
        fn contiguous_ranges_cover_every_index_exactly_once(
            len in 0usize..300,
            shards in 0usize..400,
        ) {
            let ranges = contiguous_ranges(len, shards);
            let mut seen = vec![0usize; len];
            for range in &ranges {
                proptest::prop_assert!(range.start < range.end, "empty shard {range:?}");
                proptest::prop_assert!(range.end <= len);
                for index in range.clone() {
                    seen[index] += 1;
                }
            }
            proptest::prop_assert!(
                seen.iter().all(|&count| count == 1),
                "len={len} shards={shards}: coverage {seen:?}"
            );
            proptest::prop_assert!(ranges.len() <= shards.max(1).min(len.max(1)));
        }

        #[test]
        fn interleaved_ranges_cover_every_index_exactly_once(
            len in 0usize..300,
            shards in 0usize..400,
        ) {
            let assignments = interleaved_ranges(len, shards);
            let mut seen = vec![0usize; len];
            for assignment in &assignments {
                proptest::prop_assert!(!assignment.is_empty(), "empty shard {assignment:?}");
                let mut previous = None;
                for index in assignment.iter() {
                    proptest::prop_assert!(index < len);
                    proptest::prop_assert!(previous < Some(index), "order within a shard");
                    previous = Some(index);
                    seen[index] += 1;
                }
            }
            proptest::prop_assert!(
                seen.iter().all(|&count| count == 1),
                "len={len} shards={shards}: coverage {seen:?}"
            );
            proptest::prop_assert!(assignments.len() <= shards.max(1).min(len.max(1)));
        }
    }

    #[test]
    fn scheduled_map_is_order_preserving_under_both_policies() {
        let items: Vec<usize> = (0..137).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for policy in [ShardPolicy::Contiguous, ShardPolicy::Interleaved] {
            for threads in [1, 2, 4, 7] {
                let results = run_scheduled(&items, threads, policy, |&x| x * 3);
                assert_eq!(results, expected, "{policy} threads={threads}");
            }
        }
    }

    #[test]
    fn bucketed_runs_preserve_item_order_and_group_by_key() {
        // Key = tens digit: buckets of up to 10 neighbouring items.
        let items: Vec<usize> = (0..137).rev().collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 3, 8] {
            let calls = std::sync::Mutex::new(Vec::new());
            let results = run_bucketed(
                &items,
                threads,
                |&x| x / 10,
                |&key, indices| {
                    calls.lock().unwrap().push((key, indices.to_vec()));
                    // Indices arrive ascending, and every item in the
                    // run shares the key.
                    assert!(indices.windows(2).all(|w| w[0] < w[1]));
                    assert!(indices.iter().all(|&i| items[i] / 10 == key));
                    indices.iter().map(|&i| items[i] * 3).collect()
                },
            );
            assert_eq!(results, expected, "threads={threads}");
            let calls = calls.into_inner().unwrap();
            // 137 items with tens-digit keys → 14 buckets; chunk
            // splitting may hand a bucket to `work` in several ascending
            // runs, but never mixes keys and never repeats an index.
            assert!(calls.len() >= 14, "threads={threads}: {} calls", calls.len());
            let mut per_key = std::collections::BTreeMap::new();
            for (key, indices) in calls {
                per_key.entry(key).or_insert_with(Vec::new).extend(indices);
            }
            assert_eq!(per_key.len(), 14, "threads={threads}");
            for (key, mut indices) in per_key {
                indices.sort_unstable();
                indices.dedup();
                let expected_count = items.iter().filter(|&&x| x / 10 == key).count();
                assert_eq!(indices.len(), expected_count, "key {key} threads={threads}");
            }
        }
    }

    #[test]
    fn bucketed_stealing_splits_an_oversized_bucket_into_claimable_chunks() {
        // One giant bucket plus a handful of singletons: the old static
        // whole-bucket deal handed the giant to one worker in a single
        // call while the others exited after their singletons; the
        // cursor scheduling splits it into bounded chunks any idle
        // worker can claim. (Which worker claims which chunk is timing —
        // the splitting and the bound are what's deterministic.)
        let items: Vec<usize> = (0..400).collect();
        let expected: Vec<usize> = items.iter().map(|x| x + 1).collect();
        let giant_chunks = std::sync::Mutex::new(Vec::new());
        let results = run_bucketed(
            &items,
            4,
            |&x| if x < 396 { 0u8 } else { (x - 395) as u8 },
            |&key, indices| {
                if key == 0 {
                    giant_chunks.lock().unwrap().push(indices.to_vec());
                }
                indices.iter().map(|&i| items[i] + 1).collect()
            },
        );
        assert_eq!(results, expected);
        let chunks = giant_chunks.into_inner().unwrap();
        // Chunk target = ⌈400 / (4 workers × 4)⌉ = 25: the 396-item
        // bucket must arrive as many bounded runs, not one call.
        assert!(chunks.len() >= 396 / 25, "only {} chunks", chunks.len());
        let mut all: Vec<usize> = Vec::new();
        for chunk in &chunks {
            assert!(chunk.len() <= 25, "chunk of {} items", chunk.len());
            assert!(chunk.windows(2).all(|w| w[0] < w[1]), "ascending within a chunk");
            all.extend(chunk);
        }
        all.sort_unstable();
        assert_eq!(all, (0..396).collect::<Vec<_>>(), "giant bucket covered exactly once");
    }

    #[test]
    fn bucketed_runs_handle_degenerate_inputs() {
        let empty: [u32; 0] = [];
        assert!(run_bucketed(&empty, 4, |&x| x, |_, i| vec![0u32; i.len()]).is_empty());
        // One bucket, many threads.
        let ones = [7u32; 5];
        let out = run_bucketed(&ones, 8, |_| 0u8, |_, indices| vec![1u32; indices.len()]);
        assert_eq!(out, vec![1; 5]);
    }

    #[test]
    #[should_panic(expected = "one result per bucket item")]
    fn bucketed_work_must_answer_every_item() {
        let items = [1u32, 2, 3];
        let _ = run_bucketed(&items, 1, |_| 0u8, |_, _| Vec::<u32>::new());
    }

    #[test]
    fn scheduled_fold_agrees_across_policies() {
        let items: Vec<u64> = (1..=5_000).collect();
        let expected = 5_000u64 * 5_001 / 2;
        for policy in [ShardPolicy::Contiguous, ShardPolicy::Interleaved] {
            for threads in [0, 1, 3] {
                let total =
                    scheduled_fold(&items, threads, policy, 0u64, |acc, &x| acc + x, |a, b| a + b);
                assert_eq!(total, expected, "{policy} threads={threads}");
            }
        }
    }

    #[test]
    fn shard_policy_parses_and_renders() {
        assert_eq!("contiguous".parse::<ShardPolicy>().unwrap(), ShardPolicy::Contiguous);
        assert_eq!("interleaved".parse::<ShardPolicy>().unwrap(), ShardPolicy::Interleaved);
        assert!("zigzag".parse::<ShardPolicy>().is_err());
        assert_eq!(ShardPolicy::default(), ShardPolicy::Contiguous);
        assert_eq!(ShardPolicy::Contiguous.to_string(), "contiguous");
        assert_eq!(ShardPolicy::Interleaved.to_string(), "interleaved");
    }
}
