//! Property-based tests for the RRVM encoding.

use proptest::prelude::*;
use rr_isa::{decode, encode_to_vec, encoded_len, Cond, Instr, Reg, MAX_INSTR_LEN};

/// Strategy producing an arbitrary valid register.
fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::from_index)
}

/// Strategy producing an arbitrary valid condition code.
fn any_cond() -> impl Strategy<Value = Cond> {
    (0u8..10).prop_map(|c| Cond::from_code(c).expect("in range"))
}

fn any_alu() -> impl Strategy<Value = rr_isa::InstrKind> {
    Just(rr_isa::InstrKind::Alu)
}

/// Strategy producing an arbitrary instruction covering every variant.
fn any_instr() -> impl Strategy<Value = Instr> {
    use rr_isa::Instr as I;
    let _ = any_alu; // silence unused when shrinking strategies below
    prop_oneof![
        Just(I::Nop),
        Just(I::Halt),
        Just(I::Ret),
        Just(I::PushF),
        Just(I::PopF),
        (any_reg(), any_reg()).prop_map(|(rd, rs)| I::MovRR { rd, rs }),
        (any_reg(), any::<u64>()).prop_map(|(rd, imm)| I::MovRI { rd, imm }),
        (0u8..7, any_reg(), any_reg()).prop_map(|(op, rd, rs)| I::AluRR {
            op: alu_from(op),
            rd,
            rs
        }),
        (0u8..7, any_reg(), any::<i32>()).prop_map(|(op, rd, imm)| I::AluRI {
            op: alu_from(op),
            rd,
            imm
        }),
        (0u8..3, any_reg(), any::<u8>()).prop_map(|(op, rd, amt)| I::ShiftRI {
            op: shift_from(op),
            rd,
            amt
        }),
        any_reg().prop_map(|rd| I::Not { rd }),
        any_reg().prop_map(|rd| I::Neg { rd }),
        (any_reg(), any_reg()).prop_map(|(rs1, rs2)| I::CmpRR { rs1, rs2 }),
        (any_reg(), any::<i32>()).prop_map(|(rs1, imm)| I::CmpRI { rs1, imm }),
        (any_reg(), any_reg(), any::<i32>()).prop_map(|(rs1, base, disp)| I::CmpRM {
            rs1,
            base,
            disp
        }),
        (any_reg(), any_reg()).prop_map(|(rs1, rs2)| I::TestRR { rs1, rs2 }),
        (any_reg(), any_reg(), any::<i32>()).prop_map(|(rd, base, disp)| I::Load {
            rd,
            base,
            disp
        }),
        (any_reg(), any::<i32>(), any_reg()).prop_map(|(base, disp, rs)| I::Store {
            base,
            disp,
            rs
        }),
        (any_reg(), any_reg(), any::<i32>()).prop_map(|(rd, base, disp)| I::LoadB {
            rd,
            base,
            disp
        }),
        (any_reg(), any::<i32>(), any_reg()).prop_map(|(base, disp, rs)| I::StoreB {
            base,
            disp,
            rs
        }),
        (any_reg(), any_reg(), any::<i32>()).prop_map(|(rd, base, disp)| I::Lea { rd, base, disp }),
        any_reg().prop_map(|rs| I::Push { rs }),
        any_reg().prop_map(|rd| I::Pop { rd }),
        any::<i32>().prop_map(|rel| I::Jmp { rel }),
        (any_cond(), any::<i32>()).prop_map(|(cc, rel)| I::Jcc { cc, rel }),
        any::<i32>().prop_map(|rel| I::Call { rel }),
        any_reg().prop_map(|rs| I::CallR { rs }),
        any_reg().prop_map(|rs| I::JmpR { rs }),
        (any_reg(), any_cond()).prop_map(|(rd, cc)| I::SetCc { rd, cc }),
        any::<u8>().prop_map(|num| I::Svc { num }),
    ]
}

fn alu_from(code: u8) -> rr_isa::AluOp {
    rr_isa::AluOp::from_code(code).expect("in range")
}

fn shift_from(code: u8) -> rr_isa::ShiftOp {
    rr_isa::ShiftOp::from_code(code).expect("in range")
}

proptest! {
    /// decode ∘ encode = identity, and the consumed length matches.
    #[test]
    fn encode_decode_round_trip(insn in any_instr()) {
        let bytes = encode_to_vec(&insn);
        prop_assert!(bytes.len() <= MAX_INSTR_LEN);
        prop_assert_eq!(bytes.len(), encoded_len(&insn));
        let (decoded, len) = decode(&bytes).expect("canonical encoding must decode");
        prop_assert_eq!(decoded, insn);
        prop_assert_eq!(len, bytes.len());
    }

    /// Decoding arbitrary bytes never panics and never reads past the
    /// reported length.
    #[test]
    fn decode_total_on_random_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
        if let Ok((_, len)) = decode(&bytes) { prop_assert!(len <= bytes.len()) }
    }

    /// A decoded instruction re-encodes to at most the bytes consumed
    /// (redundant encodings may canonicalize, but never grow).
    #[test]
    fn reencode_never_grows(bytes in proptest::collection::vec(any::<u8>(), 1..16)) {
        if let Ok((insn, len)) = decode(&bytes) {
            prop_assert!(encode_to_vec(&insn).len() <= len.max(MAX_INSTR_LEN));
            prop_assert_eq!(encoded_len(&insn), len);
        }
    }

    /// Textual rendering is total and non-empty.
    #[test]
    fn display_total(insn in any_instr()) {
        prop_assert!(!insn.to_string().is_empty());
    }
}
