//! The RRVM instruction model.

use crate::{Cond, Reg};
use std::fmt;

/// A two-operand ALU operation (register/register or register/immediate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum AluOp {
    Add = 0,
    Sub = 1,
    And = 2,
    Or = 3,
    Xor = 4,
    Mul = 5,
    /// Unsigned division; dividing by zero is a CPU fault.
    Udiv = 6,
}

impl AluOp {
    /// All ALU operations in encoding order.
    pub const ALL: [AluOp; 7] =
        [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor, AluOp::Mul, AluOp::Udiv];

    /// Decodes an operation from its encoding, if valid.
    pub fn from_code(code: u8) -> Option<AluOp> {
        Self::ALL.get(usize::from(code)).copied()
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Mul => "mul",
            AluOp::Udiv => "udiv",
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A shift operation with an immediate amount.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum ShiftOp {
    /// Logical shift left.
    Shl = 0,
    /// Logical shift right.
    Shr = 1,
    /// Arithmetic shift right.
    Sar = 2,
}

impl ShiftOp {
    /// All shift operations in encoding order.
    pub const ALL: [ShiftOp; 3] = [ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar];

    /// Decodes a shift op from its encoding, if valid.
    pub fn from_code(code: u8) -> Option<ShiftOp> {
        Self::ALL.get(usize::from(code)).copied()
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ShiftOp::Shl => "shl",
            ShiftOp::Shr => "shr",
            ShiftOp::Sar => "sar",
        }
    }
}

impl fmt::Display for ShiftOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One decoded RRVM instruction.
///
/// Control-flow displacements (`rel`) are relative to the address of the
/// *next* instruction, as on x86. Memory operands are `[base + disp]` with a
/// signed 32-bit displacement. See the crate docs for the encoding overview
/// and [`crate::encode`]/[`crate::decode`] for the byte-level format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Do nothing.
    Nop,
    /// Stop the machine (abnormal unless reached via the runtime's exit path).
    Halt,
    /// Return: pop the return address and jump to it.
    Ret,
    /// Push the packed [`crate::Flags`] word.
    PushF,
    /// Pop the packed [`crate::Flags`] word.
    PopF,
    /// `mov rd, rs` — copy a register.
    MovRR { rd: Reg, rs: Reg },
    /// `mov rd, imm` — load a 64-bit immediate.
    MovRI { rd: Reg, imm: u64 },
    /// `op rd, rs` — ALU operation on two registers.
    AluRR { op: AluOp, rd: Reg, rs: Reg },
    /// `op rd, imm` — ALU operation with a sign-extended 32-bit immediate.
    AluRI { op: AluOp, rd: Reg, imm: i32 },
    /// `shl/shr/sar rd, amt` — shift by an immediate amount (masked to 63).
    ShiftRI { op: ShiftOp, rd: Reg, amt: u8 },
    /// `not rd` — bitwise complement.
    Not { rd: Reg },
    /// `neg rd` — two's-complement negation.
    Neg { rd: Reg },
    /// `cmp rs1, rs2` — set flags from `rs1 - rs2`.
    CmpRR { rs1: Reg, rs2: Reg },
    /// `cmp rs1, imm` — compare with a sign-extended immediate.
    CmpRI { rs1: Reg, imm: i32 },
    /// `cmp rs1, [base+disp]` — compare with a 64-bit memory word.
    CmpRM { rs1: Reg, base: Reg, disp: i32 },
    /// `test rs1, rs2` — set flags from `rs1 & rs2`.
    TestRR { rs1: Reg, rs2: Reg },
    /// `load rd, [base+disp]` — 64-bit load.
    Load { rd: Reg, base: Reg, disp: i32 },
    /// `store [base+disp], rs` — 64-bit store.
    Store { base: Reg, disp: i32, rs: Reg },
    /// `loadb rd, [base+disp]` — zero-extending byte load.
    LoadB { rd: Reg, base: Reg, disp: i32 },
    /// `storeb [base+disp], rs` — byte store (low 8 bits of `rs`).
    StoreB { base: Reg, disp: i32, rs: Reg },
    /// `lea rd, [base+disp]` — address computation, no memory access.
    Lea { rd: Reg, base: Reg, disp: i32 },
    /// `push rs` — decrement `sp` by 8 and store `rs`.
    Push { rs: Reg },
    /// `pop rd` — load from `sp` and increment it by 8.
    Pop { rd: Reg },
    /// `jmp target` — unconditional relative jump.
    Jmp { rel: i32 },
    /// `j<cc> target` — conditional relative jump.
    Jcc { cc: Cond, rel: i32 },
    /// `call target` — push the return address and jump.
    Call { rel: i32 },
    /// `callr rs` — indirect call through a register.
    CallR { rs: Reg },
    /// `jmpr rs` — indirect jump through a register.
    JmpR { rs: Reg },
    /// `set<cc> rd` — materialize a condition as 0 or 1.
    SetCc { rd: Reg, cc: Cond },
    /// `svc num` — request a runtime service (I/O, exit).
    Svc { num: u8 },
}

/// Coarse classification of instructions, used by the patcher to select
/// protection patterns and by analyses to reason about control flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrKind {
    /// `nop`.
    Nop,
    /// `halt`.
    Halt,
    /// Register-to-register or immediate-to-register move (`mov`, `lea`).
    Mov,
    /// Memory load (`load`, `loadb`).
    Load,
    /// Memory store (`store`, `storeb`).
    Store,
    /// ALU computation (`add` … `udiv`, shifts, `not`, `neg`).
    Alu,
    /// Flag-setting comparison (`cmp`, `test`).
    Cmp,
    /// Unconditional direct jump.
    Jump,
    /// Conditional jump.
    CondJump,
    /// Direct or indirect call.
    Call,
    /// `ret`.
    Ret,
    /// Indirect jump.
    IndirectJump,
    /// Stack push (`push`, `pushf`).
    Push,
    /// Stack pop (`pop`, `popf`).
    Pop,
    /// `set<cc>`.
    SetCc,
    /// `svc`.
    Svc,
}

impl Instr {
    /// The instruction's [`InstrKind`].
    pub fn kind(&self) -> InstrKind {
        match self {
            Instr::Nop => InstrKind::Nop,
            Instr::Halt => InstrKind::Halt,
            Instr::MovRR { .. } | Instr::MovRI { .. } | Instr::Lea { .. } => InstrKind::Mov,
            Instr::Load { .. } | Instr::LoadB { .. } => InstrKind::Load,
            Instr::Store { .. } | Instr::StoreB { .. } => InstrKind::Store,
            Instr::AluRR { .. }
            | Instr::AluRI { .. }
            | Instr::ShiftRI { .. }
            | Instr::Not { .. }
            | Instr::Neg { .. } => InstrKind::Alu,
            Instr::CmpRR { .. }
            | Instr::CmpRI { .. }
            | Instr::CmpRM { .. }
            | Instr::TestRR { .. } => InstrKind::Cmp,
            Instr::Jmp { .. } => InstrKind::Jump,
            Instr::Jcc { .. } => InstrKind::CondJump,
            Instr::Call { .. } | Instr::CallR { .. } => InstrKind::Call,
            Instr::Ret => InstrKind::Ret,
            Instr::JmpR { .. } => InstrKind::IndirectJump,
            Instr::Push { .. } | Instr::PushF => InstrKind::Push,
            Instr::Pop { .. } | Instr::PopF => InstrKind::Pop,
            Instr::SetCc { .. } => InstrKind::SetCc,
            Instr::Svc { .. } => InstrKind::Svc,
        }
    }

    /// Whether the instruction can change the program counter non-linearly.
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self.kind(),
            InstrKind::Jump
                | InstrKind::CondJump
                | InstrKind::Call
                | InstrKind::Ret
                | InstrKind::IndirectJump
                | InstrKind::Halt
        )
    }

    /// Whether the instruction ends a basic block (control flow or `halt`).
    ///
    /// Calls are conventionally *not* block terminators for CFG construction
    /// (execution resumes at the next instruction), but they are
    /// control-flow instructions.
    pub fn is_block_terminator(&self) -> bool {
        self.is_control_flow() && !matches!(self.kind(), InstrKind::Call)
    }

    /// Whether executing the instruction updates the [`crate::Flags`].
    pub fn sets_flags(&self) -> bool {
        matches!(self.kind(), InstrKind::Alu | InstrKind::Cmp) || matches!(self, Instr::PopF)
    }

    /// Whether the instruction's behaviour depends on the current flags.
    pub fn reads_flags(&self) -> bool {
        matches!(self, Instr::Jcc { .. } | Instr::SetCc { .. } | Instr::PushF)
    }

    /// The control-flow displacement for direct jumps/calls, if any.
    pub fn rel_target(&self) -> Option<i32> {
        match *self {
            Instr::Jmp { rel } | Instr::Jcc { rel, .. } | Instr::Call { rel } => Some(rel),
            _ => None,
        }
    }

    /// Rewrites the control-flow displacement of a direct jump/call.
    ///
    /// # Panics
    ///
    /// Panics if the instruction has no displacement (use [`Instr::rel_target`]
    /// to check first).
    pub fn with_rel_target(self, rel: i32) -> Instr {
        match self {
            Instr::Jmp { .. } => Instr::Jmp { rel },
            Instr::Jcc { cc, .. } => Instr::Jcc { cc, rel },
            Instr::Call { .. } => Instr::Call { rel },
            other => panic!("instruction {other} has no relative target"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_op_codes_round_trip() {
        for op in AluOp::ALL {
            assert_eq!(AluOp::from_code(op as u8), Some(op));
        }
        assert_eq!(AluOp::from_code(7), None);
    }

    #[test]
    fn shift_op_codes_round_trip() {
        for op in ShiftOp::ALL {
            assert_eq!(ShiftOp::from_code(op as u8), Some(op));
        }
        assert_eq!(ShiftOp::from_code(3), None);
    }

    #[test]
    fn kinds_classify_control_flow() {
        assert!(Instr::Ret.is_control_flow());
        assert!(Instr::Jmp { rel: 0 }.is_block_terminator());
        assert!(Instr::Call { rel: 0 }.is_control_flow());
        assert!(!Instr::Call { rel: 0 }.is_block_terminator());
        assert!(!Instr::Nop.is_control_flow());
        assert!(Instr::Halt.is_block_terminator());
    }

    #[test]
    fn flag_effects() {
        assert!(Instr::CmpRI { rs1: Reg::R0, imm: 0 }.sets_flags());
        assert!(Instr::PopF.sets_flags());
        assert!(!Instr::MovRR { rd: Reg::R0, rs: Reg::R1 }.sets_flags());
        assert!(Instr::Jcc { cc: Cond::Eq, rel: 0 }.reads_flags());
        assert!(Instr::PushF.reads_flags());
        assert!(!Instr::Jmp { rel: 0 }.reads_flags());
    }

    #[test]
    fn rel_target_rewrite() {
        let j = Instr::Jcc { cc: Cond::Ne, rel: 4 };
        assert_eq!(j.rel_target(), Some(4));
        assert_eq!(j.with_rel_target(-8), Instr::Jcc { cc: Cond::Ne, rel: -8 });
        assert_eq!(Instr::Ret.rel_target(), None);
    }

    #[test]
    #[should_panic(expected = "no relative target")]
    fn with_rel_target_panics_on_non_branch() {
        let _ = Instr::Nop.with_rel_target(0);
    }
}
