//! # rr-isa — the RRVM instruction set architecture
//!
//! RRVM is the 64-bit register machine that this workspace rewrites and
//! hardens against fault injection. It plays the role that x86-64 plays in
//! the paper *Rewrite to Reinforce* (DAC 2021): a target with a
//! variable-length instruction encoding (1–10 bytes), condition flags, a
//! `pushf`/`popf` pair, and `set<cc>` — exactly the ingredients the paper's
//! local protection patterns (Tables I–III) rely on.
//!
//! The crate is purely a *model*: it defines [`Instr`], the sixteen
//! general-purpose [`Reg`]isters, the NZCV [`Flags`], the condition codes
//! [`Cond`], and a bijective binary [`encode`]/[`decode`] pair. Execution
//! lives in `rr-emu`, the object format in `rr-obj`.
//!
//! A variable-length encoding matters for fault-injection research: a single
//! bit flip can change an instruction's *length*, desynchronizing the decode
//! of everything after it — the same behaviour that makes rewriting x86-64
//! binaries delicate.
//!
//! ## Example
//!
//! ```
//! use rr_isa::{Instr, Reg, decode, encode_to_vec};
//!
//! # fn main() -> Result<(), rr_isa::DecodeError> {
//! let insn = Instr::MovRI { rd: Reg::R1, imm: 42 };
//! let bytes = encode_to_vec(&insn);
//! let (decoded, len) = decode(&bytes)?;
//! assert_eq!(decoded, insn);
//! assert_eq!(len, bytes.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod cond;
mod decode;
mod display;
mod encode;
mod flags;
mod insn;
pub mod opcode;
mod reg;

pub use cond::Cond;
pub use decode::{decode, DecodeError};
pub use encode::{encode, encode_to_vec, encoded_len};
pub use flags::Flags;
pub use insn::{AluOp, Instr, InstrKind, ShiftOp};
pub use reg::{ParseRegError, Reg};

/// Base address at which `.text` is loaded by the linker and emulator.
pub const TEXT_BASE: u64 = 0x1000;

/// Initial stack pointer; the stack grows towards lower addresses.
pub const STACK_TOP: u64 = 0x4000_0000;

/// Size of the stack region reserved below [`STACK_TOP`].
pub const STACK_SIZE: u64 = 0x10_0000;

/// Longest possible RRVM instruction in bytes (`mov rd, imm64`).
pub const MAX_INSTR_LEN: usize = 10;
