//! The NZCV condition flags.

use std::fmt;

/// RRVM condition flags, set by arithmetic/logic instructions and consumed
/// by `j<cond>` and `set<cond>`.
///
/// * `z` — zero: the result was zero.
/// * `n` — negative: the result's sign bit (bit 63) was set.
/// * `c` — carry: unsigned overflow (for `sub`/`cmp`: *borrow*, i.e.
///   `a < b` unsigned, matching x86 semantics so the paper's `jb`/`jae`
///   patterns translate directly).
/// * `v` — overflow: signed overflow.
///
/// `pushf` stores the packed form ([`Flags::to_bits`]) on the stack and
/// `popf` restores it — the mechanism exploited by the paper's Table II
/// `cmp` protection pattern.
///
/// # Example
///
/// ```
/// use rr_isa::Flags;
///
/// let f = Flags::from_sub(5, 5);
/// assert!(f.z);
/// assert_eq!(Flags::from_bits(f.to_bits()), f);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Flags {
    /// Zero flag.
    pub z: bool,
    /// Negative (sign) flag.
    pub n: bool,
    /// Carry / unsigned-borrow flag.
    pub c: bool,
    /// Signed-overflow flag.
    pub v: bool,
}

impl Flags {
    /// Flags with every bit clear.
    pub const CLEAR: Flags = Flags { z: false, n: false, c: false, v: false };

    /// Creates flags from an explicit tuple of bits.
    pub fn new(z: bool, n: bool, c: bool, v: bool) -> Flags {
        Flags { z, n, c, v }
    }

    /// Packs the flags into the low four bits of a word
    /// (bit 0 = Z, 1 = N, 2 = C, 3 = V).
    pub fn to_bits(self) -> u64 {
        u64::from(self.z) | u64::from(self.n) << 1 | u64::from(self.c) << 2 | u64::from(self.v) << 3
    }

    /// Unpacks flags produced by [`Flags::to_bits`]; higher bits are ignored.
    pub fn from_bits(bits: u64) -> Flags {
        Flags { z: bits & 1 != 0, n: bits & 2 != 0, c: bits & 4 != 0, v: bits & 8 != 0 }
    }

    /// Flags resulting from the subtraction `a - b` (also the semantics of
    /// `cmp a, b`).
    pub fn from_sub(a: u64, b: u64) -> Flags {
        let (res, borrow) = a.overflowing_sub(b);
        let sv = (a as i64).overflowing_sub(b as i64).1;
        Flags { z: res == 0, n: (res as i64) < 0, c: borrow, v: sv }
    }

    /// Flags resulting from the addition `a + b`.
    pub fn from_add(a: u64, b: u64) -> Flags {
        let (res, carry) = a.overflowing_add(b);
        let sv = (a as i64).overflowing_add(b as i64).1;
        Flags { z: res == 0, n: (res as i64) < 0, c: carry, v: sv }
    }

    /// Flags resulting from a logic operation producing `res`
    /// (`and`, `or`, `xor`, `not`, `test`): C and V are cleared.
    pub fn from_logic(res: u64) -> Flags {
        Flags { z: res == 0, n: (res as i64) < 0, c: false, v: false }
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bit = |b: bool, ch: char| if b { ch } else { '-' };
        write!(
            f,
            "{}{}{}{}",
            bit(self.z, 'Z'),
            bit(self.n, 'N'),
            bit(self.c, 'C'),
            bit(self.v, 'V')
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_round_trip_all_sixteen() {
        for bits in 0..16u64 {
            assert_eq!(Flags::from_bits(bits).to_bits(), bits);
        }
    }

    #[test]
    fn from_bits_ignores_high_bits() {
        assert_eq!(Flags::from_bits(0xFFF0), Flags::CLEAR);
    }

    #[test]
    fn sub_flags_match_comparisons() {
        let cases: [(u64, u64); 8] = [
            (0, 0),
            (1, 2),
            (2, 1),
            (u64::MAX, 1),
            (1, u64::MAX),
            (i64::MIN as u64, 1),
            (i64::MAX as u64, u64::MAX),
            (5, 5),
        ];
        for (a, b) in cases {
            let f = Flags::from_sub(a, b);
            assert_eq!(f.z, a == b, "z for {a} - {b}");
            assert_eq!(f.c, a < b, "c (borrow) for {a} - {b}");
            // signed-less-than == (N != V), the textbook identity
            assert_eq!(f.n != f.v, (a as i64) < (b as i64), "n^v for {a} - {b}");
        }
    }

    #[test]
    fn add_carry_and_overflow() {
        let f = Flags::from_add(u64::MAX, 1);
        assert!(f.c && f.z);
        let f = Flags::from_add(i64::MAX as u64, 1);
        assert!(f.v && f.n);
    }

    #[test]
    fn logic_clears_c_and_v() {
        let f = Flags::from_logic(0);
        assert!(f.z && !f.n && !f.c && !f.v);
        let f = Flags::from_logic(u64::MAX);
        assert!(!f.z && f.n && !f.c && !f.v);
    }

    #[test]
    fn display_compact() {
        assert_eq!(Flags::CLEAR.to_string(), "----");
        assert_eq!(Flags::new(true, false, true, false).to_string(), "Z-C-");
    }
}
