//! General-purpose registers.

use std::fmt;
use std::str::FromStr;

/// One of the sixteen 64-bit general-purpose registers `r0`–`r15`.
///
/// By ABI convention (enforced nowhere in hardware, everywhere in the
/// toolchain):
///
/// * `r0` — return value
/// * `r1`–`r5` — arguments
/// * `r6`, `r7` — caller-saved scratch
/// * `r8`–`r13` — callee-saved
/// * `r14` — frame pointer ([`Reg::FP`])
/// * `r15` — stack pointer ([`Reg::SP`])
///
/// # Example
///
/// ```
/// use rr_isa::Reg;
///
/// assert_eq!(Reg::SP, Reg::R15);
/// assert_eq!(Reg::R3.index(), 3);
/// assert_eq!("r7".parse::<Reg>()?, Reg::R7);
/// # Ok::<(), rr_isa::ParseRegError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    R0 = 0,
    R1 = 1,
    R2 = 2,
    R3 = 3,
    R4 = 4,
    R5 = 5,
    R6 = 6,
    R7 = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Reg {
    /// The stack pointer register, `r15`.
    pub const SP: Reg = Reg::R15;
    /// The frame pointer register, `r14` (by convention).
    pub const FP: Reg = Reg::R14;

    /// All sixteen registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Registers a callee must preserve under the RRVM ABI.
    pub const CALLEE_SAVED: [Reg; 6] = [Reg::R8, Reg::R9, Reg::R10, Reg::R11, Reg::R12, Reg::R13];

    /// Argument registers in positional order.
    pub const ARGS: [Reg; 5] = [Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5];

    /// Returns the register with the given index.
    ///
    /// Any 4-bit value names a valid register, which keeps *register fields*
    /// of an instruction immune to decode errors under bit flips (the flip
    /// silently retargets the operand instead — a classic fault effect).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    #[inline]
    pub fn from_index(index: u8) -> Reg {
        Self::ALL[usize::from(index)]
    }

    /// The register's index, `0..=15`.
    #[inline]
    pub fn index(self) -> u8 {
        self as u8
    }

    /// Whether this register is callee-saved under the ABI.
    pub fn is_callee_saved(self) -> bool {
        Self::CALLEE_SAVED.contains(&self)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::SP => write!(f, "sp"),
            Reg::FP => write!(f, "fp"),
            r => write!(f, "r{}", r.index()),
        }
    }
}

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    text: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register name `{}`", self.text)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    /// Parses `r0`..`r15` as well as the aliases `sp` and `fp`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseRegError { text: s.to_owned() };
        match s {
            "sp" => return Ok(Reg::SP),
            "fp" => return Ok(Reg::FP),
            _ => {}
        }
        let digits = s.strip_prefix('r').ok_or_else(err)?;
        // Reject forms like `r07` so that every register has one spelling.
        if digits.len() > 1 && digits.starts_with('0') {
            return Err(err());
        }
        let index: u8 = digits.parse().map_err(|_| err())?;
        if index < 16 {
            Ok(Reg::from_index(index))
        } else {
            Err(err())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in 0..16 {
            assert_eq!(Reg::from_index(i).index(), i);
        }
    }

    #[test]
    fn parse_all_names() {
        for r in Reg::ALL {
            let text = format!("r{}", r.index());
            assert_eq!(text.parse::<Reg>().unwrap(), r);
        }
        assert_eq!("sp".parse::<Reg>().unwrap(), Reg::R15);
        assert_eq!("fp".parse::<Reg>().unwrap(), Reg::R14);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "r", "r16", "r99", "x3", "r-1", "r03", " r1"] {
            assert!(bad.parse::<Reg>().is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn display_uses_aliases_for_sp_fp() {
        assert_eq!(Reg::R15.to_string(), "sp");
        assert_eq!(Reg::R14.to_string(), "fp");
        assert_eq!(Reg::R2.to_string(), "r2");
    }

    #[test]
    fn abi_sets_are_disjoint_from_sp() {
        assert!(!Reg::CALLEE_SAVED.contains(&Reg::SP));
        assert!(!Reg::ARGS.contains(&Reg::SP));
        assert!(!Reg::ARGS.contains(&Reg::R0));
    }
}
