//! Opcode byte assignments for the RRVM encoding.
//!
//! The numbering deliberately leaves large gaps of *unassigned* opcodes: a
//! random bit flip in an opcode byte frequently lands on an invalid
//! encoding and crashes the machine, mirroring the behaviour of sparse real
//! ISA encodings that fault-injection studies rely on.

/// `nop`
pub const NOP: u8 = 0x00;
/// `halt`
pub const HALT: u8 = 0x01;
/// `ret`
pub const RET: u8 = 0x02;
/// `pushf`
pub const PUSHF: u8 = 0x03;
/// `popf`
pub const POPF: u8 = 0x04;
/// `mov rd, rs`
pub const MOV_RR: u8 = 0x05;
/// `mov rd, imm64`
pub const MOV_RI: u8 = 0x06;

/// Base opcode for register/register ALU ops; add [`crate::insn::AluOp`]'s code.
pub const ALU_RR_BASE: u8 = 0x10;
/// Base opcode for register/immediate ALU ops; add the op code.
pub const ALU_RI_BASE: u8 = 0x20;
/// Base opcode for immediate shifts; add [`crate::insn::ShiftOp`]'s code.
pub const SHIFT_RI_BASE: u8 = 0x30;

/// `not rd`
pub const NOT: u8 = 0x33;
/// `neg rd`
pub const NEG: u8 = 0x34;
/// `cmp rs1, rs2`
pub const CMP_RR: u8 = 0x38;
/// `cmp rs1, imm32`
pub const CMP_RI: u8 = 0x39;
/// `cmp rs1, [base+disp]`
pub const CMP_RM: u8 = 0x3A;
/// `test rs1, rs2`
pub const TEST_RR: u8 = 0x3B;

/// `load rd, [base+disp]`
pub const LOAD: u8 = 0x40;
/// `store [base+disp], rs`
pub const STORE: u8 = 0x41;
/// `loadb rd, [base+disp]`
pub const LOADB: u8 = 0x42;
/// `storeb [base+disp], rs`
pub const STOREB: u8 = 0x43;
/// `lea rd, [base+disp]`
pub const LEA: u8 = 0x44;

/// `push rs`
pub const PUSH: u8 = 0x48;
/// `pop rd`
pub const POP: u8 = 0x49;

/// `jmp rel32`
pub const JMP: u8 = 0x50;
/// `j<cc> rel32`
pub const JCC: u8 = 0x51;
/// `call rel32`
pub const CALL: u8 = 0x52;
/// `callr rs`
pub const CALLR: u8 = 0x53;
/// `jmpr rs`
pub const JMPR: u8 = 0x54;

/// `set<cc> rd`
pub const SETCC: u8 = 0x58;
/// `svc num`
pub const SVC: u8 = 0x60;
