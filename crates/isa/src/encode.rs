//! Binary encoding of RRVM instructions.

use crate::insn::Instr;
use crate::opcode as op;
use crate::Reg;

#[inline]
fn reg_pair(hi: Reg, lo: Reg) -> u8 {
    (hi.index() << 4) | lo.index()
}

/// Appends the canonical encoding of `insn` to `out` and returns the number
/// of bytes written.
///
/// The encoding is canonical: [`crate::decode`] of the produced bytes yields
/// `insn` back and consumes exactly the returned length.
///
/// # Example
///
/// ```
/// use rr_isa::{encode, Instr};
///
/// let mut buf = Vec::new();
/// let n = encode(&Instr::Ret, &mut buf);
/// assert_eq!((n, buf.as_slice()), (1, &[0x02u8][..]));
/// ```
pub fn encode(insn: &Instr, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    match *insn {
        Instr::Nop => out.push(op::NOP),
        Instr::Halt => out.push(op::HALT),
        Instr::Ret => out.push(op::RET),
        Instr::PushF => out.push(op::PUSHF),
        Instr::PopF => out.push(op::POPF),
        Instr::MovRR { rd, rs } => {
            out.push(op::MOV_RR);
            out.push(reg_pair(rd, rs));
        }
        Instr::MovRI { rd, imm } => {
            out.push(op::MOV_RI);
            out.push(rd.index());
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Instr::AluRR { op: alu, rd, rs } => {
            out.push(op::ALU_RR_BASE + alu as u8);
            out.push(reg_pair(rd, rs));
        }
        Instr::AluRI { op: alu, rd, imm } => {
            out.push(op::ALU_RI_BASE + alu as u8);
            out.push(rd.index());
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Instr::ShiftRI { op: sh, rd, amt } => {
            out.push(op::SHIFT_RI_BASE + sh as u8);
            out.push(rd.index());
            out.push(amt);
        }
        Instr::Not { rd } => {
            out.push(op::NOT);
            out.push(rd.index());
        }
        Instr::Neg { rd } => {
            out.push(op::NEG);
            out.push(rd.index());
        }
        Instr::CmpRR { rs1, rs2 } => {
            out.push(op::CMP_RR);
            out.push(reg_pair(rs1, rs2));
        }
        Instr::CmpRI { rs1, imm } => {
            out.push(op::CMP_RI);
            out.push(rs1.index());
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Instr::CmpRM { rs1, base, disp } => {
            out.push(op::CMP_RM);
            out.push(reg_pair(rs1, base));
            out.extend_from_slice(&disp.to_le_bytes());
        }
        Instr::TestRR { rs1, rs2 } => {
            out.push(op::TEST_RR);
            out.push(reg_pair(rs1, rs2));
        }
        Instr::Load { rd, base, disp } => {
            out.push(op::LOAD);
            out.push(reg_pair(rd, base));
            out.extend_from_slice(&disp.to_le_bytes());
        }
        Instr::Store { base, disp, rs } => {
            out.push(op::STORE);
            out.push(reg_pair(rs, base));
            out.extend_from_slice(&disp.to_le_bytes());
        }
        Instr::LoadB { rd, base, disp } => {
            out.push(op::LOADB);
            out.push(reg_pair(rd, base));
            out.extend_from_slice(&disp.to_le_bytes());
        }
        Instr::StoreB { base, disp, rs } => {
            out.push(op::STOREB);
            out.push(reg_pair(rs, base));
            out.extend_from_slice(&disp.to_le_bytes());
        }
        Instr::Lea { rd, base, disp } => {
            out.push(op::LEA);
            out.push(reg_pair(rd, base));
            out.extend_from_slice(&disp.to_le_bytes());
        }
        Instr::Push { rs } => {
            out.push(op::PUSH);
            out.push(rs.index());
        }
        Instr::Pop { rd } => {
            out.push(op::POP);
            out.push(rd.index());
        }
        Instr::Jmp { rel } => {
            out.push(op::JMP);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Instr::Jcc { cc, rel } => {
            out.push(op::JCC);
            out.push(cc.code());
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Instr::Call { rel } => {
            out.push(op::CALL);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Instr::CallR { rs } => {
            out.push(op::CALLR);
            out.push(rs.index());
        }
        Instr::JmpR { rs } => {
            out.push(op::JMPR);
            out.push(rs.index());
        }
        Instr::SetCc { rd, cc } => {
            out.push(op::SETCC);
            out.push((rd.index() << 4) | cc.code());
        }
        Instr::Svc { num } => {
            out.push(op::SVC);
            out.push(num);
        }
    }
    out.len() - start
}

/// Encodes `insn` into a fresh vector.
///
/// # Example
///
/// ```
/// use rr_isa::{encode_to_vec, Instr, Reg};
///
/// let bytes = encode_to_vec(&Instr::Push { rs: Reg::R3 });
/// assert_eq!(bytes.len(), 2);
/// ```
pub fn encode_to_vec(insn: &Instr) -> Vec<u8> {
    let mut out = Vec::with_capacity(crate::MAX_INSTR_LEN);
    encode(insn, &mut out);
    out
}

/// The canonical encoded length of `insn` in bytes, without encoding it.
///
/// # Example
///
/// ```
/// use rr_isa::{encoded_len, Instr, Reg};
///
/// assert_eq!(encoded_len(&Instr::MovRI { rd: Reg::R0, imm: 0 }), 10);
/// assert_eq!(encoded_len(&Instr::Ret), 1);
/// ```
pub fn encoded_len(insn: &Instr) -> usize {
    match insn {
        Instr::Nop | Instr::Halt | Instr::Ret | Instr::PushF | Instr::PopF => 1,
        Instr::MovRR { .. }
        | Instr::AluRR { .. }
        | Instr::Not { .. }
        | Instr::Neg { .. }
        | Instr::CmpRR { .. }
        | Instr::TestRR { .. }
        | Instr::Push { .. }
        | Instr::Pop { .. }
        | Instr::CallR { .. }
        | Instr::JmpR { .. }
        | Instr::SetCc { .. }
        | Instr::Svc { .. } => 2,
        Instr::ShiftRI { .. } => 3,
        Instr::Jmp { .. } | Instr::Call { .. } => 5,
        Instr::AluRI { .. }
        | Instr::CmpRI { .. }
        | Instr::CmpRM { .. }
        | Instr::Load { .. }
        | Instr::Store { .. }
        | Instr::LoadB { .. }
        | Instr::StoreB { .. }
        | Instr::Lea { .. }
        | Instr::Jcc { .. } => 6,
        Instr::MovRI { .. } => 10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{AluOp, ShiftOp};
    use crate::Cond;

    /// A representative instruction of every variant, used by several tests.
    pub(crate) fn sample_instructions() -> Vec<Instr> {
        let r = Reg::from_index;
        let mut v = vec![
            Instr::Nop,
            Instr::Halt,
            Instr::Ret,
            Instr::PushF,
            Instr::PopF,
            Instr::MovRR { rd: r(1), rs: r(2) },
            Instr::MovRI { rd: r(3), imm: 0xDEAD_BEEF_0BAD_F00D },
            Instr::Not { rd: r(4) },
            Instr::Neg { rd: r(5) },
            Instr::CmpRR { rs1: r(6), rs2: r(7) },
            Instr::CmpRI { rs1: r(8), imm: -42 },
            Instr::CmpRM { rs1: r(9), base: r(10), disp: 256 },
            Instr::TestRR { rs1: r(11), rs2: r(12) },
            Instr::Load { rd: r(13), base: r(14), disp: -8 },
            Instr::Store { base: r(15), disp: 8, rs: r(0) },
            Instr::LoadB { rd: r(1), base: r(2), disp: 0 },
            Instr::StoreB { base: r(3), disp: 1, rs: r(4) },
            Instr::Lea { rd: r(5), base: r(6), disp: 1024 },
            Instr::Push { rs: r(7) },
            Instr::Pop { rd: r(8) },
            Instr::Jmp { rel: -5 },
            Instr::Call { rel: 100 },
            Instr::CallR { rs: r(9) },
            Instr::JmpR { rs: r(10) },
            Instr::Svc { num: 3 },
        ];
        for alu in AluOp::ALL {
            v.push(Instr::AluRR { op: alu, rd: r(1), rs: r(2) });
            v.push(Instr::AluRI { op: alu, rd: r(3), imm: 77 });
        }
        for sh in ShiftOp::ALL {
            v.push(Instr::ShiftRI { op: sh, rd: r(4), amt: 13 });
        }
        for cc in Cond::ALL {
            v.push(Instr::Jcc { cc, rel: 64 });
            v.push(Instr::SetCc { rd: r(5), cc });
        }
        v
    }

    #[test]
    fn encoded_len_matches_encoding() {
        for insn in sample_instructions() {
            let bytes = encode_to_vec(&insn);
            assert_eq!(bytes.len(), encoded_len(&insn), "{insn}");
            assert!(bytes.len() <= crate::MAX_INSTR_LEN);
        }
    }

    #[test]
    fn immediates_are_little_endian() {
        let bytes = encode_to_vec(&Instr::MovRI { rd: Reg::R0, imm: 0x0102_0304_0506_0708 });
        assert_eq!(&bytes[2..], &[8, 7, 6, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn distinct_instructions_have_distinct_encodings() {
        let all = sample_instructions();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(encode_to_vec(a), encode_to_vec(b), "{a} vs {b}");
            }
        }
    }
}
