//! Binary decoding of RRVM instructions.

use crate::insn::{AluOp, Instr, ShiftOp};
use crate::opcode as op;
use crate::{Cond, Reg};
use std::fmt;

/// Error returned by [`decode`] when the byte stream is not a valid
/// instruction.
///
/// Fault-injection campaigns treat any decode error as a machine fault
/// (crash), so the taxonomy distinguishes the causes a forensic report
/// would care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeError {
    /// The first byte is not an assigned opcode.
    InvalidOpcode(u8),
    /// The instruction extends past the end of the available bytes.
    Truncated {
        /// The offending opcode byte.
        opcode: u8,
        /// Total bytes the instruction needs.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// A condition-code field holds an unassigned value.
    InvalidCond(u8),
    /// The input slice is empty.
    Empty,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecodeError::InvalidOpcode(b) => write!(f, "invalid opcode byte {b:#04x}"),
            DecodeError::Truncated { opcode, needed, have } => write!(
                f,
                "truncated instruction: opcode {opcode:#04x} needs {needed} bytes, have {have}"
            ),
            DecodeError::InvalidCond(c) => write!(f, "invalid condition code {c:#x}"),
            DecodeError::Empty => write!(f, "empty instruction stream"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn need(bytes: &[u8], needed: usize) -> Result<(), DecodeError> {
    if bytes.len() < needed {
        Err(DecodeError::Truncated { opcode: bytes[0], needed, have: bytes.len() })
    } else {
        Ok(())
    }
}

#[inline]
fn reg_hi(b: u8) -> Reg {
    Reg::from_index(b >> 4)
}

#[inline]
fn reg_lo(b: u8) -> Reg {
    Reg::from_index(b & 0xF)
}

#[inline]
fn imm32(bytes: &[u8]) -> i32 {
    i32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]])
}

/// Decodes one instruction from the front of `bytes`.
///
/// Returns the instruction and the number of bytes it occupies. Register
/// fields accept any 4-bit value; only the low nibble of single-register
/// bytes is significant (redundant encodings decode like their canonical
/// form, as on x86).
///
/// # Errors
///
/// Returns a [`DecodeError`] if the opcode byte is unassigned, a condition
/// code is out of range, or the stream ends mid-instruction. These are the
/// events an emulated CPU reports as an *illegal instruction* fault.
///
/// # Example
///
/// ```
/// use rr_isa::{decode, Instr, Reg};
///
/// let (insn, len) = decode(&[0x05, 0x12, 0xFF])?; // mov r1, r2 + trailing byte
/// assert_eq!(insn, Instr::MovRR { rd: Reg::R1, rs: Reg::R2 });
/// assert_eq!(len, 2);
/// # Ok::<(), rr_isa::DecodeError>(())
/// ```
pub fn decode(bytes: &[u8]) -> Result<(Instr, usize), DecodeError> {
    let &opcode = bytes.first().ok_or(DecodeError::Empty)?;
    let insn = match opcode {
        op::NOP => return Ok((Instr::Nop, 1)),
        op::HALT => return Ok((Instr::Halt, 1)),
        op::RET => return Ok((Instr::Ret, 1)),
        op::PUSHF => return Ok((Instr::PushF, 1)),
        op::POPF => return Ok((Instr::PopF, 1)),
        op::MOV_RR => {
            need(bytes, 2)?;
            (Instr::MovRR { rd: reg_hi(bytes[1]), rs: reg_lo(bytes[1]) }, 2)
        }
        op::MOV_RI => {
            need(bytes, 10)?;
            let imm = u64::from_le_bytes(bytes[2..10].try_into().expect("length checked"));
            (Instr::MovRI { rd: reg_lo(bytes[1]), imm }, 10)
        }
        _ if (op::ALU_RR_BASE..op::ALU_RR_BASE + 7).contains(&opcode) => {
            need(bytes, 2)?;
            let alu = AluOp::from_code(opcode - op::ALU_RR_BASE).expect("range checked");
            (Instr::AluRR { op: alu, rd: reg_hi(bytes[1]), rs: reg_lo(bytes[1]) }, 2)
        }
        _ if (op::ALU_RI_BASE..op::ALU_RI_BASE + 7).contains(&opcode) => {
            need(bytes, 6)?;
            let alu = AluOp::from_code(opcode - op::ALU_RI_BASE).expect("range checked");
            (Instr::AluRI { op: alu, rd: reg_lo(bytes[1]), imm: imm32(&bytes[2..]) }, 6)
        }
        _ if (op::SHIFT_RI_BASE..op::SHIFT_RI_BASE + 3).contains(&opcode) => {
            need(bytes, 3)?;
            let sh = ShiftOp::from_code(opcode - op::SHIFT_RI_BASE).expect("range checked");
            (Instr::ShiftRI { op: sh, rd: reg_lo(bytes[1]), amt: bytes[2] }, 3)
        }
        op::NOT => {
            need(bytes, 2)?;
            (Instr::Not { rd: reg_lo(bytes[1]) }, 2)
        }
        op::NEG => {
            need(bytes, 2)?;
            (Instr::Neg { rd: reg_lo(bytes[1]) }, 2)
        }
        op::CMP_RR => {
            need(bytes, 2)?;
            (Instr::CmpRR { rs1: reg_hi(bytes[1]), rs2: reg_lo(bytes[1]) }, 2)
        }
        op::CMP_RI => {
            need(bytes, 6)?;
            (Instr::CmpRI { rs1: reg_lo(bytes[1]), imm: imm32(&bytes[2..]) }, 6)
        }
        op::CMP_RM => {
            need(bytes, 6)?;
            (
                Instr::CmpRM {
                    rs1: reg_hi(bytes[1]),
                    base: reg_lo(bytes[1]),
                    disp: imm32(&bytes[2..]),
                },
                6,
            )
        }
        op::TEST_RR => {
            need(bytes, 2)?;
            (Instr::TestRR { rs1: reg_hi(bytes[1]), rs2: reg_lo(bytes[1]) }, 2)
        }
        op::LOAD => {
            need(bytes, 6)?;
            (
                Instr::Load {
                    rd: reg_hi(bytes[1]),
                    base: reg_lo(bytes[1]),
                    disp: imm32(&bytes[2..]),
                },
                6,
            )
        }
        op::STORE => {
            need(bytes, 6)?;
            (
                Instr::Store {
                    base: reg_lo(bytes[1]),
                    disp: imm32(&bytes[2..]),
                    rs: reg_hi(bytes[1]),
                },
                6,
            )
        }
        op::LOADB => {
            need(bytes, 6)?;
            (
                Instr::LoadB {
                    rd: reg_hi(bytes[1]),
                    base: reg_lo(bytes[1]),
                    disp: imm32(&bytes[2..]),
                },
                6,
            )
        }
        op::STOREB => {
            need(bytes, 6)?;
            (
                Instr::StoreB {
                    base: reg_lo(bytes[1]),
                    disp: imm32(&bytes[2..]),
                    rs: reg_hi(bytes[1]),
                },
                6,
            )
        }
        op::LEA => {
            need(bytes, 6)?;
            (
                Instr::Lea {
                    rd: reg_hi(bytes[1]),
                    base: reg_lo(bytes[1]),
                    disp: imm32(&bytes[2..]),
                },
                6,
            )
        }
        op::PUSH => {
            need(bytes, 2)?;
            (Instr::Push { rs: reg_lo(bytes[1]) }, 2)
        }
        op::POP => {
            need(bytes, 2)?;
            (Instr::Pop { rd: reg_lo(bytes[1]) }, 2)
        }
        op::JMP => {
            need(bytes, 5)?;
            (Instr::Jmp { rel: imm32(&bytes[1..]) }, 5)
        }
        op::JCC => {
            need(bytes, 6)?;
            let cc = Cond::from_code(bytes[1]).ok_or(DecodeError::InvalidCond(bytes[1]))?;
            (Instr::Jcc { cc, rel: imm32(&bytes[2..]) }, 6)
        }
        op::CALL => {
            need(bytes, 5)?;
            (Instr::Call { rel: imm32(&bytes[1..]) }, 5)
        }
        op::CALLR => {
            need(bytes, 2)?;
            (Instr::CallR { rs: reg_lo(bytes[1]) }, 2)
        }
        op::JMPR => {
            need(bytes, 2)?;
            (Instr::JmpR { rs: reg_lo(bytes[1]) }, 2)
        }
        op::SETCC => {
            need(bytes, 2)?;
            let cc =
                Cond::from_code(bytes[1] & 0xF).ok_or(DecodeError::InvalidCond(bytes[1] & 0xF))?;
            (Instr::SetCc { rd: reg_hi(bytes[1]), cc }, 2)
        }
        op::SVC => {
            need(bytes, 2)?;
            (Instr::Svc { num: bytes[1] }, 2)
        }
        other => return Err(DecodeError::InvalidOpcode(other)),
    };
    Ok(insn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode_to_vec;

    fn samples() -> Vec<Instr> {
        // Build the same representative set as encode::tests without
        // depending on a private function across modules.
        use crate::insn::{AluOp, ShiftOp};
        let r = Reg::from_index;
        let mut v = vec![
            Instr::Nop,
            Instr::Halt,
            Instr::Ret,
            Instr::PushF,
            Instr::PopF,
            Instr::MovRR { rd: r(1), rs: r(2) },
            Instr::MovRI { rd: r(3), imm: u64::MAX },
            Instr::Not { rd: r(4) },
            Instr::Neg { rd: r(5) },
            Instr::CmpRR { rs1: r(6), rs2: r(7) },
            Instr::CmpRI { rs1: r(8), imm: i32::MIN },
            Instr::CmpRM { rs1: r(9), base: r(10), disp: i32::MAX },
            Instr::TestRR { rs1: r(11), rs2: r(12) },
            Instr::Load { rd: r(13), base: r(14), disp: -8 },
            Instr::Store { base: r(15), disp: 8, rs: r(0) },
            Instr::LoadB { rd: r(1), base: r(2), disp: 0 },
            Instr::StoreB { base: r(3), disp: 1, rs: r(4) },
            Instr::Lea { rd: r(5), base: r(6), disp: 1024 },
            Instr::Push { rs: r(7) },
            Instr::Pop { rd: r(8) },
            Instr::Jmp { rel: -1 },
            Instr::Call { rel: 0 },
            Instr::CallR { rs: r(9) },
            Instr::JmpR { rs: r(10) },
            Instr::Svc { num: 255 },
        ];
        for alu in AluOp::ALL {
            v.push(Instr::AluRR { op: alu, rd: r(1), rs: r(2) });
            v.push(Instr::AluRI { op: alu, rd: r(3), imm: -77 });
        }
        for sh in ShiftOp::ALL {
            v.push(Instr::ShiftRI { op: sh, rd: r(4), amt: 63 });
        }
        for cc in Cond::ALL {
            v.push(Instr::Jcc { cc, rel: 64 });
            v.push(Instr::SetCc { rd: r(5), cc });
        }
        v
    }

    #[test]
    fn decode_inverts_encode() {
        for insn in samples() {
            let bytes = encode_to_vec(&insn);
            let (decoded, len) = decode(&bytes).unwrap_or_else(|e| panic!("{insn}: {e}"));
            assert_eq!(decoded, insn);
            assert_eq!(len, bytes.len());
        }
    }

    #[test]
    fn decode_ignores_trailing_bytes() {
        let mut bytes = encode_to_vec(&Instr::Ret);
        bytes.extend_from_slice(&[0xAA; 9]);
        let (insn, len) = decode(&bytes).unwrap();
        assert_eq!((insn, len), (Instr::Ret, 1));
    }

    #[test]
    fn empty_stream() {
        assert_eq!(decode(&[]), Err(DecodeError::Empty));
    }

    #[test]
    fn invalid_opcodes_are_rejected() {
        let assigned: Vec<u8> = samples().iter().map(|i| encode_to_vec(i)[0]).collect();
        let mut invalid_count = 0;
        for opcode in 0..=255u8 {
            if assigned.contains(&opcode) {
                continue;
            }
            invalid_count += 1;
            let buf = [opcode, 0, 0, 0, 0, 0, 0, 0, 0, 0];
            assert_eq!(decode(&buf), Err(DecodeError::InvalidOpcode(opcode)), "{opcode:#x}");
        }
        // The opcode map is deliberately sparse.
        assert!(invalid_count > 180, "only {invalid_count} invalid opcodes");
    }

    #[test]
    fn truncated_instructions_are_reported() {
        for insn in samples() {
            let bytes = encode_to_vec(&insn);
            if bytes.len() < 2 {
                continue;
            }
            for cut in 1..bytes.len() {
                match decode(&bytes[..cut]) {
                    Err(DecodeError::Truncated { needed, have, .. }) => {
                        assert_eq!(needed, bytes.len());
                        assert_eq!(have, cut);
                    }
                    other => panic!("{insn} cut at {cut}: expected truncation, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn invalid_condition_codes_are_rejected() {
        // jcc with cc = 10 (first unassigned value)
        assert_eq!(
            decode(&[crate::opcode::JCC, 10, 0, 0, 0, 0]),
            Err(DecodeError::InvalidCond(10))
        );
        // setcc with cc nibble = 0xF
        assert_eq!(decode(&[crate::opcode::SETCC, 0x1F]), Err(DecodeError::InvalidCond(0xF)));
    }

    #[test]
    fn redundant_single_register_encodings_decode_canonically() {
        // `push r3` with a nonzero high nibble decodes the same as canonical.
        let canonical = decode(&[crate::opcode::PUSH, 0x03]).unwrap();
        let redundant = decode(&[crate::opcode::PUSH, 0xF3]).unwrap();
        assert_eq!(canonical.0, redundant.0);
    }

    #[test]
    fn error_display_is_informative() {
        let e = DecodeError::Truncated { opcode: 0x06, needed: 10, have: 3 };
        let text = e.to_string();
        assert!(text.contains("0x06") && text.contains("10") && text.contains('3'), "{text}");
    }
}
