//! Condition codes for conditional jumps and `set<cc>`.

use crate::Flags;
use std::fmt;
use std::str::FromStr;

/// A condition code, evaluated against the current [`Flags`].
///
/// The signed codes use the standard flag identities (`lt ⇔ N≠V`, …); the
/// unsigned codes follow the x86 naming (`b` = below = carry/borrow set) so
/// that the paper's hardened patterns read identically.
///
/// # Example
///
/// ```
/// use rr_isa::{Cond, Flags};
///
/// let f = Flags::from_sub(3, 7);
/// assert!(Cond::Lt.eval(f));
/// assert!(Cond::Ne.eval(f));
/// assert!(!Cond::Lt.negate().eval(f));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Equal (`Z`).
    Eq = 0,
    /// Not equal (`!Z`).
    Ne = 1,
    /// Signed less-than (`N != V`).
    Lt = 2,
    /// Signed less-or-equal (`Z || N != V`).
    Le = 3,
    /// Signed greater-than (`!Z && N == V`).
    Gt = 4,
    /// Signed greater-or-equal (`N == V`).
    Ge = 5,
    /// Unsigned below (`C`).
    B = 6,
    /// Unsigned below-or-equal (`C || Z`).
    Be = 7,
    /// Unsigned above (`!C && !Z`).
    A = 8,
    /// Unsigned above-or-equal (`!C`).
    Ae = 9,
}

impl Cond {
    /// All condition codes in encoding order.
    pub const ALL: [Cond; 10] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Lt,
        Cond::Le,
        Cond::Gt,
        Cond::Ge,
        Cond::B,
        Cond::Be,
        Cond::A,
        Cond::Ae,
    ];

    /// Decodes a condition from its 4-bit encoding, if valid.
    pub fn from_code(code: u8) -> Option<Cond> {
        Self::ALL.get(usize::from(code)).copied()
    }

    /// The condition's 4-bit encoding.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Evaluates the condition against `flags`.
    pub fn eval(self, flags: Flags) -> bool {
        let Flags { z, n, c, v } = flags;
        match self {
            Cond::Eq => z,
            Cond::Ne => !z,
            Cond::Lt => n != v,
            Cond::Le => z || n != v,
            Cond::Gt => !z && n == v,
            Cond::Ge => n == v,
            Cond::B => c,
            Cond::Be => c || z,
            Cond::A => !c && !z,
            Cond::Ae => !c,
        }
    }

    /// The logically opposite condition (`eq` ↔ `ne`, `lt` ↔ `ge`, …).
    ///
    /// For every flag state exactly one of `self` and `self.negate()` holds,
    /// which the conditional-branch hardening pass depends on.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::B => Cond::Ae,
            Cond::Ae => Cond::B,
            Cond::Be => Cond::A,
            Cond::A => Cond::Be,
        }
    }

    /// The mnemonic suffix (`"eq"`, `"ne"`, …) used in `jeq`, `setlt`, ….
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
            Cond::B => "b",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::Ae => "ae",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Error returned when parsing a condition mnemonic fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCondError {
    text: String,
}

impl fmt::Display for ParseCondError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid condition code `{}`", self.text)
    }
}

impl std::error::Error for ParseCondError {}

impl FromStr for Cond {
    type Err = ParseCondError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Cond::ALL
            .into_iter()
            .find(|c| c.mnemonic() == s)
            .ok_or_else(|| ParseCondError { text: s.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_flag_states() -> impl Iterator<Item = Flags> {
        (0..16u64).map(Flags::from_bits)
    }

    #[test]
    fn code_round_trip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_code(c.code()), Some(c));
        }
        for bad in 10..16 {
            assert_eq!(Cond::from_code(bad), None);
        }
    }

    #[test]
    fn negate_is_involutive_and_exclusive() {
        for c in Cond::ALL {
            assert_eq!(c.negate().negate(), c);
            for f in all_flag_states() {
                assert_ne!(c.eval(f), c.negate().eval(f), "{c} vs {} on {f}", c.negate());
            }
        }
    }

    #[test]
    fn eval_matches_integer_comparisons() {
        let values: [u64; 6] = [0, 1, 7, u64::MAX, i64::MIN as u64, i64::MAX as u64];
        for &a in &values {
            for &b in &values {
                let f = Flags::from_sub(a, b);
                assert_eq!(Cond::Eq.eval(f), a == b);
                assert_eq!(Cond::Ne.eval(f), a != b);
                assert_eq!(Cond::Lt.eval(f), (a as i64) < (b as i64));
                assert_eq!(Cond::Le.eval(f), (a as i64) <= (b as i64));
                assert_eq!(Cond::Gt.eval(f), (a as i64) > (b as i64));
                assert_eq!(Cond::Ge.eval(f), (a as i64) >= (b as i64));
                assert_eq!(Cond::B.eval(f), a < b);
                assert_eq!(Cond::Be.eval(f), a <= b);
                assert_eq!(Cond::A.eval(f), a > b);
                assert_eq!(Cond::Ae.eval(f), a >= b);
            }
        }
    }

    #[test]
    fn parse_round_trip() {
        for c in Cond::ALL {
            assert_eq!(c.mnemonic().parse::<Cond>().unwrap(), c);
        }
        assert!("xx".parse::<Cond>().is_err());
    }
}
