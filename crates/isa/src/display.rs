//! Textual (assembly) rendering of instructions.

use crate::insn::Instr;
use std::fmt;

fn mem(f: &mut fmt::Formatter<'_>, base: crate::Reg, disp: i32) -> fmt::Result {
    if disp == 0 {
        write!(f, "[{base}]")
    } else {
        write!(f, "[{base}{disp:+}]")
    }
}

/// Renders the instruction in RRVM assembly syntax.
///
/// Control-flow displacements print as `.%+d` (relative to the next
/// instruction); the assembler and disassembler use symbolic labels
/// instead, so this numeric form is primarily for debugging and traces.
impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
            Instr::Ret => write!(f, "ret"),
            Instr::PushF => write!(f, "pushf"),
            Instr::PopF => write!(f, "popf"),
            Instr::MovRR { rd, rs } => write!(f, "mov {rd}, {rs}"),
            Instr::MovRI { rd, imm } => {
                if imm > 9 {
                    write!(f, "mov {rd}, {imm:#x}")
                } else {
                    write!(f, "mov {rd}, {imm}")
                }
            }
            Instr::AluRR { op, rd, rs } => write!(f, "{op} {rd}, {rs}"),
            Instr::AluRI { op, rd, imm } => write!(f, "{op} {rd}, {imm}"),
            Instr::ShiftRI { op, rd, amt } => write!(f, "{op} {rd}, {amt}"),
            Instr::Not { rd } => write!(f, "not {rd}"),
            Instr::Neg { rd } => write!(f, "neg {rd}"),
            Instr::CmpRR { rs1, rs2 } => write!(f, "cmp {rs1}, {rs2}"),
            Instr::CmpRI { rs1, imm } => write!(f, "cmp {rs1}, {imm}"),
            Instr::CmpRM { rs1, base, disp } => {
                write!(f, "cmp {rs1}, ")?;
                mem(f, base, disp)
            }
            Instr::TestRR { rs1, rs2 } => write!(f, "test {rs1}, {rs2}"),
            Instr::Load { rd, base, disp } => {
                write!(f, "load {rd}, ")?;
                mem(f, base, disp)
            }
            Instr::Store { base, disp, rs } => {
                write!(f, "store ")?;
                mem(f, base, disp)?;
                write!(f, ", {rs}")
            }
            Instr::LoadB { rd, base, disp } => {
                write!(f, "loadb {rd}, ")?;
                mem(f, base, disp)
            }
            Instr::StoreB { base, disp, rs } => {
                write!(f, "storeb ")?;
                mem(f, base, disp)?;
                write!(f, ", {rs}")
            }
            Instr::Lea { rd, base, disp } => {
                write!(f, "lea {rd}, ")?;
                mem(f, base, disp)
            }
            Instr::Push { rs } => write!(f, "push {rs}"),
            Instr::Pop { rd } => write!(f, "pop {rd}"),
            Instr::Jmp { rel } => write!(f, "jmp .{rel:+}"),
            Instr::Jcc { cc, rel } => write!(f, "j{cc} .{rel:+}"),
            Instr::Call { rel } => write!(f, "call .{rel:+}"),
            Instr::CallR { rs } => write!(f, "callr {rs}"),
            Instr::JmpR { rs } => write!(f, "jmpr {rs}"),
            Instr::SetCc { rd, cc } => write!(f, "set{cc} {rd}"),
            Instr::Svc { num } => write!(f, "svc {num}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::AluOp;
    use crate::{Cond, Reg};

    #[test]
    fn renders_core_syntax() {
        let cases: [(Instr, &str); 10] = [
            (Instr::MovRR { rd: Reg::R1, rs: Reg::R2 }, "mov r1, r2"),
            (Instr::MovRI { rd: Reg::R0, imm: 7 }, "mov r0, 7"),
            (Instr::MovRI { rd: Reg::R0, imm: 255 }, "mov r0, 0xff"),
            (Instr::Load { rd: Reg::R3, base: Reg::SP, disp: 8 }, "load r3, [sp+8]"),
            (Instr::Store { base: Reg::R2, disp: -4, rs: Reg::R1 }, "store [r2-4], r1"),
            (Instr::Load { rd: Reg::R3, base: Reg::R4, disp: 0 }, "load r3, [r4]"),
            (Instr::AluRI { op: AluOp::Add, rd: Reg::SP, imm: -16 }, "add sp, -16"),
            (Instr::Jcc { cc: Cond::Ne, rel: 12 }, "jne .+12"),
            (Instr::SetCc { rd: Reg::R6, cc: Cond::Eq }, "seteq r6"),
            (Instr::CmpRM { rs1: Reg::R1, base: Reg::R2, disp: 4 }, "cmp r1, [r2+4]"),
        ];
        for (insn, expected) in cases {
            assert_eq!(insn.to_string(), expected);
        }
    }

    #[test]
    fn every_instruction_renders_nonempty() {
        // Debuggability: Display is never empty (C-DEBUG-NONEMPTY analogue).
        for insn in [
            Instr::Nop,
            Instr::Halt,
            Instr::Ret,
            Instr::PushF,
            Instr::PopF,
            Instr::Svc { num: 0 },
            Instr::CallR { rs: Reg::R1 },
            Instr::JmpR { rs: Reg::R1 },
        ] {
            assert!(!insn.to_string().is_empty());
        }
    }
}
