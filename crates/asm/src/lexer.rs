//! Line-oriented tokenizer for RRVM assembly.

use crate::error::{AsmError, AsmErrorKind};

/// One token within a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier: mnemonic, label, symbol, register name, or directive
    /// (directives keep their leading dot; local labels too).
    Ident(String),
    /// Integer literal (decimal, `0x…` hex, or `'c'` character).
    Int(i64),
    /// String literal with escapes resolved.
    Str(Vec<u8>),
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `+`
    Plus,
    /// `-`
    Minus,
}

/// Splits a source line into tokens, stripping comments (`;` or `#`).
///
/// # Errors
///
/// Returns an [`AsmError`] for malformed numbers, unterminated strings, or
/// unexpected characters.
pub fn tokenize_line(line: &str, line_no: usize) -> Result<Vec<Token>, AsmError> {
    let bad = |msg: String| AsmError::new(line_no, AsmErrorKind::BadToken(msg));
    let mut tokens = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ';' | '#' => break,
            ' ' | '\t' | '\r' => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ':' => {
                tokens.push(Token::Colon);
                i += 1;
            }
            '[' => {
                tokens.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                tokens.push(Token::RBracket);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '"' => {
                let (s, consumed) = scan_string(&line[i..], line_no)?;
                tokens.push(Token::Str(s));
                i += consumed;
            }
            '\'' => {
                let (value, consumed) = scan_char(&line[i..], line_no)?;
                tokens.push(Token::Int(value));
                i += consumed;
            }
            '0'..='9' => {
                let start = i;
                let is_hex = line[i..].starts_with("0x") || line[i..].starts_with("0X");
                if is_hex {
                    i += 2;
                }
                while i < bytes.len() && (bytes[i] as char).is_ascii_alphanumeric() {
                    i += 1;
                }
                let text = &line[start..i];
                let value = if is_hex {
                    i64::from_str_radix(&text[2..], 16)
                        .or_else(|_| u64::from_str_radix(&text[2..], 16).map(|v| v as i64))
                } else {
                    text.parse::<i64>()
                }
                .map_err(|_| bad(format!("invalid number `{text}`")))?;
                tokens.push(Token::Int(value));
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '.' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(line[start..i].to_owned()));
            }
            other => return Err(bad(format!("unexpected character `{other}`"))),
        }
    }
    Ok(tokens)
}

fn unescape(c: char, line_no: usize) -> Result<u8, AsmError> {
    Ok(match c {
        'n' => b'\n',
        't' => b'\t',
        'r' => b'\r',
        '0' => 0,
        '\\' => b'\\',
        '"' => b'"',
        '\'' => b'\'',
        other => {
            return Err(AsmError::new(
                line_no,
                AsmErrorKind::BadToken(format!("unknown escape `\\{other}`")),
            ))
        }
    })
}

fn scan_string(text: &str, line_no: usize) -> Result<(Vec<u8>, usize), AsmError> {
    debug_assert!(text.starts_with('"'));
    let mut out = Vec::new();
    let mut chars = text.char_indices().skip(1);
    while let Some((pos, c)) = chars.next() {
        match c {
            '"' => return Ok((out, pos + 1)),
            '\\' => {
                let (_, esc) = chars.next().ok_or_else(|| {
                    AsmError::new(line_no, AsmErrorKind::BadToken("dangling escape".into()))
                })?;
                out.push(unescape(esc, line_no)?);
            }
            c if c.is_ascii() => out.push(c as u8),
            other => {
                return Err(AsmError::new(
                    line_no,
                    AsmErrorKind::BadToken(format!("non-ASCII character `{other}` in string")),
                ))
            }
        }
    }
    Err(AsmError::new(line_no, AsmErrorKind::BadToken("unterminated string".into())))
}

fn scan_char(text: &str, line_no: usize) -> Result<(i64, usize), AsmError> {
    debug_assert!(text.starts_with('\''));
    let bad = |msg: &str| AsmError::new(line_no, AsmErrorKind::BadToken(msg.into()));
    let rest: Vec<char> = text.chars().skip(1).take(3).collect();
    match rest.as_slice() {
        ['\\', esc, '\''] => Ok((i64::from(unescape(*esc, line_no)?), 4)),
        [c, '\'', ..] if c.is_ascii() && *c != '\\' => Ok((*c as i64, 3)),
        _ => Err(bad("malformed character literal")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_instruction_line() {
        let tokens = tokenize_line("    load r3, [r2+8]  ; comment", 1).unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("load".into()),
                Token::Ident("r3".into()),
                Token::Comma,
                Token::LBracket,
                Token::Ident("r2".into()),
                Token::Plus,
                Token::Int(8),
                Token::RBracket,
            ]
        );
    }

    #[test]
    fn numbers_dec_hex_char() {
        assert_eq!(tokenize_line("42", 1).unwrap(), vec![Token::Int(42)]);
        assert_eq!(tokenize_line("0xff", 1).unwrap(), vec![Token::Int(255)]);
        assert_eq!(tokenize_line("'A'", 1).unwrap(), vec![Token::Int(65)]);
        assert_eq!(tokenize_line("'\\n'", 1).unwrap(), vec![Token::Int(10)]);
        // Negative numbers are Minus + Int at the token level.
        assert_eq!(tokenize_line("-5", 1).unwrap(), vec![Token::Minus, Token::Int(5)]);
        // 64-bit hex constants wrap into i64 without error.
        assert_eq!(tokenize_line("0xffffffffffffffff", 1).unwrap(), vec![Token::Int(-1)]);
    }

    #[test]
    fn strings_with_escapes() {
        let tokens = tokenize_line(r#".asciiz "hi\n\0""#, 1).unwrap();
        assert_eq!(tokens, vec![Token::Ident(".asciiz".into()), Token::Str(b"hi\n\0".to_vec())]);
    }

    #[test]
    fn comments_both_styles() {
        assert_eq!(tokenize_line("; whole line", 3).unwrap(), vec![]);
        assert_eq!(tokenize_line("nop # trailing", 3).unwrap(), vec![Token::Ident("nop".into())]);
        // A ';' inside a string is not a comment.
        let tokens = tokenize_line(r#".ascii "a;b""#, 1).unwrap();
        assert_eq!(tokens[1], Token::Str(b"a;b".to_vec()));
    }

    #[test]
    fn labels_and_directives() {
        let tokens = tokenize_line(".L1: jmp .L1", 1).unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident(".L1".into()),
                Token::Colon,
                Token::Ident("jmp".into()),
                Token::Ident(".L1".into()),
            ]
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        for bad in ["\"unterminated", "'x", "12zz3", "@", "\"bad\\q\""] {
            let err = tokenize_line(bad, 9).unwrap_err();
            assert_eq!(err.line, 9, "{bad}");
        }
        // `12zz3` parses as an invalid number rather than splitting.
        assert!(matches!(tokenize_line("12zz3", 1).unwrap_err().kind, AsmErrorKind::BadToken(_)));
    }
}
