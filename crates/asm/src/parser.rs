//! Parser: token lines → assembly statements.

use crate::error::{AsmError, AsmErrorKind};
use crate::lexer::{tokenize_line, Token};
use rr_isa::{AluOp, Cond, Instr, Reg, ShiftOp};
use rr_obj::SectionKind;

/// A constant or symbolic value (`42`, `label`, `label+8`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A plain integer.
    Int(i64),
    /// A symbol reference plus constant addend.
    Sym {
        /// Referenced symbol name.
        name: String,
        /// Constant offset added to the symbol's address.
        addend: i64,
    },
}

/// A `[base+disp]` memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOperand {
    /// Base register.
    pub base: Reg,
    /// Signed displacement.
    pub disp: i32,
}

/// One parsed statement with pending symbol references still symbolic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// `name:` — define a label at the current position.
    Label(String),
    /// `.global name` — mark a symbol globally visible.
    Global(String),
    /// `.text` / `.rodata` / `.data` / `.bss`.
    Section(SectionKind),
    /// Raw bytes from `.byte`, `.ascii`, `.asciiz`.
    Bytes(Vec<u8>),
    /// 64-bit words from `.quad`; entries may be symbolic.
    Quads(Vec<Expr>),
    /// `.space n` — n zero bytes.
    Space(u64),
    /// `.align n` — pad to an n-byte boundary.
    Align(u64),
    /// A fully concrete instruction.
    Instr(Instr),
    /// `jmp`/`call`/`j<cc>` to a symbol (resolved by a Rel32 relocation).
    Branch {
        /// `None` for `jmp`/`call`; `Some(cc)` for conditional jumps.
        cond: Option<Cond>,
        /// Whether this is a `call` (pushes a return address).
        is_call: bool,
        /// Branch target.
        target: Expr,
    },
    /// `mov rd, symbol` — address materialization (Abs64 relocation).
    MovSym {
        /// Destination register.
        rd: Reg,
        /// Referenced symbol.
        name: String,
        /// Constant offset.
        addend: i64,
    },
}

/// A [`Statement`] tagged with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// 1-based source line.
    pub line: usize,
    /// The parsed statement.
    pub stmt: Statement,
}

/// Parses a full source text into items.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered, with its source line.
pub fn parse(source: &str) -> Result<Vec<Item>, AsmError> {
    let mut items = Vec::new();
    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let tokens = tokenize_line(raw_line, line_no)?;
        let mut cursor = Cursor { tokens: &tokens, pos: 0, line: line_no };
        // Leading labels (possibly several).
        while cursor.peek_label() {
            let name = cursor.ident()?;
            cursor.expect(&Token::Colon)?;
            items.push(Item { line: line_no, stmt: Statement::Label(name) });
        }
        if cursor.at_end() {
            continue;
        }
        let head = cursor.ident()?;
        let stmt = if let Some(directive) = head.strip_prefix('.') {
            parse_directive(directive, &mut cursor)?
        } else {
            parse_instruction(&head, &mut cursor)?
        };
        cursor.expect_end()?;
        items.push(Item { line: line_no, stmt });
    }
    Ok(items)
}

struct Cursor<'a> {
    tokens: &'a [Token],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn error(&self, kind: AsmErrorKind) -> AsmError {
        AsmError::new(self.line, kind)
    }

    fn bad_operands(&self, msg: impl Into<String>) -> AsmError {
        self.error(AsmErrorKind::BadOperands(msg.into()))
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_label(&self) -> bool {
        matches!(
            (self.tokens.get(self.pos), self.tokens.get(self.pos + 1)),
            (Some(Token::Ident(_)), Some(Token::Colon))
        )
    }

    fn ident(&mut self) -> Result<String, AsmError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s.clone()),
            other => Err(self.bad_operands(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect(&mut self, token: &Token) -> Result<(), AsmError> {
        match self.next() {
            Some(t) if t == token => Ok(()),
            other => Err(self.bad_operands(format!("expected {token:?}, found {other:?}"))),
        }
    }

    fn expect_end(&mut self) -> Result<(), AsmError> {
        if self.at_end() {
            Ok(())
        } else {
            Err(self.bad_operands(format!("trailing tokens starting at {:?}", self.peek())))
        }
    }

    fn comma(&mut self) -> Result<(), AsmError> {
        self.expect(&Token::Comma)
    }

    /// A possibly negated integer literal.
    fn int(&mut self) -> Result<i64, AsmError> {
        let negative = matches!(self.peek(), Some(Token::Minus));
        if negative {
            self.pos += 1;
        }
        match self.next() {
            Some(Token::Int(v)) => Ok(if negative { v.wrapping_neg() } else { *v }),
            other => Err(self.bad_operands(format!("expected integer, found {other:?}"))),
        }
    }

    fn reg(&mut self) -> Result<Reg, AsmError> {
        let name = self.ident()?;
        name.parse::<Reg>()
            .map_err(|_| self.bad_operands(format!("expected register, found `{name}`")))
    }

    /// `[reg]`, `[reg+disp]`, or `[reg-disp]`.
    fn mem(&mut self) -> Result<MemOperand, AsmError> {
        self.expect(&Token::LBracket)?;
        let base = self.reg()?;
        let disp = match self.peek() {
            Some(Token::RBracket) => 0i64,
            Some(Token::Plus) => {
                self.pos += 1;
                self.int()?
            }
            Some(Token::Minus) => {
                self.pos += 1;
                -self.int()?
            }
            other => return Err(self.bad_operands(format!("expected ] or ±disp, found {other:?}"))),
        };
        self.expect(&Token::RBracket)?;
        let disp =
            i32::try_from(disp).map_err(|_| self.error(AsmErrorKind::ImmediateOverflow(disp)))?;
        Ok(MemOperand { base, disp })
    }

    /// Integer or `symbol(+addend)` expression.
    fn expr(&mut self) -> Result<Expr, AsmError> {
        match self.peek() {
            Some(Token::Ident(name)) if name.parse::<Reg>().is_err() => {
                let name = name.clone();
                self.pos += 1;
                let addend = match self.peek() {
                    Some(Token::Plus) => {
                        self.pos += 1;
                        self.int()?
                    }
                    Some(Token::Minus) => {
                        self.pos += 1;
                        -self.int()?
                    }
                    _ => 0,
                };
                Ok(Expr::Sym { name, addend })
            }
            _ => Ok(Expr::Int(self.int()?)),
        }
    }
}

fn parse_directive(directive: &str, cursor: &mut Cursor<'_>) -> Result<Statement, AsmError> {
    match directive {
        "text" => Ok(Statement::Section(SectionKind::Text)),
        "rodata" => Ok(Statement::Section(SectionKind::Rodata)),
        "data" => Ok(Statement::Section(SectionKind::Data)),
        "bss" => Ok(Statement::Section(SectionKind::Bss)),
        "global" => Ok(Statement::Global(cursor.ident()?)),
        "byte" => {
            let mut bytes = Vec::new();
            loop {
                let v = cursor.int()?;
                let b = u8::try_from(v)
                    .or_else(|_| i8::try_from(v).map(|s| s as u8))
                    .map_err(|_| cursor.error(AsmErrorKind::ImmediateOverflow(v)))?;
                bytes.push(b);
                if cursor.at_end() {
                    break;
                }
                cursor.comma()?;
            }
            Ok(Statement::Bytes(bytes))
        }
        "quad" => {
            let mut quads = Vec::new();
            loop {
                quads.push(cursor.expr()?);
                if cursor.at_end() {
                    break;
                }
                cursor.comma()?;
            }
            Ok(Statement::Quads(quads))
        }
        "ascii" | "asciiz" => {
            let mut bytes = match cursor.next() {
                Some(Token::Str(s)) => s.clone(),
                other => {
                    return Err(cursor.bad_operands(format!("expected string, found {other:?}")))
                }
            };
            if directive == "asciiz" {
                bytes.push(0);
            }
            Ok(Statement::Bytes(bytes))
        }
        "space" => {
            let n = cursor.int()?;
            u64::try_from(n)
                .map(Statement::Space)
                .map_err(|_| cursor.error(AsmErrorKind::ImmediateOverflow(n)))
        }
        "align" => {
            let n = cursor.int()?;
            if n <= 0 || n & (n - 1) != 0 {
                return Err(cursor.error(AsmErrorKind::ImmediateOverflow(n)));
            }
            Ok(Statement::Align(n as u64))
        }
        other => Err(cursor.error(AsmErrorKind::UnknownDirective(format!(".{other}")))),
    }
}

/// Resolves condition mnemonics including the x86-flavoured aliases used in
/// the paper's listings (`je`, `jz`, `jl`, …).
fn cond_from_suffix(suffix: &str) -> Option<Cond> {
    Some(match suffix {
        "eq" | "e" | "z" => Cond::Eq,
        "ne" | "nz" => Cond::Ne,
        "lt" | "l" => Cond::Lt,
        "le" => Cond::Le,
        "gt" | "g" => Cond::Gt,
        "ge" => Cond::Ge,
        "b" => Cond::B,
        "be" => Cond::Be,
        "a" => Cond::A,
        "ae" => Cond::Ae,
        _ => return None,
    })
}

fn alu_from_mnemonic(m: &str) -> Option<AluOp> {
    Some(match m {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "mul" => AluOp::Mul,
        "udiv" => AluOp::Udiv,
        _ => return None,
    })
}

fn shift_from_mnemonic(m: &str) -> Option<ShiftOp> {
    Some(match m {
        "shl" => ShiftOp::Shl,
        "shr" => ShiftOp::Shr,
        "sar" => ShiftOp::Sar,
        _ => return None,
    })
}

fn fit_i32(cursor: &Cursor<'_>, v: i64) -> Result<i32, AsmError> {
    i32::try_from(v).map_err(|_| cursor.error(AsmErrorKind::ImmediateOverflow(v)))
}

fn parse_instruction(mnemonic: &str, cursor: &mut Cursor<'_>) -> Result<Statement, AsmError> {
    // Fixed mnemonics first.
    match mnemonic {
        "nop" => return Ok(Statement::Instr(Instr::Nop)),
        "halt" => return Ok(Statement::Instr(Instr::Halt)),
        "ret" => return Ok(Statement::Instr(Instr::Ret)),
        "pushf" => return Ok(Statement::Instr(Instr::PushF)),
        "popf" => return Ok(Statement::Instr(Instr::PopF)),
        "mov" => {
            let rd = cursor.reg()?;
            cursor.comma()?;
            return match cursor.peek() {
                Some(Token::Ident(name)) if name.parse::<Reg>().is_ok() => {
                    let rs = cursor.reg()?;
                    Ok(Statement::Instr(Instr::MovRR { rd, rs }))
                }
                Some(Token::Ident(_)) => match cursor.expr()? {
                    Expr::Sym { name, addend } => Ok(Statement::MovSym { rd, name, addend }),
                    Expr::Int(_) => unreachable!("ident peeked"),
                },
                _ => {
                    let imm = cursor.int()? as u64;
                    Ok(Statement::Instr(Instr::MovRI { rd, imm }))
                }
            };
        }
        "not" => {
            let rd = cursor.reg()?;
            return Ok(Statement::Instr(Instr::Not { rd }));
        }
        "neg" => {
            let rd = cursor.reg()?;
            return Ok(Statement::Instr(Instr::Neg { rd }));
        }
        "cmp" => {
            let rs1 = cursor.reg()?;
            cursor.comma()?;
            return match cursor.peek() {
                Some(Token::LBracket) => {
                    let m = cursor.mem()?;
                    Ok(Statement::Instr(Instr::CmpRM { rs1, base: m.base, disp: m.disp }))
                }
                Some(Token::Ident(_)) => {
                    let rs2 = cursor.reg()?;
                    Ok(Statement::Instr(Instr::CmpRR { rs1, rs2 }))
                }
                _ => {
                    let v = cursor.int()?;
                    let imm = fit_i32(cursor, v)?;
                    Ok(Statement::Instr(Instr::CmpRI { rs1, imm }))
                }
            };
        }
        "test" => {
            let rs1 = cursor.reg()?;
            cursor.comma()?;
            let rs2 = cursor.reg()?;
            return Ok(Statement::Instr(Instr::TestRR { rs1, rs2 }));
        }
        "load" | "loadb" | "lea" => {
            let rd = cursor.reg()?;
            cursor.comma()?;
            let m = cursor.mem()?;
            let insn = match mnemonic {
                "load" => Instr::Load { rd, base: m.base, disp: m.disp },
                "loadb" => Instr::LoadB { rd, base: m.base, disp: m.disp },
                _ => Instr::Lea { rd, base: m.base, disp: m.disp },
            };
            return Ok(Statement::Instr(insn));
        }
        "store" | "storeb" => {
            let m = cursor.mem()?;
            cursor.comma()?;
            let rs = cursor.reg()?;
            let insn = if mnemonic == "store" {
                Instr::Store { base: m.base, disp: m.disp, rs }
            } else {
                Instr::StoreB { base: m.base, disp: m.disp, rs }
            };
            return Ok(Statement::Instr(insn));
        }
        "push" => {
            let rs = cursor.reg()?;
            return Ok(Statement::Instr(Instr::Push { rs }));
        }
        "pop" => {
            let rd = cursor.reg()?;
            return Ok(Statement::Instr(Instr::Pop { rd }));
        }
        "jmp" | "call" => {
            let target = cursor.expr()?;
            return Ok(Statement::Branch { cond: None, is_call: mnemonic == "call", target });
        }
        "callr" => {
            let rs = cursor.reg()?;
            return Ok(Statement::Instr(Instr::CallR { rs }));
        }
        "jmpr" => {
            let rs = cursor.reg()?;
            return Ok(Statement::Instr(Instr::JmpR { rs }));
        }
        "svc" => {
            let v = cursor.int()?;
            let num =
                u8::try_from(v).map_err(|_| cursor.error(AsmErrorKind::ImmediateOverflow(v)))?;
            return Ok(Statement::Instr(Instr::Svc { num }));
        }
        _ => {}
    }

    if let Some(op) = alu_from_mnemonic(mnemonic) {
        let rd = cursor.reg()?;
        cursor.comma()?;
        return match cursor.peek() {
            Some(Token::Ident(_)) => {
                let rs = cursor.reg()?;
                Ok(Statement::Instr(Instr::AluRR { op, rd, rs }))
            }
            _ => {
                let v = cursor.int()?;
                let imm = fit_i32(cursor, v)?;
                Ok(Statement::Instr(Instr::AluRI { op, rd, imm }))
            }
        };
    }

    if let Some(op) = shift_from_mnemonic(mnemonic) {
        let rd = cursor.reg()?;
        cursor.comma()?;
        let v = cursor.int()?;
        let amt = u8::try_from(v).map_err(|_| cursor.error(AsmErrorKind::ImmediateOverflow(v)))?;
        return Ok(Statement::Instr(Instr::ShiftRI { op, rd, amt }));
    }

    if let Some(suffix) = mnemonic.strip_prefix('j') {
        if let Some(cc) = cond_from_suffix(suffix) {
            let target = cursor.expr()?;
            return Ok(Statement::Branch { cond: Some(cc), is_call: false, target });
        }
    }

    if let Some(suffix) = mnemonic.strip_prefix("set") {
        if let Some(cc) = cond_from_suffix(suffix) {
            let rd = cursor.reg()?;
            return Ok(Statement::Instr(Instr::SetCc { rd, cc }));
        }
    }

    Err(cursor.error(AsmErrorKind::UnknownMnemonic(mnemonic.to_owned())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(src: &str) -> Statement {
        let items = parse(src).unwrap();
        assert_eq!(items.len(), 1, "{items:?}");
        items[0].stmt.clone()
    }

    #[test]
    fn parses_moves() {
        assert_eq!(one("mov r1, r2"), Statement::Instr(Instr::MovRR { rd: Reg::R1, rs: Reg::R2 }));
        assert_eq!(
            one("mov r1, -1"),
            Statement::Instr(Instr::MovRI { rd: Reg::R1, imm: u64::MAX })
        );
        assert_eq!(
            one("mov r1, buffer+8"),
            Statement::MovSym { rd: Reg::R1, name: "buffer".into(), addend: 8 }
        );
    }

    #[test]
    fn parses_memory_forms() {
        assert_eq!(
            one("load r1, [sp+16]"),
            Statement::Instr(Instr::Load { rd: Reg::R1, base: Reg::SP, disp: 16 })
        );
        assert_eq!(
            one("store [r2-8], r3"),
            Statement::Instr(Instr::Store { base: Reg::R2, disp: -8, rs: Reg::R3 })
        );
        assert_eq!(
            one("cmp r1, [r2+4]"),
            Statement::Instr(Instr::CmpRM { rs1: Reg::R1, base: Reg::R2, disp: 4 })
        );
    }

    #[test]
    fn parses_branches_with_aliases() {
        assert_eq!(
            one("je happy"),
            Statement::Branch {
                cond: Some(Cond::Eq),
                is_call: false,
                target: Expr::Sym { name: "happy".into(), addend: 0 }
            }
        );
        assert_eq!(
            one("jnz .loop"),
            Statement::Branch {
                cond: Some(Cond::Ne),
                is_call: false,
                target: Expr::Sym { name: ".loop".into(), addend: 0 }
            }
        );
        assert_eq!(
            one("call fault_handler"),
            Statement::Branch {
                cond: None,
                is_call: true,
                target: Expr::Sym { name: "fault_handler".into(), addend: 0 }
            }
        );
    }

    #[test]
    fn parses_labels_and_sections() {
        let items = parse("main:\n    .data\nx: y: .quad 1, main\n").unwrap();
        let stmts: Vec<_> = items.into_iter().map(|i| i.stmt).collect();
        assert_eq!(
            stmts,
            vec![
                Statement::Label("main".into()),
                Statement::Section(SectionKind::Data),
                Statement::Label("x".into()),
                Statement::Label("y".into()),
                Statement::Quads(vec![Expr::Int(1), Expr::Sym { name: "main".into(), addend: 0 }]),
            ]
        );
    }

    #[test]
    fn parses_setcc() {
        assert_eq!(one("setl r6"), Statement::Instr(Instr::SetCc { rd: Reg::R6, cc: Cond::Lt }));
    }

    #[test]
    fn rejects_unknowns_with_line_numbers() {
        let err = parse("nop\nfrobnicate r1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, AsmErrorKind::UnknownMnemonic(_)));

        let err = parse("    .sektion\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::UnknownDirective(_)));
    }

    #[test]
    fn rejects_bad_operands() {
        for bad in [
            "mov r1",
            "mov 5, r1",
            "load r1, r2",
            "store r1, [r2]",
            "cmp r1, 0x1_0000_0000_0",
            "svc 300",
            "shl r1, 256",
            "jmp",
            "add r1, r2, r3",
        ] {
            assert!(parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn align_must_be_power_of_two() {
        assert!(parse(".align 8").is_ok());
        assert!(parse(".align 3").is_err());
        assert!(parse(".align 0").is_err());
    }

    #[test]
    fn byte_accepts_signed_and_unsigned() {
        assert_eq!(one(".byte 255, -1, 0"), Statement::Bytes(vec![255, 255, 0]));
        assert!(parse(".byte 256").is_err());
    }
}
