//! Object emission: statements → relocatable object.

use crate::error::{AsmError, AsmErrorKind};
use crate::parser::{Expr, Item, Statement};
use rr_isa::{encode, Instr, Reg};
use rr_obj::{ObjectFile, RelocKind, Relocation, SectionKind, Symbol, SymbolKind};
use std::collections::HashSet;

/// Assembles parsed items into an [`ObjectFile`].
///
/// Symbol visibility: names marked `.global` anywhere in the unit are
/// emitted as global symbols. Labels beginning with `.` are local *labels*
/// (`SymbolKind::Label`); other labels are functions in `.text` and objects
/// elsewhere.
///
/// # Errors
///
/// Returns an [`AsmError`] for duplicate labels, content invalid for the
/// current section (code outside `.text`, initialized data in `.bss`), or
/// out-of-range values.
pub fn assemble_object(items: &[Item], name: &str) -> Result<ObjectFile, AsmError> {
    let globals: HashSet<&str> = items
        .iter()
        .filter_map(|i| match &i.stmt {
            Statement::Global(n) => Some(n.as_str()),
            _ => None,
        })
        .collect();

    let mut obj = ObjectFile::new(name);
    let mut section = SectionKind::Text;
    let mut seen_labels: HashSet<String> = HashSet::new();

    for item in items {
        let line = item.line;
        let err = |kind| AsmError::new(line, kind);
        match &item.stmt {
            Statement::Global(_) => {}
            Statement::Section(kind) => section = *kind,
            Statement::Label(label) => {
                if !seen_labels.insert(label.clone()) {
                    return Err(err(AsmErrorKind::DuplicateLabel(label.clone())));
                }
                let offset = obj.section(section).size();
                let kind = if label.starts_with('.') {
                    SymbolKind::Label
                } else if section == SectionKind::Text {
                    SymbolKind::Func
                } else {
                    SymbolKind::Object
                };
                let symbol = Symbol {
                    name: label.clone(),
                    section,
                    offset,
                    kind,
                    global: globals.contains(label.as_str()),
                };
                obj.symbols.push(symbol);
            }
            Statement::Bytes(bytes) => {
                if section == SectionKind::Bss {
                    return Err(err(AsmErrorKind::WrongSection("initialized data in .bss".into())));
                }
                obj.section_mut(section).data.extend_from_slice(bytes);
            }
            Statement::Quads(quads) => {
                if section == SectionKind::Bss {
                    return Err(err(AsmErrorKind::WrongSection("initialized data in .bss".into())));
                }
                for expr in quads {
                    let offset = obj.section(section).data.len() as u64;
                    match expr {
                        Expr::Int(v) => {
                            obj.section_mut(section).data.extend_from_slice(&v.to_le_bytes());
                        }
                        Expr::Sym { name, addend } => {
                            obj.section_mut(section).data.extend_from_slice(&[0; 8]);
                            obj.relocs.push(Relocation {
                                section,
                                offset,
                                kind: RelocKind::Abs64,
                                symbol: name.clone(),
                                addend: *addend,
                            });
                        }
                    }
                }
            }
            Statement::Space(n) => {
                if section == SectionKind::Bss {
                    obj.section_mut(section).zero_size += n;
                } else {
                    let n = usize::try_from(*n)
                        .map_err(|_| err(AsmErrorKind::ImmediateOverflow(*n as i64)))?;
                    obj.section_mut(section).data.extend(std::iter::repeat_n(0, n));
                }
            }
            Statement::Align(n) => {
                let size = obj.section(section).size();
                let pad = size.next_multiple_of(*n) - size;
                if section == SectionKind::Bss {
                    obj.section_mut(section).zero_size += pad;
                } else {
                    obj.section_mut(section).data.extend(std::iter::repeat_n(0, pad as usize));
                }
            }
            Statement::Instr(insn) => {
                require_text(section, line)?;
                encode(insn, &mut obj.section_mut(SectionKind::Text).data);
            }
            Statement::Branch { cond, is_call, target } => {
                require_text(section, line)?;
                let data = &mut obj.section_mut(SectionKind::Text).data;
                let offset = data.len() as u64;
                let (insn, field_offset) = match (cond, is_call) {
                    (Some(cc), _) => (Instr::Jcc { cc: *cc, rel: 0 }, 2),
                    (None, true) => (Instr::Call { rel: 0 }, 1),
                    (None, false) => (Instr::Jmp { rel: 0 }, 1),
                };
                match target {
                    Expr::Int(rel) => {
                        let rel = i32::try_from(*rel)
                            .map_err(|_| err(AsmErrorKind::ImmediateOverflow(*rel)))?;
                        encode(&insn.with_rel_target(rel), data);
                    }
                    Expr::Sym { name, addend } => {
                        encode(&insn, data);
                        obj.relocs.push(Relocation {
                            section: SectionKind::Text,
                            offset: offset + field_offset,
                            kind: RelocKind::Rel32,
                            symbol: name.clone(),
                            addend: *addend,
                        });
                    }
                }
            }
            Statement::MovSym { rd, name, addend } => {
                require_text(section, line)?;
                let data = &mut obj.section_mut(SectionKind::Text).data;
                let offset = data.len() as u64;
                encode(&Instr::MovRI { rd: *rd, imm: 0 }, data);
                obj.relocs.push(Relocation {
                    section: SectionKind::Text,
                    offset: offset + 2,
                    kind: RelocKind::Abs64,
                    symbol: name.clone(),
                    addend: *addend,
                });
            }
        }
    }
    let _ = Reg::R0; // anchor the import used only in doc positions
    Ok(obj)
}

fn require_text(section: SectionKind, line: usize) -> Result<(), AsmError> {
    if section == SectionKind::Text {
        Ok(())
    } else {
        Err(AsmError::new(
            line,
            AsmErrorKind::WrongSection(format!("instruction outside .text (in {section})")),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assemble, assemble_and_link};
    use rr_isa::{decode, TEXT_BASE};

    #[test]
    fn emits_code_and_relocations() {
        let obj = assemble(
            "    .text\n\
             main:\n\
                 jmp end\n\
                 call main\n\
             end:\n\
                 halt\n",
        )
        .unwrap();
        assert_eq!(obj.relocs.len(), 2);
        assert_eq!(obj.relocs[0].offset, 1);
        assert_eq!(obj.relocs[1].offset, 6);
        assert_eq!(obj.symbol("end").unwrap().offset, 10);
    }

    #[test]
    fn link_resolves_forward_and_backward() {
        let exe = assemble_and_link(
            "    .global _start\n\
             _start:\n\
                 jmp fwd\n\
             back:\n\
                 halt\n\
             fwd:\n\
                 jmp back\n",
        )
        .unwrap();
        // First insn: jmp fwd (target TEXT_BASE+6): rel = 6+0x1000 - (0x1000+5) = 1
        let (insn, _) = decode(exe.text_bytes()).unwrap();
        assert_eq!(insn, Instr::Jmp { rel: 1 });
        // insn at +6: jmp back: rel = 0x1005 - (0x1006+5) = -6
        let (insn, _) = decode(&exe.text_bytes()[6..]).unwrap();
        assert_eq!(insn, Instr::Jmp { rel: -6 });
        assert_eq!(exe.entry, TEXT_BASE);
    }

    #[test]
    fn mov_symbol_is_abs64() {
        let exe = assemble_and_link(
            "    .global _start\n\
             _start:\n\
                 mov r1, value\n\
                 halt\n\
                 .data\n\
             value:\n\
                 .quad 99\n",
        )
        .unwrap();
        let (insn, _) = decode(exe.text_bytes()).unwrap();
        let value_addr = exe.symbol("value").unwrap().addr;
        assert_eq!(insn, Instr::MovRI { rd: Reg::R1, imm: value_addr });
    }

    #[test]
    fn data_directives_layout() {
        let obj = assemble(
            "    .data\n\
             a:  .byte 1, 2\n\
             b:  .align 8\n\
             c:  .quad 7\n\
                 .space 4\n\
             d:\n",
        )
        .unwrap();
        assert_eq!(obj.symbol("a").unwrap().offset, 0);
        assert_eq!(obj.symbol("b").unwrap().offset, 2);
        assert_eq!(obj.symbol("c").unwrap().offset, 8);
        assert_eq!(obj.symbol("d").unwrap().offset, 20);
        assert_eq!(obj.section(SectionKind::Data).data.len(), 20);
    }

    #[test]
    fn bss_only_takes_space() {
        let obj = assemble("    .bss\nbuf: .space 32\n").unwrap();
        assert_eq!(obj.section(SectionKind::Bss).zero_size, 32);
        assert!(assemble("    .bss\n.byte 1\n").is_err());
        assert!(assemble("    .bss\nnop\n").is_err());
    }

    #[test]
    fn code_outside_text_rejected() {
        let err = assemble("    .data\n    nop\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::WrongSection(_)));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn duplicate_labels_rejected() {
        let err = assemble("x:\nx:\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::DuplicateLabel(_)));
    }

    #[test]
    fn global_marks_visibility() {
        let obj = assemble("    .global main\nmain:\nhelper:\n    ret\n").unwrap();
        assert!(obj.symbol("main").unwrap().global);
        assert!(!obj.symbol("helper").unwrap().global);
        assert_eq!(obj.symbol("main").unwrap().kind, SymbolKind::Func);
    }

    #[test]
    fn local_dot_labels_are_label_kind() {
        let obj = assemble(".L1:\n    jmp .L1\n").unwrap();
        assert_eq!(obj.symbol(".L1").unwrap().kind, SymbolKind::Label);
    }

    #[test]
    fn numeric_branch_targets_are_concrete() {
        let obj = assemble("    jmp 0\n").unwrap();
        assert!(obj.relocs.is_empty());
        let (insn, _) = decode(&obj.section(SectionKind::Text).data).unwrap();
        assert_eq!(insn, Instr::Jmp { rel: 0 });
    }

    #[test]
    fn quad_with_symbol_addend() {
        let exe = assemble_and_link(
            "    .global _start\n\
             _start:\n\
                 halt\n\
                 .data\n\
             table:\n\
                 .quad _start+1\n",
        )
        .unwrap();
        let table = exe.symbol("table").unwrap().addr;
        let bytes = exe.read_bytes(table, 8).unwrap();
        assert_eq!(u64::from_le_bytes(bytes.try_into().unwrap()), TEXT_BASE + 1);
    }
}
