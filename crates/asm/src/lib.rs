//! # rr-asm — the RRVM assembler
//!
//! Translates RRVM assembly text into relocatable [`rr_obj::ObjectFile`]s,
//! and — via [`assemble_and_link`] — directly into runnable
//! [`rr_obj::Executable`]s. The *reassembleable disassembly* rewriting
//! scheme of the paper depends on this crate twice: once to build the
//! original binary and once to reassemble the patched assembly emitted by
//! `rr-disasm`/`rr-patch`.
//!
//! ## Syntax overview
//!
//! ```text
//! ; comment (also #)
//!     .text
//!     .global _start
//! _start:
//!     mov r1, 0x2a        ; 64-bit immediate
//!     mov r2, message     ; symbol address (Abs64 relocation)
//!     load r3, [r2+8]
//!     cmp r1, r3
//!     je .ok              ; labels starting with '.' are local
//!     call fail
//! .ok:
//!     svc 0
//!     .rodata
//! message:
//!     .asciiz "hello"
//!     .quad 1, 2, _start  ; words may reference symbols
//!     .data
//! counter:
//!     .space 8
//! ```
//!
//! Directives: `.text`, `.rodata`, `.data`, `.bss`, `.global NAME`,
//! `.byte`, `.quad`, `.ascii`, `.asciiz`, `.space N`, `.align N`.
//!
//! ## Example
//!
//! ```
//! use rr_asm::assemble_and_link;
//!
//! let exe = assemble_and_link(
//!     "    .text\n    .global _start\n_start:\n    mov r1, 7\n    svc 0\n",
//! )?;
//! assert_eq!(exe.entry, rr_isa::TEXT_BASE);
//! # Ok::<(), rr_asm::BuildError>(())
//! ```

#![forbid(unsafe_code)]

mod emit;
mod error;
mod lexer;
mod parser;

pub use emit::assemble_object;
pub use error::{AsmError, AsmErrorKind, BuildError};
pub use parser::{parse, Expr, Item, MemOperand, Statement};

use rr_obj::{Executable, ObjectFile};

/// Assembles one translation unit into a relocatable object.
///
/// # Errors
///
/// Returns an [`AsmError`] carrying the 1-based source line of the first
/// problem encountered.
///
/// # Example
///
/// ```
/// use rr_asm::assemble;
///
/// let obj = assemble("    .text\nf:\n    ret\n")?;
/// assert!(obj.symbol("f").is_some());
/// # Ok::<(), rr_asm::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<ObjectFile, AsmError> {
    assemble_named(source, "<asm>")
}

/// Like [`assemble`], with an explicit unit name for diagnostics.
///
/// # Errors
///
/// Returns an [`AsmError`] on the first syntax or semantic problem.
pub fn assemble_named(source: &str, name: &str) -> Result<ObjectFile, AsmError> {
    let items = parse(source)?;
    assemble_object(&items, name)
}

/// Assembles and links a single source into an executable whose entry point
/// is the `_start` symbol.
///
/// # Errors
///
/// Returns [`BuildError::Asm`] for assembly problems and
/// [`BuildError::Link`] for link-time problems (undefined symbols, missing
/// `_start`, …).
pub fn assemble_and_link(source: &str) -> Result<Executable, BuildError> {
    let obj = assemble(source)?;
    Ok(rr_obj::link(&[obj])?)
}
