//! Assembler error types.

use std::fmt;

/// The category of an assembly problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// A mnemonic that names no instruction.
    UnknownMnemonic(String),
    /// A directive that the assembler does not support.
    UnknownDirective(String),
    /// Operands that do not fit the instruction's addressing modes.
    BadOperands(String),
    /// A malformed token (number, string, register, …).
    BadToken(String),
    /// The same label defined twice.
    DuplicateLabel(String),
    /// An immediate that does not fit its field.
    ImmediateOverflow(i64),
    /// Content not allowed in the current section (e.g. code in `.data`).
    WrongSection(String),
}

impl fmt::Display for AsmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AsmErrorKind::UnknownDirective(d) => write!(f, "unknown directive `{d}`"),
            AsmErrorKind::BadOperands(msg) => write!(f, "bad operands: {msg}"),
            AsmErrorKind::BadToken(msg) => write!(f, "bad token: {msg}"),
            AsmErrorKind::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmErrorKind::ImmediateOverflow(v) => write!(f, "immediate {v} does not fit field"),
            AsmErrorKind::WrongSection(msg) => write!(f, "wrong section: {msg}"),
        }
    }
}

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

impl AsmError {
    /// Creates an error at the given line.
    pub fn new(line: usize, kind: AsmErrorKind) -> AsmError {
        AsmError { line, kind }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.kind)
    }
}

impl std::error::Error for AsmError {}

/// Error from [`crate::assemble_and_link`]: either phase can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The assembler rejected the source.
    Asm(AsmError),
    /// The linker rejected the object.
    Link(rr_obj::LinkError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Asm(e) => write!(f, "assembly failed: {e}"),
            BuildError::Link(e) => write!(f, "link failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Asm(e) => Some(e),
            BuildError::Link(e) => Some(e),
        }
    }
}

impl From<AsmError> for BuildError {
    fn from(e: AsmError) -> Self {
        BuildError::Asm(e)
    }
}

impl From<rr_obj::LinkError> for BuildError {
    fn from(e: rr_obj::LinkError) -> Self {
        BuildError::Link(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = AsmError::new(7, AsmErrorKind::UnknownMnemonic("frob".into()));
        let text = e.to_string();
        assert!(text.contains("line 7") && text.contains("frob"), "{text}");
    }

    #[test]
    fn build_error_wraps_both_phases() {
        let asm: BuildError = AsmError::new(1, AsmErrorKind::BadToken("x".into())).into();
        assert!(matches!(asm, BuildError::Asm(_)));
        let link: BuildError = rr_obj::LinkError::NoCode.into();
        assert!(matches!(link, BuildError::Link(_)));
        assert!(std::error::Error::source(&link).is_some());
    }
}
