//! End-to-end Hybrid pipeline tests: lift → harden pass → lower, then
//! verify behaviour preservation and fault-injection resistance (paper
//! §V-C, second approach).

use rr_emu::execute;
use rr_fault::{CampaignSession, Collect, FaultClass, FaultModel, InstructionSkip};
use rr_harden::{BranchHardening, FullDuplication};
use rr_ir::PassManager;
use rr_lower::compile;
use rr_obj::Executable;
use rr_workloads::{all_workloads, pincheck, Workload};

fn hybrid(w: &Workload, pass_builder: impl FnOnce(&mut PassManager)) -> Executable {
    let exe = w.build().unwrap();
    let mut lifted = rr_lift::lift(&exe).unwrap_or_else(|e| panic!("{}: lift: {e}", w.name));
    let mut pm = PassManager::new();
    pass_builder(&mut pm);
    pm.run(&mut lifted.module).unwrap_or_else(|(p, e)| panic!("{}: pass {p}: {e}", w.name));
    compile(&lifted).unwrap_or_else(|e| panic!("{}: lower: {e}", w.name))
}

const BUDGET: u64 = 100_000_000;

#[test]
fn branch_hardening_preserves_behavior_on_all_workloads() {
    for w in all_workloads() {
        let exe = w.build().unwrap();
        let hardened = hybrid(&w, |pm| {
            pm.add(BranchHardening::default());
        });
        for input in [&w.good_input, &w.bad_input] {
            let original = execute(&exe, input, 1_000_000);
            let result = execute(&hardened, input, BUDGET);
            assert!(
                original.same_behavior(&result),
                "{}: hybrid hardening changed behaviour on {input:?}:\n{original:?}\n{result:?}",
                w.name
            );
        }
    }
}

#[test]
fn branch_hardening_with_optimizations_preserves_behavior() {
    for w in [pincheck(), rr_workloads::otp_check()] {
        let exe = w.build().unwrap();
        let hardened = hybrid(&w, |pm| {
            pm.add(rr_ir::passes::PromoteCells);
            pm.add(rr_ir::passes::DeadCodeElimination);
            pm.add(BranchHardening::default());
        });
        for input in [&w.good_input, &w.bad_input] {
            let original = execute(&exe, input, 1_000_000);
            let result = execute(&hardened, input, BUDGET);
            assert!(original.same_behavior(&result), "{}", w.name);
        }
    }
}

#[test]
fn full_duplication_preserves_behavior() {
    let w = pincheck();
    let exe = w.build().unwrap();
    let dup = hybrid(&w, |pm| {
        pm.add(FullDuplication);
    });
    for input in [&w.good_input, &w.bad_input] {
        let original = execute(&exe, input, 1_000_000);
        let result = execute(&dup, input, BUDGET);
        assert!(original.same_behavior(&result));
    }
    // The duplication baseline costs more code than the plain round trip.
    let lifted = rr_lift::lift(&exe).unwrap();
    let plain = compile(&lifted).unwrap();
    assert!(dup.code_size() > plain.code_size());
}

/// Paper §V-C, Hybrid approach: the conditional-branch hardening must
/// eliminate every *compare/branch-related* skip vulnerability (the only
/// kind the paper's case studies exhibited). Residual vulnerabilities may
/// remain on plain data moves of the lowered code — they are outside the
/// pass's scope and are mopped up by the iterative loop below.
#[test]
fn branch_hardening_blocks_decision_skips() {
    let w = pincheck();
    let exe = w.build().unwrap();
    let baseline_session = CampaignSession::builder(exe.clone())
        .good_input(&w.good_input[..])
        .bad_input(&w.bad_input[..])
        .build()
        .unwrap();
    let baseline =
        baseline_session.run(&[&InstructionSkip as &dyn FaultModel], Collect).pop().unwrap();
    let baseline_vulns = baseline.summary().success;
    assert!(baseline_vulns > 0);

    let hardened = hybrid(&w, |pm| {
        pm.add(rr_ir::passes::PromoteCells);
        pm.add(rr_ir::passes::DeadCodeElimination);
        pm.add(BranchHardening::default());
    });
    let config = rr_fault::CampaignConfig {
        golden_max_steps: BUDGET,
        faulted_min_steps: BUDGET,
        ..Default::default()
    };
    let session = CampaignSession::builder(hardened)
        .good_input(&w.good_input[..])
        .bad_input(&w.bad_input[..])
        .config(config)
        .build()
        .unwrap();
    let report = session.run(&[&InstructionSkip as &dyn FaultModel], Collect).pop().unwrap();
    let summary = report.summary();
    assert!(summary.crashed > 0, "validation must catch some faults: {summary}");

    // No residual vulnerability may sit on a compare or conditional jump.
    for result in report.vulnerabilities() {
        assert_eq!(result.class, FaultClass::Success);
        let site = session
            .sites()
            .iter()
            .find(|s| s.step == result.fault().step)
            .expect("site for vulnerability");
        let kind = site.insn.kind();
        assert!(
            !matches!(kind, rr_isa::InstrKind::Cmp | rr_isa::InstrKind::CondJump),
            "decision-path vulnerability survived hardening: {} at {:#x}",
            site.insn,
            site.pc
        );
    }
    // And the hardening must not be vacuous: only a handful of data-move
    // residuals may remain.
    assert!(summary.success <= 5, "too many residual vulnerabilities: {summary}");
}

/// The paper's stated future work — "enable an iterative countermeasure
/// insertion for the Hybrid methodology" — implemented: run the
/// Faulter+Patcher loop on the Hybrid output to clear the residual
/// data-move vulnerabilities.
#[test]
fn iterative_patching_of_hybrid_output_reaches_zero() {
    let w = pincheck();
    let hardened = hybrid(&w, |pm| {
        pm.add(rr_ir::passes::PromoteCells);
        pm.add(rr_ir::passes::DeadCodeElimination);
        pm.add(BranchHardening::default());
    });
    let config = rr_patch::HardenConfig {
        campaign: rr_fault::CampaignConfig {
            golden_max_steps: BUDGET,
            faulted_min_steps: BUDGET,
            ..Default::default()
        },
        ..Default::default()
    };
    let driver = rr_patch::FaulterPatcher::new(config);
    let outcome =
        driver.harden(&hardened, &w.good_input, &w.bad_input, &InstructionSkip).expect("loop runs");
    assert!(outcome.fixed_point, "hybrid + iterative patching must reach a fixed point");
    assert_eq!(outcome.residual_vulnerabilities, 0);
}

#[test]
fn hybrid_overhead_exceeds_faulter_patcher_overhead() {
    // The paper's Table V shape: Hybrid costs more than the targeted
    // Faulter+Patcher approach, because it pays for the lift/lower round
    // trip and protects every branch.
    let w = pincheck();
    let exe = w.build().unwrap();

    let driver = rr_patch::FaulterPatcher::new(rr_patch::HardenConfig::default());
    let fp = driver.harden(&exe, &w.good_input, &w.bad_input, &InstructionSkip).unwrap();
    let fp_overhead = fp.overhead_percent();

    let hardened = hybrid(&w, |pm| {
        pm.add(rr_ir::passes::PromoteCells);
        pm.add(rr_ir::passes::DeadCodeElimination);
        pm.add(BranchHardening::default());
    });
    let hybrid_overhead =
        (hardened.code_size() as f64 - exe.code_size() as f64) / exe.code_size() as f64 * 100.0;

    assert!(
        hybrid_overhead > fp_overhead,
        "hybrid ({hybrid_overhead:.1}%) must exceed targeted patching ({fp_overhead:.1}%)"
    );
}
