//! Differential pass testing: every transformation must leave the
//! *interpreted* behaviour of a lifted module unchanged — checked directly
//! on the IR with `rr_ir::interp`, independently of the lowering backend.

use rr_harden::{BranchHardening, FullDuplication};
use rr_ir::interp::{Interp, InterpOutcome};
use rr_ir::passes::{DeadCodeElimination, PromoteCells};
use rr_ir::{Module, Pass};

/// Interprets `module` on `input` (symaddr-free modules only).
fn behavior(module: &Module, input: &[u8]) -> (InterpOutcome, Vec<u8>) {
    let result = Interp::new(module, input)
        .with_max_steps(50_000_000)
        .run()
        .expect("interpretation succeeds");
    (result.outcome, result.output)
}

/// Lifts a workload whose module contains no `symaddr` ops would be
/// needed — instead, build modules from sources without data sections so
/// the interpreter can run them.
fn lift_module(src: &str) -> Module {
    let exe = rr_asm::assemble_and_link(src).expect("source builds");
    rr_lift::lift(&exe).expect("lifts").module
}

/// A data-section-free OTP-style checker: reads 4 bytes, xor-accumulates
/// against inline constants, one decision branch.
const CHECKER: &str = "    .global _start\n\
    .text\n\
_start:\n\
    mov r7, 0\n\
    mov r9, 0\n\
.loop:\n\
    svc 2\n\
    cmp r0, -1\n\
    je .reject\n\
    mov r2, 0x35\n\
    xor r2, r0\n\
    or r7, r2\n\
    add r9, 1\n\
    cmp r9, 4\n\
    jne .loop\n\
    cmp r7, 0\n\
    jne .reject\n\
    mov r1, 0\n\
    svc 0\n\
.reject:\n\
    mov r1, 1\n\
    svc 0\n";

const GOOD: &[u8] = b"5555";
const BAD: &[u8] = b"5554";

fn assert_pass_preserves(pass: &dyn Pass) {
    let original = lift_module(CHECKER);
    let mut transformed = original.clone();
    pass.run(&mut transformed);
    rr_ir::verify(&transformed).unwrap_or_else(|e| panic!("{}: {e}", pass.name()));
    for input in [GOOD, BAD, b"5x55" as &[u8], b"", b"55555"] {
        let a = behavior(&original, input);
        let b = behavior(&transformed, input);
        assert_eq!(a, b, "{}: diverged on {input:?}", pass.name());
    }
}

#[test]
fn golden_behavior_of_the_checker() {
    let module = lift_module(CHECKER);
    assert_eq!(behavior(&module, GOOD).0, InterpOutcome::Exited(0));
    assert_eq!(behavior(&module, BAD).0, InterpOutcome::Exited(1));
    assert_eq!(behavior(&module, b"").0, InterpOutcome::Exited(1));
}

#[test]
fn promote_cells_is_behavior_preserving() {
    assert_pass_preserves(&PromoteCells);
}

#[test]
fn dce_is_behavior_preserving() {
    assert_pass_preserves(&DeadCodeElimination);
}

#[test]
fn branch_hardening_is_behavior_preserving() {
    assert_pass_preserves(&BranchHardening::default());
    assert_pass_preserves(&BranchHardening::with_copies(1));
    assert_pass_preserves(&BranchHardening::with_copies(3));
}

#[test]
fn full_duplication_is_behavior_preserving() {
    assert_pass_preserves(&FullDuplication);
}

#[test]
fn full_pipeline_is_behavior_preserving() {
    let original = lift_module(CHECKER);
    let mut transformed = original.clone();
    PromoteCells.run(&mut transformed);
    DeadCodeElimination.run(&mut transformed);
    BranchHardening::default().run(&mut transformed);
    rr_ir::verify(&transformed).unwrap();
    for input in [GOOD, BAD] {
        assert_eq!(behavior(&original, input), behavior(&transformed, input));
    }
    // And the hardened module really grew.
    assert!(transformed.placed_op_count() > original.placed_op_count());
}

#[test]
fn interpreter_agrees_with_the_emulator() {
    // Cross-validation of the two execution engines on the same program.
    let exe = rr_asm::assemble_and_link(CHECKER).unwrap();
    let module = lift_module(CHECKER);
    for input in [GOOD, BAD, b"55" as &[u8]] {
        let machine = rr_emu::execute(&exe, input, 1_000_000);
        let (outcome, output) = behavior(&module, input);
        let machine_code = match machine.outcome {
            rr_emu::RunOutcome::Exited { code } => InterpOutcome::Exited(code),
            other => panic!("unexpected machine outcome {other:?}"),
        };
        assert_eq!(outcome, machine_code, "outcome mismatch on {input:?}");
        assert_eq!(output, machine.output, "output mismatch on {input:?}");
    }
}
