//! The full-duplication baseline (paper §V-C's "duplicating every
//! instruction … implies at least 300% overhead in code size").

use rr_ir::{BinOp, BlockId, Function, Module, Op, Pass, Pred, Terminator, ValueId};

/// Duplicates every pure computation, accumulates the XOR of each
/// original/duplicate pair, and verifies the accumulator is zero before
/// every block transfer (mismatch → fault-response abort).
///
/// This is the "go-to protection scheme" the paper's targeted approaches
/// are compared against; the benches measure its code-size factor.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullDuplication;

impl Pass for FullDuplication {
    fn name(&self) -> &'static str {
        "full-duplication"
    }

    fn run(&self, module: &mut Module) -> bool {
        let mut changed = false;
        for f in module.functions_mut() {
            changed |= duplicate_function(f);
        }
        changed
    }
}

fn duplicate_function(f: &mut Function) -> bool {
    // Snapshot blocks first: the pass adds tail and fault-response blocks.
    let original_blocks: Vec<BlockId> = f.block_ids().collect();
    let has_duplicable = original_blocks.iter().any(|&b| {
        f.block(b).ops.iter().any(|&v| f.op(v).is_pure() && !f.op(v).operands().is_empty())
    });
    if !has_duplicable {
        return false;
    }

    let fault_response = f.new_block();
    f.set_terminator(fault_response, Terminator::Abort);

    for b in original_blocks {
        let ops = f.block(b).ops.clone();
        let mut rebuilt: Vec<ValueId> = Vec::with_capacity(ops.len() * 2);
        let mut diffs: Vec<ValueId> = Vec::new();
        for v in ops {
            rebuilt.push(v);
            let op = f.op(v).clone();
            // Duplicate pure computations with at least one operand
            // (duplicating constants catches nothing: both copies come
            // from the same immune immediate).
            if op.is_pure() && !op.operands().is_empty() {
                let clone = f.alloc(op);
                rebuilt.push(clone);
                let diff = f.alloc(Op::BinOp { op: BinOp::Xor, lhs: v, rhs: clone });
                rebuilt.push(diff);
                diffs.push(diff);
            }
        }
        if diffs.is_empty() {
            continue;
        }
        // Accumulate differences and verify before the transfer.
        let mut acc = diffs[0];
        for &d in &diffs[1..] {
            let or = f.alloc(Op::BinOp { op: BinOp::Or, lhs: acc, rhs: d });
            rebuilt.push(or);
            acc = or;
        }
        let zero = f.alloc(Op::Const(0));
        rebuilt.push(zero);
        let ok = f.alloc(Op::ICmp { pred: Pred::Eq, lhs: acc, rhs: zero });
        rebuilt.push(ok);
        f.block_mut(b).ops = rebuilt;

        // Split: move the original terminator to a fresh tail block and
        // branch to it only if the accumulator checks out.
        let tail = f.new_block();
        let term = std::mem::replace(&mut f.block_mut(b).term, Terminator::Unset);
        f.set_terminator(tail, term.clone());
        f.set_terminator(
            b,
            Terminator::CondBr { cond: ok, if_true: tail, if_false: fault_response },
        );

        // Phis in original successors now receive the edge from `tail`.
        for succ in term.successors() {
            rewrite_phi_pred(f, succ, b, tail);
        }
    }
    true
}

fn rewrite_phi_pred(f: &mut Function, block: BlockId, old_pred: BlockId, new_pred: BlockId) {
    let ops = f.block(block).ops.clone();
    for v in ops {
        if let Op::Phi { incomings } = f.op_mut(v) {
            for (pred, _) in incomings.iter_mut() {
                if *pred == old_pred {
                    *pred = new_pred;
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_ir::{verify, Cell};

    fn arithmetic_module() -> Module {
        let mut f = Function::new("__rr_entry");
        let e = f.entry();
        let a = f.append(e, Op::ReadCell(Cell::reg(1)));
        let b = f.append(e, Op::ReadCell(Cell::reg(2)));
        let s = f.append(e, Op::BinOp { op: BinOp::Add, lhs: a, rhs: b });
        let t = f.append(e, Op::BinOp { op: BinOp::Mul, lhs: s, rhs: a });
        f.append(e, Op::WriteCell { cell: Cell::reg(0), value: t });
        f.set_terminator(e, Terminator::Ret);
        let mut m = Module::new();
        m.entry = "__rr_entry".into();
        m.push_function(f);
        m
    }

    #[test]
    fn duplicated_module_verifies_and_doubles_compute() {
        let mut m = arithmetic_module();
        let before = m.placed_op_count();
        assert!(FullDuplication.run(&mut m));
        verify(&m).unwrap();
        let after = m.placed_op_count();
        // Each of the two pure binops gains a clone + xor; plus or/const/
        // icmp — comfortably > 2× the pure compute.
        assert!(after >= before + 7, "{before} → {after}");
        // A fault-response and a tail block were added.
        assert_eq!(m.functions()[0].block_count(), 3);
    }

    #[test]
    fn blocks_without_pure_ops_are_untouched() {
        let mut f = Function::new("io");
        let e = f.entry();
        f.append(e, Op::Svc { num: 0 });
        f.set_terminator(e, Terminator::Abort);
        let mut m = Module::new();
        m.push_function(f);
        let before = m.clone();
        assert!(!FullDuplication.run(&mut m));
        assert_eq!(m, before);
    }

    #[test]
    fn phi_successors_are_rewired() {
        let mut f = Function::new("f");
        let e = f.entry();
        let j = f.new_block();
        let a = f.append(e, Op::ReadCell(Cell::reg(1)));
        let n = f.append(e, Op::Not(a));
        f.set_terminator(e, Terminator::Br(j));
        let phi = f.append(j, Op::Phi { incomings: vec![(e, n)] });
        f.append(j, Op::WriteCell { cell: Cell::reg(0), value: phi });
        f.set_terminator(j, Terminator::Ret);
        let mut m = Module::new();
        m.push_function(f);
        FullDuplication.run(&mut m);
        verify(&m).unwrap();
    }
}
