//! Conditional branch hardening (paper §V-B, Algorithm 1, Fig. 5).

use rr_ir::{BinOp, BlockId, Function, Module, Op, Pass, Pred, Terminator, ValueId};
use std::cell::RefCell;

/// The conditional-branch-hardening pass.
///
/// `copies` is the number of independently computed checksum copies
/// validated on each edge (the paper uses 2 — `D1`/`D2` in Fig. 5; 1 is
/// the cheaper, weaker variant measured by the ablation bench).
#[derive(Debug, Clone)]
pub struct BranchHardening {
    /// Number of checksum copies (≥ 1).
    pub copies: usize,
    report: RefCell<HardeningReport>,
}

impl Default for BranchHardening {
    fn default() -> Self {
        BranchHardening { copies: 2, report: RefCell::new(HardeningReport::default()) }
    }
}

/// Statistics from one run of [`BranchHardening`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HardeningReport {
    /// Conditional branches protected.
    pub protected_branches: usize,
    /// Validation blocks inserted.
    pub validation_blocks: usize,
    /// Fault-response blocks inserted.
    pub fault_response_blocks: usize,
}

impl BranchHardening {
    /// Creates the pass with an explicit number of checksum copies.
    ///
    /// # Panics
    ///
    /// Panics if `copies == 0`.
    pub fn with_copies(copies: usize) -> BranchHardening {
        assert!(copies >= 1, "at least one checksum copy is required");
        BranchHardening { copies, ..BranchHardening::default() }
    }

    /// The statistics of the most recent [`Pass::run`].
    pub fn report(&self) -> HardeningReport {
        *self.report.borrow()
    }
}

impl Pass for BranchHardening {
    fn name(&self) -> &'static str {
        "branch-hardening"
    }

    fn run(&self, module: &mut Module) -> bool {
        let mut report = HardeningReport::default();
        // Block UIDs are unique module-wide; assignment order is
        // deterministic (function index, block index).
        let mut next_uid: u64 = 0x1000;
        let mut changed = false;
        for f in module.functions_mut() {
            let uids: Vec<u64> = (0..f.block_count())
                .map(|_| {
                    let uid = next_uid;
                    next_uid += 1;
                    uid
                })
                .collect();
            changed |= harden_function(f, &uids, self.copies, &mut report);
        }
        *self.report.borrow_mut() = report;
        changed
    }
}

fn harden_function(
    f: &mut Function,
    uids: &[u64],
    copies: usize,
    report: &mut HardeningReport,
) -> bool {
    // Snapshot the original conditional branches (new blocks must not be
    // re-processed).
    let sources: Vec<(BlockId, ValueId, BlockId, BlockId)> = f
        .block_ids()
        .filter_map(|b| match f.block(b).term {
            Terminator::CondBr { cond, if_true, if_false } => Some((b, cond, if_true, if_false)),
            _ => None,
        })
        .collect();
    if sources.is_empty() {
        return false;
    }

    // One shared fault-response block per function (the paper's
    // `flt_resp`: abort()).
    let fault_response = f.new_block();
    f.set_terminator(fault_response, Terminator::Abort);
    report.fault_response_blocks += 1;

    for (src, cond, if_true, if_false) in sources {
        report.protected_branches += 1;
        let uid_src = uids[src.index()];
        let const_t = uids[if_true.index()] ^ uid_src;
        let const_f = uids[if_false.index()] ^ uid_src;

        // Algorithm 1, computed `copies` times from the first comparison
        // result: constT = UIDT ⊕ UIDsrc; constF = UIDF ⊕ UIDsrc;
        // cmp_ext = zext(cmp_res); mask = cmp_ext − 1;
        // checksum = (¬mask ∧ constT) ∨ (mask ∧ constF).
        // The edge constants are emitted as runtime xors of the UID
        // constants, as in the paper (they account for Table IV's `xor`
        // rows); a real optimizer would fold them.
        let mut checksums = Vec::with_capacity(copies);
        for _ in 0..copies {
            let uid_s = f.append(src, Op::Const(uid_src));
            let uid_t = f.append(src, Op::Const(uids[if_true.index()]));
            let uid_f = f.append(src, Op::Const(uids[if_false.index()]));
            let ct = f.append(src, Op::BinOp { op: BinOp::Xor, lhs: uid_t, rhs: uid_s });
            let cf = f.append(src, Op::BinOp { op: BinOp::Xor, lhs: uid_f, rhs: uid_s });
            let one = f.append(src, Op::Const(1));
            let cmp_ext = f.append(src, Op::BinOp { op: BinOp::And, lhs: cond, rhs: one });
            let mask = f.append(src, Op::BinOp { op: BinOp::Sub, lhs: cmp_ext, rhs: one });
            let not_mask = f.append(src, Op::Not(mask));
            let left = f.append(src, Op::BinOp { op: BinOp::And, lhs: not_mask, rhs: ct });
            let right = f.append(src, Op::BinOp { op: BinOp::And, lhs: mask, rhs: cf });
            let checksum = f.append(src, Op::BinOp { op: BinOp::Or, lhs: left, rhs: right });
            checksums.push(checksum);
        }

        // Re-evaluate the comparison for the transfer itself (Fig. 5's
        // C2); falls back to the original value when the defining
        // expression is not clonable.
        let cond2 = clone_pure_tree(f, src, cond, 16).unwrap_or(cond);

        // Per-edge nested validation chains.
        let vt = build_validation_chain(f, &checksums, const_t, if_true, fault_response, report);
        let vf = build_validation_chain(f, &checksums, const_f, if_false, fault_response, report);

        // Swing the branch to the validation chains.
        f.set_terminator(src, Terminator::CondBr { cond: cond2, if_true: vt, if_false: vf });

        // Destination phis: the incoming edge from `src` now arrives from
        // the tail of the validation chain.
        let vt_tail = chain_tail(f, vt, if_true);
        rewrite_phi_pred(f, if_true, src, vt_tail);
        let vf_tail = chain_tail(f, vf, if_false);
        rewrite_phi_pred(f, if_false, src, vf_tail);
    }
    true
}

/// Builds the nested validation chain for one edge: `copies` blocks, each
/// checking one checksum copy against the edge's expected value, aborting
/// into `fault_response` on mismatch; the final block branches to `dest`.
/// Returns the head of the chain.
fn build_validation_chain(
    f: &mut Function,
    checksums: &[ValueId],
    expected: u64,
    dest: BlockId,
    fault_response: BlockId,
    report: &mut HardeningReport,
) -> BlockId {
    let blocks: Vec<BlockId> = checksums.iter().map(|_| f.new_block()).collect();
    report.validation_blocks += blocks.len();
    for (i, (&checksum, &block)) in checksums.iter().zip(&blocks).enumerate() {
        let expect = f.append(block, Op::Const(expected));
        let ok = f.append(block, Op::ICmp { pred: Pred::Eq, lhs: checksum, rhs: expect });
        let next = blocks.get(i + 1).copied().unwrap_or(dest);
        f.set_terminator(
            block,
            Terminator::CondBr { cond: ok, if_true: next, if_false: fault_response },
        );
    }
    blocks[0]
}

/// The last block of a validation chain that starts at `head` and ends by
/// branching to `dest`.
fn chain_tail(f: &Function, head: BlockId, dest: BlockId) -> BlockId {
    let mut cur = head;
    loop {
        match f.block(cur).term {
            Terminator::CondBr { if_true, .. } if if_true != dest => cur = if_true,
            _ => return cur,
        }
    }
}

fn rewrite_phi_pred(f: &mut Function, block: BlockId, old_pred: BlockId, new_pred: BlockId) {
    let ops = f.block(block).ops.clone();
    for v in ops {
        if let Op::Phi { incomings } = f.op_mut(v) {
            for (pred, _) in incomings.iter_mut() {
                if *pred == old_pred {
                    *pred = new_pred;
                    break; // one entry per edge
                }
            }
        }
    }
}

/// Clones the pure expression tree defining `v` into fresh ops appended to
/// `block`, re-computing the value independently. Impure leaves
/// (`ReadCell`, `Load`, …) are shared, not cloned: cells and memory are
/// unchanged since the original evaluation within the same block.
fn clone_pure_tree(f: &mut Function, block: BlockId, v: ValueId, depth: usize) -> Option<ValueId> {
    if depth == 0 {
        return None;
    }
    if !f.op(v).is_pure() {
        return None;
    }
    let mut op = f.op(v).clone();
    let operands = op.operands();
    let mut clones = Vec::with_capacity(operands.len());
    for w in operands {
        clones.push(clone_pure_tree(f, block, w, depth - 1).unwrap_or(w));
    }
    let mut index = 0;
    op.map_operands(|_| {
        let c = clones[index];
        index += 1;
        c
    });
    Some(f.append(block, op))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_ir::{verify, Cell};

    /// A function with one protected decision: exit code 0 iff cell r1 == 7.
    fn decision_module() -> Module {
        let mut f = Function::new("__rr_entry");
        let e = f.entry();
        let yes = f.new_block();
        let no = f.new_block();
        let r1 = f.append(e, Op::ReadCell(Cell::reg(1)));
        let seven = f.append(e, Op::Const(7));
        let cond = f.append(e, Op::ICmp { pred: Pred::Eq, lhs: r1, rhs: seven });
        f.set_terminator(e, Terminator::CondBr { cond, if_true: yes, if_false: no });
        let zero = f.append(yes, Op::Const(0));
        f.append(yes, Op::WriteCell { cell: Cell::reg(1), value: zero });
        f.append(yes, Op::Svc { num: 0 });
        f.set_terminator(yes, Terminator::Abort);
        let one = f.append(no, Op::Const(1));
        f.append(no, Op::WriteCell { cell: Cell::reg(1), value: one });
        f.append(no, Op::Svc { num: 0 });
        f.set_terminator(no, Terminator::Abort);
        let mut m = Module::new();
        m.entry = "__rr_entry".into();
        m.push_function(f);
        m
    }

    #[test]
    fn hardened_module_verifies() {
        let mut m = decision_module();
        let pass = BranchHardening::default();
        assert!(pass.run(&mut m));
        verify(&m).unwrap();
        let report = pass.report();
        assert_eq!(report.protected_branches, 1);
        assert_eq!(report.validation_blocks, 4); // 2 copies × 2 edges
        assert_eq!(report.fault_response_blocks, 1);
    }

    #[test]
    fn op_count_grows_substantially() {
        let mut m = decision_module();
        let before = m.placed_op_count();
        BranchHardening::default().run(&mut m);
        let after = m.placed_op_count();
        assert!(after > before + 15, "expected ≫ ops, got {before} → {after}");
    }

    #[test]
    fn single_copy_variant_is_smaller() {
        let mut two = decision_module();
        BranchHardening::default().run(&mut two);
        let mut one = decision_module();
        BranchHardening::with_copies(1).run(&mut one);
        verify(&one).unwrap();
        assert!(one.placed_op_count() < two.placed_op_count());
    }

    #[test]
    fn phis_in_destinations_are_rewired() {
        // diamond: entry condbr → a / b, both → join with a phi.
        let mut f = Function::new("__rr_entry");
        let e = f.entry();
        let a = f.new_block();
        let b = f.new_block();
        let j = f.new_block();
        let c = f.append(e, Op::Const(1));
        f.set_terminator(e, Terminator::CondBr { cond: c, if_true: a, if_false: b });
        let va = f.append(a, Op::Const(10));
        f.set_terminator(a, Terminator::Br(j));
        let vb = f.append(b, Op::Const(20));
        f.set_terminator(b, Terminator::Br(j));
        let phi = f.append(j, Op::Phi { incomings: vec![(a, va), (b, vb)] });
        f.append(j, Op::WriteCell { cell: Cell::reg(1), value: phi });
        f.set_terminator(j, Terminator::Ret);
        let mut m = Module::new();
        m.entry = "__rr_entry".into();
        m.push_function(f);

        BranchHardening::default().run(&mut m);
        // The destinations a and b had no phis, but the pass must keep the
        // module valid overall (a/b still branch to j; the phi preds are
        // untouched since a → j and b → j edges did not move).
        verify(&m).unwrap();
    }

    #[test]
    fn phi_in_direct_destination_is_rewired() {
        // entry condbr → t / j where j has a phi with an incoming from
        // entry directly — that edge moves to the validation tail.
        let mut f = Function::new("__rr_entry");
        let e = f.entry();
        let t = f.new_block();
        let j = f.new_block();
        let c = f.append(e, Op::Const(0));
        let ve = f.append(e, Op::Const(100));
        f.set_terminator(e, Terminator::CondBr { cond: c, if_true: t, if_false: j });
        let vt = f.append(t, Op::Const(200));
        f.set_terminator(t, Terminator::Br(j));
        let phi = f.append(j, Op::Phi { incomings: vec![(e, ve), (t, vt)] });
        f.append(j, Op::WriteCell { cell: Cell::reg(1), value: phi });
        f.set_terminator(j, Terminator::Ret);
        let mut m = Module::new();
        m.entry = "__rr_entry".into();
        m.push_function(f);

        BranchHardening::default().run(&mut m);
        verify(&m).unwrap();
    }

    #[test]
    fn functions_without_branches_are_untouched() {
        let mut f = Function::new("leaf");
        let e = f.entry();
        f.append(e, Op::Const(1));
        f.set_terminator(e, Terminator::Ret);
        let mut m = Module::new();
        m.push_function(f);
        let before = m.clone();
        assert!(!BranchHardening::default().run(&mut m));
        assert_eq!(m, before);
    }
}
