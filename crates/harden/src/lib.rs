//! # rr-harden — IR-level countermeasure passes
//!
//! The countermeasures of the Hybrid rewriting approach, implemented as
//! [`rr_ir::Pass`]es over RRIR (the paper's "optimization pass in the LLVM
//! tool-chain", §V-B):
//!
//! * [`BranchHardening`] — the paper's **conditional branch hardening**:
//!   every basic block gets a compile-time UID; each conditional branch
//!   computes a run-time checksum `h(UIDsrc, UIDdst, cmp_res)` (Algorithm
//!   1: `checksum = (¬mask ∧ constTdst) ∨ (mask ∧ constFdst)` with
//!   `mask = zext(cmp_res) − 1`), **twice**, re-evaluates the comparison
//!   for the transfer itself, and validates both checksum copies in
//!   nested validation blocks on *both* destinations (Fig. 5), diverting
//!   to a fault-response block on mismatch. An attacker must corrupt both
//!   comparison evaluations identically to slip through.
//!
//! * [`FullDuplication`] — the classic "duplicate everything" baseline
//!   the paper compares against (§V-C: "duplicating every instruction …
//!   implies at least 300% overhead"): every pure computation is executed
//!   twice, differences are accumulated, and each block verifies the
//!   accumulator before transferring control.
//!
//! ## Example
//!
//! ```no_run
//! use rr_harden::BranchHardening;
//! use rr_ir::PassManager;
//!
//! let w = rr_workloads::pincheck();
//! let exe = w.build()?;
//! let mut lifted = rr_lift::lift(&exe)?;
//! let mut pm = PassManager::new();
//! pm.add(BranchHardening::default());
//! pm.run(&mut lifted.module).map_err(|(p, e)| format!("{p}: {e}"))?;
//! let hardened = rr_lower::compile(&lifted)?;
//! # let _ = hardened;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

mod branch;
mod duplicate;

pub use branch::{BranchHardening, HardeningReport};
pub use duplicate::FullDuplication;
