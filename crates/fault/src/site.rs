//! Fault sites, concrete faults, and outcome classes.

use rr_isa::{Instr, Reg};
use std::fmt;

/// A point in the golden bad-input trace where faults can be injected:
/// instruction `insn` (of encoded length `len`) was about to execute at
/// trace step `step` with the program counter at `pc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSite {
    /// 0-based index into the execution trace.
    pub step: u64,
    /// Address of the instruction.
    pub pc: u64,
    /// The decoded instruction.
    pub insn: Instr,
    /// Its encoded length in bytes.
    pub len: usize,
}

/// The physical effect a fault model injects at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultEffect {
    /// Do not execute the instruction; continue at the next one.
    SkipInstruction,
    /// Flip one bit of the instruction's encoding in memory. Persistent
    /// for the remainder of the run (the paper's single-bit-flip model).
    FlipInstructionBit {
        /// Byte index within the instruction (0-based).
        byte: usize,
        /// Bit index within that byte (0–7).
        bit: u8,
    },
    /// Flip one bit of a register, transiently, just before execution.
    FlipRegisterBit {
        /// The register.
        reg: Reg,
        /// Bit index (0–63).
        bit: u8,
    },
    /// XOR the packed condition flags with a mask just before execution.
    FlipFlags {
        /// Mask over the packed NZCV bits (see [`rr_isa::Flags::to_bits`]).
        mask: u8,
    },
}

impl fmt::Display for FaultEffect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEffect::SkipInstruction => write!(f, "skip"),
            FaultEffect::FlipInstructionBit { byte, bit } => {
                write!(f, "flip insn byte {byte} bit {bit}")
            }
            FaultEffect::FlipRegisterBit { reg, bit } => write!(f, "flip {reg} bit {bit}"),
            FaultEffect::FlipFlags { mask } => write!(f, "flip flags mask {mask:#x}"),
        }
    }
}

/// One concrete injectable fault: an effect at a trace site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// Trace step at which the effect is applied.
    pub step: u64,
    /// Program counter of the targeted instruction.
    pub pc: u64,
    /// What the fault does.
    pub effect: FaultEffect,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "step {} @ {:#x}: {}", self.step, self.pc, self.effect)
    }
}

/// How many injections a [`FaultPlan`] stores without heap allocation.
/// Single- and double-fault campaigns — the overwhelmingly common plan
/// lengths — never allocate.
const PLAN_INLINE: usize = 2;

/// An ordered multi-fault injection plan: one or more [`Fault`]s applied
/// to the *same* run, in trace-step order.
///
/// This is the unit every campaign evaluates. The classic single-fault
/// campaign is the plan of length 1 ([`FaultPlan::single`]); higher
/// orders model an attacker firing several timed glitches in one
/// execution — e.g. the double fault that skips both a check and its
/// duplicated countermeasure.
///
/// Plans are canonically ordered: construction sorts injections by trace
/// step (a stable sort, so same-step injections keep their given
/// sequence). Equality and hashing see only the injection list, so a
/// plan is a value usable as a cache key. Storage is inline up to two
/// injections — plan-length-1 campaigns pay no allocation over the old
/// single-`Fault` pipeline.
#[derive(Clone)]
pub struct FaultPlan {
    inline: [Fault; PLAN_INLINE],
    len: u8,
    /// Injections beyond [`PLAN_INLINE`], in order; empty for the common
    /// orders 1 and 2.
    spill: Vec<Fault>,
}

impl FaultPlan {
    /// The plan that injects exactly `fault` — the single-fault campaign
    /// as a plan of length 1.
    pub fn single(fault: Fault) -> FaultPlan {
        FaultPlan { inline: [fault, fault], len: 1, spill: Vec::new() }
    }

    /// Builds a plan from any number of injections, sorting them into
    /// canonical (trace-step) order. Same-step injections keep their
    /// given sequence.
    ///
    /// # Panics
    ///
    /// An empty plan is not a plan: at least one injection is required.
    pub fn new(faults: impl IntoIterator<Item = Fault>) -> FaultPlan {
        let mut faults: Vec<Fault> = faults.into_iter().collect();
        assert!(!faults.is_empty(), "a fault plan needs at least one injection");
        faults.sort_by_key(|f| f.step);
        if faults.len() <= PLAN_INLINE {
            let mut inline = [faults[0]; PLAN_INLINE];
            inline[..faults.len()].copy_from_slice(&faults);
            FaultPlan { inline, len: faults.len() as u8, spill: Vec::new() }
        } else {
            let spill = faults.split_off(PLAN_INLINE);
            let mut inline = [faults[0]; PLAN_INLINE];
            inline.copy_from_slice(&faults);
            FaultPlan { inline, len: PLAN_INLINE as u8, spill }
        }
    }

    /// The injections, in trace-step order.
    pub fn iter(&self) -> impl Iterator<Item = &Fault> {
        self.inline[..self.len as usize].iter().chain(self.spill.iter())
    }

    /// Number of injections — the plan's *order* (1 = single fault).
    pub fn order(&self) -> usize {
        self.len as usize + self.spill.len()
    }

    /// The earliest injection (the plan is step-sorted, so this is where
    /// replay positioning starts).
    pub fn first(&self) -> &Fault {
        &self.inline[0]
    }

    /// The latest injection.
    pub fn last(&self) -> &Fault {
        self.spill.last().unwrap_or(&self.inline[self.len as usize - 1])
    }

    /// The trace step of the earliest injection.
    pub fn earliest_step(&self) -> u64 {
        self.first().step
    }
}

impl From<Fault> for FaultPlan {
    fn from(fault: Fault) -> FaultPlan {
        FaultPlan::single(fault)
    }
}

// Equality, hashing, and debug see the logical injection list only — the
// inline/spill split and the unused inline slot are representation.
impl PartialEq for FaultPlan {
    fn eq(&self, other: &FaultPlan) -> bool {
        self.order() == other.order() && self.iter().eq(other.iter())
    }
}

impl Eq for FaultPlan {}

impl std::hash::Hash for FaultPlan {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.order().hash(state);
        for fault in self.iter() {
            fault.hash(state);
        }
    }
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl fmt::Display for FaultPlan {
    /// Singleton plans render exactly like their [`Fault`]; higher
    /// orders join the injections with ` + `.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (index, fault) in self.iter().enumerate() {
            if index > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

/// How a faulted run compared against the golden runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Behaved like the **good** run — a successful fault, i.e. a
    /// vulnerability the patcher must fix.
    Success,
    /// Behaved like the (unfaulted) **bad** run — the fault had no
    /// attacker-relevant effect.
    Benign,
    /// The machine crashed (any [`rr_emu::CpuFault`]); detectable.
    Crashed,
    /// The run exceeded its step budget; detectable.
    TimedOut,
    /// Exited normally but matched neither golden behaviour.
    Corrupted,
    /// The golden-trace replay to the injection point did not arrive at
    /// the expected program counter (or stopped early). The emulator's
    /// determinism contract makes this unreachable for well-formed
    /// campaigns; it is reported as a class instead of panicking so a
    /// violated contract degrades one fault's result, not the process.
    ReplayDiverged,
}

impl FaultClass {
    /// All classes, in reporting order.
    pub const ALL: [FaultClass; 6] = [
        FaultClass::Success,
        FaultClass::Benign,
        FaultClass::Crashed,
        FaultClass::TimedOut,
        FaultClass::Corrupted,
        FaultClass::ReplayDiverged,
    ];
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultClass::Success => "success",
            FaultClass::Benign => "benign",
            FaultClass::Crashed => "crashed",
            FaultClass::TimedOut => "timed-out",
            FaultClass::Corrupted => "corrupted",
            FaultClass::ReplayDiverged => "replay-diverged",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let fault = Fault {
            step: 12,
            pc: 0x1040,
            effect: FaultEffect::FlipInstructionBit { byte: 1, bit: 7 },
        };
        let text = fault.to_string();
        assert!(text.contains("12") && text.contains("0x1040") && text.contains("bit 7"), "{text}");
    }

    #[test]
    fn class_display_covers_all() {
        for class in FaultClass::ALL {
            assert!(!class.to_string().is_empty());
        }
    }

    fn skip(step: u64) -> Fault {
        Fault { step, pc: 0x1000 + step * 4, effect: FaultEffect::SkipInstruction }
    }

    #[test]
    fn plans_sort_into_step_order() {
        let plan = FaultPlan::new([skip(9), skip(3), skip(7)]);
        assert_eq!(plan.order(), 3);
        let steps: Vec<u64> = plan.iter().map(|f| f.step).collect();
        assert_eq!(steps, vec![3, 7, 9]);
        assert_eq!(plan.first().step, 3);
        assert_eq!(plan.last().step, 9);
        assert_eq!(plan.earliest_step(), 3);
        // Canonical ordering makes construction order invisible.
        assert_eq!(plan, FaultPlan::new([skip(3), skip(7), skip(9)]));
    }

    #[test]
    fn singleton_plans_match_their_fault() {
        let fault = skip(12);
        let plan = FaultPlan::single(fault);
        assert_eq!(plan.order(), 1);
        assert_eq!(plan.first(), &fault);
        assert_eq!(plan.last(), &fault);
        assert_eq!(plan.to_string(), fault.to_string());
        assert_eq!(plan, FaultPlan::from(fault));
        assert_eq!(plan, FaultPlan::new([fault]));
    }

    #[test]
    fn plan_equality_and_hashing_see_only_the_injection_list() {
        use std::collections::HashSet;
        let pair = FaultPlan::new([skip(2), skip(5)]);
        let triple = FaultPlan::new([skip(2), skip(5), skip(6)]);
        assert_ne!(pair, triple);
        assert_ne!(FaultPlan::single(skip(2)), pair);
        let set: HashSet<FaultPlan> =
            [pair.clone(), triple.clone(), FaultPlan::new([skip(5), skip(2)])]
                .into_iter()
                .collect();
        assert_eq!(set.len(), 2, "reordered construction is the same plan");
        assert!(set.contains(&pair) && set.contains(&triple));
    }

    #[test]
    fn plan_display_joins_injections() {
        let plan = FaultPlan::new([skip(1), skip(4)]);
        let text = plan.to_string();
        assert!(
            text.contains("step 1") && text.contains(" + ") && text.contains("step 4"),
            "{text}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one injection")]
    fn empty_plans_are_rejected() {
        let _ = FaultPlan::new([]);
    }

    #[test]
    fn same_step_injections_keep_their_sequence() {
        let a = Fault { step: 4, pc: 0x1010, effect: FaultEffect::FlipFlags { mask: 1 } };
        let b = Fault { step: 4, pc: 0x1010, effect: FaultEffect::SkipInstruction };
        let plan = FaultPlan::new([a, b]);
        let effects: Vec<FaultEffect> = plan.iter().map(|f| f.effect).collect();
        assert_eq!(effects, vec![a.effect, b.effect], "stable sort preserves same-step order");
    }
}
