//! Fault sites, concrete faults, and outcome classes.

use rr_isa::{Instr, Reg};
use std::fmt;

/// A point in the golden bad-input trace where faults can be injected:
/// instruction `insn` (of encoded length `len`) was about to execute at
/// trace step `step` with the program counter at `pc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSite {
    /// 0-based index into the execution trace.
    pub step: u64,
    /// Address of the instruction.
    pub pc: u64,
    /// The decoded instruction.
    pub insn: Instr,
    /// Its encoded length in bytes.
    pub len: usize,
}

/// The physical effect a fault model injects at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultEffect {
    /// Do not execute the instruction; continue at the next one.
    SkipInstruction,
    /// Flip one bit of the instruction's encoding in memory. Persistent
    /// for the remainder of the run (the paper's single-bit-flip model).
    FlipInstructionBit {
        /// Byte index within the instruction (0-based).
        byte: usize,
        /// Bit index within that byte (0–7).
        bit: u8,
    },
    /// Flip one bit of a register, transiently, just before execution.
    FlipRegisterBit {
        /// The register.
        reg: Reg,
        /// Bit index (0–63).
        bit: u8,
    },
    /// XOR the packed condition flags with a mask just before execution.
    FlipFlags {
        /// Mask over the packed NZCV bits (see [`rr_isa::Flags::to_bits`]).
        mask: u8,
    },
}

impl fmt::Display for FaultEffect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEffect::SkipInstruction => write!(f, "skip"),
            FaultEffect::FlipInstructionBit { byte, bit } => {
                write!(f, "flip insn byte {byte} bit {bit}")
            }
            FaultEffect::FlipRegisterBit { reg, bit } => write!(f, "flip {reg} bit {bit}"),
            FaultEffect::FlipFlags { mask } => write!(f, "flip flags mask {mask:#x}"),
        }
    }
}

/// One concrete injectable fault: an effect at a trace site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Trace step at which the effect is applied.
    pub step: u64,
    /// Program counter of the targeted instruction.
    pub pc: u64,
    /// What the fault does.
    pub effect: FaultEffect,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "step {} @ {:#x}: {}", self.step, self.pc, self.effect)
    }
}

/// How a faulted run compared against the golden runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Behaved like the **good** run — a successful fault, i.e. a
    /// vulnerability the patcher must fix.
    Success,
    /// Behaved like the (unfaulted) **bad** run — the fault had no
    /// attacker-relevant effect.
    Benign,
    /// The machine crashed (any [`rr_emu::CpuFault`]); detectable.
    Crashed,
    /// The run exceeded its step budget; detectable.
    TimedOut,
    /// Exited normally but matched neither golden behaviour.
    Corrupted,
    /// The golden-trace replay to the injection point did not arrive at
    /// the expected program counter (or stopped early). The emulator's
    /// determinism contract makes this unreachable for well-formed
    /// campaigns; it is reported as a class instead of panicking so a
    /// violated contract degrades one fault's result, not the process.
    ReplayDiverged,
}

impl FaultClass {
    /// All classes, in reporting order.
    pub const ALL: [FaultClass; 6] = [
        FaultClass::Success,
        FaultClass::Benign,
        FaultClass::Crashed,
        FaultClass::TimedOut,
        FaultClass::Corrupted,
        FaultClass::ReplayDiverged,
    ];
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultClass::Success => "success",
            FaultClass::Benign => "benign",
            FaultClass::Crashed => "crashed",
            FaultClass::TimedOut => "timed-out",
            FaultClass::Corrupted => "corrupted",
            FaultClass::ReplayDiverged => "replay-diverged",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let fault = Fault {
            step: 12,
            pc: 0x1040,
            effect: FaultEffect::FlipInstructionBit { byte: 1, bit: 7 },
        };
        let text = fault.to_string();
        assert!(text.contains("12") && text.contains("0x1040") && text.contains("bit 7"), "{text}");
    }

    #[test]
    fn class_display_covers_all() {
        for class in FaultClass::ALL {
            assert!(!class.to_string().is_empty());
        }
    }
}
