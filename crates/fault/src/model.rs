//! Fault models: enumerating concrete faults at a trace site, and the
//! plan combinators that expand them into multi-fault injection plans.

use crate::analysis::{fault_verdict, Analysis, StaticVerdict};
use crate::site::{Fault, FaultEffect, FaultPlan, FaultSite};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rr_isa::Reg;
use std::collections::BTreeSet;

/// A fault model enumerates the concrete faults an attacker with a given
/// physical capability could inject at one execution-trace site.
///
/// Implementations must be [`Sync`]: campaigns evaluate faults from
/// multiple threads.
pub trait FaultModel: Sync {
    /// The model's name, used in reports (e.g. `"instruction-skip"`).
    fn name(&self) -> &'static str;

    /// All faults this model can inject at `site`.
    fn faults_at(&self, site: &FaultSite) -> Vec<Fault>;
}

/// The paper's **instruction skip** model: each executed instruction can be
/// skipped exactly once.
#[derive(Debug, Clone, Copy, Default)]
pub struct InstructionSkip;

impl FaultModel for InstructionSkip {
    fn name(&self) -> &'static str {
        "instruction-skip"
    }

    fn faults_at(&self, site: &FaultSite) -> Vec<Fault> {
        vec![Fault { step: site.step, pc: site.pc, effect: FaultEffect::SkipInstruction }]
    }
}

/// The paper's **single bit flip** model: one bit anywhere in the encoded
/// bytes of the instruction about to execute is flipped (persistently, as a
/// glitched instruction fetch latched into the pipeline/cache would be).
#[derive(Debug, Clone, Copy, Default)]
pub struct SingleBitFlip;

impl FaultModel for SingleBitFlip {
    fn name(&self) -> &'static str {
        "single-bit-flip"
    }

    fn faults_at(&self, site: &FaultSite) -> Vec<Fault> {
        let mut faults = Vec::with_capacity(site.len * 8);
        for byte in 0..site.len {
            for bit in 0..8u8 {
                faults.push(Fault {
                    step: site.step,
                    pc: site.pc,
                    effect: FaultEffect::FlipInstructionBit { byte, bit },
                });
            }
        }
        faults
    }
}

/// Transient single-bit corruption of architectural registers just before
/// an instruction executes. An *extension* model (not in the paper's
/// evaluation); restrict `regs`/`bits` to keep campaigns tractable.
#[derive(Debug, Clone)]
pub struct RegisterBitFlip {
    /// Registers to target.
    pub regs: Vec<Reg>,
    /// Bit positions to flip (0–63).
    pub bits: Vec<u8>,
}

impl RegisterBitFlip {
    /// Targets the low `n_bits` bits of every register.
    pub fn low_bits(n_bits: u8) -> RegisterBitFlip {
        RegisterBitFlip { regs: Reg::ALL.to_vec(), bits: (0..n_bits).collect() }
    }
}

impl FaultModel for RegisterBitFlip {
    fn name(&self) -> &'static str {
        "register-bit-flip"
    }

    fn faults_at(&self, site: &FaultSite) -> Vec<Fault> {
        let mut faults = Vec::with_capacity(self.regs.len() * self.bits.len());
        for &reg in &self.regs {
            for &bit in &self.bits {
                faults.push(Fault {
                    step: site.step,
                    pc: site.pc,
                    effect: FaultEffect::FlipRegisterBit { reg, bit },
                });
            }
        }
        faults
    }
}

/// Transient corruption of the condition flags just before an instruction
/// executes — the minimal model for "the glitch changed the jump
/// condition". An extension model.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlagFlip;

impl FaultModel for FlagFlip {
    fn name(&self) -> &'static str {
        "flag-flip"
    }

    fn faults_at(&self, site: &FaultSite) -> Vec<Fault> {
        (0..4)
            .map(|bit| Fault {
                step: site.step,
                pc: site.pc,
                effect: FaultEffect::FlipFlags { mask: 1 << bit },
            })
            .collect()
    }
}

/// How higher-order plans combine single-site faults across trace sites.
///
/// Exhaustive pair (and triple, …) spaces are cross-products and explode
/// quickly; [`WithinWindow`](PairPolicy::WithinWindow) keeps campaigns
/// focused on the physically plausible case of glitches fired in quick
/// succession, and [`PlanConfig::budget`] bounds whatever space remains
/// by deterministic random sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairPolicy {
    /// Every combination of faults at strictly increasing trace steps.
    Pairs,
    /// Only combinations whose *consecutive* injections are at most
    /// `max_gap` trace steps apart — the double-glitch attacker with a
    /// bounded re-arm time.
    WithinWindow {
        /// Maximum step distance between consecutive injections.
        max_gap: u64,
    },
}

/// Plan-space configuration: how a campaign expands each fault model's
/// per-site faults into ordered [`FaultPlan`]s.
///
/// Order 1 (the default) is the classic single-fault campaign — one
/// singleton plan per fault, in site order. Order `k` adds every
/// plan of 2..=k injections the [`PairPolicy`] admits, each order
/// independently capped by `budget` via seeded uniform sampling
/// ([`PlanConfig::seed`]), so sampled multi-fault campaigns are exactly
/// reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanConfig {
    /// Maximum injections per plan (≥ 1). Plans of *every* order up to
    /// this are enumerated, so an order-2 campaign subsumes order 1.
    pub order: usize,
    /// How multi-fault plans combine sites.
    pub policy: PairPolicy,
    /// Cap on enumerated plans *per model per order above 1*; when the
    /// exhaustive space is larger, `budget` plans are drawn uniformly
    /// (deterministically, from `seed`). `None` = exhaustive.
    pub budget: Option<usize>,
    /// Seed for budgeted sampling, echoed in reports so sampled
    /// campaigns can be reproduced.
    pub seed: u64,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig { order: 1, policy: PairPolicy::Pairs, budget: None, seed: 0 }
    }
}

/// The enumerated plan space of one model over one site list.
#[derive(Debug, Clone)]
pub struct PlanSet {
    /// The plans, singletons first (site order), then each higher order
    /// in canonical (site, fault) lexicographic order.
    pub plans: Vec<FaultPlan>,
    /// Exhaustive space size per order, `(order, total)` — totals can
    /// exceed the enumerated count when sampling kicked in. When static
    /// pruning is active these count the *pruned* space, so any sampling
    /// budget is spent entirely on plans worth executing.
    pub total_by_order: Vec<(usize, u128)>,
    /// Plans the static analysis removed per order, `(order, pruned)` —
    /// all zeros when enumeration ran without an analysis.
    pub pruned_by_order: Vec<(usize, u128)>,
    /// Whether any order was down-sampled to the budget.
    pub sampled: bool,
}

/// Expands `model`'s faults over `sites` into the plan space `config`
/// describes: every fault as a singleton plan (site order — identical to
/// the classic single-fault campaign), plus, for each order `m` in
/// `2..=config.order`, every `m`-tuple of faults at strictly increasing
/// trace steps admitted by the pair policy (two injections never share a
/// step: two glitches at the same instant are physically one glitch).
///
/// Each order above 1 is budget-capped independently: when its
/// exhaustive count exceeds `config.budget`, that many plans are drawn
/// uniformly without replacement using a generator seeded from
/// `config.seed` — the same seed always selects the same plans.
pub fn enumerate_plans(
    model: &dyn FaultModel,
    sites: &[&FaultSite],
    config: &PlanConfig,
) -> PlanSet {
    enumerate_plans_pruned(model, sites, config, None)
}

/// [`enumerate_plans`] with static pruning.
///
/// The pruning rule is the only compositionally sound one: a plan is
/// dropped **iff every one of its faults** is proved
/// [`StaticVerdict::Benign`] by the `analysis`. (Dropping plans with
/// merely *some* benign members would be unsound — a benign fault's dead
/// state delta is simply absorbed, leaving the remaining members' full
/// effect, so such a plan classifies exactly like its non-benign core
/// and may well be a `Success`.) Pruning happens *before* higher orders
/// are counted and any sampling budget is normalized, so the budget is
/// spent entirely on plans that could matter. The removed counts per
/// order are reported in [`PlanSet::pruned_by_order`]. With
/// `analysis == None` this is exactly [`enumerate_plans`].
pub fn enumerate_plans_pruned(
    model: &dyn FaultModel,
    sites: &[&FaultSite],
    config: &PlanConfig,
    analysis: Option<&Analysis>,
) -> PlanSet {
    let faults = model_faults(model, sites);
    // One fused pass for the singles: the per-site mask vectors are only
    // materialized when an order ≥ 2 counting DP actually needs them —
    // order-1 campaigns on long traces are latency-sensitive.
    let mut plans: Vec<FaultPlan> = Vec::new();
    let mut pruned_singles = 0u128;
    for site_faults in &faults {
        for fault in site_faults {
            if analysis.is_some_and(|a| fault_verdict(a, fault) == StaticVerdict::Benign) {
                pruned_singles += 1;
            } else {
                plans.push(FaultPlan::single(*fault));
            }
        }
    }
    let mut total_by_order = vec![(1, plans.len() as u128)];
    let mut pruned_by_order = vec![(1, pruned_singles)];
    let mut sampled = false;
    if config.order >= 2 {
        let benign = benign_mask(&faults, analysis);
        let space = PlanSpace::new(sites, faults, benign, config.policy, config.order);
        sampled = append_higher_orders(
            &space,
            config,
            &mut plans,
            &mut total_by_order,
            &mut pruned_by_order,
        );
    }
    PlanSet { plans, total_by_order, pruned_by_order, sampled }
}

/// How many plans static pruning removes per order, `(order, pruned)` —
/// singleton benign faults at order 1, all-benign chains above. The
/// counting DP is O(order × sites); cheap next to executing even one
/// plan.
pub(crate) fn pruned_counts_by_order(
    model: &dyn FaultModel,
    sites: &[&FaultSite],
    config: &PlanConfig,
    analysis: &Analysis,
) -> Vec<(usize, u128)> {
    let faults = model_faults(model, sites);
    let benign = benign_mask(&faults, Some(analysis));
    let singles: u128 = benign.iter().flatten().filter(|&&b| b).count() as u128;
    let mut counts = vec![(1, singles)];
    if config.order >= 2 {
        let space = PlanSpace::new(sites, faults, benign, config.policy, config.order);
        for order in 2..=config.order {
            counts.push((order, space.pruned_total(order)));
        }
    }
    counts
}

/// The higher-order (2..=`config.order`) plans alone — for consumers
/// that stream the singleton portion separately. Only call with a
/// sampling budget set: the materialized list is then at most
/// `budget × (order − 1)` plans. Unbudgeted consumers should fold over
/// [`plan_space`] + [`PlanSpace::for_each_starting_at`] instead, which
/// never materializes the cross-product.
pub(crate) fn higher_order_plans(
    model: &dyn FaultModel,
    sites: &[&FaultSite],
    config: &PlanConfig,
    analysis: Option<&Analysis>,
) -> Vec<FaultPlan> {
    let faults = model_faults(model, sites);
    let benign = benign_mask(&faults, analysis);
    let mut plans = Vec::new();
    if config.order >= 2 {
        let space = PlanSpace::new(sites, faults, benign, config.policy, config.order);
        append_higher_orders(&space, config, &mut plans, &mut Vec::new(), &mut Vec::new());
    }
    plans
}

/// Builds the counting/enumeration machinery for `model` over `sites`
/// — the lazy counterpart of [`higher_order_plans`] for streaming
/// consumers.
pub(crate) fn plan_space(
    model: &dyn FaultModel,
    sites: &[&FaultSite],
    config: &PlanConfig,
    analysis: Option<&Analysis>,
) -> PlanSpace {
    let faults = model_faults(model, sites);
    let benign = benign_mask(&faults, analysis);
    PlanSpace::new(sites, faults, benign, config.policy, config.order)
}

/// Each site's full fault list, aligned to `sites`.
fn model_faults(model: &dyn FaultModel, sites: &[&FaultSite]) -> Vec<Vec<Fault>> {
    sites.iter().map(|site| model.faults_at(site)).collect()
}

/// Per-fault benign flags aligned to `faults`; all `false` without an
/// analysis.
fn benign_mask(faults: &[Vec<Fault>], analysis: Option<&Analysis>) -> Vec<Vec<bool>> {
    match analysis {
        Some(analysis) => faults
            .iter()
            .map(|site_faults| {
                site_faults
                    .iter()
                    .map(|fault| fault_verdict(analysis, fault) == StaticVerdict::Benign)
                    .collect()
            })
            .collect(),
        None => faults.iter().map(|site_faults| vec![false; site_faults.len()]).collect(),
    }
}

/// Appends orders 2..=`config.order` to `plans` (and their kept/pruned
/// totals to `total_by_order`/`pruned_by_order`), sampling any order
/// whose kept space exceeds the budget. Returns whether sampling kicked
/// in.
fn append_higher_orders(
    space: &PlanSpace,
    config: &PlanConfig,
    plans: &mut Vec<FaultPlan>,
    total_by_order: &mut Vec<(usize, u128)>,
    pruned_by_order: &mut Vec<(usize, u128)>,
) -> bool {
    let mut sampled = false;
    for order in 2..=config.order {
        let total = space.total(order);
        total_by_order.push((order, total));
        pruned_by_order.push((order, space.pruned_total(order)));
        match config.budget.map(|b| b as u128) {
            Some(budget) if total > budget => {
                sampled = true;
                // Draw distinct plan indices uniformly; the BTreeSet
                // both deduplicates and yields them in ascending
                // (canonical) order. Seeded per order so adding an
                // order never reshuffles the ones below it.
                let mut rng = StdRng::seed_from_u64(config.seed ^ order as u64);
                let mut drawn: BTreeSet<u128> = BTreeSet::new();
                while (drawn.len() as u128) < budget {
                    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    drawn.insert(wide % total);
                }
                plans.extend(drawn.into_iter().map(|index| space.unrank(order, index)));
            }
            _ => space.generate_all(order, plans),
        }
    }
    sampled
}

/// Counting/unranking machinery over the multi-fault cross-product,
/// minus the statically-pruned (all-benign) chains.
///
/// `counts[t-1][i]` is the number of `t`-injection chains whose earliest
/// injection sits at site `i` — in `u128`, since pair and triple spaces
/// overflow `u64` on long traces — and `benign_counts[t-1][i]` the
/// subset built from benign faults only. The *kept* space every public
/// query works over is their difference: a chain survives pruning iff at
/// least one member is non-benign. Counting lets budgeted sampling draw
/// uniform kept plans by *index* and materialize only the drawn ones, so
/// the exhaustive cross-product is never held in memory; streaming
/// consumers visit plans one at a time through
/// [`PlanSpace::for_each_starting_at`]. Without an analysis the benign
/// DP is identically zero and the kept space is the full one.
pub(crate) struct PlanSpace {
    steps: Vec<u64>,
    faults: Vec<Vec<Fault>>,
    benign: Vec<Vec<bool>>,
    policy: PairPolicy,
    counts: Vec<Vec<u128>>,
    benign_counts: Vec<Vec<u128>>,
    /// `suffix[t][i]` = Σ_{j ≥ i} `counts[t][j]` (length n+1 per level).
    suffix: Vec<Vec<u128>>,
    benign_suffix: Vec<Vec<u128>>,
}

/// Suffix sums of `row`, one slot longer (`out[i] = Σ_{j ≥ i} row[j]`).
fn suffix_sums(row: &[u128]) -> Vec<u128> {
    let mut out = vec![0u128; row.len() + 1];
    for i in (0..row.len()).rev() {
        out[i] = out[i + 1] + row[i];
    }
    out
}

impl PlanSpace {
    fn new(
        sites: &[&FaultSite],
        faults: Vec<Vec<Fault>>,
        benign: Vec<Vec<bool>>,
        policy: PairPolicy,
        max_order: usize,
    ) -> PlanSpace {
        let steps: Vec<u64> = sites.iter().map(|s| s.step).collect();
        let mut space = PlanSpace {
            counts: vec![faults.iter().map(|f| f.len() as u128).collect()],
            benign_counts: vec![benign
                .iter()
                .map(|m| m.iter().filter(|&&b| b).count() as u128)
                .collect()],
            suffix: Vec::new(),
            benign_suffix: Vec::new(),
            steps,
            faults,
            benign,
            policy,
        };
        let n = space.steps.len();
        while space.counts.len() < max_order {
            // A chain at site i continues to any site in
            // (i, successor_end(i)], so its continuation count is a
            // suffix-sum difference — for the full DP and the
            // benign-only DP alike.
            let all = suffix_sums(space.counts.last().expect("order-1 counts seed the DP"));
            let ben = suffix_sums(space.benign_counts.last().expect("benign DP seeded too"));
            let (mut next_all, mut next_ben) = (Vec::with_capacity(n), Vec::with_capacity(n));
            for i in 0..n {
                let end = space.successor_end(i) + 1;
                next_all.push(space.counts[0][i] * (all[i + 1] - all[end]));
                next_ben.push(space.benign_counts[0][i] * (ben[i + 1] - ben[end]));
            }
            space.counts.push(next_all);
            space.benign_counts.push(next_ben);
        }
        space.suffix = space.counts.iter().map(|row| suffix_sums(row)).collect();
        space.benign_suffix = space.benign_counts.iter().map(|row| suffix_sums(row)).collect();
        space
    }

    /// Index of the last site a chain at site `i` may continue to.
    fn successor_end(&self, i: usize) -> usize {
        match self.policy {
            PairPolicy::Pairs => self.steps.len().saturating_sub(1),
            PairPolicy::WithinWindow { max_gap } => {
                let limit = self.steps[i].saturating_add(max_gap);
                self.steps.partition_point(|&s| s <= limit) - 1
            }
        }
    }

    /// Continuation counts through site `i`'s window at DP level
    /// `level` (0-based): `(all, benign-only)`.
    fn window(&self, level: usize, i: usize) -> (u128, u128) {
        let end = self.successor_end(i) + 1;
        (
            self.suffix[level][i + 1] - self.suffix[level][end],
            self.benign_suffix[level][i + 1] - self.benign_suffix[level][end],
        )
    }

    /// Number of kept (not statically pruned) order-`order` plans.
    fn total(&self, order: usize) -> u128 {
        self.suffix[order - 1][0] - self.benign_suffix[order - 1][0]
    }

    /// Number of statically pruned (all-benign) order-`order` plans.
    fn pruned_total(&self, order: usize) -> u128 {
        self.benign_suffix[order - 1][0]
    }

    /// The `index`-th *kept* order-`order` plan, in the canonical
    /// lexicographic order by (first site, first fault, then the suffix
    /// recursively). `carried` tracks whether the chosen prefix already
    /// contains a non-benign fault; until it does, continuations must
    /// contribute one, which is exactly the full-minus-benign count.
    fn unrank(&self, order: usize, mut index: u128) -> FaultPlan {
        let mut faults = Vec::with_capacity(order);
        let mut from = 0;
        let mut carried = false;
        for level in (1..=order).rev() {
            let mut site = from;
            // Linear scan from the window start; plans cluster near their
            // predecessor, so the scan is short for windowed policies.
            loop {
                let site_kept = if carried {
                    self.counts[level - 1][site]
                } else {
                    self.counts[level - 1][site] - self.benign_counts[level - 1][site]
                };
                if index < site_kept {
                    break;
                }
                index -= site_kept;
                site += 1;
            }
            let (win_all, win_ben) = if level == 1 { (1, 1) } else { self.window(level - 2, site) };
            let mut chosen = None;
            for (fault_index, &fault) in self.faults[site].iter().enumerate() {
                let benign = self.benign[site][fault_index];
                let continuations = if carried || !benign {
                    win_all
                } else if level == 1 {
                    0 // an all-benign completion is pruned, not kept
                } else {
                    win_all - win_ben
                };
                if index < continuations {
                    chosen = Some((fault, benign));
                    break;
                }
                index -= continuations;
            }
            let (fault, benign) = chosen.expect("kept-plan index within the space");
            carried |= !benign;
            faults.push(fault);
            from = site + 1;
        }
        FaultPlan::new(faults)
    }

    /// Appends every kept order-`order` plan in canonical order.
    fn generate_all(&self, order: usize, out: &mut Vec<FaultPlan>) {
        let mut chain = Vec::with_capacity(order);
        self.generate_from(
            order,
            0,
            self.steps.len().saturating_sub(1),
            false,
            &mut chain,
            &mut |plan| out.push(plan),
        );
    }

    /// Visits every kept plan of every order in `2..=max_order` whose
    /// **earliest** injection sits at `site`, one at a time — nothing is
    /// materialized, so a streaming fold over first-injection sites
    /// covers the kept multi-fault space (each plan exactly once) in
    /// O(1) extra memory per worker.
    pub(crate) fn for_each_starting_at(
        &self,
        max_order: usize,
        site: usize,
        visit: &mut impl FnMut(FaultPlan),
    ) {
        let mut chain = Vec::with_capacity(max_order);
        for order in 2..=max_order {
            for index in 0..self.faults[site].len() {
                chain.push(self.faults[site][index]);
                self.generate_from(
                    order - 1,
                    site + 1,
                    self.successor_end(site),
                    !self.benign[site][index],
                    &mut chain,
                    visit,
                );
                chain.pop();
            }
        }
    }

    fn generate_from(
        &self,
        remaining: usize,
        from: usize,
        to: usize,
        carried: bool,
        chain: &mut Vec<Fault>,
        visit: &mut impl FnMut(FaultPlan),
    ) {
        if remaining == 0 {
            // All-benign chains are the pruned ones; emit the rest.
            if carried {
                visit(FaultPlan::new(chain.iter().copied()));
            }
            return;
        }
        if from > to || from >= self.steps.len() {
            return;
        }
        for site in from..=to {
            for index in 0..self.faults[site].len() {
                chain.push(self.faults[site][index]);
                self.generate_from(
                    remaining - 1,
                    site + 1,
                    self.successor_end(site),
                    carried || !self.benign[site][index],
                    chain,
                    visit,
                );
                chain.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_isa::Instr;

    fn site(len: usize) -> FaultSite {
        FaultSite { step: 3, pc: 0x1010, insn: Instr::Nop, len }
    }

    #[test]
    fn skip_yields_one_fault_per_site() {
        let faults = InstructionSkip.faults_at(&site(6));
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].effect, FaultEffect::SkipInstruction);
        assert_eq!(faults[0].step, 3);
    }

    #[test]
    fn bit_flip_enumerates_every_bit() {
        let faults = SingleBitFlip.faults_at(&site(6));
        assert_eq!(faults.len(), 48);
        // All distinct.
        let unique: std::collections::HashSet<_> = faults.iter().map(|f| f.effect).collect();
        assert_eq!(unique.len(), 48);
    }

    #[test]
    fn register_model_respects_configuration() {
        let model = RegisterBitFlip { regs: vec![Reg::R1, Reg::R2], bits: vec![0, 63] };
        assert_eq!(model.faults_at(&site(1)).len(), 4);
        assert_eq!(RegisterBitFlip::low_bits(2).faults_at(&site(1)).len(), 32);
    }

    #[test]
    fn flag_model_targets_four_bits() {
        assert_eq!(FlagFlip.faults_at(&site(1)).len(), 4);
    }

    fn sites_at(steps: &[u64]) -> Vec<FaultSite> {
        steps
            .iter()
            .map(|&step| FaultSite { step, pc: 0x1000 + step * 4, insn: Instr::Nop, len: 4 })
            .collect()
    }

    fn refs(sites: &[FaultSite]) -> Vec<&FaultSite> {
        sites.iter().collect()
    }

    #[test]
    fn order_one_enumeration_matches_the_flat_fault_list() {
        let sites = sites_at(&[0, 1, 2, 5]);
        let set = enumerate_plans(&SingleBitFlip, &refs(&sites), &PlanConfig::default());
        let flat: Vec<Fault> = sites.iter().flat_map(|s| SingleBitFlip.faults_at(s)).collect();
        assert_eq!(set.plans.len(), flat.len());
        assert!(!set.sampled);
        assert_eq!(set.total_by_order, vec![(1, flat.len() as u128)]);
        for (plan, fault) in set.plans.iter().zip(&flat) {
            assert_eq!(plan.order(), 1);
            assert_eq!(plan.first(), fault, "singleton plans keep site order");
        }
    }

    #[test]
    fn pairs_cover_the_cross_product_of_distinct_steps() {
        let sites = sites_at(&[0, 1, 2, 3]);
        let config = PlanConfig { order: 2, ..PlanConfig::default() };
        let set = enumerate_plans(&InstructionSkip, &refs(&sites), &config);
        // 4 singletons + C(4,2) = 6 pairs.
        assert_eq!(set.plans.len(), 4 + 6);
        assert_eq!(set.total_by_order, vec![(1, 4), (2, 6)]);
        let pairs: Vec<&FaultPlan> = set.plans.iter().filter(|p| p.order() == 2).collect();
        assert_eq!(pairs.len(), 6);
        for pair in &pairs {
            let steps: Vec<u64> = pair.iter().map(|f| f.step).collect();
            assert!(steps[0] < steps[1], "strictly increasing steps: {steps:?}");
        }
        // All distinct.
        let unique: std::collections::HashSet<&FaultPlan> = pairs.iter().copied().collect();
        assert_eq!(unique.len(), 6);
    }

    #[test]
    fn window_policy_bounds_consecutive_gaps() {
        let sites = sites_at(&[0, 2, 4, 10, 11]);
        let config = PlanConfig {
            order: 2,
            policy: PairPolicy::WithinWindow { max_gap: 2 },
            ..PlanConfig::default()
        };
        let set = enumerate_plans(&InstructionSkip, &refs(&sites), &config);
        let pairs: Vec<Vec<u64>> = set
            .plans
            .iter()
            .filter(|p| p.order() == 2)
            .map(|p| p.iter().map(|f| f.step).collect())
            .collect();
        // (0,2), (2,4), (10,11): the 4→10 and wider gaps are excluded.
        assert_eq!(pairs, vec![vec![0, 2], vec![2, 4], vec![10, 11]]);
    }

    #[test]
    fn triples_chain_the_window_constraint() {
        let sites = sites_at(&[0, 1, 2, 3, 9]);
        let config = PlanConfig {
            order: 3,
            policy: PairPolicy::WithinWindow { max_gap: 1 },
            ..PlanConfig::default()
        };
        let set = enumerate_plans(&InstructionSkip, &refs(&sites), &config);
        let triples: Vec<Vec<u64>> = set
            .plans
            .iter()
            .filter(|p| p.order() == 3)
            .map(|p| p.iter().map(|f| f.step).collect())
            .collect();
        assert_eq!(triples, vec![vec![0, 1, 2], vec![1, 2, 3]]);
        // Orders 1 and 2 ride along: an order-3 campaign subsumes both.
        assert_eq!(set.total_by_order.len(), 3);
        assert!(set.plans.iter().any(|p| p.order() == 1));
        assert!(set.plans.iter().any(|p| p.order() == 2));
    }

    #[test]
    fn budget_sampling_is_deterministic_and_within_the_space() {
        let sites = sites_at(&(0..40).collect::<Vec<u64>>());
        let exhaustive = enumerate_plans(
            &InstructionSkip,
            &refs(&sites),
            &PlanConfig { order: 2, ..PlanConfig::default() },
        );
        let full: std::collections::HashSet<FaultPlan> =
            exhaustive.plans.iter().filter(|p| p.order() == 2).cloned().collect();
        assert_eq!(full.len(), 40 * 39 / 2);

        let config = PlanConfig { order: 2, budget: Some(50), seed: 7, ..PlanConfig::default() };
        let a = enumerate_plans(&InstructionSkip, &refs(&sites), &config);
        let b = enumerate_plans(&InstructionSkip, &refs(&sites), &config);
        assert!(a.sampled);
        assert_eq!(a.plans, b.plans, "same seed, same sample");
        let sampled: Vec<&FaultPlan> = a.plans.iter().filter(|p| p.order() == 2).collect();
        assert_eq!(sampled.len(), 50, "budget is honoured exactly");
        for plan in &sampled {
            assert!(full.contains(plan), "sample drawn from the exhaustive space");
        }
        // Distinct draws, canonical (ascending-index) order.
        let unique: std::collections::HashSet<&FaultPlan> = sampled.iter().copied().collect();
        assert_eq!(unique.len(), 50);

        let other =
            enumerate_plans(&InstructionSkip, &refs(&sites), &PlanConfig { seed: 8, ..config });
        assert_ne!(a.plans, other.plans, "a different seed draws a different sample");
        // A budget at or above the space size enumerates exhaustively.
        let roomy = enumerate_plans(
            &InstructionSkip,
            &refs(&sites),
            &PlanConfig { budget: Some(10_000), ..config },
        );
        assert!(!roomy.sampled);
        assert_eq!(roomy.plans.len(), exhaustive.plans.len());
    }

    #[test]
    fn empty_and_tiny_site_lists_degrade_gracefully() {
        let config = PlanConfig { order: 2, ..PlanConfig::default() };
        let set = enumerate_plans(&InstructionSkip, &[], &config);
        assert!(set.plans.is_empty());
        assert_eq!(set.total_by_order, vec![(1, 0), (2, 0)]);
        // One site: a singleton plan, no pairs.
        let sites = sites_at(&[3]);
        let set = enumerate_plans(&InstructionSkip, &refs(&sites), &config);
        assert_eq!(set.plans.len(), 1);
        assert_eq!(set.total_by_order, vec![(1, 1), (2, 0)]);
    }

    #[test]
    fn unranked_samples_match_exhaustive_enumeration_order() {
        // Sampling with a budget of the full space size must reproduce
        // the exhaustive enumeration exactly (every index drawn, emitted
        // ascending) — pins unrank() against generate_all().
        let sites = sites_at(&[0, 1, 2, 5, 6, 9]);
        let bitflip_pairs = |budget| {
            enumerate_plans(
                &FlagFlip,
                &refs(&sites),
                &PlanConfig {
                    order: 2,
                    policy: PairPolicy::WithinWindow { max_gap: 4 },
                    budget,
                    seed: 3,
                },
            )
        };
        let exhaustive = bitflip_pairs(None);
        let total = exhaustive.total_by_order[1].1 as usize;
        assert!(total > 10);
        // Force the sampling path with a budget one below the space,
        // then check the drawn plans are a subset in canonical order.
        let sampled = bitflip_pairs(Some(total - 1));
        assert!(sampled.sampled);
        let exhaustive_pairs: Vec<&FaultPlan> =
            exhaustive.plans.iter().filter(|p| p.order() == 2).collect();
        let sampled_pairs: Vec<&FaultPlan> =
            sampled.plans.iter().filter(|p| p.order() == 2).collect();
        assert_eq!(sampled_pairs.len(), total - 1);
        let mut cursor = exhaustive_pairs.iter();
        for plan in sampled_pairs {
            assert!(cursor.any(|p| p == &plan), "sampled plans appear in exhaustive order: {plan}");
        }
    }
}
