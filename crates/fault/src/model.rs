//! Fault models: enumerating concrete faults at a trace site.

use crate::site::{Fault, FaultEffect, FaultSite};
use rr_isa::Reg;

/// A fault model enumerates the concrete faults an attacker with a given
/// physical capability could inject at one execution-trace site.
///
/// Implementations must be [`Sync`]: campaigns evaluate faults from
/// multiple threads.
pub trait FaultModel: Sync {
    /// The model's name, used in reports (e.g. `"instruction-skip"`).
    fn name(&self) -> &'static str;

    /// All faults this model can inject at `site`.
    fn faults_at(&self, site: &FaultSite) -> Vec<Fault>;
}

/// The paper's **instruction skip** model: each executed instruction can be
/// skipped exactly once.
#[derive(Debug, Clone, Copy, Default)]
pub struct InstructionSkip;

impl FaultModel for InstructionSkip {
    fn name(&self) -> &'static str {
        "instruction-skip"
    }

    fn faults_at(&self, site: &FaultSite) -> Vec<Fault> {
        vec![Fault { step: site.step, pc: site.pc, effect: FaultEffect::SkipInstruction }]
    }
}

/// The paper's **single bit flip** model: one bit anywhere in the encoded
/// bytes of the instruction about to execute is flipped (persistently, as a
/// glitched instruction fetch latched into the pipeline/cache would be).
#[derive(Debug, Clone, Copy, Default)]
pub struct SingleBitFlip;

impl FaultModel for SingleBitFlip {
    fn name(&self) -> &'static str {
        "single-bit-flip"
    }

    fn faults_at(&self, site: &FaultSite) -> Vec<Fault> {
        let mut faults = Vec::with_capacity(site.len * 8);
        for byte in 0..site.len {
            for bit in 0..8u8 {
                faults.push(Fault {
                    step: site.step,
                    pc: site.pc,
                    effect: FaultEffect::FlipInstructionBit { byte, bit },
                });
            }
        }
        faults
    }
}

/// Transient single-bit corruption of architectural registers just before
/// an instruction executes. An *extension* model (not in the paper's
/// evaluation); restrict `regs`/`bits` to keep campaigns tractable.
#[derive(Debug, Clone)]
pub struct RegisterBitFlip {
    /// Registers to target.
    pub regs: Vec<Reg>,
    /// Bit positions to flip (0–63).
    pub bits: Vec<u8>,
}

impl RegisterBitFlip {
    /// Targets the low `n_bits` bits of every register.
    pub fn low_bits(n_bits: u8) -> RegisterBitFlip {
        RegisterBitFlip { regs: Reg::ALL.to_vec(), bits: (0..n_bits).collect() }
    }
}

impl FaultModel for RegisterBitFlip {
    fn name(&self) -> &'static str {
        "register-bit-flip"
    }

    fn faults_at(&self, site: &FaultSite) -> Vec<Fault> {
        let mut faults = Vec::with_capacity(self.regs.len() * self.bits.len());
        for &reg in &self.regs {
            for &bit in &self.bits {
                faults.push(Fault {
                    step: site.step,
                    pc: site.pc,
                    effect: FaultEffect::FlipRegisterBit { reg, bit },
                });
            }
        }
        faults
    }
}

/// Transient corruption of the condition flags just before an instruction
/// executes — the minimal model for "the glitch changed the jump
/// condition". An extension model.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlagFlip;

impl FaultModel for FlagFlip {
    fn name(&self) -> &'static str {
        "flag-flip"
    }

    fn faults_at(&self, site: &FaultSite) -> Vec<Fault> {
        (0..4)
            .map(|bit| Fault {
                step: site.step,
                pc: site.pc,
                effect: FaultEffect::FlipFlags { mask: 1 << bit },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_isa::Instr;

    fn site(len: usize) -> FaultSite {
        FaultSite { step: 3, pc: 0x1010, insn: Instr::Nop, len }
    }

    #[test]
    fn skip_yields_one_fault_per_site() {
        let faults = InstructionSkip.faults_at(&site(6));
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].effect, FaultEffect::SkipInstruction);
        assert_eq!(faults[0].step, 3);
    }

    #[test]
    fn bit_flip_enumerates_every_bit() {
        let faults = SingleBitFlip.faults_at(&site(6));
        assert_eq!(faults.len(), 48);
        // All distinct.
        let unique: std::collections::HashSet<_> = faults.iter().map(|f| f.effect).collect();
        assert_eq!(unique.len(), 48);
    }

    #[test]
    fn register_model_respects_configuration() {
        let model = RegisterBitFlip { regs: vec![Reg::R1, Reg::R2], bits: vec![0, 63] };
        assert_eq!(model.faults_at(&site(1)).len(), 4);
        assert_eq!(RegisterBitFlip::low_bits(2).faults_at(&site(1)).len(), 32);
    }

    #[test]
    fn flag_model_targets_four_bits() {
        assert_eq!(FlagFlip.faults_at(&site(1)).len(), 4);
    }
}
