//! Classification reuse across campaign sessions: the incremental
//! re-campaign machinery.
//!
//! The Faulter+Patcher loop re-runs a full fault campaign after every
//! binary rewrite, yet each patch touches a handful of instructions. A
//! [`CampaignSeed`] captures what the prior session learned (its golden
//! bad-input trace and per-model classifications); together with the
//! [`rr_disasm::ListingDelta`] of the rewrite, [`plan`] aligns the old
//! and new traces step by step and decides, per site, whether the prior
//! [`FaultClass`] is still valid:
//!
//! * the site's instruction must be **carried over unchanged** (its old
//!   address remaps through the delta onto the new trace's program
//!   counter at the aligned step), and
//! * no touched code — inserted pattern instructions executing in the
//!   new trace, or replaced instructions vanishing from the old one —
//!   may lie within [`REUSE_GUARD_WINDOW`] trace steps of the site, so
//!   the machine state a fault is injected into, and the first stretch
//!   of its downstream window, relate to the prior run by exact
//!   relocation correspondence (equal up to the delta's address remap).
//!
//! Reused sites answer from the [`ClassificationCache`] without
//! executing anything; invalidated sites are re-run, and the plan's
//! `snapshot_window` tells the session which trace region actually needs
//! checkpoints (`rr_engine::ReplayEngine::replay_range`).
//!
//! The cache key is (fault model, the *whole injection plan* remapped
//! through the delta — one (step, effect) per injection), and the whole
//! cache is guarded by the oracle fingerprint
//! ([`crate::Oracle::fingerprint`]): a changed judgment — different
//! golden behaviours, different goal prefix, a custom oracle without a
//! fingerprint — empties it. Two per-entry guards apply on top, each
//! evaluated **conjunctively over every injection of a plan** (one
//! invalidated injection invalidates the run it participated in): cached
//! `TimedOut` entries are dropped when the faulted step budget changed
//! (the timeout boundary moved with it), and bit-level value corruption
//! ([`FaultEffect::FlipInstructionBit`] and
//! [`FaultEffect::FlipRegisterBit`]) is reused only under a
//! [no-op delta](ListingDelta::is_noop) — a corrupted opcode or a
//! flipped register holding an absolute address behaves in ways that
//! depend on code layout, which any insertion shifts.

use crate::report::CampaignReport;
use crate::site::{FaultClass, FaultEffect, FaultPlan};
use rr_disasm::ListingDelta;
use rr_telemetry::{Counter, Telemetry};
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

/// Trace-step guard radius around code the delta touched: sites closer
/// than this to a dirty step are re-executed instead of reused. The
/// guard absorbs local interactions between a fault and freshly
/// inserted/removed code (e.g. a skipped instruction falling into an
/// inserted sequence, or an instruction-bit flip whose corrupted opcode
/// reads bytes across a patch boundary). It is deliberately small:
/// alignment already guarantees the machine state at every reused
/// injection point corresponds to the prior run's (exactly, up to the
/// delta's address remap), and the inserted protection patterns are
/// semantically transparent to continuations that merely pass through
/// them — the invariance test suite pins incremental classifications
/// bit-identical to from-scratch campaigns across all workloads and
/// fault models.
pub const REUSE_GUARD_WINDOW: u64 = 8;

/// What one campaign session learned, packaged for the next session of
/// an incremental loop: build it with
/// [`CampaignSession::seed`](crate::CampaignSession::seed) and hand it to
/// [`CampaignSessionBuilder::seed_from`](crate::CampaignSessionBuilder::seed_from).
#[derive(Debug, Clone)]
pub struct CampaignSeed {
    /// The prior session's golden bad-input trace (one pc per step).
    pub(crate) trace: Vec<u64>,
    /// Per-model classifications from the prior session.
    pub(crate) reports: Vec<CampaignReport>,
    /// The prior oracle's fingerprint (`None` disables reuse).
    pub(crate) oracle_fingerprint: Option<u64>,
    /// The prior session's faulted-run step budget (timeout boundary).
    pub(crate) faulted_budget: u64,
    /// The prior session's pre-decoded block cache, carried so the next
    /// session can account rewrite invalidations against it
    /// ([`rr_engine::rebuild_block_cache`]) — and reuse it outright when
    /// the rewrite left the text bytes unchanged. `None` for
    /// interpreter-mode sessions.
    pub(crate) block_cache: Option<std::sync::Arc<rr_emu::BlockCache>>,
}

/// The cache key: a plan's injections remapped onto the new session's
/// trace, reduced to what classification depends on — (step, effect) per
/// injection. Program counters are implied by the step (the trace names
/// one pc per step). Singleton and pair keys stay inline so the hot
/// order-1 lookup path allocates nothing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum PlanKey {
    One(u64, FaultEffect),
    Two([(u64, FaultEffect); 2]),
    Many(Box<[(u64, FaultEffect)]>),
}

impl PlanKey {
    fn of(plan: &FaultPlan) -> PlanKey {
        PlanKey::from_steps(plan.iter().map(|f| (f.step, f.effect)))
    }

    fn from_steps(steps: impl IntoIterator<Item = (u64, FaultEffect)>) -> PlanKey {
        let mut iter = steps.into_iter();
        let a = iter.next().expect("plans have at least one injection");
        let Some(b) = iter.next() else {
            return PlanKey::One(a.0, a.1);
        };
        let Some(c) = iter.next() else {
            return PlanKey::Two([a, b]);
        };
        PlanKey::Many([a, b, c].into_iter().chain(iter).collect())
    }
}

/// Per-plan classifications carried over from a prior session, keyed by
/// (model, plan remapped onto the *new* session's trace). Sessions
/// consult it before replaying anything.
#[derive(Debug, Default)]
pub struct ClassificationCache {
    entries: HashMap<(&'static str, PlanKey), FaultClass>,
}

impl ClassificationCache {
    /// The prior classification for `plan` under `model`, when the seed
    /// plan proved it still valid.
    pub fn lookup(&self, model: &'static str, plan: &FaultPlan) -> Option<FaultClass> {
        self.entries.get(&(model, PlanKey::of(plan))).copied()
    }

    /// Number of carried-over classifications.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was carried over.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Counters of how a session's fault evaluations were served.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseStats {
    /// Fault evaluations answered from the [`ClassificationCache`]
    /// without executing anything.
    pub sites_reused: usize,
    /// Fault evaluations that replayed and ran the faulted machine.
    pub sites_replayed: usize,
}

impl ReuseStats {
    /// Merges two counters (e.g. across a loop's sessions).
    #[must_use]
    pub fn merge(self, other: ReuseStats) -> ReuseStats {
        ReuseStats {
            sites_reused: self.sites_reused + other.sites_reused,
            sites_replayed: self.sites_replayed + other.sites_replayed,
        }
    }

    /// Fraction of evaluations served from the cache, in percent.
    pub fn reuse_percent(&self) -> f64 {
        let total = self.sites_reused + self.sites_replayed;
        if total == 0 {
            return 0.0;
        }
        self.sites_reused as f64 / total as f64 * 100.0
    }
}

impl fmt::Display for ReuseStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} reused, {} replayed ({:.1}% of fault evaluations reused)",
            self.sites_reused,
            self.sites_replayed,
            self.reuse_percent()
        )
    }
}

/// The outcome of aligning a seed against a freshly recorded trace.
#[derive(Debug, Default)]
pub(crate) struct SeedPlan {
    /// Classifications proven still valid, rekeyed to new trace steps.
    pub cache: ClassificationCache,
    /// The new-trace step range containing every invalidated site —
    /// the only region whose faults will be executed, and therefore the
    /// only region worth snapshotting. `None` when every site of every
    /// seeded model is reusable.
    pub snapshot_window: Option<Range<u64>>,
}

impl SeedPlan {
    /// A plan that reuses nothing and snapshots everything.
    fn full(trace_len: u64) -> SeedPlan {
        SeedPlan { cache: ClassificationCache::default(), snapshot_window: Some(0..trace_len) }
    }
}

/// Aligns the seed's trace with `new_trace` through `delta` and builds
/// the reuse plan. `new_fingerprint` is the new session's oracle
/// fingerprint; `new_budget` its faulted-run step budget. Per-guard
/// invalidation reasons are reported through `telemetry`
/// ([`Counter::InvalidatedFingerprint`], [`Counter::InvalidatedBudget`],
/// [`Counter::InvalidatedLayout`], [`Counter::InvalidatedDirty`] — one
/// count per seed result dropped).
pub(crate) fn plan(
    seed: &CampaignSeed,
    delta: &ListingDelta,
    new_trace: &[u64],
    new_fingerprint: Option<u64>,
    new_budget: u64,
    telemetry: &Telemetry,
) -> SeedPlan {
    let trace_len = new_trace.len() as u64;
    let seed_results = || seed.reports.iter().map(|r| r.results.len() as u64).sum::<u64>();
    // A changed (or absent) oracle judgment invalidates everything.
    let (Some(old_print), Some(new_print)) = (seed.oracle_fingerprint, new_fingerprint) else {
        telemetry.count(Counter::InvalidatedFingerprint, seed_results());
        return SeedPlan::full(trace_len);
    };
    if old_print != new_print {
        telemetry.count(Counter::InvalidatedFingerprint, seed_results());
        return SeedPlan::full(trace_len);
    }

    // Walk both traces in lockstep. Old steps whose instruction the delta
    // changed and new steps executing inserted code consume one side only
    // and mark the spot dirty; everything else must remap exactly, or the
    // traces diverged structurally and the remainder is dirty wholesale.
    let old_trace = &seed.trace;
    let mut old_step_for: Vec<Option<u64>> = vec![None; new_trace.len()];
    let mut dirty: Vec<u64> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < old_trace.len() && j < new_trace.len() {
        if delta.remap(old_trace[i]) == Some(new_trace[j]) {
            old_step_for[j] = Some(i as u64);
            i += 1;
            j += 1;
        } else if delta.is_inserted(new_trace[j]) {
            dirty.push(j as u64);
            j += 1;
        } else if delta.is_changed(old_trace[i]) {
            dirty.push(j as u64);
            i += 1;
        } else {
            break; // structural divergence: nothing further aligns
        }
    }
    dirty.extend((j..new_trace.len()).map(|k| k as u64));
    for slot in &mut old_step_for[j..] {
        *slot = None;
    }
    if i < old_trace.len() && j >= new_trace.len() {
        // The old trace continued past the alignment: the final aligned
        // region's downstream differs, guard it.
        dirty.push(trace_len.saturating_sub(1));
    }

    // A site is reusable when it aligned and no dirty step falls within
    // the guard radius.
    let clean = |step: u64| {
        let at = dirty.partition_point(|&d| d < step.saturating_sub(REUSE_GUARD_WINDOW));
        dirty.get(at).is_none_or(|&d| d > step.saturating_add(REUSE_GUARD_WINDOW))
    };
    let reusable = |j: u64| old_step_for[j as usize].is_some() && clean(j);

    // Invert the alignment: old step → new step.
    let mut new_step_for: Vec<Option<u64>> = vec![None; old_trace.len()];
    for (j, old_step) in old_step_for.iter().enumerate() {
        if let Some(i) = old_step {
            new_step_for[*i as usize] = Some(j as u64);
        }
    }

    let budget_changed = seed.faulted_budget != new_budget;
    let noop_delta = delta.is_noop();
    let mut cache = ClassificationCache::default();
    let mut invalid: Option<Range<u64>> = None;
    let grow = |range: Range<u64>, invalid: &mut Option<Range<u64>>| {
        *invalid = Some(match invalid.take() {
            None => range,
            Some(r) => r.start.min(range.start)..r.end.max(range.end),
        });
    };
    // Every un-aligned or guarded new step must be re-executable — it is
    // where plans the seed cannot answer will restore and replay.
    for j in 0..trace_len {
        if !reusable(j) {
            grow(j..j + 1, &mut invalid);
        }
    }
    // Carry prior classifications whose *whole plan* survives: every
    // injection must remap onto a reusable new step, and every effect
    // must pass its reuse guard — conjunctively, since one invalidated
    // injection invalidates the run it participated in.
    for report in &seed.reports {
        for result in &report.results {
            let remapped: Option<Vec<(u64, FaultEffect)>> = result
                .plan
                .iter()
                .map(|fault| {
                    new_step_for
                        .get(fault.step as usize)
                        .copied()
                        .flatten()
                        .filter(|&j| reusable(j))
                        .map(|j| (j, fault.effect))
                })
                .collect();
            let Some(remapped) = remapped else {
                // Some injection fell on dirty or vanished code; its new
                // step (if any) is already inside the snapshot window via
                // the per-step pass above.
                telemetry.count(Counter::InvalidatedDirty, 1);
                continue;
            };
            let effects_reusable = result.plan.iter().all(|fault| match fault.effect {
                // Bit-level corruption of *values* is layout-sensitive
                // and reusable only under a no-op delta: an encoding
                // flip can conjure a branch that lands wherever the
                // corrupted offset points, and a register flip can XOR
                // an absolute code/data address (return targets,
                // `mov r, label` materializations) — neither commutes
                // with the address shift a patch introduces. Skips and
                // flag flips, by contrast, only select among genuine
                // program paths, which the old and new binaries relate
                // by exact relocation correspondence.
                FaultEffect::FlipInstructionBit { .. } | FaultEffect::FlipRegisterBit { .. } => {
                    noop_delta
                }
                FaultEffect::SkipInstruction | FaultEffect::FlipFlags { .. } => true,
            });
            let cacheable =
                effects_reusable && !(budget_changed && result.class == FaultClass::TimedOut);
            if !cacheable {
                telemetry.count(
                    if effects_reusable {
                        Counter::InvalidatedBudget
                    } else {
                        Counter::InvalidatedLayout
                    },
                    1,
                );
                // Re-run this plan: it restores at its earliest remapped
                // injection, so that region needs snapshots.
                let earliest = remapped[0].0;
                grow(earliest..earliest + 1, &mut invalid);
                continue;
            }
            cache.entries.insert((report.model, PlanKey::from_steps(remapped)), result.class);
        }
    }

    SeedPlan { cache, snapshot_window: invalid }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::FaultResult;
    use crate::site::Fault;

    fn seed_with(trace: Vec<u64>, results: Vec<FaultResult>) -> CampaignSeed {
        CampaignSeed {
            trace,
            reports: vec![CampaignReport::new("instruction-skip", results)],
            oracle_fingerprint: Some(7),
            faulted_budget: 10_000,
            block_cache: None,
        }
    }

    fn skip_at(step: u64, pc: u64) -> Fault {
        Fault { step, pc, effect: FaultEffect::SkipInstruction }
    }

    fn skip_plan(step: u64, pc: u64) -> FaultPlan {
        FaultPlan::single(skip_at(step, pc))
    }

    #[test]
    fn identity_delta_reuses_everything() {
        let trace: Vec<u64> = (0..200).map(|k| 0x1000 + k * 4).collect();
        let results: Vec<FaultResult> = trace
            .iter()
            .enumerate()
            .map(|(step, &pc)| FaultResult::single(skip_at(step as u64, pc), FaultClass::Benign))
            .collect();
        let seed = seed_with(trace.clone(), results);
        let plan =
            plan(&seed, &ListingDelta::identity(), &trace, Some(7), 10_000, &Telemetry::default());
        assert_eq!(plan.cache.len(), 200);
        assert_eq!(plan.snapshot_window, None);
        assert_eq!(
            plan.cache.lookup("instruction-skip", &skip_plan(3, trace[3])),
            Some(FaultClass::Benign)
        );
        assert_eq!(plan.cache.lookup("single-bit-flip", &skip_plan(3, trace[3])), None);
    }

    #[test]
    fn pair_plans_reuse_and_rekey_as_whole_plans() {
        let trace: Vec<u64> = (0..100).map(|k| 0x1000 + k * 4).collect();
        let pair = FaultPlan::new([skip_at(10, trace[10]), skip_at(20, trace[20])]);
        let results = vec![
            FaultResult { plan: pair.clone(), class: FaultClass::Success },
            FaultResult::single(skip_at(10, trace[10]), FaultClass::Benign),
        ];
        let seed = seed_with(trace.clone(), results);
        let plan =
            plan(&seed, &ListingDelta::identity(), &trace, Some(7), 10_000, &Telemetry::default());
        assert_eq!(plan.cache.len(), 2);
        assert_eq!(plan.snapshot_window, None);
        // The pair answers as a pair; its singleton prefix answers as a
        // singleton; a different pairing misses.
        assert_eq!(plan.cache.lookup("instruction-skip", &pair), Some(FaultClass::Success));
        assert_eq!(
            plan.cache.lookup("instruction-skip", &skip_plan(10, trace[10])),
            Some(FaultClass::Benign)
        );
        assert_eq!(
            plan.cache.lookup(
                "instruction-skip",
                &FaultPlan::new([skip_at(10, trace[10]), skip_at(21, trace[21])])
            ),
            None
        );
        assert_eq!(plan.cache.lookup("instruction-skip", &skip_plan(20, trace[20])), None);
    }

    #[test]
    fn fingerprint_mismatch_invalidates_everything() {
        let trace: Vec<u64> = (0..50).map(|k| 0x1000 + k * 4).collect();
        let results = vec![FaultResult::single(skip_at(0, 0x1000), FaultClass::Success)];
        let seed = seed_with(trace.clone(), results);
        for new_print in [Some(8), None] {
            let plan = plan(
                &seed,
                &ListingDelta::identity(),
                &trace,
                new_print,
                10_000,
                &Telemetry::default(),
            );
            assert!(plan.cache.is_empty());
            assert_eq!(plan.snapshot_window, Some(0..50));
        }
    }

    #[test]
    fn changed_budget_drops_only_timed_out_entries() {
        let trace: Vec<u64> = (0..300).map(|k| 0x1000 + k * 4).collect();
        let results = vec![
            FaultResult::single(skip_at(10, trace[10]), FaultClass::Benign),
            FaultResult::single(skip_at(200, trace[200]), FaultClass::TimedOut),
        ];
        let seed = seed_with(trace.clone(), results);
        let unchanged =
            plan(&seed, &ListingDelta::identity(), &trace, Some(7), 10_000, &Telemetry::default());
        assert_eq!(unchanged.cache.len(), 2);
        assert_eq!(unchanged.snapshot_window, None);

        let moved =
            plan(&seed, &ListingDelta::identity(), &trace, Some(7), 20_000, &Telemetry::default());
        assert_eq!(
            moved.cache.lookup("instruction-skip", &skip_plan(10, trace[10])),
            Some(FaultClass::Benign)
        );
        assert_eq!(moved.cache.lookup("instruction-skip", &skip_plan(200, trace[200])), None);
        assert_eq!(moved.snapshot_window, Some(200..201));
    }

    #[test]
    fn layout_sensitive_effects_reuse_only_across_noop_deltas() {
        use rr_isa::Reg;
        // A real shifting delta: disassemble a straight-line program,
        // insert a nop before its final instruction (more than
        // REUSE_GUARD_WINDOW steps after the probed site), reassemble.
        let movs: String = (0..16).map(|k| format!("    mov r1, {k}\n")).collect();
        let exe =
            rr_asm::assemble_and_link(&format!("    .global _start\n_start:\n{movs}    svc 0\n"))
                .unwrap();
        let listing = rr_disasm::disassemble(&exe).unwrap().listing;
        let mut patched = listing.clone();
        let last =
            patched.text.iter().rposition(|l| matches!(l, rr_disasm::Line::Code { .. })).unwrap();
        patched.text.insert(
            last,
            rr_disasm::Line::Code {
                orig_addr: None,
                insn: rr_disasm::SymInstr::Plain(rr_isa::Instr::Nop),
            },
        );
        let rebuilt = rr_asm::assemble_and_link(&patched.to_source()).unwrap();
        let delta = ListingDelta::compute(&listing, &exe, &patched, &rebuilt).unwrap();
        assert!(!delta.is_noop(), "the nop shifts the tail");

        // The straight-line traces: every instruction in order, with the
        // inserted nop executing right before the final one in the new
        // binary.
        let old_trace: Vec<u64> = listing.original_code().map(|(_, a, _)| a).collect();
        let nop_addr = delta.inserted_ranges()[0].start;
        let mut new_trace: Vec<u64> =
            old_trace.iter().map(|&a| delta.remap(a).expect("carried over")).collect();
        new_trace.insert(new_trace.len() - 1, nop_addr);
        let insertion_step = (new_trace.len() - 2) as u64;
        assert!(insertion_step > REUSE_GUARD_WINDOW, "probe site must sit outside the guard");

        let effects = [
            FaultEffect::SkipInstruction,
            FaultEffect::FlipFlags { mask: 1 },
            FaultEffect::FlipRegisterBit { reg: Reg::R1, bit: 6 },
            FaultEffect::FlipInstructionBit { byte: 0, bit: 3 },
        ];
        let results: Vec<FaultResult> = effects
            .iter()
            .map(|&effect| {
                FaultResult::single(Fault { step: 0, pc: old_trace[0], effect }, FaultClass::Benign)
            })
            .collect();
        let seed = CampaignSeed {
            trace: old_trace.clone(),
            reports: vec![CampaignReport::new("mixed", results)],
            oracle_fingerprint: Some(7),
            faulted_budget: 10_000,
            block_cache: None,
        };
        let plan = plan(&seed, &delta, &new_trace, Some(7), 10_000, &Telemetry::default());

        // Path-selection effects carry over; value-corruption effects do
        // not (they're layout-sensitive and the delta shifts addresses).
        let lookup = |effect| {
            plan.cache
                .lookup("mixed", &FaultPlan::single(Fault { step: 0, pc: new_trace[0], effect }))
        };
        assert_eq!(lookup(FaultEffect::SkipInstruction), Some(FaultClass::Benign));
        assert_eq!(lookup(FaultEffect::FlipFlags { mask: 1 }), Some(FaultClass::Benign));
        assert_eq!(lookup(FaultEffect::FlipRegisterBit { reg: Reg::R1, bit: 6 }), None);
        assert_eq!(lookup(FaultEffect::FlipInstructionBit { byte: 0, bit: 3 }), None);
        // …and the dropped entries force their step into the re-run
        // window.
        assert_eq!(plan.snapshot_window.clone().map(|w| w.start), Some(0));

        // A pair mixing a reusable and a layout-sensitive effect is
        // invalidated conjunctively: one bad injection poisons the plan.
        let mixed_pair = FaultPlan::new([
            Fault { step: 0, pc: old_trace[0], effect: FaultEffect::SkipInstruction },
            Fault {
                step: 2,
                pc: old_trace[2],
                effect: FaultEffect::FlipInstructionBit { byte: 0, bit: 3 },
            },
        ]);
        let pair_seed = CampaignSeed {
            trace: old_trace.clone(),
            reports: vec![CampaignReport::new(
                "mixed",
                vec![FaultResult { plan: mixed_pair, class: FaultClass::Benign }],
            )],
            oracle_fingerprint: Some(7),
            faulted_budget: 10_000,
            block_cache: None,
        };
        let pair_plan =
            super::plan(&pair_seed, &delta, &new_trace, Some(7), 10_000, &Telemetry::default());
        assert!(pair_plan.cache.is_empty(), "a layout-sensitive leg poisons the whole pair");

        // Under an identity delta everything is reusable.
        let identity = plan2_identity(&seed, &old_trace);
        for effect in effects {
            assert_eq!(
                identity.cache.lookup(
                    "mixed",
                    &FaultPlan::single(Fault { step: 0, pc: old_trace[0], effect })
                ),
                Some(FaultClass::Benign),
                "{effect:?}"
            );
        }
        assert_eq!(identity.snapshot_window, None);
    }

    fn plan2_identity(seed: &CampaignSeed, trace: &[u64]) -> SeedPlan {
        plan(seed, &ListingDelta::identity(), trace, Some(7), 10_000, &Telemetry::default())
    }

    #[test]
    fn reuse_stats_render_and_merge() {
        let a = ReuseStats { sites_reused: 3, sites_replayed: 1 };
        let b = ReuseStats { sites_reused: 1, sites_replayed: 3 };
        let merged = a.merge(b);
        assert_eq!(merged, ReuseStats { sites_reused: 4, sites_replayed: 4 });
        assert!((merged.reuse_percent() - 50.0).abs() < 1e-9);
        assert_eq!(ReuseStats::default().reuse_percent(), 0.0);
        let text = merged.to_string();
        assert!(text.contains("4 reused") && text.contains("50.0%"), "{text}");
    }

    proptest::proptest! {
        /// `ReuseStats::merge` is a commutative monoid: associative, with
        /// `ReuseStats::default()` as the identity — the properties shard
        /// aggregation and the metrics layer's loop-wide accounting rely
        /// on.
        #[test]
        fn reuse_stats_merge_is_associative_with_identity(
            ar in 0usize..1_000_000, ap in 0usize..1_000_000,
            br in 0usize..1_000_000, bp in 0usize..1_000_000,
            cr in 0usize..1_000_000, cp in 0usize..1_000_000,
        ) {
            let a = ReuseStats { sites_reused: ar, sites_replayed: ap };
            let b = ReuseStats { sites_reused: br, sites_replayed: bp };
            let c = ReuseStats { sites_reused: cr, sites_replayed: cp };
            proptest::prop_assert_eq!(a.merge(b).merge(c), a.merge(b.merge(c)));
            proptest::prop_assert_eq!(a.merge(b), b.merge(a));
            proptest::prop_assert_eq!(a.merge(ReuseStats::default()), a);
            proptest::prop_assert_eq!(ReuseStats::default().merge(a), a);
        }
    }

    #[test]
    fn plan_reports_per_guard_invalidation_reasons() {
        use rr_telemetry::Counter;
        let trace = vec![0x1000u64, 0x1004, 0x1008];
        let results = vec![
            FaultResult::single(skip_at(0, 0x1000), FaultClass::Benign),
            FaultResult::single(skip_at(1, 0x1004), FaultClass::TimedOut),
        ];

        // A fingerprint mismatch drops every seed result.
        let t = Telemetry::counters();
        let seed = seed_with(trace.clone(), results.clone());
        let fp = plan(&seed, &ListingDelta::identity(), &trace, Some(8), 10_000, &t);
        assert!(fp.cache.is_empty());
        assert_eq!(t.metrics().unwrap().counter(Counter::InvalidatedFingerprint), 2);

        // A changed faulted budget drops only the TimedOut entry.
        let t = Telemetry::counters();
        let seed = seed_with(trace.clone(), results.clone());
        let budget = plan(&seed, &ListingDelta::identity(), &trace, Some(7), 20_000, &t);
        assert_eq!(budget.cache.len(), 1);
        let m = t.metrics().unwrap();
        assert_eq!(m.counter(Counter::InvalidatedBudget), 1);
        assert_eq!(m.counter(Counter::InvalidatedFingerprint), 0);

        // A structurally different trace invalidates by dirtiness.
        let t = Telemetry::counters();
        let seed = seed_with(trace.clone(), results);
        let moved =
            plan(&seed, &ListingDelta::identity(), &[0x2000, 0x2004, 0x2008], Some(7), 10_000, &t);
        assert!(moved.cache.is_empty());
        assert_eq!(t.metrics().unwrap().counter(Counter::InvalidatedDirty), 2);
    }
}
