//! Bridging the static fault-effect analysis into the campaign stack.
//!
//! `rr-analysis` knows nothing about this crate's fault types (it sits
//! below us in the dependency graph); this module maps each
//! [`FaultEffect`] onto the analysis's per-effect verdict queries and
//! lifts verdicts from faults to whole plans.

use crate::site::{Fault, FaultEffect, FaultPlan};
pub use rr_analysis::{Analysis, StaticVerdict};

/// The analysis's verdict for one concrete fault.
pub fn fault_verdict(analysis: &Analysis, fault: &Fault) -> StaticVerdict {
    match fault.effect {
        FaultEffect::SkipInstruction => analysis.skip_verdict(fault.pc),
        FaultEffect::FlipInstructionBit { byte, bit } => {
            analysis.insn_bit_flip_verdict(fault.pc, byte, bit)
        }
        FaultEffect::FlipRegisterBit { reg, .. } => analysis.reg_flip_verdict(fault.pc, reg),
        FaultEffect::FlipFlags { mask } => analysis.flag_flip_verdict(fault.pc, mask),
    }
}

/// Whether every injection in `plan` is provably benign — the pruning
/// criterion. Statically-benign injections compose (see the soundness
/// argument in the `rr-analysis` crate docs), so a plan of benign faults
/// is itself benign.
pub fn plan_is_benign(analysis: &Analysis, plan: &FaultPlan) -> bool {
    plan.iter().all(|fault| fault_verdict(analysis, fault) == StaticVerdict::Benign)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_isa::Reg;

    fn analysis() -> Analysis {
        let exe = rr_asm::assemble_and_link(
            "    .global _start\n\
             _start:\n\
                 mov r6, 1\n\
                 mov r6, 2\n\
                 mov r1, r6\n\
                 svc 0\n",
        )
        .unwrap();
        Analysis::from_executable(&exe).unwrap()
    }

    #[test]
    fn effects_map_to_the_right_verdict_queries() {
        let a = analysis();
        let entry = 0x1000;
        let skip = Fault { step: 0, pc: entry, effect: FaultEffect::SkipInstruction };
        assert_eq!(fault_verdict(&a, &skip), StaticVerdict::Benign);
        let flip_dead = Fault {
            step: 0,
            pc: entry,
            effect: FaultEffect::FlipRegisterBit { reg: Reg::R6, bit: 5 },
        };
        assert_eq!(fault_verdict(&a, &flip_dead), StaticVerdict::Benign);
        let flip_live = Fault {
            step: 2,
            pc: entry + 20,
            effect: FaultEffect::FlipRegisterBit { reg: Reg::R6, bit: 5 },
        };
        assert_eq!(fault_verdict(&a, &flip_live), StaticVerdict::Unknown);
        let flags = Fault { step: 0, pc: entry, effect: FaultEffect::FlipFlags { mask: 0xF } };
        assert_eq!(fault_verdict(&a, &flags), StaticVerdict::Benign);

        assert!(plan_is_benign(&a, &FaultPlan::new([skip, flip_dead])));
        assert!(!plan_is_benign(&a, &FaultPlan::new([skip, flip_live])));
    }
}
