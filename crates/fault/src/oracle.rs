//! Oracles: pluggable classification of faulted behaviours.
//!
//! An [`Oracle`] turns the observable behaviour of one faulted run into
//! a [`FaultClass`]. The paper's attacker model — "the faulted bad-input
//! run behaves exactly like the good-input run" — is the default
//! [`GoldenPairOracle`]; decoupling the judgment from the runner opens
//! other campaign scenarios (output-prefix goals, crash-only robustness
//! triage) without touching the scheduling or replay machinery.

use crate::site::FaultClass;
use rr_emu::RunOutcome;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The complete observable behaviour of one run — what oracles classify.
///
/// An alias for [`rr_emu::Execution`]: the run's [`RunOutcome`], its
/// output bytes, and the executed step count (which oracles normally
/// ignore — patching legitimately changes it).
pub type Behavior = rr_emu::Execution;

/// Classifies the behaviour of faulted runs.
///
/// Implementations must be [`Send`] + [`Sync`] (sessions evaluate faults
/// from multiple threads) and [`fmt::Debug`] (sessions are debuggable).
///
/// The classes an oracle may return are [`FaultClass::Success`],
/// [`FaultClass::Benign`], [`FaultClass::Crashed`],
/// [`FaultClass::TimedOut`] and [`FaultClass::Corrupted`];
/// [`FaultClass::ReplayDiverged`] is reserved for the runner itself
/// (a replay that never reached the injection point has no faulted
/// behaviour to classify).
pub trait Oracle: fmt::Debug + Send + Sync {
    /// Short name for reports and CLI output.
    fn name(&self) -> &'static str;

    /// Classifies one faulted run's behaviour.
    fn classify(&self, faulted: &Behavior) -> FaultClass;

    /// A value identifying everything this oracle's judgment depends on,
    /// or `None` when the oracle cannot state one.
    ///
    /// Incremental re-campaigns reuse a prior session's classifications
    /// only when both sessions' oracle fingerprints are equal — a changed
    /// fingerprint invalidates the whole `ClassificationCache`. The
    /// contract: two oracles with equal fingerprints must classify every
    /// behaviour identically. Note the fingerprint must *not* cover
    /// incidental state that legitimately changes across
    /// behaviour-preserving rebuilds (e.g. golden step counts — patching
    /// lengthens runs without changing what the attacker observes).
    ///
    /// The default is `None`: a custom oracle that doesn't opt in never
    /// has its classifications carried across sessions.
    fn fingerprint(&self) -> Option<u64> {
        None
    }
}

/// Hashes the behaviour-relevant parts of an [`Execution`] — outcome and
/// output, *not* the step count, which changes across
/// behaviour-preserving rebuilds.
fn hash_behavior<H: Hasher>(state: &mut H, behavior: &Behavior) {
    behavior.outcome.hash(state);
    behavior.output.hash(state);
}

/// A deterministic in-process hasher seeded with the oracle name.
fn fingerprint_hasher(name: &str) -> std::collections::hash_map::DefaultHasher {
    let mut state = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut state);
    state
}

/// The paper's oracle: compare against the two golden runs.
///
/// `Success` when the faulted run matches the **good**-input behaviour
/// (the attacker's goal), `Benign` when it still matches the unfaulted
/// **bad**-input behaviour, and `Crashed`/`TimedOut`/`Corrupted` by
/// outcome for any third behaviour.
#[derive(Debug, Clone)]
pub struct GoldenPairOracle {
    golden_good: Behavior,
    golden_bad: Behavior,
}

impl GoldenPairOracle {
    /// Builds the oracle from the two golden behaviours.
    pub fn new(golden_good: Behavior, golden_bad: Behavior) -> GoldenPairOracle {
        GoldenPairOracle { golden_good, golden_bad }
    }

    /// The golden good-input behaviour this oracle compares against.
    pub fn golden_good(&self) -> &Behavior {
        &self.golden_good
    }

    /// The golden bad-input behaviour this oracle compares against.
    pub fn golden_bad(&self) -> &Behavior {
        &self.golden_bad
    }
}

impl Oracle for GoldenPairOracle {
    fn name(&self) -> &'static str {
        "golden-pair"
    }

    fn classify(&self, faulted: &Behavior) -> FaultClass {
        if faulted.same_behavior(&self.golden_good) {
            FaultClass::Success
        } else if faulted.same_behavior(&self.golden_bad) {
            FaultClass::Benign
        } else {
            match faulted.outcome {
                RunOutcome::Crashed { .. } => FaultClass::Crashed,
                RunOutcome::TimedOut => FaultClass::TimedOut,
                RunOutcome::Exited { .. } => FaultClass::Corrupted,
            }
        }
    }

    /// Covers both golden behaviours (outcome + output; step counts are
    /// excluded because [`Behavior::same_behavior`] ignores them).
    fn fingerprint(&self) -> Option<u64> {
        let mut state = fingerprint_hasher(self.name());
        hash_behavior(&mut state, &self.golden_good);
        hash_behavior(&mut state, &self.golden_bad);
        Some(state.finish())
    }
}

/// An attacker goal stated as an output prefix (e.g. `ACCESS GRANTED`):
/// `Success` as soon as the faulted run's output starts with the prefix
/// — even if the run crashes afterwards, the attacker has already
/// observed the output — otherwise `Crashed`/`TimedOut` by outcome and
/// `Benign` for clean exits without the prefix.
///
/// Needs no good input: sessions using it can be built from a single
/// traced input.
#[derive(Debug, Clone)]
pub struct OutputPrefixOracle {
    prefix: Vec<u8>,
}

impl OutputPrefixOracle {
    /// Builds the oracle for a goal output prefix.
    pub fn new(prefix: impl Into<Vec<u8>>) -> OutputPrefixOracle {
        OutputPrefixOracle { prefix: prefix.into() }
    }

    /// The goal prefix.
    pub fn prefix(&self) -> &[u8] {
        &self.prefix
    }
}

impl Oracle for OutputPrefixOracle {
    fn name(&self) -> &'static str {
        "output-prefix"
    }

    fn classify(&self, faulted: &Behavior) -> FaultClass {
        if faulted.output.starts_with(&self.prefix) {
            return FaultClass::Success;
        }
        match faulted.outcome {
            RunOutcome::Crashed { .. } => FaultClass::Crashed,
            RunOutcome::TimedOut => FaultClass::TimedOut,
            RunOutcome::Exited { .. } => FaultClass::Benign,
        }
    }

    /// Covers the goal prefix.
    fn fingerprint(&self) -> Option<u64> {
        let mut state = fingerprint_hasher(self.name());
        self.prefix.hash(&mut state);
        Some(state.finish())
    }
}

/// Crash-only triage: `Crashed`/`TimedOut` by outcome, everything else
/// `Benign`. The robustness-campaign oracle ("which faults does the
/// binary *detect*?"); needs no good input.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrashTriageOracle;

impl Oracle for CrashTriageOracle {
    fn name(&self) -> &'static str {
        "crash-triage"
    }

    fn classify(&self, faulted: &Behavior) -> FaultClass {
        match faulted.outcome {
            RunOutcome::Crashed { .. } => FaultClass::Crashed,
            RunOutcome::TimedOut => FaultClass::TimedOut,
            RunOutcome::Exited { .. } => FaultClass::Benign,
        }
    }

    /// Stateless: the name is the whole configuration.
    fn fingerprint(&self) -> Option<u64> {
        Some(fingerprint_hasher(self.name()).finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn behavior(outcome: RunOutcome, output: &[u8]) -> Behavior {
        Behavior { outcome, output: output.to_vec(), steps: 42 }
    }

    #[test]
    fn prefix_oracle_rewards_the_goal_output_even_on_crash() {
        let oracle = OutputPrefixOracle::new(&b"GRANTED"[..]);
        assert_eq!(oracle.name(), "output-prefix");
        assert_eq!(oracle.prefix(), b"GRANTED");
        let crash = RunOutcome::Crashed { fault: rr_emu::CpuFault::DivideByZero, pc: 0x1000 };
        assert_eq!(
            oracle.classify(&behavior(RunOutcome::Exited { code: 0 }, b"GRANTED\n")),
            FaultClass::Success
        );
        assert_eq!(oracle.classify(&behavior(crash, b"GRANTED then boom")), FaultClass::Success);
        assert_eq!(oracle.classify(&behavior(crash, b"DENIED")), FaultClass::Crashed);
        assert_eq!(oracle.classify(&behavior(RunOutcome::TimedOut, b"")), FaultClass::TimedOut);
        assert_eq!(
            oracle.classify(&behavior(RunOutcome::Exited { code: 1 }, b"DENIED")),
            FaultClass::Benign
        );
    }

    #[test]
    fn fingerprints_track_judgment_not_step_counts() {
        let good = behavior(RunOutcome::Exited { code: 0 }, b"GRANTED");
        let bad = behavior(RunOutcome::Exited { code: 1 }, b"DENIED");
        let pair = GoldenPairOracle::new(good.clone(), bad.clone());
        assert!(pair.fingerprint().is_some());
        // Step counts legitimately change across behaviour-preserving
        // rebuilds: the fingerprint must not.
        let mut longer_bad = bad.clone();
        longer_bad.steps += 1000;
        assert_eq!(
            pair.fingerprint(),
            GoldenPairOracle::new(good.clone(), longer_bad).fingerprint()
        );
        // A different golden behaviour is a different judgment.
        let other_bad = behavior(RunOutcome::Exited { code: 1 }, b"LOCKED");
        assert_ne!(pair.fingerprint(), GoldenPairOracle::new(good, other_bad).fingerprint());

        // The prefix oracle fingerprints its goal; crash triage is
        // stateless; distinct oracle kinds never collide on equal state.
        assert_eq!(
            OutputPrefixOracle::new(&b"A"[..]).fingerprint(),
            OutputPrefixOracle::new(&b"A"[..]).fingerprint()
        );
        assert_ne!(
            OutputPrefixOracle::new(&b"A"[..]).fingerprint(),
            OutputPrefixOracle::new(&b"B"[..]).fingerprint()
        );
        assert_eq!(CrashTriageOracle.fingerprint(), CrashTriageOracle.fingerprint());
        assert_ne!(
            CrashTriageOracle.fingerprint(),
            OutputPrefixOracle::new(&b""[..]).fingerprint()
        );

        // Custom oracles default to "no fingerprint" → never reused.
        #[derive(Debug)]
        struct Opaque;
        impl Oracle for Opaque {
            fn name(&self) -> &'static str {
                "opaque"
            }
            fn classify(&self, _: &Behavior) -> FaultClass {
                FaultClass::Benign
            }
        }
        assert_eq!(Opaque.fingerprint(), None);
    }

    #[test]
    fn crash_triage_only_sees_detectable_failures() {
        let oracle = CrashTriageOracle;
        assert_eq!(oracle.name(), "crash-triage");
        let crash = RunOutcome::Crashed { fault: rr_emu::CpuFault::DivideByZero, pc: 0x1000 };
        assert_eq!(oracle.classify(&behavior(crash, b"x")), FaultClass::Crashed);
        assert_eq!(oracle.classify(&behavior(RunOutcome::TimedOut, b"")), FaultClass::TimedOut);
        assert_eq!(
            oracle.classify(&behavior(RunOutcome::Exited { code: 7 }, b"whatever")),
            FaultClass::Benign
        );
    }
}
