//! The owned, reusable campaign session: golden runs, fault enumeration,
//! and the one unified runner.
//!
//! A [`CampaignSession`] owns its [`Executable`] and inputs (`Arc`-shared,
//! so sessions move freely across threads and outlive the scope that
//! built them), performs the golden runs once at construction, and then
//! evaluates any number of [`FaultModel`]s through a single entry point,
//! [`CampaignSession::run`]:
//!
//! * the **engine** (naive replay-from-0 vs checkpointed restore) is
//!   fixed at construction by [`CampaignConfig::engine`] — a naive
//!   session never records snapshots and can never be asked for a
//!   checkpointed evaluation, so the old "checkpointed run on a
//!   snapshot-less campaign silently replays from zero" footgun is
//!   unrepresentable;
//! * the **sink** argument selects consumption: [`Collect`] materializes
//!   one [`CampaignReport`] per model, [`Stream`] folds classifications
//!   straight into one [`ModelSummary`] per model in O(shards) memory;
//! * all models passed to one `run` call share a single scheduling pass
//!   over the trace sites (per [`CampaignConfig::shard`] policy).

use crate::analysis::{fault_verdict, plan_is_benign, Analysis, StaticVerdict};
use crate::cache::{self, CampaignSeed, ClassificationCache, ReuseStats};
use crate::config::{CampaignConfig, CampaignEngine, ExecMode};
use crate::model::{enumerate_plans_pruned, FaultModel};
use crate::oracle::{Behavior, GoldenPairOracle, Oracle};
use crate::report::{CampaignReport, FaultResult, ModelSummary, Summary};
use crate::site::{Fault, FaultClass, FaultEffect, FaultPlan, FaultSite};
use rr_disasm::ListingDelta;
use rr_emu::{execute, BlockStats, Execution, Machine, RunOutcome, RunResult};
use rr_engine::shard::{run_bucketed, run_scheduled, scheduled_fold};
use rr_engine::{ReplayConfig, ReplayEngine, ReplayFootprint};
use rr_isa::{decode, Flags, MAX_INSTR_LEN};
use rr_obj::Executable;
use rr_telemetry::{Counter, Gauge, MetricsSnapshot, SpanKind, Telemetry};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Why a session could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// No bad (traced) input was supplied to the builder.
    MissingBadInput,
    /// The default golden-pair oracle needs a good input (or a trusted
    /// golden-good behaviour), and neither was supplied. Custom oracles
    /// lift the requirement.
    MissingGoodInput,
    /// The good input did not exit normally.
    GoldenGoodFailed(RunOutcome),
    /// The bad input did not exit normally.
    GoldenBadFailed(RunOutcome),
    /// Good and bad inputs behave identically — there is no attacker goal
    /// to reach and no vulnerability to measure.
    IndistinguishableBehaviors,
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::MissingBadInput => {
                write!(f, "no bad (traced) input was given to the session builder")
            }
            CampaignError::MissingGoodInput => {
                write!(f, "the golden-pair oracle needs a good input")
            }
            CampaignError::GoldenGoodFailed(o) => write!(f, "golden good-input run failed: {o}"),
            CampaignError::GoldenBadFailed(o) => write!(f, "golden bad-input run failed: {o}"),
            CampaignError::IndistinguishableBehaviors => {
                write!(f, "good and bad inputs produce identical behaviour")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// Builds a [`CampaignSession`] — see [`CampaignSession::builder`].
#[derive(Debug, Clone)]
pub struct CampaignSessionBuilder {
    exe: Arc<Executable>,
    good_input: Option<Arc<[u8]>>,
    bad_input: Option<Arc<[u8]>>,
    config: CampaignConfig,
    oracle: Option<Arc<dyn Oracle>>,
    golden_good: Option<Execution>,
    seed: Option<(CampaignSeed, ListingDelta)>,
    telemetry: Telemetry,
}

impl CampaignSessionBuilder {
    /// The good input for the default golden-pair oracle. Not needed
    /// when a custom [`Oracle`] or a trusted
    /// [`golden_good`](CampaignSessionBuilder::golden_good) behaviour is
    /// supplied.
    #[must_use]
    pub fn good_input(mut self, input: impl Into<Arc<[u8]>>) -> Self {
        self.good_input = Some(input.into());
        self
    }

    /// The bad input: the run that is traced, checkpointed, and faulted.
    /// Required.
    #[must_use]
    pub fn bad_input(mut self, input: impl Into<Arc<[u8]>>) -> Self {
        self.bad_input = Some(input.into());
        self
    }

    /// Replaces the whole configuration (step budgets, threads, shard
    /// policy, engine).
    #[must_use]
    pub fn config(mut self, config: CampaignConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the execution engine ([`CampaignConfig::engine`]): decides
    /// at construction whether snapshots are recorded.
    #[must_use]
    pub fn engine(mut self, engine: CampaignEngine) -> Self {
        self.config.engine = engine;
        self
    }

    /// Replaces the default golden-pair oracle with a custom classifier.
    /// Sessions with a custom oracle need no good input.
    #[must_use]
    pub fn oracle(mut self, oracle: impl Oracle + 'static) -> Self {
        self.oracle = Some(Arc::new(oracle));
        self
    }

    /// Supplies a **trusted** golden good-input behaviour, skipping the
    /// good-input golden run.
    ///
    /// For callers that already know how the good input behaves — the
    /// Faulter+Patcher loop verifies after every patch that the rebuilt
    /// binary preserves both golden behaviours, so iteration `n+1` can
    /// reuse iteration 0's golden-good run instead of re-executing it.
    /// The behaviour is still validated to be a normal exit.
    #[must_use]
    pub fn golden_good(mut self, golden: Execution) -> Self {
        self.golden_good = Some(golden);
        self
    }

    /// Seeds the session with a prior session's classifications
    /// ([`CampaignSession::seed`]) and the [`ListingDelta`] of the binary
    /// rewrite separating the two — the incremental re-campaign seam.
    ///
    /// At build time the new golden bad-input trace is aligned with the
    /// seed's through the delta: sites whose injection point and nearby
    /// downstream trace window the rewrite left untouched adopt the prior
    /// [`FaultClass`] without executing anything, and (for checkpointed
    /// sessions) snapshots are recorded only for the trace region that
    /// actually needs re-execution
    /// ([`rr_engine::ReplayEngine::replay_range`]). Reuse is guarded by
    /// the oracle fingerprint: a seed whose oracle judged differently —
    /// or one without a fingerprint — is ignored wholesale. Either way
    /// classifications are identical to an unseeded session; only the
    /// work changes. [`CampaignSession::reuse_stats`] reports the split.
    #[must_use]
    pub fn seed_from(mut self, prior: CampaignSeed, delta: &ListingDelta) -> Self {
        self.seed = Some((prior, delta.clone()));
        self
    }

    /// Attaches a telemetry handle: the golden recording, every
    /// checkpoint restore, injection, classification, and the cache
    /// reuse guards report through it. Keep a clone to read
    /// [`rr_telemetry::Telemetry::metrics`] (or use
    /// [`CampaignSession::metrics`]). The default handle is disabled and
    /// the instrumentation costs nothing.
    #[must_use]
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Performs the golden pass and builds the session.
    ///
    /// One pass over the bad-input run yields the golden behaviour, the
    /// trace, *and* — for [`CampaignEngine::Checkpointed`] sessions —
    /// the replay checkpoints (adaptive √T interval unless the config
    /// pins one). [`CampaignEngine::Naive`] sessions skip snapshot
    /// capture and its memory cost entirely.
    ///
    /// # Errors
    ///
    /// See [`CampaignError`]: missing inputs, failed golden runs, and —
    /// for the default oracle — indistinguishable golden behaviours are
    /// all reported as typed errors.
    pub fn build(self) -> Result<CampaignSession, CampaignError> {
        let bad_input = self.bad_input.ok_or(CampaignError::MissingBadInput)?;
        let config = self.config;

        // Resolve the golden good-input behaviour if the oracle needs it.
        let needs_golden_good = self.oracle.is_none();
        let mut reused_golden_good = false;
        let golden_good = match (self.golden_good, &self.good_input) {
            (Some(trusted), _) => {
                reused_golden_good = true;
                Some(trusted)
            }
            (None, Some(good)) if needs_golden_good => {
                Some(execute(&self.exe, good, config.golden_max_steps))
            }
            (None, _) if needs_golden_good => return Err(CampaignError::MissingGoodInput),
            // A custom oracle never looks at the good run; don't pay for
            // it even when a good input happens to be supplied.
            (None, _) => None,
        };
        if let Some(golden_good) = &golden_good {
            if !golden_good.outcome.is_exit() {
                return Err(CampaignError::GoldenGoodFailed(golden_good.outcome));
            }
        }

        // Pre-decode the text into superblocks once per session. A
        // seeded session accounts the rewrite's invalidations against
        // the prior session's cache (and reuses it outright when the
        // text bytes are unchanged).
        let block_cache = if config.exec.uses_block_cache() {
            match &self.seed {
                Some((seed, delta)) => rr_engine::rebuild_block_cache(
                    seed.block_cache.as_ref(),
                    delta,
                    &self.exe,
                    &self.telemetry,
                ),
                None => rr_engine::build_block_cache(&self.exe, &self.telemetry),
            }
        } else {
            None
        };
        let replay_config = ReplayConfig {
            max_steps: config.golden_max_steps,
            checkpoint_interval: config.checkpoint_interval,
            max_retained_bytes: config.max_retained_bytes,
            record_snapshots: config.engine == CampaignEngine::Checkpointed,
            telemetry: self.telemetry.clone(),
            block_cache,
            exec: config.exec,
            uop: config.uop,
            ..ReplayConfig::default()
        };
        // A seeded checkpointed session defers snapshot capture: the
        // region worth checkpointing is only known once the fresh trace
        // has been aligned with the seed's, so the first pass records the
        // trace and behaviour alone.
        let defer_snapshots = self.seed.is_some() && config.engine == CampaignEngine::Checkpointed;
        let mut replay = ReplayEngine::record(
            &self.exe,
            &bad_input,
            &ReplayConfig {
                record_snapshots: replay_config.record_snapshots && !defer_snapshots,
                ..replay_config.clone()
            },
        );
        let golden_bad = replay.execution().clone();
        if !golden_bad.outcome.is_exit() {
            return Err(CampaignError::GoldenBadFailed(golden_bad.outcome));
        }

        let oracle: Arc<dyn Oracle> = match self.oracle {
            Some(oracle) => oracle,
            None => {
                let golden_good = golden_good.clone().expect("checked above");
                if golden_good.same_behavior(&golden_bad) {
                    return Err(CampaignError::IndistinguishableBehaviors);
                }
                Arc::new(GoldenPairOracle::new(golden_good, golden_bad.clone()))
            }
        };

        // Align the seed (if any) against the fresh trace: carried-over
        // classifications go to the cache; the invalidated region — if
        // anything needs re-execution at all — is re-recorded with
        // region-scoped snapshots.
        let faulted_budget =
            (golden_bad.steps * config.faulted_step_multiplier).max(config.faulted_min_steps);
        let mut cache = ClassificationCache::default();
        if let Some((seed, delta)) = &self.seed {
            let plan = cache::plan(
                seed,
                delta,
                replay.trace(),
                oracle.fingerprint(),
                faulted_budget,
                &self.telemetry,
            );
            cache = plan.cache;
            if config.engine == CampaignEngine::Checkpointed {
                // Re-record with snapshots: scoped to the invalidated
                // window when one exists, full-trace otherwise. The
                // no-window case could skip snapshots entirely for the
                // *seeded* models (everything answers from the cache),
                // but a model absent from the seed would then silently
                // replay every fault from step 0 — the exact
                // checkpointed-in-name-only degradation the session API
                // exists to make unrepresentable. One golden-pass of
                // recording buys that guarantee back.
                let scoped = match plan.snapshot_window {
                    Some(window) => {
                        ReplayEngine::replay_range(&self.exe, &bad_input, &replay_config, window)
                    }
                    None => ReplayEngine::record(&self.exe, &bad_input, &replay_config),
                };
                debug_assert_eq!(scoped.trace(), replay.trace(), "deterministic re-recording");
                replay = scoped;
            }
        }

        let sites = replay
            .trace()
            .iter()
            .enumerate()
            .filter_map(|(step, &pc)| {
                let bytes = peek_code(&self.exe, pc)?;
                let (insn, len) = decode(bytes).ok()?;
                Some(FaultSite { step: step as u64, pc, insn, len })
            })
            .collect();

        // The static fault-effect analysis backing pruning and auditing.
        // A binary whose CFG cannot be recovered falls back to no
        // analysis — every verdict is effectively Unknown and nothing is
        // pruned, which is always sound.
        let analysis = if config.static_prune || config.audit_analysis {
            Analysis::from_executable(&self.exe).ok()
        } else {
            None
        };

        Ok(CampaignSession {
            exe: self.exe,
            good_input: self.good_input,
            bad_input,
            golden_good,
            golden_bad,
            sites,
            config,
            oracle,
            replay,
            analysis,
            reused_golden_good,
            cache,
            reused: AtomicUsize::new(0),
            replayed: AtomicUsize::new(0),
            telemetry: self.telemetry,
        })
    }
}

/// An owned, reusable fault-injection session against one executable.
///
/// Construction ([`CampaignSession::builder`]) performs the golden runs
/// and records the bad-input trace; [`CampaignSession::run`] then
/// evaluates [`FaultModel`]s against every trace site. See the crate
/// docs for the full procedure and an example.
#[derive(Debug)]
pub struct CampaignSession {
    exe: Arc<Executable>,
    good_input: Option<Arc<[u8]>>,
    bad_input: Arc<[u8]>,
    golden_good: Option<Execution>,
    golden_bad: Execution,
    sites: Vec<FaultSite>,
    config: CampaignConfig,
    oracle: Arc<dyn Oracle>,
    /// Trace + behaviour + (for checkpointed sessions) snapshots,
    /// recorded along the golden bad-input run at construction and
    /// shared by every evaluation of this session.
    replay: ReplayEngine,
    /// Static fault-effect analysis, built at construction when the
    /// config enables pruning or auditing and the binary's CFG could be
    /// recovered; `None` otherwise (no pruning, no audit checks).
    analysis: Option<Analysis>,
    reused_golden_good: bool,
    /// Classifications carried over from a seeding session
    /// ([`CampaignSessionBuilder::seed_from`]); empty when unseeded.
    cache: ClassificationCache,
    /// Fault evaluations served from the cache.
    reused: AtomicUsize,
    /// Fault evaluations that actually executed.
    replayed: AtomicUsize,
    /// Telemetry handle every evaluation reports through
    /// ([`CampaignSessionBuilder::telemetry`]); disabled by default.
    telemetry: Telemetry,
}

impl CampaignSession {
    /// Starts a session builder for an executable.
    ///
    /// The executable is `Arc`-shared: pass an owned [`Executable`] (or
    /// an existing `Arc`) and the session keeps it alive for as long as
    /// it — or any clone of the `Arc` — lives.
    pub fn builder(exe: impl Into<Arc<Executable>>) -> CampaignSessionBuilder {
        CampaignSessionBuilder {
            exe: exe.into(),
            good_input: None,
            bad_input: None,
            config: CampaignConfig::default(),
            oracle: None,
            golden_good: None,
            seed: None,
            telemetry: Telemetry::default(),
        }
    }

    /// The executable under test.
    pub fn exe(&self) -> &Arc<Executable> {
        &self.exe
    }

    /// The good input, when one was supplied.
    pub fn good_input(&self) -> Option<&[u8]> {
        self.good_input.as_deref()
    }

    /// The bad (traced) input.
    pub fn bad_input(&self) -> &[u8] {
        &self.bad_input
    }

    /// The golden good-input behaviour — present for golden-pair
    /// sessions (run or [trusted](CampaignSessionBuilder::golden_good)),
    /// absent for custom-oracle sessions that never executed it.
    pub fn golden_good(&self) -> Option<&Execution> {
        self.golden_good.as_ref()
    }

    /// The golden bad-input behaviour.
    pub fn golden_bad(&self) -> &Execution {
        &self.golden_bad
    }

    /// Whether construction reused a trusted golden-good behaviour
    /// instead of executing the good input
    /// ([`CampaignSessionBuilder::golden_good`]).
    pub fn reused_golden_good(&self) -> bool {
        self.reused_golden_good
    }

    /// The fault sites (one per executed instruction of the bad-input run).
    pub fn sites(&self) -> &[FaultSite] {
        &self.sites
    }

    /// The session's configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The engine this session was built for (and evaluates with).
    pub fn engine(&self) -> CampaignEngine {
        self.config.engine
    }

    /// The classifying oracle.
    pub fn oracle(&self) -> &dyn Oracle {
        self.oracle.as_ref()
    }

    /// The replay engine recorded alongside the golden bad-input run at
    /// construction.
    pub fn replay_engine(&self) -> &ReplayEngine {
        &self.replay
    }

    /// Packages what this session learned for the next session of an
    /// incremental loop: its golden bad-input trace, the given per-model
    /// `reports` (from this session's [`CampaignSession::run`]), the
    /// oracle fingerprint, and the faulted-run step budget. Feed the
    /// result — together with the [`ListingDelta`] of the intervening
    /// rewrite — to [`CampaignSessionBuilder::seed_from`].
    pub fn seed(&self, reports: &[CampaignReport]) -> CampaignSeed {
        CampaignSeed {
            trace: self.replay.trace().to_vec(),
            reports: reports.to_vec(),
            oracle_fingerprint: self.oracle.fingerprint(),
            faulted_budget: (self.golden_bad.steps * self.config.faulted_step_multiplier)
                .max(self.config.faulted_min_steps),
            block_cache: self.replay.block_cache().cloned(),
        }
    }

    /// How this session's fault evaluations were served so far: answered
    /// from the carried-over [`ClassificationCache`] vs actually
    /// replayed. Both zero before the first [`CampaignSession::run`].
    pub fn reuse_stats(&self) -> ReuseStats {
        ReuseStats {
            sites_reused: self.reused.load(Ordering::Relaxed),
            sites_replayed: self.replayed.load(Ordering::Relaxed),
        }
    }

    /// Number of classifications carried over from the seeding session
    /// (zero for unseeded sessions).
    pub fn cached_classifications(&self) -> usize {
        self.cache.len()
    }

    /// Snapshot of the attached telemetry's aggregated metrics, or
    /// `None` when the session was built without a telemetry handle
    /// ([`CampaignSessionBuilder::telemetry`]).
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        self.telemetry.metrics()
    }

    /// Memory footprint of the checkpoints retained for this session:
    /// page-granular retained bytes, and the region-COW baseline for the
    /// same recording. Naive sessions report one checkpoint and zero
    /// retained bytes.
    pub fn replay_footprint(&self) -> ReplayFootprint {
        self.replay.footprint()
    }

    /// Samples the session down to at most `max_sites` trace sites by
    /// setting the site stride from the recorded trace length
    /// (statistical fault injection for long traces; Leveugle et al.).
    /// Returns the stride chosen.
    pub fn sample_sites(&mut self, max_sites: usize) -> usize {
        let stride = (self.golden_bad.steps as usize).div_ceil(max_sites.max(1)).max(1);
        self.config.site_stride = stride;
        stride
    }

    /// Evaluates every fault each of `models` enumerates at every
    /// (sampled) trace site, in **one scheduling pass** shared by all
    /// models, and consumes the classifications through `sink`:
    ///
    /// * [`Collect`] → one [`CampaignReport`] per model (site order);
    /// * [`Stream`] → one [`ModelSummary`] per model, without ever
    ///   materializing per-fault results — O(sites + shards) memory no
    ///   matter how many faults the models produce.
    ///
    /// The engine, thread count, and shard policy come from the
    /// session's [`CampaignConfig`]. Classifications are identical
    /// across engines, sinks, thread counts, and shard policies — the
    /// emulator is deterministic, and the equivalence test suite
    /// enforces it.
    pub fn run<S: Sink>(&self, models: &[&dyn FaultModel], sink: S) -> S::Output {
        let _ = sink;
        S::drive(self, models)
    }

    /// The static fault-effect analysis backing pruning and auditing —
    /// `None` when the config disabled both, or the binary's CFG could
    /// not be recovered.
    pub fn analysis(&self) -> Option<&Analysis> {
        self.analysis.as_ref()
    }

    /// The analysis enumeration prunes with: `None` under
    /// `--no-static-prune` (nothing is dropped) *and* under
    /// `--audit-analysis` (the audit must execute the statically-benign
    /// plans it cross-checks).
    fn pruning_analysis(&self) -> Option<&Analysis> {
        if self.config.static_prune && !self.config.audit_analysis {
            self.analysis.as_ref()
        } else {
            None
        }
    }

    /// The sites `run` evaluates: every `site_stride`-th trace site.
    fn sampled_sites(&self) -> Vec<&FaultSite> {
        self.sites.iter().step_by(self.config.site_stride.max(1)).collect()
    }

    /// The step budget faulted continuations run under.
    fn faulted_budget(&self) -> u64 {
        (self.golden_bad.steps * self.config.faulted_step_multiplier)
            .max(self.config.faulted_min_steps)
    }

    /// Classifies one plan of `model`: served from the carried-over
    /// [`ClassificationCache`] when the seed plan proved the prior
    /// classification still valid, otherwise by positioning a machine at
    /// the plan's earliest injection step (restore + step forward for
    /// checkpointed sessions; replay from step 0 for naive ones),
    /// injecting, resuming, and consulting the oracle.
    fn evaluate(&self, model: &'static str, plan: &FaultPlan) -> FaultClass {
        if let Some(class) = self.cache.lookup(model, plan) {
            self.reused.fetch_add(1, Ordering::Relaxed);
            self.note_plan(plan, class, true);
            return class;
        }
        self.replayed.fetch_add(1, Ordering::Relaxed);
        let class = match self.replay.machine_at(plan.earliest_step()) {
            Ok(machine) => self.inject_and_classify(machine, plan),
            Err(_) => FaultClass::ReplayDiverged,
        };
        self.note_plan(plan, class, false);
        class
    }

    /// Telemetry accounting for one classified plan.
    fn note_plan(&self, plan: &FaultPlan, class: FaultClass, from_cache: bool) {
        self.telemetry.count(Counter::PlansExecuted, 1);
        self.telemetry.count(if from_cache { Counter::CacheHits } else { Counter::CacheMisses }, 1);
        if class == FaultClass::Success {
            self.telemetry.success(plan.order());
        }
        // The audit cross-check: a statically-benign plan that just
        // classified as anything else is an analysis soundness
        // violation. Central here so both sinks and both scheduling
        // paths are covered.
        if self.config.audit_analysis && class != FaultClass::Benign {
            if let Some(analysis) = &self.analysis {
                if plan_is_benign(analysis, plan) {
                    self.telemetry.count(Counter::AuditFailures, 1);
                }
            }
        }
    }

    /// Applies the plan's injections to a machine positioned at the
    /// *earliest* injection's step, and classifies the outcome.
    ///
    /// Injections are **time-triggered**, like the physical glitches they
    /// model: after the first effect is applied (on the golden trace, so
    /// the program counter is verified against the recording), the
    /// machine free-runs and each later effect fires when the machine's
    /// step count reaches that injection's trace step — wherever control
    /// actually is by then, since the earlier fault may have diverted it.
    /// A run that exits or crashes before a later injection's time
    /// arrives is classified as-is: the attacker's second glitch fired
    /// into a finished program. The total faulted continuation shares one
    /// step budget, exactly like the single-fault case.
    fn inject_and_classify(&self, mut machine: Machine, plan: &FaultPlan) -> FaultClass {
        let inject_span = self.telemetry.span(SpanKind::Inject);
        let first = plan.first();
        if machine.pc() != first.pc {
            // The replay did not arrive where the trace says it should
            // have — report instead of asserting (determinism is the
            // emulator's contract; a violation costs one result, not the
            // whole campaign).
            return FaultClass::ReplayDiverged;
        }
        if let Err(class) = apply_effect(&mut machine, first) {
            return class;
        }
        let budget = self.faulted_budget();
        let mut used = 0u64;
        let mut prev_step = first.step;
        for fault in plan.iter().skip(1) {
            let gap = fault.step - prev_step;
            prev_step = fault.step;
            if gap > 0 {
                let allowed = gap.min(budget - used);
                let result = self.faulted_run(&mut machine, allowed);
                used += result.steps;
                if result.outcome != RunOutcome::TimedOut || allowed < gap {
                    // The run ended before this injection's time arrived
                    // (the earlier fault made it unreachable), or the
                    // shared budget ran out mid-gap. `run` reports budget
                    // exhaustion as TimedOut, which is exactly the class
                    // such a hang deserves — classify what happened.
                    let faulted = Behavior {
                        outcome: result.outcome,
                        output: machine.take_output(),
                        steps: used,
                    };
                    drop(inject_span);
                    return self.classify(&faulted);
                }
            }
            if let Err(class) = apply_effect(&mut machine, fault) {
                return class;
            }
        }
        let result = self.faulted_run(&mut machine, budget - used);
        let faulted = Behavior {
            outcome: result.outcome,
            output: machine.take_output(),
            steps: used + result.steps,
        };
        drop(inject_span);
        self.classify(&faulted)
    }

    /// Runs a faulted continuation for up to `max_steps`, block-cached
    /// when the session has a cache. Injections that rewrote code bytes
    /// ([`FaultEffect::FlipInstructionBit`]) marked those ranges
    /// exec-dirty, so the block executor falls back to precise
    /// interpretation over exactly the corrupted code.
    fn faulted_run(&self, machine: &mut Machine, max_steps: u64) -> RunResult {
        match self.replay.block_cache() {
            Some(cache) => self.run_accelerated(machine, cache, max_steps),
            None => machine.run(max_steps),
        }
    }

    /// Runs `max_steps` through the session's accelerated tier — compiled
    /// uop bodies under [`ExecMode::Uops`], decoded superblocks under
    /// [`ExecMode::Blocks`] — flushing per-run execution stats to
    /// telemetry.
    fn run_accelerated(
        &self,
        machine: &mut Machine,
        cache: &rr_emu::BlockCache,
        max_steps: u64,
    ) -> RunResult {
        let mut stats = BlockStats::default();
        let result = match self.replay.exec_mode() {
            ExecMode::Uops => {
                machine.run_uops(cache, self.replay.uop_config(), max_steps, &mut stats)
            }
            _ => machine.run_blocks(cache, max_steps, &mut stats),
        };
        rr_engine::flush_block_stats(&self.telemetry, stats);
        result
    }

    /// Consults the oracle under a [`SpanKind::Classify`] span.
    fn classify(&self, faulted: &Behavior) -> FaultClass {
        let _classify_span = self.telemetry.span(SpanKind::Classify);
        self.oracle.classify(faulted)
    }

    /// Evaluates every `(model, plan)` pair, scheduling per the session
    /// config: checkpointed sessions with [`CampaignConfig::bucketing`]
    /// group plans — singletons and multi-fault alike — by the
    /// checkpoint preceding their earliest injection and sweep each
    /// neighbourhood with one restore
    /// ([`CampaignSession::evaluate_bucket`]); otherwise every plan is
    /// positioned independently under the session's
    /// [`rr_engine::shard::ShardPolicy`]. Singleton plans used to take
    /// the per-plan path, but the bucket sweep wins for them too: one
    /// restore plus one forward walk serves every fault enumerated in
    /// the neighbourhood, where per-plan positioning re-pays the walk
    /// for each of the `8 × len` bit-flip faults at a single site.
    /// Classifications are identical either way.
    fn evaluate_all(&self, plans: &[(&'static str, FaultPlan)]) -> Vec<FaultClass> {
        let bucketed = self.config.bucketing
            && self.config.engine == CampaignEngine::Checkpointed
            && self.replay.records_snapshots();
        if bucketed {
            run_bucketed(
                plans,
                self.config.threads,
                |(_, plan)| self.replay.checkpoint_step_before(plan.earliest_step()),
                |&checkpoint_step, indices| self.evaluate_bucket(checkpoint_step, plans, indices),
            )
        } else {
            run_scheduled(plans, self.config.threads, self.config.shard, |(name, plan)| {
                self.evaluate(name, plan)
            })
        }
    }

    /// Evaluates one checkpoint neighbourhood: all of `indices` share the
    /// retained checkpoint at `checkpoint_step`. The checkpoint is
    /// restored **once**; a cursor machine then walks forward through the
    /// neighbourhood in ascending injection order, and each plan is
    /// evaluated on a cheap COW clone taken when the cursor reaches its
    /// earliest injection — so the per-plan positioning cost (restore +
    /// up to a whole checkpoint interval of forward stepping) is paid
    /// once per bucket instead of once per plan.
    fn evaluate_bucket(
        &self,
        checkpoint_step: u64,
        plans: &[(&'static str, FaultPlan)],
        indices: &[usize],
    ) -> Vec<FaultClass> {
        // The bucket-sweep span wraps the whole sweep, so the restore,
        // inject, and classify spans of its plans nest inside it (like
        // snapshot captures nest inside the record span).
        let _sweep_span = self.telemetry.span(SpanKind::BucketSweep);
        self.telemetry.count(Counter::BucketSweeps, 1);
        self.telemetry.count(Counter::BucketPlans, indices.len() as u64);
        let mut order: Vec<usize> = (0..indices.len()).collect();
        order.sort_by_key(|&k| plans[indices[k]].1.earliest_step());
        let mut out: Vec<Option<FaultClass>> = vec![None; indices.len()];
        // The cursor is lazy: a bucket answered entirely from the
        // classification cache never restores anything.
        let mut cursor: Option<(Machine, u64)> = None;
        let mut diverged = false;
        for k in order {
            let (name, plan) = &plans[indices[k]];
            if let Some(class) = self.cache.lookup(name, plan) {
                self.reused.fetch_add(1, Ordering::Relaxed);
                self.note_plan(plan, class, true);
                out[k] = Some(class);
                continue;
            }
            self.replayed.fetch_add(1, Ordering::Relaxed);
            if !diverged && cursor.is_none() {
                match self.replay.machine_at(checkpoint_step) {
                    Ok(machine) => cursor = Some((machine, checkpoint_step)),
                    Err(_) => diverged = true,
                }
            }
            if let Some((machine, at)) = cursor.as_mut() {
                let target = plan.earliest_step();
                match self.replay.block_cache() {
                    Some(cache) if !diverged && *at < target => {
                        let result = self.run_accelerated(machine, cache, target - *at);
                        match result.outcome {
                            RunOutcome::Crashed { .. } => {
                                // The crashing step counts, mirroring the
                                // interpreter loop below (its `step()`
                                // error still advances `*at`).
                                *at += result.steps.max(1);
                                diverged = true;
                            }
                            // Exited before the target: the interpreter
                            // loop would no-op the remaining stopped
                            // steps to the target, so fast-forward.
                            // TimedOut is the budget fence — the walk
                            // arrived exactly at the target.
                            _ => *at = target,
                        }
                    }
                    _ => {
                        while !diverged && *at < target {
                            if machine.step().is_err() {
                                diverged = true;
                            }
                            *at += 1;
                        }
                    }
                }
            }
            if diverged {
                // Forward replay of the golden trace stopped early: the
                // same determinism violation machine_at reports — degrade
                // this plan (and the rest of the neighbourhood beyond the
                // divergence) instead of panicking.
                self.note_plan(plan, FaultClass::ReplayDiverged, false);
                out[k] = Some(FaultClass::ReplayDiverged);
                continue;
            }
            let (machine, _) = cursor.as_ref().expect("cursor initialized above");
            self.telemetry.count(Counter::CowClones, 1);
            let clone = Machine::from_snapshot(&machine.snapshot());
            let class = self.inject_and_classify(clone, plan);
            self.note_plan(plan, class, false);
            out[k] = Some(class);
        }
        out.into_iter().map(|class| class.expect("every plan classified")).collect()
    }
}

/// Applies one injection's physical effect to the machine. The program
/// counter in [`Fault::pc`] anchors *address-based* effects (an encoding
/// bit flip corrupts the instruction at that address, wherever control
/// currently is); skip/register/flag effects act on the machine's
/// current state. `Err` short-circuits with the class the failed
/// injection itself produced (e.g. skipping an unreadable instruction).
fn apply_effect(machine: &mut Machine, fault: &Fault) -> Result<(), FaultClass> {
    match fault.effect {
        FaultEffect::SkipInstruction => {
            if machine.skip_instruction().is_err() {
                return Err(FaultClass::Crashed);
            }
        }
        FaultEffect::FlipInstructionBit { byte, bit } => {
            let addr = fault.pc + byte as u64;
            let Some(&current) = machine.peek_bytes(addr, 1).and_then(|b| b.first()) else {
                return Err(FaultClass::Crashed);
            };
            machine.poke_bytes(addr, &[current ^ (1 << bit)]);
        }
        FaultEffect::FlipRegisterBit { reg, bit } => {
            machine.set_reg(reg, machine.reg(reg) ^ (1u64 << bit));
        }
        FaultEffect::FlipFlags { mask } => {
            machine.set_flags(Flags::from_bits(machine.flags().to_bits() ^ u64::from(mask)));
        }
    }
    Ok(())
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::Collect {}
    impl Sealed for super::Stream {}
}

/// How [`CampaignSession::run`] consumes classifications. Sealed: the
/// two consumption modes are [`Collect`] and [`Stream`].
pub trait Sink: sealed::Sealed {
    /// What the run returns — one element per model passed to `run`.
    type Output;

    #[doc(hidden)]
    fn drive(session: &CampaignSession, models: &[&dyn FaultModel]) -> Self::Output;
}

/// Materialize every [`FaultResult`]: [`CampaignSession::run`] returns
/// one [`CampaignReport`] per model, results in site order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Collect;

impl Sink for Collect {
    type Output = Vec<CampaignReport>;

    fn drive(session: &CampaignSession, models: &[&dyn FaultModel]) -> Vec<CampaignReport> {
        let sampled = session.sampled_sites();
        // A Collect run materializes every result anyway, so enumerating
        // the plans up front costs the same memory — and lets the one
        // scheduling pass cover exactly the plans, so models whose
        // faults cluster on few sites pay no per-site scheduling
        // overhead. Per model, singleton plans stay in site order,
        // followed by each higher order in canonical enumeration order.
        let pruning = session.pruning_analysis();
        let mut counts = Vec::with_capacity(models.len());
        let mut pruned_orders = Vec::with_capacity(models.len());
        let mut plans: Vec<(&'static str, FaultPlan)> = Vec::new();
        for model in models {
            let before = plans.len();
            let name = model.name();
            let set = enumerate_plans_pruned(*model, &sampled, &session.config.plan, pruning);
            let pruned: u128 = set.pruned_by_order.iter().map(|&(_, n)| n).sum();
            if pruned > 0 {
                session.telemetry.count(Counter::PlansPrunedStatic, pruned as u64);
            }
            pruned_orders.push(set.pruned_by_order);
            plans.extend(set.plans.into_iter().map(|plan| (name, plan)));
            counts.push(plans.len() - before);
        }
        session.telemetry.gauge(Gauge::PlansTotal, plans.len() as u64);
        let classes = session.evaluate_all(&plans);
        let mut rest: Vec<FaultResult> = plans
            .into_iter()
            .zip(classes)
            .map(|((_, plan), class)| FaultResult { plan, class })
            .collect();
        let mut reports = Vec::with_capacity(models.len());
        for ((model, count), pruned_by_order) in models.iter().zip(counts).zip(pruned_orders) {
            let tail = rest.split_off(count);
            let audit_failures = match (&session.analysis, session.config.audit_analysis) {
                (Some(analysis), true) => rest
                    .iter()
                    .filter(|r| r.class != FaultClass::Benign && plan_is_benign(analysis, &r.plan))
                    .cloned()
                    .collect(),
                _ => Vec::new(),
            };
            reports.push(CampaignReport {
                model: model.name(),
                results: rest,
                pruned_by_order,
                audit_failures,
            });
            rest = tail;
        }
        reports
    }
}

/// Fold classifications straight into per-model [`Summary`] counters:
/// [`CampaignSession::run`] returns one [`ModelSummary`] per model,
/// keeping memory at O(sites + shards) no matter how many plans the
/// campaign evaluates — for campaigns too large to keep every
/// [`FaultResult`]. Singleton plans are enumerated per site inside each
/// shard; unbudgeted higher-order plans are visited lazily per
/// first-injection site (the cross-product is never materialized); a
/// sampling budget ([`crate::PlanConfig::budget`]) bounds the one list
/// that is materialized — the drawn sample — which then goes through the
/// bucketed scheduling pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stream;

impl Sink for Stream {
    type Output = Vec<ModelSummary>;

    fn drive(session: &CampaignSession, models: &[&dyn FaultModel]) -> Vec<ModelSummary> {
        let sampled = session.sampled_sites();
        let pruning = session.pruning_analysis();
        if let Some(analysis) = pruning {
            // Streamed runs materialize no PlanSet; account the pruned
            // space up front from the counting DP.
            let pruned: u128 = models
                .iter()
                .flat_map(|model| {
                    crate::model::pruned_counts_by_order(
                        *model,
                        &sampled,
                        &session.config.plan,
                        analysis,
                    )
                })
                .map(|(_, n)| n)
                .sum();
            if pruned > 0 {
                session.telemetry.count(Counter::PlansPrunedStatic, pruned as u64);
            }
        }
        let mut summaries = scheduled_fold(
            &sampled,
            session.config.threads,
            session.config.shard,
            vec![Summary::default(); models.len()],
            |mut acc, site| {
                for (m, model) in models.iter().enumerate() {
                    for fault in model.faults_at(site) {
                        if pruning
                            .is_some_and(|a| fault_verdict(a, &fault) == StaticVerdict::Benign)
                        {
                            continue;
                        }
                        acc[m].record(session.evaluate(model.name(), &FaultPlan::single(fault)));
                    }
                }
                acc
            },
            |a, b| a.into_iter().zip(b).map(|(x, y)| x.merge(y)).collect(),
        );
        if session.config.plan.order >= 2 {
            if session.config.plan.budget.is_some() {
                // Budgeted: at most `budget` plans per order survive
                // sampling, so materializing them costs bounded memory
                // and buys the bucketed (warm-checkpoint) schedule.
                let mut counts = Vec::with_capacity(models.len());
                let mut plans: Vec<(&'static str, FaultPlan)> = Vec::new();
                for model in models {
                    let before = plans.len();
                    let higher = crate::model::higher_order_plans(
                        *model,
                        &sampled,
                        &session.config.plan,
                        pruning,
                    );
                    plans.extend(higher.into_iter().map(|plan| (model.name(), plan)));
                    counts.push(plans.len() - before);
                }
                session.telemetry.gauge(Gauge::PlansTotal, plans.len() as u64);
                let mut classes = session.evaluate_all(&plans).into_iter();
                for (m, count) in counts.into_iter().enumerate() {
                    for class in classes.by_ref().take(count) {
                        summaries[m].record(class);
                    }
                }
            } else {
                // Unbudgeted: the exhaustive pair/k-tuple space can be
                // quadratic and larger — fold it lazily, sharding by
                // first-injection site and visiting each plan exactly
                // once, so memory stays O(sites + shards).
                let site_indices: Vec<usize> = (0..sampled.len()).collect();
                for (m, model) in models.iter().enumerate() {
                    let space =
                        crate::model::plan_space(*model, &sampled, &session.config.plan, pruning);
                    let extra = scheduled_fold(
                        &site_indices,
                        session.config.threads,
                        session.config.shard,
                        Summary::default(),
                        |mut acc, &site| {
                            space.for_each_starting_at(
                                session.config.plan.order,
                                site,
                                &mut |plan| {
                                    acc.record(session.evaluate(model.name(), &plan));
                                },
                            );
                            acc
                        },
                        Summary::merge,
                    );
                    summaries[m] = summaries[m].merge(extra);
                }
            }
        }
        models
            .iter()
            .zip(summaries)
            .map(|(model, summary)| ModelSummary { model: model.name(), summary })
            .collect()
    }
}

/// Reads up to [`MAX_INSTR_LEN`] code bytes at `pc` from the executable
/// image (shorter at the end of `.text`).
fn peek_code(exe: &Executable, pc: u64) -> Option<&[u8]> {
    let text = exe.text_range();
    if !text.contains(&pc) {
        return None;
    }
    let available = (text.end - pc).min(MAX_INSTR_LEN as u64) as usize;
    exe.read_bytes(pc, available)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FlagFlip, InstructionSkip, SingleBitFlip};
    use rr_asm::assemble_and_link;
    use rr_engine::shard::ShardPolicy;
    use rr_isa::InstrKind;
    use rr_workloads::pincheck;

    fn pincheck_session() -> CampaignSession {
        pincheck_session_with(CampaignConfig::default())
    }

    fn pincheck_session_with(config: CampaignConfig) -> CampaignSession {
        let w = pincheck();
        CampaignSession::builder(w.build().unwrap())
            .good_input(&w.good_input[..])
            .bad_input(&w.bad_input[..])
            .config(config)
            .build()
            .unwrap()
    }

    fn run_one(session: &CampaignSession, model: &dyn FaultModel) -> CampaignReport {
        session.run(&[model], Collect).pop().expect("one model in, one report out")
    }

    #[test]
    fn builder_validation_rejects_broken_setups() {
        let w = pincheck();
        let exe = w.build().unwrap();
        // Missing inputs are typed errors.
        assert_eq!(
            CampaignSession::builder(exe.clone()).build().unwrap_err(),
            CampaignError::MissingBadInput
        );
        assert_eq!(
            CampaignSession::builder(exe.clone()).bad_input(&w.bad_input[..]).build().unwrap_err(),
            CampaignError::MissingGoodInput
        );
        // Same input for good and bad → indistinguishable.
        assert_eq!(
            CampaignSession::builder(exe.clone())
                .good_input(&w.good_input[..])
                .bad_input(&w.good_input[..])
                .build()
                .unwrap_err(),
            CampaignError::IndistinguishableBehaviors
        );
        // A crashing program cannot be campaigned.
        let crasher = assemble_and_link("    .global _start\n_start:\n    halt\n").unwrap();
        assert!(matches!(
            CampaignSession::builder(crasher)
                .good_input(&b"a"[..])
                .bad_input(&b"b"[..])
                .build()
                .unwrap_err(),
            CampaignError::GoldenGoodFailed(_)
        ));
        // Every variant renders.
        for err in [CampaignError::MissingBadInput, CampaignError::MissingGoodInput] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn session_owns_its_executable_and_inputs() {
        let session = {
            let w = pincheck();
            // The executable and inputs are moved/copied into the
            // session; nothing borrowed outlives this block.
            CampaignSession::builder(w.build().unwrap())
                .good_input(w.good_input)
                .bad_input(w.bad_input)
                .build()
                .unwrap()
        };
        assert!(session.good_input().is_some());
        assert!(!session.bad_input().is_empty());
        assert!(session.exe().code_size() > 0);
        let report = run_one(&session, &InstructionSkip);
        assert!(report.summary().success > 0);
    }

    #[test]
    fn sites_cover_the_bad_trace() {
        let session = pincheck_session();
        assert_eq!(session.sites().len() as u64, session.golden_bad().steps);
        for (i, site) in session.sites().iter().enumerate() {
            assert_eq!(site.step, i as u64);
        }
    }

    #[test]
    fn unprotected_pincheck_is_skip_vulnerable_at_branches() {
        let session = pincheck_session();
        let report = run_one(&session, &InstructionSkip);
        let summary = report.summary();
        assert!(summary.success > 0, "expected skip vulnerabilities: {summary}");
        assert!(summary.benign > 0, "skips off the critical path are benign");

        // The classic vulnerability: skipping a `jne deny`. The paper
        // reports all vulnerabilities stem from the conditional jumps and
        // the mov/cmp instructions feeding them; at minimum a conditional
        // jump must be among ours.
        let vulnerable_kinds: Vec<InstrKind> = report
            .vulnerabilities()
            .iter()
            .map(|result| {
                session
                    .sites()
                    .iter()
                    .find(|s| s.step == result.fault().step)
                    .expect("vulnerability at a known site")
                    .insn
                    .kind()
            })
            .collect();
        assert!(
            vulnerable_kinds.contains(&InstrKind::CondJump),
            "expected a conditional-jump vulnerability, got {vulnerable_kinds:?}"
        );
    }

    #[test]
    fn bit_flips_produce_crashes_and_successes() {
        let session = pincheck_session();
        let report = run_one(&session, &SingleBitFlip);
        let summary = report.summary();
        assert!(summary.success > 0, "{summary}");
        assert!(summary.crashed > 0, "sparse opcodes must yield crashes: {summary}");
        assert!(summary.benign > 0, "{summary}");
        // Executed + statically-pruned covers the full 8 × len space.
        let space: usize = session.sites().iter().map(|s| s.len * 8).sum();
        assert_eq!(summary.total + report.plans_pruned_static() as usize, space);
    }

    #[test]
    fn thread_counts_and_shard_policies_do_not_change_results() {
        let reference = run_one(&pincheck_session(), &InstructionSkip);
        for threads in [1, 4] {
            for shard in [ShardPolicy::Contiguous, ShardPolicy::Interleaved] {
                let config = CampaignConfig { threads, shard, ..CampaignConfig::default() };
                let report = run_one(&pincheck_session_with(config), &InstructionSkip);
                assert_eq!(report.results, reference.results, "threads={threads} {shard}");
            }
        }
    }

    #[test]
    fn multiple_models_share_one_pass_and_match_solo_runs() {
        let session = pincheck_session();
        let models: [&dyn FaultModel; 3] = [&InstructionSkip, &FlagFlip, &SingleBitFlip];
        let combined = session.run(&models, Collect);
        assert_eq!(combined.len(), 3);
        for (model, combined_report) in models.iter().zip(&combined) {
            let solo = run_one(&session, *model);
            assert_eq!(combined_report.model, solo.model);
            assert_eq!(combined_report.results, solo.results, "{}", solo.model);
        }
        // The streaming sink agrees model-by-model.
        let streamed = session.run(&models, Stream);
        for (report, summary) in combined.iter().zip(&streamed) {
            assert_eq!(report.summary(), summary.summary, "{}", report.model);
            assert_eq!(report.model, summary.model);
        }
    }

    #[test]
    fn naive_session_records_no_snapshots_but_classifies_identically() {
        // The engine choice is a construction-time property: a naive
        // session records no snapshots — and since `run` is the only
        // entry point and always evaluates with the constructed engine,
        // the old footgun (asking a snapshot-less campaign for a
        // checkpointed run, silently replaying from zero) is
        // unrepresentable.
        let naive = pincheck_session_with(CampaignConfig {
            engine: CampaignEngine::Naive,
            ..CampaignConfig::default()
        });
        assert_eq!(naive.engine(), CampaignEngine::Naive);
        assert!(!naive.replay_engine().records_snapshots());
        assert_eq!(naive.replay_engine().checkpoint_count(), 1, "initial state only");
        assert_eq!(naive.replay_footprint().retained_bytes, 0);

        // The engine changes memory and replay cost, never results.
        let checkpointed = pincheck_session();
        assert!(checkpointed.replay_engine().records_snapshots());
        assert!(checkpointed.replay_footprint().checkpoints > 1);
        assert_eq!(
            run_one(&naive, &InstructionSkip).results,
            run_one(&checkpointed, &InstructionSkip).results
        );
    }

    #[test]
    fn streaming_summary_matches_materialized_report() {
        for engine in [CampaignEngine::Naive, CampaignEngine::Checkpointed] {
            let session =
                pincheck_session_with(CampaignConfig { engine, ..CampaignConfig::default() });
            let report = run_one(&session, &FlagFlip);
            let streamed = session.run(&[&FlagFlip as &dyn FaultModel], Stream);
            assert_eq!(streamed.len(), 1);
            assert_eq!(streamed[0].summary, report.summary(), "{engine}");
        }
    }

    #[test]
    fn flag_flips_can_invert_decisions() {
        // Flipping Z right before `jne deny` takes the grant path.
        let report = run_one(&pincheck_session(), &FlagFlip);
        assert!(report.summary().success > 0);
    }

    #[test]
    fn vulnerable_pcs_deduplicate_loop_sites() {
        let session = pincheck_session();
        let report = run_one(&session, &InstructionSkip);
        let pcs = report.vulnerable_pcs();
        assert!(!pcs.is_empty());
        assert!(pcs.len() <= report.vulnerabilities().len());
        for pc in &pcs {
            assert!(session.exe().text_range().contains(pc));
        }
    }

    #[test]
    fn summary_counts_add_up() {
        let session = pincheck_session();
        let report = run_one(&session, &InstructionSkip);
        let s = report.summary();
        assert_eq!(
            s.total,
            s.success + s.benign + s.crashed + s.timed_out + s.corrupted + s.diverged
        );
        assert_eq!(s.total, report.results.len());
        assert_eq!(s.diverged, 0, "golden replays never diverge");
    }

    #[test]
    fn divergent_replay_reports_instead_of_panicking() {
        for engine in [CampaignEngine::Naive, CampaignEngine::Checkpointed] {
            let session =
                pincheck_session_with(CampaignConfig { engine, ..CampaignConfig::default() });
            // A fault whose recorded pc disagrees with the trace models a
            // determinism violation; it must degrade to ReplayDiverged
            // (the seed implementation debug-asserted here and took the
            // whole process down in debug builds).
            let bogus = FaultPlan::single(Fault {
                step: 0,
                pc: 0xDEAD_0000,
                effect: FaultEffect::SkipInstruction,
            });
            assert_eq!(session.evaluate("test", &bogus), FaultClass::ReplayDiverged, "{engine}");
            // Beyond-trace steps likewise degrade gracefully.
            let beyond = FaultPlan::single(Fault {
                step: session.golden_bad().steps + 10,
                pc: 0x1000,
                effect: FaultEffect::SkipInstruction,
            });
            assert_eq!(session.evaluate("test", &beyond), FaultClass::ReplayDiverged, "{engine}");
        }
    }

    #[test]
    fn trusted_golden_good_skips_the_good_run() {
        let w = pincheck();
        let exe = w.build().unwrap();
        let first = CampaignSession::builder(exe.clone())
            .good_input(&w.good_input[..])
            .bad_input(&w.bad_input[..])
            .build()
            .unwrap();
        assert!(!first.reused_golden_good());
        let golden = first.golden_good().expect("golden-pair session has a good run").clone();

        let reusing = CampaignSession::builder(exe)
            .bad_input(&w.bad_input[..])
            .golden_good(golden)
            .build()
            .unwrap();
        assert!(reusing.reused_golden_good());
        assert_eq!(reusing.golden_good(), first.golden_good());
        assert_eq!(
            run_one(&reusing, &InstructionSkip).results,
            run_one(&first, &InstructionSkip).results
        );
    }

    #[test]
    fn seeded_session_reuses_everything_across_an_identity_rewrite() {
        let w = pincheck();
        let exe = w.build().unwrap();
        let first = CampaignSession::builder(exe.clone())
            .good_input(&w.good_input[..])
            .bad_input(&w.bad_input[..])
            .build()
            .unwrap();
        let models: [&dyn FaultModel; 2] = [&InstructionSkip, &FlagFlip];
        let reports = first.run(&models, Collect);
        assert_eq!(first.reuse_stats().sites_reused, 0, "unseeded sessions never reuse");

        // Same binary, nothing changed: every classification carries over
        // and the seeded session executes nothing.
        let seeded = CampaignSession::builder(exe)
            .good_input(&w.good_input[..])
            .bad_input(&w.bad_input[..])
            .seed_from(first.seed(&reports), &rr_disasm::ListingDelta::identity())
            .build()
            .unwrap();
        assert!(seeded.cached_classifications() > 0);
        let again = seeded.run(&models, Collect);
        for (fresh, cached) in reports.iter().zip(&again) {
            assert_eq!(fresh.model, cached.model);
            assert_eq!(fresh.results, cached.results, "{}", fresh.model);
        }
        let stats = seeded.reuse_stats();
        assert!(stats.sites_reused > 0);
        assert_eq!(stats.sites_replayed, 0, "identity rewrite leaves nothing to replay");
        assert!((stats.reuse_percent() - 100.0).abs() < 1e-9);

        // A model the seed never ran is evaluated live — and classifies
        // exactly as in the unseeded session.
        let bitflip = seeded.run(&[&SingleBitFlip as &dyn FaultModel], Collect);
        assert!(seeded.reuse_stats().sites_replayed > 0);
        assert_eq!(bitflip[0].results, first.run(&[&SingleBitFlip], Collect)[0].results);
    }

    #[test]
    fn seeded_session_matches_a_full_campaign_across_a_real_rewrite() {
        // Patch pincheck behaviour-preservingly (insert a nop mid-text),
        // then campaign the rebuilt binary twice: from scratch, and seeded
        // with the original session's classifications through the listing
        // delta. Classifications must be bit-identical, with nonzero
        // reuse.
        let w = pincheck();
        let exe = w.build().unwrap();
        let first = CampaignSession::builder(exe.clone())
            .good_input(&w.good_input[..])
            .bad_input(&w.bad_input[..])
            .build()
            .unwrap();
        let models: [&dyn FaultModel; 2] = [&InstructionSkip, &FlagFlip];
        let reports = first.run(&models, Collect);

        let listing = rr_disasm::disassemble(&exe).unwrap().listing;
        let mut patched = listing.clone();
        // Insert before an instruction the bad-input run demonstrably
        // executes (the mid-trace site), so the delta dirties real trace
        // steps.
        let mid_pc = first.sites()[first.sites().len() / 2].pc;
        let index = patched.find_code(mid_pc).expect("traced pc is in the listing");
        patched.text.insert(
            index,
            rr_disasm::Line::Code {
                orig_addr: None,
                insn: rr_disasm::SymInstr::Plain(rr_isa::Instr::Nop),
            },
        );
        let rebuilt = rr_asm::assemble_and_link(&patched.to_source()).unwrap();
        let delta = rr_disasm::ListingDelta::compute(&listing, &exe, &patched, &rebuilt).unwrap();

        let scratch = CampaignSession::builder(rebuilt.clone())
            .good_input(&w.good_input[..])
            .bad_input(&w.bad_input[..])
            .build()
            .unwrap();
        let seeded = CampaignSession::builder(rebuilt)
            .good_input(&w.good_input[..])
            .bad_input(&w.bad_input[..])
            .seed_from(first.seed(&reports), &delta)
            .build()
            .unwrap();
        let scratch_reports = scratch.run(&models, Collect);
        let seeded_reports = seeded.run(&models, Collect);
        for (fresh, cached) in scratch_reports.iter().zip(&seeded_reports) {
            assert_eq!(fresh.results, cached.results, "{}", fresh.model);
        }
        let stats = seeded.reuse_stats();
        assert!(stats.sites_reused > 0, "{stats}");
        assert!(stats.sites_replayed > 0, "the nop executes, its region must replay: {stats}");
    }

    #[test]
    fn order_two_campaigns_subsume_order_one_and_agree_across_schedulers() {
        use crate::model::{PairPolicy, PlanConfig};
        let order2 = |bucketing, engine, threads| {
            pincheck_session_with(CampaignConfig {
                engine,
                threads,
                bucketing,
                plan: PlanConfig {
                    order: 2,
                    policy: PairPolicy::WithinWindow { max_gap: 6 },
                    ..PlanConfig::default()
                },
                ..CampaignConfig::default()
            })
        };
        let reference = run_one(&order2(false, CampaignEngine::Naive, 1), &InstructionSkip);
        assert!(reference.max_order() == 2, "pairs were enumerated");
        // The order-1 prefix is exactly the singleton campaign.
        let singles = run_one(&pincheck_session(), &InstructionSkip);
        let prefix: Vec<&FaultResult> =
            reference.results.iter().take(singles.results.len()).collect();
        for (single, multi) in singles.results.iter().zip(prefix) {
            assert_eq!(single, multi, "order-1 results are unchanged by the pair space");
        }
        // Bucketed checkpointed evaluation and per-plan evaluation agree,
        // across thread counts and both sinks.
        for bucketing in [false, true] {
            for threads in [1, 4] {
                let session = order2(bucketing, CampaignEngine::Checkpointed, threads);
                let report = run_one(&session, &InstructionSkip);
                assert_eq!(
                    report.results, reference.results,
                    "bucketing={bucketing} threads={threads}"
                );
                let streamed = session.run(&[&InstructionSkip as &dyn FaultModel], Stream);
                assert_eq!(streamed[0].summary, report.summary(), "stream bucketing={bucketing}");
            }
        }
    }

    #[test]
    fn double_faults_change_outcomes_somewhere() {
        use crate::model::{PairPolicy, PlanConfig};
        // Not a tautology: at least one pair must classify differently
        // from both of its legs (two skips compose, they don't shadow).
        let session = pincheck_session_with(CampaignConfig {
            plan: PlanConfig {
                order: 2,
                policy: PairPolicy::WithinWindow { max_gap: 8 },
                ..PlanConfig::default()
            },
            ..CampaignConfig::default()
        });
        let report = run_one(&session, &InstructionSkip);
        let single_class = |step: u64| {
            report
                .results
                .iter()
                .find(|r| r.order() == 1 && r.fault().step == step)
                .map(|r| r.class)
        };
        let composing = report.results.iter().filter(|r| r.order() == 2).any(|pair| {
            let mut legs = pair.plan.iter();
            let (a, b) = (legs.next().unwrap().step, legs.next().unwrap().step);
            single_class(a).is_some_and(|c| c != pair.class)
                && single_class(b).is_some_and(|c| c != pair.class)
        });
        assert!(composing, "some pair must behave unlike either single fault");
    }

    #[test]
    fn custom_oracles_need_no_good_input() {
        use crate::oracle::{CrashTriageOracle, OutputPrefixOracle};
        let w = pincheck();
        let exe = w.build().unwrap();
        // Crash triage traces the bad input only.
        let triage = CampaignSession::builder(exe.clone())
            .bad_input(&w.bad_input[..])
            .oracle(CrashTriageOracle)
            .build()
            .unwrap();
        assert_eq!(triage.oracle().name(), "crash-triage");
        assert!(triage.golden_good().is_none());
        let summary = run_one(&triage, &SingleBitFlip).summary();
        assert!(summary.crashed > 0, "bit flips must crash somewhere: {summary}");
        assert_eq!(summary.success, 0, "crash triage never declares success");

        // An output-prefix goal covers the golden-pair successes on
        // pincheck — behaving "like the good run" implies "printed
        // ACCESS GRANTED" (the prefix oracle may also credit runs that
        // printed the goal and then diverged).
        let prefix = CampaignSession::builder(exe)
            .bad_input(&w.bad_input[..])
            .oracle(OutputPrefixOracle::new(&b"ACCESS GRANTED"[..]))
            .build()
            .unwrap();
        let by_prefix = run_one(&prefix, &InstructionSkip);
        let by_pair = run_one(&pincheck_session(), &InstructionSkip);
        assert!(by_prefix.summary().success >= by_pair.summary().success);
        assert!(by_prefix.vulnerable_pcs().is_superset(&by_pair.vulnerable_pcs()));
    }
}
