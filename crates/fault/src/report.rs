//! Campaign results: per-fault classifications, per-model reports, and
//! streamed summaries.

use crate::site::{Fault, FaultClass};
use std::collections::BTreeSet;
use std::fmt;

/// One evaluated fault and its classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultResult {
    /// The injected fault.
    pub fault: Fault,
    /// How the oracle classified the faulted run.
    pub class: FaultClass,
}

/// Per-class counts of a campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Summary {
    /// Total faults evaluated.
    pub total: usize,
    /// Successful faults (vulnerabilities).
    pub success: usize,
    /// Faults with no attacker-relevant effect.
    pub benign: usize,
    /// Faulted runs that crashed.
    pub crashed: usize,
    /// Faulted runs that hung.
    pub timed_out: usize,
    /// Normal exits matching neither golden behaviour.
    pub corrupted: usize,
    /// Replays that failed to reach the injection point (determinism
    /// violations; always 0 for well-formed campaigns).
    pub diverged: usize,
}

impl Summary {
    /// Streams one classification into the counts.
    pub fn record(&mut self, class: FaultClass) {
        self.total += 1;
        match class {
            FaultClass::Success => self.success += 1,
            FaultClass::Benign => self.benign += 1,
            FaultClass::Crashed => self.crashed += 1,
            FaultClass::TimedOut => self.timed_out += 1,
            FaultClass::Corrupted => self.corrupted += 1,
            FaultClass::ReplayDiverged => self.diverged += 1,
        }
    }

    /// Combines two partial summaries (shard aggregation).
    #[must_use]
    pub fn merge(self, other: Summary) -> Summary {
        Summary {
            total: self.total + other.total,
            success: self.success + other.success,
            benign: self.benign + other.benign,
            crashed: self.crashed + other.crashed,
            timed_out: self.timed_out + other.timed_out,
            corrupted: self.corrupted + other.corrupted,
            diverged: self.diverged + other.diverged,
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} faults: {} success, {} benign, {} crashed, {} timed-out, {} corrupted",
            self.total, self.success, self.benign, self.crashed, self.timed_out, self.corrupted
        )?;
        if self.diverged > 0 {
            write!(f, ", {} replay-diverged", self.diverged)?;
        }
        Ok(())
    }
}

/// The outcome of running one fault model against one binary.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Name of the fault model that was simulated.
    pub model: &'static str,
    /// Every evaluated fault, in site order.
    pub results: Vec<FaultResult>,
}

impl CampaignReport {
    /// Number of results in the given class.
    pub fn count(&self, class: FaultClass) -> usize {
        self.results.iter().filter(|r| r.class == class).count()
    }

    /// The successful faults — the vulnerability list handed to the
    /// patcher.
    pub fn vulnerabilities(&self) -> Vec<FaultResult> {
        self.results.iter().copied().filter(|r| r.class == FaultClass::Success).collect()
    }

    /// Distinct instruction addresses with at least one successful fault —
    /// the set of *program points* the patcher must protect.
    pub fn vulnerable_pcs(&self) -> BTreeSet<u64> {
        self.results.iter().filter(|r| r.class == FaultClass::Success).map(|r| r.fault.pc).collect()
    }

    /// Aggregated per-class counts.
    pub fn summary(&self) -> Summary {
        let mut s = Summary::default();
        for r in &self.results {
            s.record(r.class);
        }
        s
    }
}

/// A streamed [`Summary`] for one fault model — what the
/// [`Stream`](crate::Stream) sink yields instead of a materialized
/// [`CampaignReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelSummary {
    /// Name of the fault model that was simulated.
    pub model: &'static str,
    /// Aggregated per-class counts.
    pub summary: Summary,
}

impl fmt::Display for ModelSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.model, self.summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_records_and_merges_every_class() {
        let mut a = Summary::default();
        for class in FaultClass::ALL {
            a.record(class);
        }
        assert_eq!(a.total, 6);
        assert_eq!(
            a.total,
            a.success + a.benign + a.crashed + a.timed_out + a.corrupted + a.diverged
        );
        let merged = a.merge(a);
        assert_eq!(merged.total, 12);
        assert_eq!(merged.diverged, 2);
        assert!(merged.to_string().contains("replay-diverged"));
        assert!(!Summary::default().to_string().contains("replay-diverged"));
    }

    #[test]
    fn model_summary_displays_its_model() {
        let ms = ModelSummary { model: "instruction-skip", summary: Summary::default() };
        assert!(ms.to_string().starts_with("instruction-skip: "));
    }
}
