//! Campaign results: per-plan classifications, per-model reports, and
//! streamed summaries.

use crate::site::{Fault, FaultClass, FaultPlan};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One evaluated injection plan and its classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultResult {
    /// The injected plan (a single fault in order-1 campaigns).
    pub plan: FaultPlan,
    /// How the oracle classified the faulted run.
    pub class: FaultClass,
}

impl FaultResult {
    /// Wraps a single-fault classification (order-1 convenience).
    pub fn single(fault: Fault, class: FaultClass) -> FaultResult {
        FaultResult { plan: FaultPlan::single(fault), class }
    }

    /// The plan's earliest injection — for order-1 campaigns, *the*
    /// fault.
    pub fn fault(&self) -> &Fault {
        self.plan.first()
    }

    /// Number of injections in the plan.
    pub fn order(&self) -> usize {
        self.plan.order()
    }
}

/// Per-class counts of a campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Summary {
    /// Total faults evaluated.
    pub total: usize,
    /// Successful faults (vulnerabilities).
    pub success: usize,
    /// Faults with no attacker-relevant effect.
    pub benign: usize,
    /// Faulted runs that crashed.
    pub crashed: usize,
    /// Faulted runs that hung.
    pub timed_out: usize,
    /// Normal exits matching neither golden behaviour.
    pub corrupted: usize,
    /// Replays that failed to reach the injection point (determinism
    /// violations; always 0 for well-formed campaigns).
    pub diverged: usize,
}

impl Summary {
    /// Streams one classification into the counts.
    pub fn record(&mut self, class: FaultClass) {
        self.total += 1;
        match class {
            FaultClass::Success => self.success += 1,
            FaultClass::Benign => self.benign += 1,
            FaultClass::Crashed => self.crashed += 1,
            FaultClass::TimedOut => self.timed_out += 1,
            FaultClass::Corrupted => self.corrupted += 1,
            FaultClass::ReplayDiverged => self.diverged += 1,
        }
    }

    /// Combines two partial summaries (shard aggregation).
    #[must_use]
    pub fn merge(self, other: Summary) -> Summary {
        Summary {
            total: self.total + other.total,
            success: self.success + other.success,
            benign: self.benign + other.benign,
            crashed: self.crashed + other.crashed,
            timed_out: self.timed_out + other.timed_out,
            corrupted: self.corrupted + other.corrupted,
            diverged: self.diverged + other.diverged,
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} faults: {} success, {} benign, {} crashed, {} timed-out, {} corrupted",
            self.total, self.success, self.benign, self.crashed, self.timed_out, self.corrupted
        )?;
        if self.diverged > 0 {
            write!(f, ", {} replay-diverged", self.diverged)?;
        }
        Ok(())
    }
}

/// The outcome of running one fault model against one binary.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Name of the fault model that was simulated.
    pub model: &'static str,
    /// Every evaluated fault, in site order.
    pub results: Vec<FaultResult>,
    /// Plans the static analysis pruned before execution, per order
    /// (`(order, pruned)`; all zeros when pruning was off). Pruned plans
    /// are provably benign — they are not in `results`, and the
    /// successes are identical to an unpruned campaign's.
    pub pruned_by_order: Vec<(usize, u128)>,
    /// Statically-benign plans that classified as something other than
    /// [`FaultClass::Benign`] under `--audit-analysis` — analysis
    /// soundness violations. Always empty outside audit mode (and, if
    /// the analysis is sound, inside it).
    pub audit_failures: Vec<FaultResult>,
}

impl CampaignReport {
    /// A report with no pruning or audit metadata (convenient for tests
    /// and cache seeding).
    pub fn new(model: &'static str, results: Vec<FaultResult>) -> CampaignReport {
        CampaignReport { model, results, pruned_by_order: Vec::new(), audit_failures: Vec::new() }
    }

    /// Number of results in the given class.
    pub fn count(&self, class: FaultClass) -> usize {
        self.results.iter().filter(|r| r.class == class).count()
    }

    /// Total plans the static analysis pruned (all orders).
    pub fn plans_pruned_static(&self) -> u128 {
        self.pruned_by_order.iter().map(|&(_, pruned)| pruned).sum()
    }

    /// The successful plans — the vulnerability list handed to the
    /// patcher.
    pub fn vulnerabilities(&self) -> Vec<FaultResult> {
        self.results.iter().filter(|r| r.class == FaultClass::Success).cloned().collect()
    }

    /// Distinct instruction addresses involved in at least one successful
    /// plan — the set of *program points* the patcher must protect. For
    /// a multi-fault success every injection's address is included: a
    /// double fault is only defeated once one of its two targets is
    /// hardened past it.
    pub fn vulnerable_pcs(&self) -> BTreeSet<u64> {
        self.results
            .iter()
            .filter(|r| r.class == FaultClass::Success)
            .flat_map(|r| r.plan.iter().map(|f| f.pc))
            .collect()
    }

    /// Aggregated per-class counts.
    pub fn summary(&self) -> Summary {
        let mut s = Summary::default();
        for r in &self.results {
            s.record(r.class);
        }
        s
    }

    /// Per-class counts split by plan order (1 = single fault), in
    /// ascending order — how much of the damage needs a double (triple,
    /// …) fault.
    pub fn summary_by_order(&self) -> Vec<(usize, Summary)> {
        let mut by_order: BTreeMap<usize, Summary> = BTreeMap::new();
        for r in &self.results {
            by_order.entry(r.order()).or_default().record(r.class);
        }
        by_order.into_iter().collect()
    }

    /// Successful plans of exactly `order` injections.
    pub fn successes_of_order(&self, order: usize) -> usize {
        self.results.iter().filter(|r| r.class == FaultClass::Success && r.order() == order).count()
    }

    /// The highest plan order this report evaluated (0 for an empty
    /// report).
    pub fn max_order(&self) -> usize {
        self.results.iter().map(FaultResult::order).max().unwrap_or(0)
    }
}

/// A streamed [`Summary`] for one fault model — what the
/// [`Stream`](crate::Stream) sink yields instead of a materialized
/// [`CampaignReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelSummary {
    /// Name of the fault model that was simulated.
    pub model: &'static str,
    /// Aggregated per-class counts.
    pub summary: Summary,
}

impl fmt::Display for ModelSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.model, self.summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_records_and_merges_every_class() {
        let mut a = Summary::default();
        for class in FaultClass::ALL {
            a.record(class);
        }
        assert_eq!(a.total, 6);
        assert_eq!(
            a.total,
            a.success + a.benign + a.crashed + a.timed_out + a.corrupted + a.diverged
        );
        let merged = a.merge(a);
        assert_eq!(merged.total, 12);
        assert_eq!(merged.diverged, 2);
        assert!(merged.to_string().contains("replay-diverged"));
        assert!(!Summary::default().to_string().contains("replay-diverged"));
    }

    #[test]
    fn model_summary_displays_its_model() {
        let ms = ModelSummary { model: "instruction-skip", summary: Summary::default() };
        assert!(ms.to_string().starts_with("instruction-skip: "));
    }

    #[test]
    fn per_order_summaries_split_the_report() {
        use crate::site::{Fault, FaultEffect, FaultPlan};
        let skip =
            |step: u64| Fault { step, pc: 0x1000 + step * 4, effect: FaultEffect::SkipInstruction };
        let report = CampaignReport::new(
            "instruction-skip",
            vec![
                FaultResult::single(skip(0), FaultClass::Benign),
                FaultResult::single(skip(1), FaultClass::Success),
                FaultResult {
                    plan: FaultPlan::new([skip(0), skip(5)]),
                    class: FaultClass::Success,
                },
                FaultResult {
                    plan: FaultPlan::new([skip(2), skip(6)]),
                    class: FaultClass::Crashed,
                },
            ],
        );
        assert_eq!(report.max_order(), 2);
        assert_eq!(report.successes_of_order(1), 1);
        assert_eq!(report.successes_of_order(2), 1);
        let by_order = report.summary_by_order();
        assert_eq!(by_order.len(), 2);
        assert_eq!(by_order[0].0, 1);
        assert_eq!(by_order[0].1.total, 2);
        assert_eq!(by_order[1].0, 2);
        assert_eq!(by_order[1].1.crashed, 1);
        // The pair success contributes both of its pcs.
        let pcs = report.vulnerable_pcs();
        assert!(pcs.contains(&skip(0).pc) && pcs.contains(&skip(5).pc));
        assert_eq!(report.vulnerabilities().len(), 2);
        // Order-1 accessors still read like the single-fault API.
        let first = &report.results[1];
        assert_eq!(first.fault().step, 1);
        assert_eq!(first.order(), 1);
    }
}
