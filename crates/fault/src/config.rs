//! Campaign tunables: engine choice, scheduling, step budgets, and the
//! multi-fault plan space.

use crate::model::PlanConfig;
use rr_engine::shard::ShardPolicy;
use rr_engine::ReplayConfig;
use std::fmt;
use std::str::FromStr;

/// Which execution engine a session evaluates faults with.
///
/// The choice is made **once, at session construction**: a
/// [`Checkpointed`](CampaignEngine::Checkpointed) session records
/// `rr-engine` snapshots along the golden bad-input pass and restores
/// the nearest one per fault; a [`Naive`](CampaignEngine::Naive) session
/// records no snapshots (paying no checkpoint memory) and replays every
/// fault from step 0. There is no way to ask a naive session for a
/// checkpointed evaluation afterwards — the old API let that combination
/// silently degrade to replay-from-zero; the session API makes it
/// unrepresentable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CampaignEngine {
    /// Replay from step 0 for every fault (the reference implementation).
    Naive,
    /// Restore the nearest recorded checkpoint, then step forward
    /// (bit-identical results, ~√T of the naive replay cost per fault).
    #[default]
    Checkpointed,
}

impl fmt::Display for CampaignEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CampaignEngine::Naive => "naive",
            CampaignEngine::Checkpointed => "checkpoint",
        })
    }
}

impl FromStr for CampaignEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "naive" => Ok(CampaignEngine::Naive),
            "checkpoint" | "checkpointed" => Ok(CampaignEngine::Checkpointed),
            other => Err(format!("unknown engine `{other}` (naive|checkpoint)")),
        }
    }
}

// How a session executes emulated instructions now lives in rr-engine
// (the layer that actually dispatches the tiers); re-exported here so
// campaign callers keep a single import path.
pub use rr_engine::ExecMode;

/// Tunables for a fault-injection session.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Step budget for the golden (unfaulted) runs.
    pub golden_max_steps: u64,
    /// Faulted runs get `golden_bad_steps × this` extra steps…
    pub faulted_step_multiplier: u64,
    /// …but never less than this floor (faults can lengthen runs a lot).
    pub faulted_min_steps: u64,
    /// Worker threads for the parallel runner; `0` means "all available
    /// cores".
    pub threads: usize,
    /// How fault sites are dealt to worker threads:
    /// [`ShardPolicy::Contiguous`] ranges keep checkpoint restores warm,
    /// [`ShardPolicy::Interleaved`] round-robin balances skewed per-site
    /// fault counts (bit-flip models enumerate `8 × len` faults per
    /// site). Results are identical either way.
    pub shard: ShardPolicy,
    /// Evaluate only every `site_stride`-th trace site (≥ 1). Statistical
    /// fault injection (Leveugle et al., cited by the paper) for long
    /// traces; `1` = exhaustive.
    pub site_stride: usize,
    /// Checkpoint spacing for the checkpointed engine, in trace steps;
    /// `0` = automatic (≈ √T, the total-work optimum).
    pub checkpoint_interval: u64,
    /// Byte budget for the state retained by the recorded checkpoints,
    /// measured as page-granular dirtied bytes
    /// ([`rr_engine::ReplayConfig::max_retained_bytes`]); exceeding it
    /// widens the checkpoint interval. `0` = unlimited.
    pub max_retained_bytes: u64,
    /// Which engine this session evaluates faults with. Decides at
    /// construction whether the golden pass records snapshots — see
    /// [`CampaignEngine`].
    pub engine: CampaignEngine,
    /// The multi-fault plan space: maximum injections per plan, pair
    /// policy, sampling budget, and sampling seed. The default is the
    /// classic single-fault campaign (order 1).
    pub plan: PlanConfig,
    /// Checkpoint-neighbourhood plan bucketing (checkpointed engine):
    /// plans — singletons and multi-fault alike — are grouped by the
    /// checkpoint preceding their earliest injection, and each bucket is
    /// evaluated by one sweep that restores the checkpoint once and
    /// walks forward (block-cached under
    /// [`ExecMode::Blocks`]), cloning the in-flight machine at every
    /// injection point — instead of paying a restore-plus-forward-replay
    /// per plan. Classifications are identical either way (the
    /// multifault benchmark gates the speedup); `false` falls back to
    /// per-plan positioning everywhere.
    pub bucketing: bool,
    /// How emulated instructions execute — compiled uop traces
    /// (default), pre-decoded superblocks, or the plain interpreter. See
    /// [`ExecMode`].
    pub exec: ExecMode,
    /// Tiering knob for [`ExecMode::Uops`]: how many executions promote
    /// a decoded superblock to its compiled uop body (`0` = compile
    /// eagerly on first execution).
    pub uop: rr_emu::UopConfig,
    /// Drop plans the static analysis ([`crate::Analysis`]) proves
    /// benign from the plan space before enumeration and budget
    /// normalization (default on; `--no-static-prune` on the CLI).
    /// Pruning never removes a `Success`: only plans whose every
    /// injection perturbs provably-dead state are dropped, and those
    /// classify `Benign` under every behaviour-observing oracle.
    pub static_prune: bool,
    /// Audit mode: *execute* statically-benign plans instead of pruning
    /// them, and flag any that classify as something other than
    /// [`FaultClass::Benign`](crate::FaultClass::Benign) — a dynamic
    /// cross-check of the analysis's soundness (`--audit-analysis` on
    /// the CLI). Implies no pruning for the audited run.
    pub audit_analysis: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            golden_max_steps: 1_000_000,
            faulted_step_multiplier: 4,
            faulted_min_steps: 10_000,
            threads: 0,
            shard: ShardPolicy::Contiguous,
            site_stride: 1,
            checkpoint_interval: 0,
            max_retained_bytes: ReplayConfig::default().max_retained_bytes,
            engine: CampaignEngine::default(),
            plan: PlanConfig::default(),
            bucketing: true,
            exec: ExecMode::default(),
            uop: rr_emu::UopConfig::default(),
            static_prune: true,
            audit_analysis: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_names_parse_and_render() {
        assert_eq!("naive".parse::<CampaignEngine>().unwrap(), CampaignEngine::Naive);
        assert_eq!("checkpoint".parse::<CampaignEngine>().unwrap(), CampaignEngine::Checkpointed);
        assert_eq!("checkpointed".parse::<CampaignEngine>().unwrap(), CampaignEngine::Checkpointed);
        assert!("laser".parse::<CampaignEngine>().is_err());
        assert_eq!(CampaignEngine::default(), CampaignEngine::Checkpointed);
        assert_eq!(CampaignEngine::Naive.to_string(), "naive");
        assert_eq!(CampaignEngine::Checkpointed.to_string(), "checkpoint");
    }

    #[test]
    fn default_config_is_exhaustive_and_checkpointed() {
        let config = CampaignConfig::default();
        assert_eq!(config.site_stride, 1);
        assert_eq!(config.engine, CampaignEngine::Checkpointed);
        assert_eq!(config.shard, ShardPolicy::Contiguous);
        assert_eq!(config.plan.order, 1, "single-fault campaigns are the default");
        assert_eq!(config.plan.budget, None, "order 1 is exhaustive by default");
        assert!(config.bucketing, "warm checkpoint scheduling is the default");
        assert_eq!(config.exec, ExecMode::Uops, "compiled uop execution is the default");
        assert!(config.static_prune, "static pruning is the default");
        assert!(!config.audit_analysis, "auditing is opt-in");
    }

    #[test]
    fn exec_mode_names_parse_and_render() {
        assert_eq!("interp".parse::<ExecMode>().unwrap(), ExecMode::Interp);
        assert_eq!("blocks".parse::<ExecMode>().unwrap(), ExecMode::Blocks);
        assert_eq!("uops".parse::<ExecMode>().unwrap(), ExecMode::Uops);
        assert!("jit".parse::<ExecMode>().is_err());
        assert_eq!(ExecMode::default(), ExecMode::Uops);
        assert_eq!(ExecMode::Interp.to_string(), "interp");
        assert_eq!(ExecMode::Blocks.to_string(), "blocks");
        assert_eq!(ExecMode::Uops.to_string(), "uops");
    }
}
