//! # rr-fault — fault models and the fault-injection campaign engine
//!
//! This crate is the **faulter** of the paper's Faulter+Patcher loop
//! (§IV-B): it simulates hardware fault injection against an
//! [`rr_obj::Executable`] and reports which faults are *successful* — i.e.
//! make a run on a **bad** input behave exactly like a run on a **good**
//! input (the attacker's goal).
//!
//! The procedure follows the paper:
//!
//! 1. Run the binary on the good and the bad input; both must exit
//!    normally and behave differently (the *golden* runs).
//! 2. Trace the bad-input run: every executed program counter is a
//!    potential fault site.
//! 3. For every site and every concrete fault the chosen [`FaultModel`]
//!    enumerates there, replay the run up to that step, apply the fault,
//!    resume, and classify the behaviour.
//!
//! Step 3 is the hot loop, and two [`CampaignEngine`]s implement it: the
//! **naive** engine replays from step 0 per fault (O(T²) over a `T`-step
//! trace), while the default **checkpointed** engine restores `rr-engine`
//! snapshots recorded every ≈ √T steps and steps forward (~O(T·√T)).
//! Both classify every fault identically — determinism is the emulator's
//! contract, and the equivalence test suite enforces it.
//!
//! Classification ([`FaultClass`]): `Success` (matches the good run —
//! a vulnerability), `Benign` (still matches the bad run), `Crashed`,
//! `TimedOut`, or `Corrupted` (some third behaviour).
//!
//! Fault models provided:
//!
//! * [`InstructionSkip`] — the paper's "instruction skip" model,
//! * [`SingleBitFlip`] — the paper's "single bit flip" model (a persistent
//!   flip in the instruction's encoded bytes, as a voltage/laser glitch on
//!   the fetch path would produce),
//! * [`RegisterBitFlip`] and [`FlagFlip`] — additional transient models
//!   for wider coverage.
//!
//! ## Example
//!
//! ```
//! use rr_fault::{Campaign, FaultClass, InstructionSkip};
//! use rr_workloads::pincheck;
//!
//! let w = pincheck();
//! let exe = w.build()?;
//! let campaign = Campaign::new(&exe, &w.good_input, &w.bad_input)?;
//! let report = campaign.run(&InstructionSkip);
//! // The unprotected pincheck is skip-vulnerable:
//! assert!(report.count(FaultClass::Success) > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod campaign;
mod model;
mod site;

pub use campaign::{
    Campaign, CampaignConfig, CampaignEngine, CampaignError, CampaignReport, FaultResult, Summary,
};
pub use model::{FaultModel, FlagFlip, InstructionSkip, RegisterBitFlip, SingleBitFlip};
pub use site::{Fault, FaultClass, FaultEffect, FaultSite};
