//! # rr-fault — fault models, oracles, and the campaign session
//!
//! This crate is the **faulter** of the paper's Faulter+Patcher loop
//! (§IV-B): it simulates hardware fault injection against an
//! [`rr_obj::Executable`] and reports which faults are *successful* — in
//! the paper's attacker model, make a run on a **bad** input behave
//! exactly like a run on a **good** input.
//!
//! The procedure follows the paper:
//!
//! 1. Run the binary on the good and the bad input; both must exit
//!    normally and behave differently (the *golden* runs).
//! 2. Trace the bad-input run: every executed program counter is a
//!    potential fault site.
//! 3. For every site and every concrete fault the chosen [`FaultModel`]
//!    enumerates there, replay the run up to that step, apply the fault,
//!    resume, and classify the behaviour.
//!
//! The API is built around an owned, reusable [`CampaignSession`]:
//!
//! * [`CampaignSession::builder`] owns the executable and inputs
//!   (`Arc`-shared with the replay machinery), performs the golden runs
//!   once, and fixes the execution engine — the **naive** engine replays
//!   from step 0 per fault (O(T²) over a `T`-step trace), the default
//!   **checkpointed** engine restores `rr-engine` snapshots recorded
//!   every ≈ √T steps and steps forward (~O(T·√T)). A naive session
//!   records no snapshots and can never be asked for a checkpointed
//!   evaluation, so the two cannot be mismatched.
//! * Classification is a pluggable [`Oracle`]. The default
//!   [`GoldenPairOracle`] implements the paper's comparison
//!   ([`FaultClass::Success`] = matches the good run, [`FaultClass::Benign`]
//!   = still matches the bad run, `Crashed`/`TimedOut`/`Corrupted`
//!   otherwise); [`OutputPrefixOracle`] and [`CrashTriageOracle`] run
//!   campaigns that need no good input at all.
//! * [`CampaignSession::run`] is the one entry point: any number of
//!   models share a single scheduling pass (contiguous or round-robin
//!   [`ShardPolicy`]), and the sink argument picks the consumption —
//!   [`Collect`] materializes a [`CampaignReport`] per model, [`Stream`]
//!   folds straight into a [`ModelSummary`] per model in O(shards)
//!   memory.
//!
//! Both engines classify every fault identically — determinism is the
//! emulator's contract, and `crates/fault/tests/engine_equiv.rs`
//! enforces bit-identical reports across engines, thread counts, and
//! shard policies.
//!
//! For iterative loops that re-campaign after a small binary rewrite,
//! sessions support **incremental re-campaigning**: package a finished
//! session's classifications with [`CampaignSession::seed`], compute the
//! rewrite's [`ListingDelta`], and hand both to the next builder via
//! [`CampaignSessionBuilder::seed_from`]. Sites the rewrite provably
//! left alone reuse the prior [`FaultClass`] from a
//! [`ClassificationCache`] without executing anything (guarded by the
//! [`Oracle::fingerprint`]), and snapshots are re-recorded only for the
//! invalidated trace region. [`CampaignSession::reuse_stats`] reports
//! the reused/replayed split.
//!
//! Fault models provided:
//!
//! * [`InstructionSkip`] — the paper's "instruction skip" model,
//! * [`SingleBitFlip`] — the paper's "single bit flip" model (a persistent
//!   flip in the instruction's encoded bytes, as a voltage/laser glitch on
//!   the fetch path would produce),
//! * [`RegisterBitFlip`] and [`FlagFlip`] — additional transient models
//!   for wider coverage.
//!
//! ## Example
//!
//! ```
//! use rr_fault::{CampaignSession, Collect, FaultClass, InstructionSkip};
//! use rr_workloads::pincheck;
//!
//! let w = pincheck();
//! let session = CampaignSession::builder(w.build()?)
//!     .good_input(&w.good_input[..])
//!     .bad_input(&w.bad_input[..])
//!     .build()?;
//! let report = session.run(&[&InstructionSkip], Collect).pop().unwrap();
//! // The unprotected pincheck is skip-vulnerable:
//! assert!(report.count(FaultClass::Success) > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod cache;
mod config;
mod model;
mod oracle;
mod report;
mod session;
mod site;

pub use cache::{CampaignSeed, ClassificationCache, ReuseStats, REUSE_GUARD_WINDOW};
pub use config::{CampaignConfig, CampaignEngine};
pub use model::{FaultModel, FlagFlip, InstructionSkip, RegisterBitFlip, SingleBitFlip};
pub use oracle::{Behavior, CrashTriageOracle, GoldenPairOracle, Oracle, OutputPrefixOracle};
pub use report::{CampaignReport, FaultResult, ModelSummary, Summary};
pub use session::{CampaignError, CampaignSession, CampaignSessionBuilder, Collect, Sink, Stream};
pub use site::{Fault, FaultClass, FaultEffect, FaultSite};

// The shard policy is part of [`CampaignConfig`]; re-exported so session
// consumers don't need an rr-engine dependency to select it.
pub use rr_engine::shard::ShardPolicy;

// The listing delta is the input to [`CampaignSessionBuilder::seed_from`];
// re-exported so incremental campaign drivers don't need an rr-disasm
// dependency to pass one through.
pub use rr_disasm::ListingDelta;
