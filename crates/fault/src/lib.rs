//! # rr-fault — fault models, oracles, and the campaign session
//!
//! This crate is the **faulter** of the paper's Faulter+Patcher loop
//! (§IV-B): it simulates hardware fault injection against an
//! [`rr_obj::Executable`] and reports which faults are *successful* — in
//! the paper's attacker model, make a run on a **bad** input behave
//! exactly like a run on a **good** input.
//!
//! The procedure follows the paper:
//!
//! 1. Run the binary on the good and the bad input; both must exit
//!    normally and behave differently (the *golden* runs).
//! 2. Trace the bad-input run: every executed program counter is a
//!    potential fault site.
//! 3. Expand the faults the chosen [`FaultModel`] enumerates at every
//!    site into ordered injection [`FaultPlan`]s (singletons by default;
//!    pairs and beyond per [`PlanConfig`]), and for each plan: replay the
//!    run up to its earliest injection, apply each effect as its trace
//!    step arrives, resume, and classify the behaviour.
//!
//! The API is built around an owned, reusable [`CampaignSession`]:
//!
//! * [`CampaignSession::builder`] owns the executable and inputs
//!   (`Arc`-shared with the replay machinery), performs the golden runs
//!   once, and fixes the execution engine — the **naive** engine replays
//!   from step 0 per fault (O(T²) over a `T`-step trace), the default
//!   **checkpointed** engine restores `rr-engine` snapshots recorded
//!   every ≈ √T steps and steps forward (~O(T·√T)). A naive session
//!   records no snapshots and can never be asked for a checkpointed
//!   evaluation, so the two cannot be mismatched.
//! * Classification is a pluggable [`Oracle`]. The default
//!   [`GoldenPairOracle`] implements the paper's comparison
//!   ([`FaultClass::Success`] = matches the good run, [`FaultClass::Benign`]
//!   = still matches the bad run, `Crashed`/`TimedOut`/`Corrupted`
//!   otherwise); [`OutputPrefixOracle`] and [`CrashTriageOracle`] run
//!   campaigns that need no good input at all.
//! * [`CampaignSession::run`] is the one entry point: any number of
//!   models share a single scheduling pass (contiguous or round-robin
//!   [`ShardPolicy`]), and the sink argument picks the consumption —
//!   [`Collect`] materializes a [`CampaignReport`] per model, [`Stream`]
//!   folds straight into a [`ModelSummary`] per model in O(shards)
//!   memory.
//!
//! Both engines classify every fault identically — determinism is the
//! emulator's contract, and `crates/fault/tests/engine_equiv.rs`
//! enforces bit-identical reports across engines, thread counts, and
//! shard policies.
//!
//! For iterative loops that re-campaign after a small binary rewrite,
//! sessions support **incremental re-campaigning**: package a finished
//! session's classifications with [`CampaignSession::seed`], compute the
//! rewrite's [`ListingDelta`], and hand both to the next builder via
//! [`CampaignSessionBuilder::seed_from`]. Sites the rewrite provably
//! left alone reuse the prior [`FaultClass`] from a
//! [`ClassificationCache`] without executing anything (guarded by the
//! [`Oracle::fingerprint`]), and snapshots are re-recorded only for the
//! invalidated trace region. [`CampaignSession::reuse_stats`] reports
//! the reused/replayed split.
//!
//! Fault models provided:
//!
//! * [`InstructionSkip`] — the paper's "instruction skip" model,
//! * [`SingleBitFlip`] — the paper's "single bit flip" model (a persistent
//!   flip in the instruction's encoded bytes, as a voltage/laser glitch on
//!   the fetch path would produce),
//! * [`RegisterBitFlip`] and [`FlagFlip`] — additional transient models
//!   for wider coverage.
//!
//! ## Multi-fault plans
//!
//! The unit every campaign evaluates is an ordered [`FaultPlan`] — one
//! or more injections applied to the *same* run, in trace-step order.
//! The classic single-fault campaign is the plan of length 1 (the
//! default, [`PlanConfig::order`]` == 1`); raising the order models an
//! attacker firing several timed glitches in one execution, e.g. the
//! double fault that skips both a check *and* its duplicated
//! countermeasure — which order-1 hardening cannot even see.
//! [`PairPolicy::WithinWindow`] keeps the pair space physical (bounded
//! glitch re-arm time) and [`PlanConfig::budget`] caps each order by
//! seeded uniform sampling, since exhaustive cross-products explode;
//! the seed makes sampled campaigns exactly reproducible. Later
//! injections are **time-triggered**: each effect fires when the run
//! reaches its trace step, wherever the earlier fault diverted control —
//! and a run that ends early simply never receives them.
//!
//! Checkpointed sessions schedule plans by **checkpoint neighbourhood**
//! ([`CampaignConfig::bucketing`]): plans whose earliest injections
//! share a retained checkpoint are swept together, restoring the
//! checkpoint once and cloning the in-flight machine (cheap, COW) at
//! each injection point, instead of paying restore-plus-forward-replay
//! per plan.
//!
//! ## Example
//!
//! ```
//! use rr_fault::{CampaignSession, Collect, FaultClass, InstructionSkip};
//! use rr_workloads::pincheck;
//!
//! let w = pincheck();
//! let session = CampaignSession::builder(w.build()?)
//!     .good_input(&w.good_input[..])
//!     .bad_input(&w.bad_input[..])
//!     .build()?;
//! let report = session.run(&[&InstructionSkip], Collect).pop().unwrap();
//! // The unprotected pincheck is skip-vulnerable:
//! assert!(report.count(FaultClass::Success) > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Example: a double-fault campaign
//!
//! ```
//! use rr_fault::{
//!     CampaignConfig, CampaignSession, Collect, InstructionSkip, PairPolicy, PlanConfig,
//! };
//! use rr_workloads::pincheck;
//!
//! let w = pincheck();
//! let config = CampaignConfig {
//!     plan: PlanConfig {
//!         order: 2,                                        // singles + pairs
//!         policy: PairPolicy::WithinWindow { max_gap: 8 }, // ≤8 steps apart
//!         budget: Some(10_000),                            // sample if larger
//!         seed: 42,                                        // reproducible
//!     },
//!     ..CampaignConfig::default()
//! };
//! let session = CampaignSession::builder(w.build()?)
//!     .good_input(&w.good_input[..])
//!     .bad_input(&w.bad_input[..])
//!     .config(config)
//!     .build()?;
//! let report = session.run(&[&InstructionSkip], Collect).pop().unwrap();
//! // Per-order breakdown: order 1 rides along unchanged, order 2 adds
//! // the double faults.
//! for (order, summary) in report.summary_by_order() {
//!     println!("order {order}: {summary}");
//! }
//! assert_eq!(report.max_order(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

mod analysis;
mod cache;
mod config;
mod model;
mod oracle;
mod report;
mod session;
mod site;

pub use analysis::{fault_verdict, plan_is_benign, Analysis, StaticVerdict};
pub use cache::{CampaignSeed, ClassificationCache, ReuseStats, REUSE_GUARD_WINDOW};
pub use config::{CampaignConfig, CampaignEngine, ExecMode};
pub use model::{
    enumerate_plans, enumerate_plans_pruned, FaultModel, FlagFlip, InstructionSkip, PairPolicy,
    PlanConfig, PlanSet, RegisterBitFlip, SingleBitFlip,
};
pub use oracle::{Behavior, CrashTriageOracle, GoldenPairOracle, Oracle, OutputPrefixOracle};
pub use report::{CampaignReport, FaultResult, ModelSummary, Summary};
pub use rr_emu::{OptLevel, UopConfig};
pub use session::{CampaignError, CampaignSession, CampaignSessionBuilder, Collect, Sink, Stream};
pub use site::{Fault, FaultClass, FaultEffect, FaultPlan, FaultSite};

// The shard policy is part of [`CampaignConfig`]; re-exported so session
// consumers don't need an rr-engine dependency to select it.
pub use rr_engine::shard::ShardPolicy;

// The listing delta is the input to [`CampaignSessionBuilder::seed_from`];
// re-exported so incremental campaign drivers don't need an rr-disasm
// dependency to pass one through.
pub use rr_disasm::ListingDelta;
