//! The campaign runner: golden runs, fault enumeration, classification.
//!
//! Two execution engines evaluate faults:
//!
//! * **Naive** — replay the bad-input run from step 0 to every injection
//!   point: O(T²) emulated instructions over a `T`-step trace.
//! * **Checkpointed** — restore the nearest [`rr_engine::ReplayEngine`]
//!   checkpoint (recorded every ≈ √T steps along the golden trace) and
//!   step forward: ~O(T·√T) total, typically an order of magnitude
//!   faster on long traces.
//!
//! The emulator is deterministic, so the two engines classify every
//! fault identically — `crates/fault/tests/engine_equiv.rs` enforces
//! bit-identical reports across all fault models and workloads.

use crate::model::FaultModel;
use crate::site::{Fault, FaultClass, FaultEffect, FaultSite};
use rr_emu::{execute, Execution, Machine, RunOutcome};
use rr_engine::{ReplayConfig, ReplayEngine};
use rr_isa::{decode, Flags, MAX_INSTR_LEN};
use rr_obj::Executable;
use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

/// Which execution engine a campaign evaluates faults with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CampaignEngine {
    /// Replay from step 0 for every fault (the reference implementation).
    Naive,
    /// Restore the nearest recorded checkpoint, then step forward
    /// (bit-identical results, ~√T of the naive replay cost per fault).
    #[default]
    Checkpointed,
}

impl fmt::Display for CampaignEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CampaignEngine::Naive => "naive",
            CampaignEngine::Checkpointed => "checkpoint",
        })
    }
}

impl FromStr for CampaignEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "naive" => Ok(CampaignEngine::Naive),
            "checkpoint" | "checkpointed" => Ok(CampaignEngine::Checkpointed),
            other => Err(format!("unknown engine `{other}` (naive|checkpoint)")),
        }
    }
}

/// Tunables for a fault-injection campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Step budget for the golden (unfaulted) runs.
    pub golden_max_steps: u64,
    /// Faulted runs get `golden_bad_steps × this` extra steps…
    pub faulted_step_multiplier: u64,
    /// …but never less than this floor (faults can lengthen runs a lot).
    pub faulted_min_steps: u64,
    /// Worker threads for the parallel runners; `0` means "all available
    /// cores".
    pub threads: usize,
    /// Evaluate only every `site_stride`-th trace site (≥ 1). Statistical
    /// fault injection (Leveugle et al., cited by the paper) for long
    /// traces; `1` = exhaustive.
    pub site_stride: usize,
    /// Checkpoint spacing for the checkpointed engine, in trace steps;
    /// `0` = automatic (≈ √T, the total-work optimum).
    pub checkpoint_interval: u64,
    /// Byte budget for the state retained by the recorded checkpoints,
    /// measured as page-granular dirtied bytes
    /// ([`rr_engine::ReplayConfig::max_retained_bytes`]); exceeding it
    /// widens the checkpoint interval. `0` = unlimited.
    pub max_retained_bytes: u64,
    /// Which engine this campaign is built for. Construction uses it as
    /// a hint: a [`CampaignEngine::Naive`] campaign skips snapshot
    /// recording entirely (the golden pass still yields the trace and
    /// behaviour), so naive-only consumers stop paying checkpoint
    /// memory. [`Campaign::run_configured`] dispatches on it; the
    /// explicit `run_*` methods stay correct either way — on a
    /// naive-hinted campaign the checkpointed engine merely degrades to
    /// replay-from-0.
    pub engine: CampaignEngine,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            golden_max_steps: 1_000_000,
            faulted_step_multiplier: 4,
            faulted_min_steps: 10_000,
            threads: 0,
            site_stride: 1,
            checkpoint_interval: 0,
            max_retained_bytes: ReplayConfig::default().max_retained_bytes,
            engine: CampaignEngine::default(),
        }
    }
}

/// Why a campaign could not be set up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The good input did not exit normally.
    GoldenGoodFailed(RunOutcome),
    /// The bad input did not exit normally.
    GoldenBadFailed(RunOutcome),
    /// Good and bad inputs behave identically — there is no attacker goal
    /// to reach and no vulnerability to measure.
    IndistinguishableBehaviors,
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::GoldenGoodFailed(o) => write!(f, "golden good-input run failed: {o}"),
            CampaignError::GoldenBadFailed(o) => write!(f, "golden bad-input run failed: {o}"),
            CampaignError::IndistinguishableBehaviors => {
                write!(f, "good and bad inputs produce identical behaviour")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// One evaluated fault and its classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultResult {
    /// The injected fault.
    pub fault: Fault,
    /// How the faulted run compared against the golden runs.
    pub class: FaultClass,
}

/// Per-class counts of a campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Summary {
    /// Total faults evaluated.
    pub total: usize,
    /// Successful faults (vulnerabilities).
    pub success: usize,
    /// Faults with no attacker-relevant effect.
    pub benign: usize,
    /// Faulted runs that crashed.
    pub crashed: usize,
    /// Faulted runs that hung.
    pub timed_out: usize,
    /// Normal exits matching neither golden behaviour.
    pub corrupted: usize,
    /// Replays that failed to reach the injection point (determinism
    /// violations; always 0 for well-formed campaigns).
    pub diverged: usize,
}

impl Summary {
    /// Streams one classification into the counts.
    pub fn record(&mut self, class: FaultClass) {
        self.total += 1;
        match class {
            FaultClass::Success => self.success += 1,
            FaultClass::Benign => self.benign += 1,
            FaultClass::Crashed => self.crashed += 1,
            FaultClass::TimedOut => self.timed_out += 1,
            FaultClass::Corrupted => self.corrupted += 1,
            FaultClass::ReplayDiverged => self.diverged += 1,
        }
    }

    /// Combines two partial summaries (shard aggregation).
    #[must_use]
    pub fn merge(self, other: Summary) -> Summary {
        Summary {
            total: self.total + other.total,
            success: self.success + other.success,
            benign: self.benign + other.benign,
            crashed: self.crashed + other.crashed,
            timed_out: self.timed_out + other.timed_out,
            corrupted: self.corrupted + other.corrupted,
            diverged: self.diverged + other.diverged,
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} faults: {} success, {} benign, {} crashed, {} timed-out, {} corrupted",
            self.total, self.success, self.benign, self.crashed, self.timed_out, self.corrupted
        )?;
        if self.diverged > 0 {
            write!(f, ", {} replay-diverged", self.diverged)?;
        }
        Ok(())
    }
}

/// The outcome of running one fault model against one binary.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Name of the fault model that was simulated.
    pub model: &'static str,
    /// Every evaluated fault, in site order.
    pub results: Vec<FaultResult>,
}

impl CampaignReport {
    /// Number of results in the given class.
    pub fn count(&self, class: FaultClass) -> usize {
        self.results.iter().filter(|r| r.class == class).count()
    }

    /// The successful faults — the vulnerability list handed to the
    /// patcher.
    pub fn vulnerabilities(&self) -> Vec<FaultResult> {
        self.results.iter().copied().filter(|r| r.class == FaultClass::Success).collect()
    }

    /// Distinct instruction addresses with at least one successful fault —
    /// the set of *program points* the patcher must protect.
    pub fn vulnerable_pcs(&self) -> BTreeSet<u64> {
        self.results.iter().filter(|r| r.class == FaultClass::Success).map(|r| r.fault.pc).collect()
    }

    /// Aggregated per-class counts.
    pub fn summary(&self) -> Summary {
        let mut s = Summary::default();
        for r in &self.results {
            s.record(r.class);
        }
        s
    }
}

/// A configured fault-injection campaign against one executable.
///
/// Construction performs the golden runs and records the bad-input trace;
/// [`Campaign::run`] then evaluates a [`FaultModel`] against every trace
/// site. See the crate docs for the full procedure and an example.
#[derive(Debug)]
pub struct Campaign<'a> {
    exe: &'a Executable,
    bad_input: &'a [u8],
    golden_good: Execution,
    golden_bad: Execution,
    sites: Vec<FaultSite>,
    config: CampaignConfig,
    /// Checkpoints recorded along the golden bad-input run (captured
    /// during construction), shared by every checkpointed evaluation of
    /// this campaign.
    replay: ReplayEngine,
}

impl<'a> Campaign<'a> {
    /// Sets up a campaign with default configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`CampaignError`] if either golden run fails or the two
    /// behaviours are indistinguishable.
    pub fn new(
        exe: &'a Executable,
        good_input: &'a [u8],
        bad_input: &'a [u8],
    ) -> Result<Campaign<'a>, CampaignError> {
        Campaign::with_config(exe, good_input, bad_input, CampaignConfig::default())
    }

    /// Sets up a campaign with an explicit [`CampaignConfig`].
    ///
    /// # Errors
    ///
    /// Same as [`Campaign::new`].
    pub fn with_config(
        exe: &'a Executable,
        good_input: &'a [u8],
        bad_input: &'a [u8],
        config: CampaignConfig,
    ) -> Result<Campaign<'a>, CampaignError> {
        let golden_good = execute(exe, good_input, config.golden_max_steps);
        if !golden_good.outcome.is_exit() {
            return Err(CampaignError::GoldenGoodFailed(golden_good.outcome));
        }
        // One pass over the bad-input run yields the golden behaviour,
        // the trace, *and* — for checkpoint-hinted campaigns — the
        // replay checkpoints (adaptive √T interval unless the config
        // pins one). Naive-hinted campaigns skip snapshot capture and
        // its memory cost; the pass is needed for the trace regardless.
        let replay = ReplayEngine::record(
            exe,
            bad_input,
            &ReplayConfig {
                max_steps: config.golden_max_steps,
                checkpoint_interval: config.checkpoint_interval,
                max_retained_bytes: config.max_retained_bytes,
                record_snapshots: config.engine == CampaignEngine::Checkpointed,
                ..ReplayConfig::default()
            },
        );
        let golden_bad = replay.execution().clone();
        if !golden_bad.outcome.is_exit() {
            return Err(CampaignError::GoldenBadFailed(golden_bad.outcome));
        }
        if golden_good.same_behavior(&golden_bad) {
            return Err(CampaignError::IndistinguishableBehaviors);
        }
        let sites = replay
            .trace()
            .iter()
            .enumerate()
            .filter_map(|(step, &pc)| {
                let bytes = peek_code(exe, pc)?;
                let (insn, len) = decode(bytes).ok()?;
                Some(FaultSite { step: step as u64, pc, insn, len })
            })
            .collect();
        Ok(Campaign { exe, bad_input, golden_good, golden_bad, sites, config, replay })
    }

    /// The golden good-input behaviour.
    pub fn golden_good(&self) -> &Execution {
        &self.golden_good
    }

    /// The golden bad-input behaviour.
    pub fn golden_bad(&self) -> &Execution {
        &self.golden_bad
    }

    /// The fault sites (one per executed instruction of the bad-input run).
    pub fn sites(&self) -> &[FaultSite] {
        &self.sites
    }

    /// The checkpointed-replay engine recorded alongside the golden
    /// bad-input run at construction.
    pub fn replay_engine(&self) -> &ReplayEngine {
        &self.replay
    }

    /// Samples the campaign down to at most `max_sites` trace sites by
    /// setting the site stride from the recorded trace length
    /// (statistical fault injection for long traces; Leveugle et al.).
    /// Returns the stride chosen.
    pub fn sample_sites(&mut self, max_sites: usize) -> usize {
        let stride = (self.golden_bad.steps as usize).div_ceil(max_sites.max(1)).max(1);
        self.config.site_stride = stride;
        stride
    }

    /// Evaluates `model` over every site, serially, with the naive
    /// engine (the reference implementation everything else must match).
    pub fn run(&self, model: &dyn FaultModel) -> CampaignReport {
        let faults = self.enumerate(model);
        let results = faults
            .iter()
            .map(|&fault| FaultResult { fault, class: self.evaluate(&fault) })
            .collect();
        CampaignReport { model: model.name(), results }
    }

    /// Evaluates `model` with the naive engine sharded over
    /// `config.threads` workers (all cores when 0). Result order matches
    /// [`Campaign::run`].
    pub fn run_parallel(&self, model: &dyn FaultModel) -> CampaignReport {
        let faults = self.enumerate(model);
        let shards = rr_engine::shard::run_sharded(&faults, self.config.threads, |_, chunk| {
            chunk
                .iter()
                .map(|&fault| FaultResult { fault, class: self.evaluate(&fault) })
                .collect::<Vec<_>>()
        });
        CampaignReport { model: model.name(), results: shards.concat() }
    }

    /// Evaluates `model` with the checkpointed engine, sharded over
    /// `config.threads` workers: each fault restores the nearest recorded
    /// checkpoint and steps forward instead of replaying from step 0.
    ///
    /// Classifications are bit-identical to [`Campaign::run`]; on a
    /// `T`-step trace the replay work drops from O(T²) to ~O(T·√T).
    pub fn run_checkpointed(&self, model: &dyn FaultModel) -> CampaignReport {
        let engine = self.replay_engine();
        let faults = self.enumerate(model);
        let shards = rr_engine::shard::run_sharded(&faults, self.config.threads, |_, chunk| {
            chunk
                .iter()
                .map(|&fault| FaultResult {
                    fault,
                    class: self.evaluate_checkpointed(engine, &fault),
                })
                .collect::<Vec<_>>()
        });
        CampaignReport { model: model.name(), results: shards.concat() }
    }

    /// Evaluates `model` with an explicit engine choice.
    pub fn run_with(&self, model: &dyn FaultModel, engine: CampaignEngine) -> CampaignReport {
        match engine {
            CampaignEngine::Naive => self.run_parallel(model),
            CampaignEngine::Checkpointed => self.run_checkpointed(model),
        }
    }

    /// Evaluates `model` with the engine the campaign was configured
    /// (and its golden pass recorded) for.
    pub fn run_configured(&self, model: &dyn FaultModel) -> CampaignReport {
        self.run_with(model, self.config.engine)
    }

    /// The engine this campaign was configured for.
    pub fn engine(&self) -> CampaignEngine {
        self.config.engine
    }

    /// Memory footprint of the checkpoints retained for this campaign:
    /// page-granular retained bytes, and the region-COW baseline for the
    /// same recording. Naive-hinted campaigns report one checkpoint and
    /// zero retained bytes.
    pub fn replay_footprint(&self) -> rr_engine::ReplayFootprint {
        self.replay.footprint()
    }

    /// Streams `model` with the engine the campaign was configured (and
    /// its golden pass recorded) for — the hint-safe counterpart of
    /// [`Campaign::run_streaming`], mirroring
    /// [`Campaign::run_configured`].
    pub fn run_streaming_configured(&self, model: &dyn FaultModel) -> Summary {
        self.run_streaming(model, self.config.engine)
    }

    /// Evaluates `model` and streams classifications straight into a
    /// [`Summary`]. Faults are enumerated per site inside each shard and
    /// never materialized, so memory stays O(sites + shards) no matter
    /// how many faults the model produces per site — for campaigns too
    /// large to keep every [`FaultResult`]. Prefer
    /// [`Campaign::run_streaming_configured`] unless you deliberately
    /// want a different engine than the campaign was recorded for (a
    /// checkpointed evaluation of a naive-hinted campaign degrades to
    /// replay-from-0 per fault).
    pub fn run_streaming(&self, model: &dyn FaultModel, engine: CampaignEngine) -> Summary {
        let replay = match engine {
            CampaignEngine::Naive => None,
            CampaignEngine::Checkpointed => Some(self.replay_engine()),
        };
        let stride = self.config.site_stride.max(1);
        let sampled: Vec<&FaultSite> = self.sites.iter().step_by(stride).collect();
        rr_engine::shard::sharded_fold(
            &sampled,
            self.config.threads,
            Summary::default(),
            |mut acc, site| {
                for fault in model.faults_at(site) {
                    let class = match replay {
                        Some(engine) => self.evaluate_checkpointed(engine, &fault),
                        None => self.evaluate(&fault),
                    };
                    acc.record(class);
                }
                acc
            },
            Summary::merge,
        )
    }

    fn enumerate(&self, model: &dyn FaultModel) -> Vec<Fault> {
        let stride = self.config.site_stride.max(1);
        self.sites.iter().step_by(stride).flat_map(|site| model.faults_at(site)).collect()
    }

    /// Replays the bad-input run from step 0 to the fault's step, injects
    /// it, resumes, and classifies the resulting behaviour.
    fn evaluate(&self, fault: &Fault) -> FaultClass {
        let mut machine = Machine::new(self.exe, self.bad_input);
        for _ in 0..fault.step {
            if machine.step().is_err() {
                // Unreachable on a golden trace; degrade gracefully.
                return FaultClass::ReplayDiverged;
            }
        }
        self.inject_and_classify(machine, fault)
    }

    /// Restores the nearest checkpoint at or before the fault's step,
    /// steps forward, injects, resumes, and classifies.
    fn evaluate_checkpointed(&self, engine: &ReplayEngine, fault: &Fault) -> FaultClass {
        match engine.machine_at(fault.step) {
            Ok(machine) => self.inject_and_classify(machine, fault),
            Err(_) => FaultClass::ReplayDiverged,
        }
    }

    /// Applies the fault's effect to a machine positioned at its step and
    /// classifies the faulted continuation.
    fn inject_and_classify(&self, mut machine: Machine, fault: &Fault) -> FaultClass {
        if machine.pc() != fault.pc {
            // The replay did not arrive where the trace says it should
            // have — report instead of asserting (determinism is the
            // emulator's contract; a violation costs one result, not the
            // whole campaign).
            return FaultClass::ReplayDiverged;
        }
        match fault.effect {
            FaultEffect::SkipInstruction => {
                if machine.skip_instruction().is_err() {
                    return FaultClass::Crashed;
                }
            }
            FaultEffect::FlipInstructionBit { byte, bit } => {
                let addr = fault.pc + byte as u64;
                let Some(&current) = machine.peek_bytes(addr, 1).and_then(|b| b.first()) else {
                    return FaultClass::Crashed;
                };
                machine.poke_bytes(addr, &[current ^ (1 << bit)]);
            }
            FaultEffect::FlipRegisterBit { reg, bit } => {
                machine.set_reg(reg, machine.reg(reg) ^ (1u64 << bit));
            }
            FaultEffect::FlipFlags { mask } => {
                machine.set_flags(Flags::from_bits(machine.flags().to_bits() ^ u64::from(mask)));
            }
        }
        let budget = (self.golden_bad.steps * self.config.faulted_step_multiplier)
            .max(self.config.faulted_min_steps);
        let result = machine.run(budget);
        let execution = Execution {
            outcome: result.outcome,
            output: machine.take_output(),
            steps: result.steps,
        };
        self.classify(&execution)
    }

    fn classify(&self, execution: &Execution) -> FaultClass {
        if execution.same_behavior(&self.golden_good) {
            FaultClass::Success
        } else if execution.same_behavior(&self.golden_bad) {
            FaultClass::Benign
        } else {
            match execution.outcome {
                RunOutcome::Crashed { .. } => FaultClass::Crashed,
                RunOutcome::TimedOut => FaultClass::TimedOut,
                RunOutcome::Exited { .. } => FaultClass::Corrupted,
            }
        }
    }
}

/// Reads up to [`MAX_INSTR_LEN`] code bytes at `pc` from the executable
/// image (shorter at the end of `.text`).
fn peek_code(exe: &Executable, pc: u64) -> Option<&[u8]> {
    let text = exe.text_range();
    if !text.contains(&pc) {
        return None;
    }
    let available = (text.end - pc).min(MAX_INSTR_LEN as u64) as usize;
    exe.read_bytes(pc, available)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FlagFlip, InstructionSkip, SingleBitFlip};
    use rr_asm::assemble_and_link;
    use rr_isa::InstrKind;
    use rr_workloads::pincheck;

    fn pincheck_campaign_parts() -> (Executable, Vec<u8>, Vec<u8>) {
        let w = pincheck();
        (w.build().unwrap(), w.good_input, w.bad_input)
    }

    #[test]
    fn golden_validation_rejects_broken_setups() {
        let (exe, good, _) = pincheck_campaign_parts();
        // Same input for good and bad → indistinguishable.
        assert_eq!(
            Campaign::new(&exe, &good, &good).unwrap_err(),
            CampaignError::IndistinguishableBehaviors
        );
        // A crashing program cannot be campaigned.
        let crasher = assemble_and_link("    .global _start\n_start:\n    halt\n").unwrap();
        assert!(matches!(
            Campaign::new(&crasher, b"a", b"b").unwrap_err(),
            CampaignError::GoldenGoodFailed(_)
        ));
    }

    #[test]
    fn sites_cover_the_bad_trace() {
        let (exe, good, bad) = pincheck_campaign_parts();
        let campaign = Campaign::new(&exe, &good, &bad).unwrap();
        assert_eq!(campaign.sites().len() as u64, campaign.golden_bad().steps);
        // Sites are in trace order with increasing steps.
        for (i, site) in campaign.sites().iter().enumerate() {
            assert_eq!(site.step, i as u64);
        }
    }

    #[test]
    fn unprotected_pincheck_is_skip_vulnerable_at_branches() {
        let (exe, good, bad) = pincheck_campaign_parts();
        let campaign = Campaign::new(&exe, &good, &bad).unwrap();
        let report = campaign.run(&InstructionSkip);
        let summary = report.summary();
        assert!(summary.success > 0, "expected skip vulnerabilities: {summary}");
        assert!(summary.benign > 0, "skips off the critical path are benign");

        // The classic vulnerability: skipping a `jne deny`. The paper
        // reports all vulnerabilities stem from the conditional jumps and
        // the mov/cmp instructions feeding them; at minimum a conditional
        // jump must be among ours.
        let vulnerable_kinds: Vec<InstrKind> = report
            .vulnerabilities()
            .iter()
            .map(|result| {
                campaign
                    .sites()
                    .iter()
                    .find(|s| s.step == result.fault.step)
                    .expect("vulnerability at a known site")
                    .insn
                    .kind()
            })
            .collect();
        assert!(
            vulnerable_kinds.contains(&InstrKind::CondJump),
            "expected a conditional-jump vulnerability, got {vulnerable_kinds:?}"
        );
    }

    #[test]
    fn bit_flips_produce_crashes_and_successes() {
        let (exe, good, bad) = pincheck_campaign_parts();
        let campaign = Campaign::new(&exe, &good, &bad).unwrap();
        let report = campaign.run_parallel(&SingleBitFlip);
        let summary = report.summary();
        assert!(summary.success > 0, "{summary}");
        assert!(summary.crashed > 0, "sparse opcodes must yield crashes: {summary}");
        assert!(summary.benign > 0, "{summary}");
        assert_eq!(summary.total, campaign.sites().iter().map(|s| s.len * 8).sum::<usize>());
    }

    #[test]
    fn parallel_and_serial_reports_agree() {
        let (exe, good, bad) = pincheck_campaign_parts();
        let config = CampaignConfig { threads: 4, ..CampaignConfig::default() };
        let campaign = Campaign::with_config(&exe, &good, &bad, config).unwrap();
        let serial = campaign.run(&InstructionSkip);
        let parallel = campaign.run_parallel(&InstructionSkip);
        assert_eq!(serial.results, parallel.results);
    }

    #[test]
    fn checkpointed_engine_matches_naive_and_reuses_checkpoints() {
        let (exe, good, bad) = pincheck_campaign_parts();
        let campaign = Campaign::new(&exe, &good, &bad).unwrap();
        let naive = campaign.run(&InstructionSkip);
        let checkpointed = campaign.run_checkpointed(&InstructionSkip);
        assert_eq!(naive.results, checkpointed.results);
        // The replay engine recorded the golden bad trace with a √T-ish
        // interval and is cached on the campaign.
        let engine = campaign.replay_engine();
        assert_eq!(engine.trace().len() as u64, campaign.golden_bad().steps);
        assert!(engine.checkpoint_count() >= 1);
        assert_eq!(
            campaign.run_with(&InstructionSkip, CampaignEngine::Checkpointed).results,
            naive.results
        );
    }

    #[test]
    fn streaming_summary_matches_materialized_report() {
        let (exe, good, bad) = pincheck_campaign_parts();
        let campaign = Campaign::new(&exe, &good, &bad).unwrap();
        let report = campaign.run(&FlagFlip);
        for engine in [CampaignEngine::Naive, CampaignEngine::Checkpointed] {
            assert_eq!(campaign.run_streaming(&FlagFlip, engine), report.summary(), "{engine}");
        }
    }

    #[test]
    fn naive_hint_skips_snapshot_recording() {
        let (exe, good, bad) = pincheck_campaign_parts();
        let config = CampaignConfig { engine: CampaignEngine::Naive, ..CampaignConfig::default() };
        let hinted = Campaign::with_config(&exe, &good, &bad, config).unwrap();
        assert_eq!(hinted.engine(), CampaignEngine::Naive);
        assert!(!hinted.replay_engine().records_snapshots());
        assert_eq!(hinted.replay_engine().checkpoint_count(), 1, "initial state only");
        let footprint = hinted.replay_footprint();
        assert_eq!(footprint.retained_bytes, 0);

        // The hint changes memory, never results: all engines still
        // classify identically (checkpointed degrades to replay-from-0).
        let reference = Campaign::new(&exe, &good, &bad).unwrap().run(&InstructionSkip);
        assert_eq!(hinted.run_configured(&InstructionSkip).results, reference.results);
        assert_eq!(hinted.run_checkpointed(&InstructionSkip).results, reference.results);

        // A checkpoint-hinted campaign records and reports real state.
        let recording = Campaign::new(&exe, &good, &bad).unwrap();
        assert!(recording.replay_engine().records_snapshots());
        assert!(recording.replay_footprint().checkpoints > 1);
        assert_eq!(recording.run_configured(&InstructionSkip).results, reference.results);
    }

    #[test]
    fn engine_names_parse_and_render() {
        assert_eq!("naive".parse::<CampaignEngine>().unwrap(), CampaignEngine::Naive);
        assert_eq!("checkpoint".parse::<CampaignEngine>().unwrap(), CampaignEngine::Checkpointed);
        assert_eq!("checkpointed".parse::<CampaignEngine>().unwrap(), CampaignEngine::Checkpointed);
        assert!("laser".parse::<CampaignEngine>().is_err());
        assert_eq!(CampaignEngine::default(), CampaignEngine::Checkpointed);
        assert_eq!(CampaignEngine::Naive.to_string(), "naive");
        assert_eq!(CampaignEngine::Checkpointed.to_string(), "checkpoint");
    }

    #[test]
    fn flag_flips_can_invert_decisions() {
        let (exe, good, bad) = pincheck_campaign_parts();
        let campaign = Campaign::new(&exe, &good, &bad).unwrap();
        let report = campaign.run(&FlagFlip);
        // Flipping Z right before `jne deny` takes the grant path.
        assert!(report.summary().success > 0);
    }

    #[test]
    fn vulnerable_pcs_deduplicate_loop_sites() {
        let (exe, good, bad) = pincheck_campaign_parts();
        let campaign = Campaign::new(&exe, &good, &bad).unwrap();
        let report = campaign.run(&InstructionSkip);
        let pcs = report.vulnerable_pcs();
        assert!(!pcs.is_empty());
        assert!(pcs.len() <= report.vulnerabilities().len());
        for pc in &pcs {
            assert!(exe.text_range().contains(pc));
        }
    }

    #[test]
    fn summary_counts_add_up() {
        let (exe, good, bad) = pincheck_campaign_parts();
        let campaign = Campaign::new(&exe, &good, &bad).unwrap();
        let report = campaign.run(&InstructionSkip);
        let s = report.summary();
        assert_eq!(
            s.total,
            s.success + s.benign + s.crashed + s.timed_out + s.corrupted + s.diverged
        );
        assert_eq!(s.total, report.results.len());
        assert_eq!(s.diverged, 0, "golden replays never diverge");
    }

    #[test]
    fn divergent_replay_reports_instead_of_panicking() {
        let (exe, good, bad) = pincheck_campaign_parts();
        let campaign = Campaign::new(&exe, &good, &bad).unwrap();
        // A fault whose recorded pc disagrees with the trace models a
        // determinism violation; it must degrade to ReplayDiverged (the
        // seed implementation debug-asserted here and took the whole
        // process down in debug builds).
        let bogus =
            Fault { step: 0, pc: 0xDEAD_0000, effect: crate::site::FaultEffect::SkipInstruction };
        assert_eq!(campaign.evaluate(&bogus), FaultClass::ReplayDiverged);
        let engine = campaign.replay_engine();
        assert_eq!(campaign.evaluate_checkpointed(engine, &bogus), FaultClass::ReplayDiverged);
        // Beyond-trace steps likewise degrade gracefully.
        let beyond = Fault {
            step: campaign.golden_bad().steps + 10,
            pc: 0x1000,
            effect: crate::site::FaultEffect::SkipInstruction,
        };
        assert_eq!(campaign.evaluate_checkpointed(engine, &beyond), FaultClass::ReplayDiverged);
        let mut summary = Summary::default();
        summary.record(FaultClass::ReplayDiverged);
        assert_eq!(summary.diverged, 1);
        assert!(summary.to_string().contains("replay-diverged"));
    }
}
