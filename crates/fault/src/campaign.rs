//! The campaign runner: golden runs, fault enumeration, classification.

use crate::model::FaultModel;
use crate::site::{Fault, FaultClass, FaultEffect, FaultSite};
use rr_emu::{execute, execute_traced, Execution, Machine, RunOutcome};
use rr_isa::{decode, Flags, MAX_INSTR_LEN};
use rr_obj::Executable;
use std::collections::BTreeSet;
use std::fmt;

/// Tunables for a fault-injection campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Step budget for the golden (unfaulted) runs.
    pub golden_max_steps: u64,
    /// Faulted runs get `golden_bad_steps × this` extra steps…
    pub faulted_step_multiplier: u64,
    /// …but never less than this floor (faults can lengthen runs a lot).
    pub faulted_min_steps: u64,
    /// Worker threads for [`Campaign::run_parallel`]; `0` means "all
    /// available cores".
    pub threads: usize,
    /// Evaluate only every `site_stride`-th trace site (≥ 1). Statistical
    /// fault injection (Leveugle et al., cited by the paper) for long
    /// traces; `1` = exhaustive.
    pub site_stride: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            golden_max_steps: 1_000_000,
            faulted_step_multiplier: 4,
            faulted_min_steps: 10_000,
            threads: 0,
            site_stride: 1,
        }
    }
}

/// Why a campaign could not be set up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The good input did not exit normally.
    GoldenGoodFailed(RunOutcome),
    /// The bad input did not exit normally.
    GoldenBadFailed(RunOutcome),
    /// Good and bad inputs behave identically — there is no attacker goal
    /// to reach and no vulnerability to measure.
    IndistinguishableBehaviors,
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::GoldenGoodFailed(o) => write!(f, "golden good-input run failed: {o}"),
            CampaignError::GoldenBadFailed(o) => write!(f, "golden bad-input run failed: {o}"),
            CampaignError::IndistinguishableBehaviors => {
                write!(f, "good and bad inputs produce identical behaviour")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// One evaluated fault and its classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultResult {
    /// The injected fault.
    pub fault: Fault,
    /// How the faulted run compared against the golden runs.
    pub class: FaultClass,
}

/// Per-class counts of a campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Summary {
    /// Total faults evaluated.
    pub total: usize,
    /// Successful faults (vulnerabilities).
    pub success: usize,
    /// Faults with no attacker-relevant effect.
    pub benign: usize,
    /// Faulted runs that crashed.
    pub crashed: usize,
    /// Faulted runs that hung.
    pub timed_out: usize,
    /// Normal exits matching neither golden behaviour.
    pub corrupted: usize,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} faults: {} success, {} benign, {} crashed, {} timed-out, {} corrupted",
            self.total, self.success, self.benign, self.crashed, self.timed_out, self.corrupted
        )
    }
}

/// The outcome of running one fault model against one binary.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Name of the fault model that was simulated.
    pub model: &'static str,
    /// Every evaluated fault, in site order.
    pub results: Vec<FaultResult>,
}

impl CampaignReport {
    /// Number of results in the given class.
    pub fn count(&self, class: FaultClass) -> usize {
        self.results.iter().filter(|r| r.class == class).count()
    }

    /// The successful faults — the vulnerability list handed to the
    /// patcher.
    pub fn vulnerabilities(&self) -> Vec<FaultResult> {
        self.results.iter().copied().filter(|r| r.class == FaultClass::Success).collect()
    }

    /// Distinct instruction addresses with at least one successful fault —
    /// the set of *program points* the patcher must protect.
    pub fn vulnerable_pcs(&self) -> BTreeSet<u64> {
        self.results
            .iter()
            .filter(|r| r.class == FaultClass::Success)
            .map(|r| r.fault.pc)
            .collect()
    }

    /// Aggregated per-class counts.
    pub fn summary(&self) -> Summary {
        let mut s = Summary { total: self.results.len(), ..Summary::default() };
        for r in &self.results {
            match r.class {
                FaultClass::Success => s.success += 1,
                FaultClass::Benign => s.benign += 1,
                FaultClass::Crashed => s.crashed += 1,
                FaultClass::TimedOut => s.timed_out += 1,
                FaultClass::Corrupted => s.corrupted += 1,
            }
        }
        s
    }
}

/// A configured fault-injection campaign against one executable.
///
/// Construction performs the golden runs and records the bad-input trace;
/// [`Campaign::run`] then evaluates a [`FaultModel`] against every trace
/// site. See the crate docs for the full procedure and an example.
#[derive(Debug)]
pub struct Campaign<'a> {
    exe: &'a Executable,
    bad_input: &'a [u8],
    golden_good: Execution,
    golden_bad: Execution,
    sites: Vec<FaultSite>,
    config: CampaignConfig,
}

impl<'a> Campaign<'a> {
    /// Sets up a campaign with default configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`CampaignError`] if either golden run fails or the two
    /// behaviours are indistinguishable.
    pub fn new(
        exe: &'a Executable,
        good_input: &'a [u8],
        bad_input: &'a [u8],
    ) -> Result<Campaign<'a>, CampaignError> {
        Campaign::with_config(exe, good_input, bad_input, CampaignConfig::default())
    }

    /// Sets up a campaign with an explicit [`CampaignConfig`].
    ///
    /// # Errors
    ///
    /// Same as [`Campaign::new`].
    pub fn with_config(
        exe: &'a Executable,
        good_input: &'a [u8],
        bad_input: &'a [u8],
        config: CampaignConfig,
    ) -> Result<Campaign<'a>, CampaignError> {
        let golden_good = execute(exe, good_input, config.golden_max_steps);
        if !golden_good.outcome.is_exit() {
            return Err(CampaignError::GoldenGoodFailed(golden_good.outcome));
        }
        let (golden_bad, trace) = execute_traced(exe, bad_input, config.golden_max_steps);
        if !golden_bad.outcome.is_exit() {
            return Err(CampaignError::GoldenBadFailed(golden_bad.outcome));
        }
        if golden_good.same_behavior(&golden_bad) {
            return Err(CampaignError::IndistinguishableBehaviors);
        }
        let sites = trace
            .iter()
            .enumerate()
            .filter_map(|(step, &pc)| {
                let bytes = peek_code(exe, pc)?;
                let (insn, len) = decode(bytes).ok()?;
                Some(FaultSite { step: step as u64, pc, insn, len })
            })
            .collect();
        Ok(Campaign { exe, bad_input, golden_good, golden_bad, sites, config })
    }

    /// The golden good-input behaviour.
    pub fn golden_good(&self) -> &Execution {
        &self.golden_good
    }

    /// The golden bad-input behaviour.
    pub fn golden_bad(&self) -> &Execution {
        &self.golden_bad
    }

    /// The fault sites (one per executed instruction of the bad-input run).
    pub fn sites(&self) -> &[FaultSite] {
        &self.sites
    }

    /// Evaluates `model` over every site, serially.
    pub fn run(&self, model: &dyn FaultModel) -> CampaignReport {
        let faults = self.enumerate(model);
        let results =
            faults.iter().map(|&fault| FaultResult { fault, class: self.evaluate(&fault) }).collect();
        CampaignReport { model: model.name(), results }
    }

    /// Evaluates `model` over every site using `config.threads` workers
    /// (all cores when 0). Result order matches [`Campaign::run`].
    pub fn run_parallel(&self, model: &dyn FaultModel) -> CampaignReport {
        let faults = self.enumerate(model);
        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism().map(usize::from).unwrap_or(1)
        } else {
            self.config.threads
        };
        if threads <= 1 || faults.len() < 2 * threads {
            return CampaignReport {
                model: model.name(),
                results: faults
                    .iter()
                    .map(|&fault| FaultResult { fault, class: self.evaluate(&fault) })
                    .collect(),
            };
        }
        let chunk_size = faults.len().div_ceil(threads);
        let mut results: Vec<Vec<FaultResult>> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = faults
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move |_| {
                        chunk
                            .iter()
                            .map(|&fault| FaultResult { fault, class: self.evaluate(&fault) })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                results.push(handle.join().expect("campaign worker panicked"));
            }
        })
        .expect("campaign thread scope failed");
        CampaignReport { model: model.name(), results: results.concat() }
    }

    fn enumerate(&self, model: &dyn FaultModel) -> Vec<Fault> {
        let stride = self.config.site_stride.max(1);
        self.sites.iter().step_by(stride).flat_map(|site| model.faults_at(site)).collect()
    }

    /// Replays the bad-input run to the fault's step, injects it, resumes,
    /// and classifies the resulting behaviour.
    fn evaluate(&self, fault: &Fault) -> FaultClass {
        let mut machine = Machine::new(self.exe, self.bad_input);
        for _ in 0..fault.step {
            if machine.step().is_err() {
                // Cannot happen on a golden trace; treat defensively.
                return FaultClass::Crashed;
            }
        }
        debug_assert_eq!(machine.pc(), fault.pc, "trace replay diverged");
        match fault.effect {
            FaultEffect::SkipInstruction => {
                if machine.skip_instruction().is_err() {
                    return FaultClass::Crashed;
                }
            }
            FaultEffect::FlipInstructionBit { byte, bit } => {
                let addr = fault.pc + byte as u64;
                let Some(&current) = machine.peek_bytes(addr, 1).and_then(|b| b.first()) else {
                    return FaultClass::Crashed;
                };
                machine.poke_bytes(addr, &[current ^ (1 << bit)]);
            }
            FaultEffect::FlipRegisterBit { reg, bit } => {
                machine.set_reg(reg, machine.reg(reg) ^ (1u64 << bit));
            }
            FaultEffect::FlipFlags { mask } => {
                machine.set_flags(Flags::from_bits(machine.flags().to_bits() ^ u64::from(mask)));
            }
        }
        let budget = (self.golden_bad.steps * self.config.faulted_step_multiplier)
            .max(self.config.faulted_min_steps);
        let result = machine.run(budget);
        let execution = Execution {
            outcome: result.outcome,
            output: machine.take_output(),
            steps: result.steps,
        };
        self.classify(&execution)
    }

    fn classify(&self, execution: &Execution) -> FaultClass {
        if execution.same_behavior(&self.golden_good) {
            FaultClass::Success
        } else if execution.same_behavior(&self.golden_bad) {
            FaultClass::Benign
        } else {
            match execution.outcome {
                RunOutcome::Crashed { .. } => FaultClass::Crashed,
                RunOutcome::TimedOut => FaultClass::TimedOut,
                RunOutcome::Exited { .. } => FaultClass::Corrupted,
            }
        }
    }
}

/// Reads up to [`MAX_INSTR_LEN`] code bytes at `pc` from the executable
/// image (shorter at the end of `.text`).
fn peek_code(exe: &Executable, pc: u64) -> Option<&[u8]> {
    let text = exe.text_range();
    if !text.contains(&pc) {
        return None;
    }
    let available = (text.end - pc).min(MAX_INSTR_LEN as u64) as usize;
    exe.read_bytes(pc, available)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FlagFlip, InstructionSkip, SingleBitFlip};
    use rr_asm::assemble_and_link;
    use rr_isa::InstrKind;
    use rr_workloads::pincheck;

    fn pincheck_campaign_parts() -> (Executable, Vec<u8>, Vec<u8>) {
        let w = pincheck();
        (w.build().unwrap(), w.good_input, w.bad_input)
    }

    #[test]
    fn golden_validation_rejects_broken_setups() {
        let (exe, good, _) = pincheck_campaign_parts();
        // Same input for good and bad → indistinguishable.
        assert_eq!(
            Campaign::new(&exe, &good, &good).unwrap_err(),
            CampaignError::IndistinguishableBehaviors
        );
        // A crashing program cannot be campaigned.
        let crasher = assemble_and_link("    .global _start\n_start:\n    halt\n").unwrap();
        assert!(matches!(
            Campaign::new(&crasher, b"a", b"b").unwrap_err(),
            CampaignError::GoldenGoodFailed(_)
        ));
    }

    #[test]
    fn sites_cover_the_bad_trace() {
        let (exe, good, bad) = pincheck_campaign_parts();
        let campaign = Campaign::new(&exe, &good, &bad).unwrap();
        assert_eq!(campaign.sites().len() as u64, campaign.golden_bad().steps);
        // Sites are in trace order with increasing steps.
        for (i, site) in campaign.sites().iter().enumerate() {
            assert_eq!(site.step, i as u64);
        }
    }

    #[test]
    fn unprotected_pincheck_is_skip_vulnerable_at_branches() {
        let (exe, good, bad) = pincheck_campaign_parts();
        let campaign = Campaign::new(&exe, &good, &bad).unwrap();
        let report = campaign.run(&InstructionSkip);
        let summary = report.summary();
        assert!(summary.success > 0, "expected skip vulnerabilities: {summary}");
        assert!(summary.benign > 0, "skips off the critical path are benign");

        // The classic vulnerability: skipping a `jne deny`. The paper
        // reports all vulnerabilities stem from the conditional jumps and
        // the mov/cmp instructions feeding them; at minimum a conditional
        // jump must be among ours.
        let vulnerable_kinds: Vec<InstrKind> = report
            .vulnerabilities()
            .iter()
            .map(|result| {
                campaign
                    .sites()
                    .iter()
                    .find(|s| s.step == result.fault.step)
                    .expect("vulnerability at a known site")
                    .insn
                    .kind()
            })
            .collect();
        assert!(
            vulnerable_kinds.contains(&InstrKind::CondJump),
            "expected a conditional-jump vulnerability, got {vulnerable_kinds:?}"
        );
    }

    #[test]
    fn bit_flips_produce_crashes_and_successes() {
        let (exe, good, bad) = pincheck_campaign_parts();
        let campaign = Campaign::new(&exe, &good, &bad).unwrap();
        let report = campaign.run_parallel(&SingleBitFlip);
        let summary = report.summary();
        assert!(summary.success > 0, "{summary}");
        assert!(summary.crashed > 0, "sparse opcodes must yield crashes: {summary}");
        assert!(summary.benign > 0, "{summary}");
        assert_eq!(
            summary.total,
            campaign.sites().iter().map(|s| s.len * 8).sum::<usize>()
        );
    }

    #[test]
    fn parallel_and_serial_reports_agree() {
        let (exe, good, bad) = pincheck_campaign_parts();
        let config = CampaignConfig { threads: 4, ..CampaignConfig::default() };
        let campaign = Campaign::with_config(&exe, &good, &bad, config).unwrap();
        let serial = campaign.run(&InstructionSkip);
        let parallel = campaign.run_parallel(&InstructionSkip);
        assert_eq!(serial.results, parallel.results);
    }

    #[test]
    fn flag_flips_can_invert_decisions() {
        let (exe, good, bad) = pincheck_campaign_parts();
        let campaign = Campaign::new(&exe, &good, &bad).unwrap();
        let report = campaign.run(&FlagFlip);
        // Flipping Z right before `jne deny` takes the grant path.
        assert!(report.summary().success > 0);
    }

    #[test]
    fn vulnerable_pcs_deduplicate_loop_sites() {
        let (exe, good, bad) = pincheck_campaign_parts();
        let campaign = Campaign::new(&exe, &good, &bad).unwrap();
        let report = campaign.run(&InstructionSkip);
        let pcs = report.vulnerable_pcs();
        assert!(!pcs.is_empty());
        assert!(pcs.len() <= report.vulnerabilities().len());
        for pc in &pcs {
            assert!(exe.text_range().contains(pc));
        }
    }

    #[test]
    fn summary_counts_add_up() {
        let (exe, good, bad) = pincheck_campaign_parts();
        let campaign = Campaign::new(&exe, &good, &bad).unwrap();
        let report = campaign.run(&InstructionSkip);
        let s = report.summary();
        assert_eq!(s.total, s.success + s.benign + s.crashed + s.timed_out + s.corrupted);
        assert_eq!(s.total, report.results.len());
    }
}
