//! Execution-mode equivalence: the accelerated tiers — pre-decoded
//! superblock execution ([`rr_fault::ExecMode::Blocks`]) and compiled
//! micro-op traces ([`rr_fault::ExecMode::Uops`], the default) — must
//! classify every fault exactly like the per-step interpreter
//! ([`rr_fault::ExecMode::Interp`]), for every workload, engine,
//! thread count, and bucketing choice.
//!
//! This is the bit-identity contract the acceleration rests on: both
//! tiers run the *same* decoded instructions over the *same* bytes
//! (the uop tier additionally pre-lowers hot bodies and defers NZCV
//! materialization, but never past an observable point), fall back to
//! interpretation over any code the session modified (injections mark
//! their ranges exec-dirty), and stop at exactly the same step for
//! fences, budgets, crashes, and exits. Any divergence here is a bug in
//! the block cache (stale decode, missed self-modification), the uop
//! compiler (wrong lowering, flags materialized too lazily), or the
//! fence arithmetic, and would silently corrupt campaign results — so
//! the comparison is on full reports, fault by fault.

use rr_fault::{
    CampaignConfig, CampaignEngine, CampaignReport, CampaignSession, Collect, ExecMode, FaultModel,
    InstructionSkip, OptLevel, PairPolicy, PlanConfig, SingleBitFlip, UopConfig,
};
use rr_workloads::Workload;

/// Both accelerated tiers — the uop tier at both optimization levels —
/// each compared against the interpreter.
fn accel_configs() -> [(ExecMode, UopConfig); 3] {
    [
        (ExecMode::Blocks, UopConfig::default()),
        (ExecMode::Uops, UopConfig { opt: OptLevel::None, ..UopConfig::default() }),
        (ExecMode::Uops, UopConfig::default()),
    ]
}

fn session(w: &Workload, config: CampaignConfig) -> CampaignSession {
    CampaignSession::builder(w.build().unwrap_or_else(|e| panic!("{}: build failed: {e}", w.name)))
        .good_input(&w.good_input[..])
        .bad_input(&w.bad_input[..])
        .config(config)
        .build()
        .unwrap_or_else(|e| panic!("{}: session setup failed: {e}", w.name))
}

fn run_one(s: &CampaignSession, model: &dyn FaultModel) -> CampaignReport {
    s.run(&[model], Collect).pop().expect("one report per model")
}

fn assert_reports_equal(a: &CampaignReport, b: &CampaignReport, context: &str) {
    assert_eq!(a.results.len(), b.results.len(), "{context}: fault counts differ");
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(
            x,
            y,
            "{context}: classification diverged at step {} pc {:#x}",
            x.fault().step,
            x.fault().pc
        );
    }
}

/// Every workload, both engines, bucketing on and off, serial and
/// parallel: interp, blocks, and uops classify identically, report for
/// report.
#[test]
fn accelerated_tiers_match_interp_across_workloads_engines_and_scheduling() {
    for w in rr_workloads::all_workloads() {
        // Keep the grid affordable: skip is exhaustive on every
        // workload, and strided bit flips cover the code-corrupting
        // effect that forces interpreter fallback.
        for (engine, bucketing, threads) in [
            (CampaignEngine::Checkpointed, true, 1),
            (CampaignEngine::Checkpointed, false, 1),
            (CampaignEngine::Checkpointed, true, 4),
            (CampaignEngine::Naive, false, 1),
        ] {
            let base = CampaignConfig {
                engine,
                bucketing,
                threads,
                site_stride: 2,
                ..CampaignConfig::default()
            };
            let interp = session(&w, CampaignConfig { exec: ExecMode::Interp, ..base.clone() });
            let interp_skip = run_one(&interp, &InstructionSkip);
            let interp_flip = run_one(&interp, &SingleBitFlip);
            for (exec, uop) in accel_configs() {
                let context = format!(
                    "{} engine={engine} bucketing={bucketing} threads={threads} exec={exec} opt={}",
                    w.name, uop.opt
                );
                let fast = session(&w, CampaignConfig { exec, uop, ..base.clone() });
                assert_reports_equal(
                    &interp_skip,
                    &run_one(&fast, &InstructionSkip),
                    &format!("{context} skip"),
                );
                assert_reports_equal(
                    &interp_flip,
                    &run_one(&fast, &SingleBitFlip),
                    &format!("{context} bitflip"),
                );
                assert_eq!(
                    run_one(&fast, &InstructionSkip).summary().diverged,
                    0,
                    "{context}: accelerated replay diverged"
                );
            }
        }
    }
}

/// Multi-fault plans inject at several timed points of one continuation;
/// both accelerated tiers must honour every intermediate fence exactly.
#[test]
fn accelerated_tiers_match_interp_for_double_fault_plans() {
    let w = rr_workloads::pincheck();
    let base = CampaignConfig {
        plan: PlanConfig {
            order: 2,
            policy: PairPolicy::WithinWindow { max_gap: 6 },
            budget: Some(2_000),
            seed: 7,
        },
        ..CampaignConfig::default()
    };
    let interp = session(&w, CampaignConfig { exec: ExecMode::Interp, ..base.clone() });
    let interp_report = run_one(&interp, &InstructionSkip);
    for (exec, uop) in accel_configs() {
        let fast = session(&w, CampaignConfig { exec, uop, ..base.clone() });
        assert_reports_equal(
            &interp_report,
            &run_one(&fast, &InstructionSkip),
            &format!("pincheck order-2 skip exec={exec} opt={}", uop.opt),
        );
    }
}

/// The default config really is uop-compiled: an explicitly-interp
/// session and a default one still agree on a full campaign, and an
/// eager-compile threshold agrees with the tiered default.
#[test]
fn default_session_is_uop_compiled_and_equivalent() {
    assert_eq!(CampaignConfig::default().exec, ExecMode::Uops);
    let w = rr_workloads::otp_check();
    let default = session(&w, CampaignConfig::default());
    let interp =
        session(&w, CampaignConfig { exec: ExecMode::Interp, ..CampaignConfig::default() });
    let default_report = run_one(&default, &InstructionSkip);
    assert_reports_equal(
        &run_one(&interp, &InstructionSkip),
        &default_report,
        "otp default-vs-interp",
    );
    // Eager compilation (threshold 0) must not change a single verdict
    // relative to the tiered default threshold.
    let eager = session(
        &w,
        CampaignConfig {
            uop: UopConfig { hot_threshold: 0, ..UopConfig::default() },
            ..CampaignConfig::default()
        },
    );
    assert_reports_equal(
        &default_report,
        &run_one(&eager, &InstructionSkip),
        "otp tiered-vs-eager",
    );
    // The default session runs the optimized uop traces
    // (`OptLevel::Full`); switching the optimizer off must not change a
    // verdict either.
    assert_eq!(CampaignConfig::default().uop.opt, OptLevel::Full);
    let unopt = session(
        &w,
        CampaignConfig {
            uop: UopConfig { opt: OptLevel::None, ..UopConfig::default() },
            ..CampaignConfig::default()
        },
    );
    assert_reports_equal(
        &default_report,
        &run_one(&unopt, &InstructionSkip),
        "otp opt-full-vs-none",
    );
}
