//! Oracle coverage: the default golden-pair oracle over every
//! [`FaultClass`] arm, and a property test pinning the streaming sink to
//! the collected sink for random models, engines, shard policies, and
//! strides.

use proptest::prelude::*;
use rr_emu::{CpuFault, RunOutcome};
use rr_fault::{
    Behavior, CampaignConfig, CampaignEngine, CampaignSession, Collect, FaultClass, FaultModel,
    FlagFlip, GoldenPairOracle, InstructionSkip, Oracle, RegisterBitFlip, ShardPolicy,
    SingleBitFlip, Stream,
};

fn behavior(outcome: RunOutcome, output: &[u8]) -> Behavior {
    Behavior { outcome, output: output.to_vec(), steps: 100 }
}

fn golden_pair() -> (Behavior, Behavior, GoldenPairOracle) {
    let good = behavior(RunOutcome::Exited { code: 0 }, b"ACCESS GRANTED\n");
    let bad = behavior(RunOutcome::Exited { code: 1 }, b"ACCESS DENIED\n");
    let oracle = GoldenPairOracle::new(good.clone(), bad.clone());
    (good, bad, oracle)
}

/// The six [`FaultClass`] arms, one by one. Five are the oracle's;
/// the sixth ([`FaultClass::ReplayDiverged`]) is produced by the
/// *runner* when a replay never reaches the injection point — an
/// oracle never sees such a run, so it is exercised through a session
/// below.
#[test]
fn golden_pair_oracle_covers_every_behavioral_arm() {
    let (good, bad, oracle) = golden_pair();
    assert_eq!(oracle.name(), "golden-pair");
    assert_eq!(oracle.golden_good(), &good);
    assert_eq!(oracle.golden_bad(), &bad);

    // Success: behaves exactly like the good run (step counts may
    // differ — a faulted run is never step-identical).
    let mut like_good = good.clone();
    like_good.steps = 9_999;
    assert_eq!(oracle.classify(&like_good), FaultClass::Success);

    // Benign: still behaves like the unfaulted bad run.
    let mut like_bad = bad.clone();
    like_bad.steps = 1;
    assert_eq!(oracle.classify(&like_bad), FaultClass::Benign);

    // Crashed: any CPU fault, regardless of partial output.
    let crashed =
        behavior(RunOutcome::Crashed { fault: CpuFault::DivideByZero, pc: 0x1040 }, b"ACCESS ");
    assert_eq!(oracle.classify(&crashed), FaultClass::Crashed);

    // TimedOut: the run exceeded its step budget.
    let hung = behavior(RunOutcome::TimedOut, b"");
    assert_eq!(oracle.classify(&hung), FaultClass::TimedOut);

    // Corrupted: a clean exit matching neither golden behaviour —
    // whether the output, the exit code, or both differ.
    let third_output = behavior(RunOutcome::Exited { code: 0 }, b"ACCESS GARBLED\n");
    assert_eq!(oracle.classify(&third_output), FaultClass::Corrupted);
    let third_code = behavior(RunOutcome::Exited { code: 3 }, b"ACCESS GRANTED\n");
    assert_eq!(oracle.classify(&third_code), FaultClass::Corrupted);
}

#[test]
fn replay_divergence_is_the_runners_arm_not_the_oracles() {
    // A determinism violation surfaces as ReplayDiverged in the report
    // without the oracle ever classifying anything: the fault below
    // names a pc the trace never visits at step 0.
    struct BogusPc;
    impl FaultModel for BogusPc {
        fn name(&self) -> &'static str {
            "bogus-pc"
        }
        fn faults_at(&self, site: &rr_fault::FaultSite) -> Vec<rr_fault::Fault> {
            vec![rr_fault::Fault {
                step: site.step,
                pc: site.pc ^ 0xDEAD_0000,
                effect: rr_fault::FaultEffect::SkipInstruction,
            }]
        }
    }
    let w = rr_workloads::pincheck();
    let session = CampaignSession::builder(w.build().unwrap())
        .good_input(&w.good_input[..])
        .bad_input(&w.bad_input[..])
        .build()
        .unwrap();
    let report = session.run(&[&BogusPc as &dyn FaultModel], Collect).pop().unwrap();
    let summary = report.summary();
    assert_eq!(summary.diverged, summary.total, "every bogus fault diverges");
    assert!(summary.diverged > 0);
}

fn model_pool() -> Vec<Box<dyn FaultModel>> {
    vec![
        Box::new(InstructionSkip),
        Box::new(SingleBitFlip),
        Box::new(FlagFlip),
        Box::new(RegisterBitFlip {
            regs: vec![rr_isa::Reg::from_index(0), rr_isa::Reg::from_index(2)],
            bits: vec![0, 7, 63],
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For random (model, engine, shard policy, threads, stride)
    /// combinations, the streaming sink's per-model summaries equal the
    /// collected sink's — the O(shards)-memory path never drops or
    /// double-counts a classification.
    #[test]
    fn streaming_and_collected_sinks_agree(
        model_pick in 0usize..4,
        engine_pick in 0usize..2,
        shard_pick in 0usize..2,
        threads in 1usize..5,
        site_stride in 1usize..4,
    ) {
        let engine =
            [CampaignEngine::Naive, CampaignEngine::Checkpointed][engine_pick];
        let shard = [ShardPolicy::Contiguous, ShardPolicy::Interleaved][shard_pick];
        let w = rr_workloads::pincheck();
        let session = CampaignSession::builder(w.build().unwrap())
            .good_input(&w.good_input[..])
            .bad_input(&w.bad_input[..])
            .config(CampaignConfig {
                engine,
                shard,
                threads,
                site_stride,
                ..CampaignConfig::default()
            })
            .build()
            .unwrap();
        let pool = model_pool();
        let model = pool[model_pick].as_ref();
        let collected = session.run(&[model], Collect).pop().unwrap();
        let streamed = session.run(&[model], Stream).pop().unwrap();
        prop_assert_eq!(streamed.model, collected.model);
        prop_assert_eq!(
            streamed.summary,
            collected.summary(),
            "model={} engine={} shard={} threads={} stride={}",
            model.name(),
            engine,
            shard,
            threads,
            site_stride
        );
    }
}
