//! Soundness of the static fault-effect analysis, checked dynamically.
//!
//! The pruning contract is one-sided: a [`StaticVerdict::Benign`] plan
//! must classify [`FaultClass::Benign`] when actually executed — the
//! analysis may say `Unknown` about anything, but never `Benign` about a
//! plan with an observable effect. Two independent checks pin this over
//! every bundled workload and fault model:
//!
//! * **audit mode** (`audit_analysis`) disables pruning, executes every
//!   plan — including the statically-benign ones — and records each
//!   statically-benign plan that classified non-benign as an audit
//!   failure; the suite demands zero, at order 1 and order 2;
//! * **invariance**: an unbudgeted campaign with pruning on must report
//!   exactly the same non-benign results (and therefore bit-identical
//!   successes) as the same campaign with pruning off — pruning may only
//!   ever drop plans that execute to `Benign`.

use rr_fault::{
    CampaignConfig, CampaignSession, Collect, FaultClass, FaultModel, FaultResult, FlagFlip,
    InstructionSkip, PairPolicy, PlanConfig, RegisterBitFlip, SingleBitFlip,
};
use rr_workloads::{all_workloads, Workload};

fn models() -> Vec<Box<dyn FaultModel>> {
    vec![
        Box::new(InstructionSkip),
        Box::new(SingleBitFlip),
        Box::new(FlagFlip),
        Box::new(RegisterBitFlip {
            regs: vec![rr_isa::Reg::from_index(0), rr_isa::Reg::from_index(6)],
            bits: vec![0, 1, 63],
        }),
    ]
}

/// Site strides keeping the heavy models affordable (the exhaustive
/// per-fault comparison already runs in `multifault.rs`; here the point
/// is coverage of every workload × model pair under both checks).
fn stride_for(model: &str) -> usize {
    match model {
        "single-bit-flip" => 5,
        _ => 2,
    }
}

fn session(w: &Workload, config: CampaignConfig) -> CampaignSession {
    CampaignSession::builder(w.build().unwrap())
        .good_input(&w.good_input[..])
        .bad_input(&w.bad_input[..])
        .config(config)
        .build()
        .unwrap_or_else(|e| panic!("{}: session setup failed: {e}", w.name))
}

#[test]
fn audit_mode_finds_no_unsound_verdict_on_any_workload_or_model() {
    for w in all_workloads() {
        for model in models() {
            let config = CampaignConfig {
                site_stride: stride_for(model.name()),
                audit_analysis: true,
                ..CampaignConfig::default()
            };
            let s = session(&w, config);
            let report = s.run(&[model.as_ref()], Collect).pop().unwrap();
            assert!(
                report.audit_failures.is_empty(),
                "{}/{}: statically-benign plan(s) classified non-benign: {:?}",
                w.name,
                model.name(),
                report.audit_failures
            );
            // Audit implies no pruning: every plan must have executed.
            assert_eq!(report.plans_pruned_static(), 0, "{}/{}", w.name, model.name());
        }
    }
}

#[test]
fn order_two_audit_is_clean() {
    // Order-2 plans compose two effects; a statically-benign pair (both
    // members individually benign) must still execute to `Benign`.
    for w in all_workloads() {
        for model in [&InstructionSkip as &dyn FaultModel, &FlagFlip] {
            let config = CampaignConfig {
                site_stride: 3,
                audit_analysis: true,
                plan: PlanConfig {
                    order: 2,
                    policy: PairPolicy::WithinWindow { max_gap: 8 },
                    ..PlanConfig::default()
                },
                ..CampaignConfig::default()
            };
            let report = session(&w, config).run(&[model], Collect).pop().unwrap();
            assert!(
                report.audit_failures.is_empty(),
                "{}/{} order 2: {:?}",
                w.name,
                model.name(),
                report.audit_failures
            );
        }
    }
}

/// The results a pruned campaign must reproduce exactly: everything the
/// oracle did **not** classify benign.
fn non_benign(results: &[FaultResult]) -> Vec<&FaultResult> {
    results.iter().filter(|r| r.class != FaultClass::Benign).collect()
}

#[test]
fn pruning_preserves_every_non_benign_classification() {
    // Unbudgeted campaigns only: with a per-order sampling budget the
    // budget is intentionally spent on the *pruned* plan space, so the
    // drawn samples (and their classifications) legitimately differ.
    for w in all_workloads() {
        for model in models() {
            let config = |static_prune| CampaignConfig {
                site_stride: stride_for(model.name()),
                static_prune,
                ..CampaignConfig::default()
            };
            let pruned = session(&w, config(true)).run(&[model.as_ref()], Collect).pop().unwrap();
            let full = session(&w, config(false)).run(&[model.as_ref()], Collect).pop().unwrap();
            assert_eq!(
                non_benign(&pruned.results),
                non_benign(&full.results),
                "{}/{}: pruning changed a non-benign result",
                w.name,
                model.name()
            );
            // In particular the successes — the campaign's findings — are
            // bit-identical, and the pruned counts account for exactly
            // the plans that vanished from the report.
            assert_eq!(pruned.summary().success, full.summary().success);
            assert_eq!(
                pruned.results.len() as u128 + pruned.plans_pruned_static(),
                full.results.len() as u128,
                "{}/{}",
                w.name,
                model.name()
            );
            assert_eq!(full.plans_pruned_static(), 0, "pruning off reports nothing pruned");
        }
    }
}

#[test]
fn order_two_pruning_is_invariant_too() {
    let w = rr_workloads::otp_check();
    let config = |static_prune| CampaignConfig {
        site_stride: 3,
        static_prune,
        plan: PlanConfig {
            order: 2,
            policy: PairPolicy::WithinWindow { max_gap: 6 },
            ..PlanConfig::default()
        },
        ..CampaignConfig::default()
    };
    let model: &dyn FaultModel = &FlagFlip;
    let pruned = session(&w, config(true)).run(&[model], Collect).pop().unwrap();
    let full = session(&w, config(false)).run(&[model], Collect).pop().unwrap();
    assert_eq!(non_benign(&pruned.results), non_benign(&full.results));
    let pruned_total: u128 = pruned.pruned_by_order.iter().map(|&(_, n)| n).sum();
    assert_eq!(pruned.results.len() as u128 + pruned_total, full.results.len() as u128);
}
