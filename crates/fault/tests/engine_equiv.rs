//! Engine equivalence: the checkpointed campaign engine must classify
//! every fault exactly like the naive reference engine, for every fault
//! model, on every case-study workload.
//!
//! This is the determinism contract the whole optimisation rests on:
//! restoring a snapshot and stepping forward is indistinguishable from
//! replaying from step 0. Any divergence here is a bug in
//! snapshot/restore (missed state) or in the replay engine (wrong
//! checkpoint selection), and would silently corrupt campaign results —
//! so the comparison is on full reports (fault-by-fault classes), not
//! just summaries.

use rr_fault::{
    Campaign, CampaignConfig, CampaignEngine, FaultClass, FaultModel, FlagFlip, InstructionSkip,
    RegisterBitFlip, SingleBitFlip,
};
use rr_workloads::Workload;

fn workloads() -> Vec<Workload> {
    vec![rr_workloads::pincheck(), rr_workloads::otp_check(), rr_workloads::bootloader()]
}

fn models() -> Vec<(&'static str, Box<dyn FaultModel>)> {
    vec![
        ("skip", Box::new(InstructionSkip)),
        ("bitflip", Box::new(SingleBitFlip)),
        ("flagflip", Box::new(FlagFlip)),
        // Two registers × four bits keeps the extension model tractable
        // while still exercising the register-restore path.
        (
            "regflip",
            Box::new(RegisterBitFlip {
                regs: vec![rr_isa_reg(0), rr_isa_reg(1)],
                bits: vec![0, 1, 31, 63],
            }),
        ),
    ]
}

fn rr_isa_reg(index: u8) -> rr_isa::Reg {
    rr_isa::Reg::from_index(index)
}

/// Strides per workload keep the heavier models (bit flips enumerate
/// 8 × len faults per site) inside a sensible test budget without losing
/// coverage of every fault-effect kind.
fn config_for(workload: &str, model: &str) -> CampaignConfig {
    let site_stride = match (workload, model) {
        ("pincheck", _) => 1, // short trace: fully exhaustive
        (_, "bitflip") => 7,
        _ => 3,
    };
    CampaignConfig { site_stride, ..CampaignConfig::default() }
}

#[test]
fn checkpointed_matches_naive_for_every_model_and_workload() {
    for w in workloads() {
        let exe = w.build().unwrap_or_else(|e| panic!("{}: build failed: {e}", w.name));
        for (model_name, model) in models() {
            let config = config_for(w.name, model_name);
            let campaign = Campaign::with_config(&exe, &w.good_input, &w.bad_input, config)
                .unwrap_or_else(|e| panic!("{}: campaign setup failed: {e}", w.name));
            let naive = campaign.run(model.as_ref());
            let checkpointed = campaign.run_checkpointed(model.as_ref());
            assert_eq!(
                naive.results.len(),
                checkpointed.results.len(),
                "{}/{model_name}: fault counts differ",
                w.name
            );
            for (n, c) in naive.results.iter().zip(&checkpointed.results) {
                assert_eq!(
                    n, c,
                    "{}/{model_name}: classification diverged at step {} pc {:#x}",
                    w.name, n.fault.step, n.fault.pc
                );
            }
            // Per-class counts agree as a consequence; assert anyway so a
            // failure names the class.
            for class in FaultClass::ALL {
                assert_eq!(
                    naive.count(class),
                    checkpointed.count(class),
                    "{}/{model_name}: {class} count differs",
                    w.name
                );
            }
            assert_eq!(naive.summary().diverged, 0, "{}/{model_name}", w.name);
        }
    }
}

#[test]
fn parallel_sharding_preserves_order_and_results() {
    for w in workloads() {
        let exe = w.build().unwrap();
        for threads in [1, 2, 5] {
            let config = CampaignConfig { threads, site_stride: 2, ..CampaignConfig::default() };
            let campaign =
                Campaign::with_config(&exe, &w.good_input, &w.bad_input, config).unwrap();
            let serial = campaign.run(&InstructionSkip);
            let sharded = campaign.run_checkpointed(&InstructionSkip);
            assert_eq!(serial.results, sharded.results, "{} threads={threads}", w.name);
        }
    }
}

#[test]
fn streaming_summaries_match_reports_on_all_workloads() {
    for w in workloads() {
        let exe = w.build().unwrap();
        let config = CampaignConfig { site_stride: 4, ..CampaignConfig::default() };
        let campaign = Campaign::with_config(&exe, &w.good_input, &w.bad_input, config).unwrap();
        let expected = campaign.run(&InstructionSkip).summary();
        for engine in [CampaignEngine::Naive, CampaignEngine::Checkpointed] {
            assert_eq!(
                campaign.run_streaming(&InstructionSkip, engine),
                expected,
                "{} via {engine}",
                w.name
            );
        }
    }
}

/// The paged-memory retention knobs are pure memory/performance
/// controls: squeezing the checkpoint byte budget (forcing interval
/// widening and checkpoint thinning) or hinting the campaign naive
/// (skipping snapshot recording entirely) must never change a single
/// classification.
#[test]
fn byte_budgets_and_engine_hints_do_not_change_results() {
    for w in [rr_workloads::pincheck(), rr_workloads::otp_check()] {
        let exe = w.build().unwrap();
        let baseline =
            Campaign::new(&exe, &w.good_input, &w.bad_input).unwrap().run(&InstructionSkip);
        // Byte budgets from generous down to pathological (one page).
        for budget in [16 << 20, 64 << 10, 4096] {
            let config = CampaignConfig { max_retained_bytes: budget, ..CampaignConfig::default() };
            let campaign =
                Campaign::with_config(&exe, &w.good_input, &w.bad_input, config).unwrap();
            let report = campaign.run_checkpointed(&InstructionSkip);
            assert_eq!(report.results, baseline.results, "{} budget={budget}", w.name);
            assert!(
                campaign.replay_footprint().retained_bytes <= budget,
                "{}: footprint over budget {budget}",
                w.name
            );
        }
        // Naive-hinted campaign, evaluated by every path.
        let config = CampaignConfig { engine: CampaignEngine::Naive, ..CampaignConfig::default() };
        let hinted = Campaign::with_config(&exe, &w.good_input, &w.bad_input, config).unwrap();
        assert_eq!(hinted.replay_footprint().checkpoints, 1, "{}", w.name);
        assert_eq!(hinted.run_configured(&InstructionSkip).results, baseline.results);
        assert_eq!(hinted.run_checkpointed(&InstructionSkip).results, baseline.results);
        assert_eq!(
            hinted.run_streaming(&InstructionSkip, CampaignEngine::Naive),
            baseline.summary(),
            "{}",
            w.name
        );
    }
}

#[test]
fn explicit_checkpoint_intervals_do_not_change_results() {
    let w = rr_workloads::otp_check();
    let exe = w.build().unwrap();
    let baseline = {
        let campaign = Campaign::new(&exe, &w.good_input, &w.bad_input).unwrap();
        campaign.run(&InstructionSkip)
    };
    for interval in [1, 2, 16, 1024, u64::MAX / 2] {
        let config = CampaignConfig { checkpoint_interval: interval, ..CampaignConfig::default() };
        let campaign = Campaign::with_config(&exe, &w.good_input, &w.bad_input, config).unwrap();
        let report = campaign.run_checkpointed(&InstructionSkip);
        assert_eq!(report.results, baseline.results, "interval={interval}");
    }
}
