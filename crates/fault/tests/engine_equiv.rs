//! Engine equivalence: the checkpointed campaign engine must classify
//! every fault exactly like the naive reference engine, for every fault
//! model, on every case-study workload.
//!
//! This is the determinism contract the whole optimisation rests on:
//! restoring a snapshot and stepping forward is indistinguishable from
//! replaying from step 0. Any divergence here is a bug in
//! snapshot/restore (missed state) or in the replay engine (wrong
//! checkpoint selection), and would silently corrupt campaign results —
//! so the comparison is on full reports (fault-by-fault classes), not
//! just summaries.
//!
//! With the session API the engine is a construction-time property
//! ([`CampaignConfig::engine`]), so "naive vs checkpointed" means two
//! independently built [`CampaignSession`]s over the same workload —
//! exactly how a consumer would switch engines.

use rr_fault::{
    CampaignConfig, CampaignEngine, CampaignReport, CampaignSession, Collect, FaultClass,
    FaultModel, FlagFlip, InstructionSkip, RegisterBitFlip, ShardPolicy, SingleBitFlip, Stream,
};
use rr_workloads::Workload;

fn workloads() -> Vec<Workload> {
    vec![rr_workloads::pincheck(), rr_workloads::otp_check(), rr_workloads::bootloader()]
}

fn models() -> Vec<(&'static str, Box<dyn FaultModel>)> {
    vec![
        ("skip", Box::new(InstructionSkip)),
        ("bitflip", Box::new(SingleBitFlip)),
        ("flagflip", Box::new(FlagFlip)),
        // Two registers × four bits keeps the extension model tractable
        // while still exercising the register-restore path.
        (
            "regflip",
            Box::new(RegisterBitFlip {
                regs: vec![rr_isa_reg(0), rr_isa_reg(1)],
                bits: vec![0, 1, 31, 63],
            }),
        ),
    ]
}

fn rr_isa_reg(index: u8) -> rr_isa::Reg {
    rr_isa::Reg::from_index(index)
}

fn session(w: &Workload, config: CampaignConfig) -> CampaignSession {
    CampaignSession::builder(w.build().unwrap_or_else(|e| panic!("{}: build failed: {e}", w.name)))
        .good_input(&w.good_input[..])
        .bad_input(&w.bad_input[..])
        .config(config)
        .build()
        .unwrap_or_else(|e| panic!("{}: session setup failed: {e}", w.name))
}

fn run_one(s: &CampaignSession, model: &dyn FaultModel) -> CampaignReport {
    s.run(&[model], Collect).pop().expect("one report per model")
}

/// Strides per workload keep the heavier models (bit flips enumerate
/// 8 × len faults per site) inside a sensible test budget without losing
/// coverage of every fault-effect kind.
fn config_for(workload: &str, model: &str) -> CampaignConfig {
    let site_stride = match (workload, model) {
        ("pincheck", _) => 1, // short trace: fully exhaustive
        (_, "bitflip") => 7,
        _ => 3,
    };
    CampaignConfig { site_stride, ..CampaignConfig::default() }
}

#[test]
fn checkpointed_matches_naive_for_every_model_and_workload() {
    for w in workloads() {
        for (model_name, model) in models() {
            let config = config_for(w.name, model_name);
            let naive = run_one(
                &session(&w, CampaignConfig { engine: CampaignEngine::Naive, ..config.clone() }),
                model.as_ref(),
            );
            let checkpointed = run_one(
                &session(&w, CampaignConfig { engine: CampaignEngine::Checkpointed, ..config }),
                model.as_ref(),
            );
            assert_eq!(
                naive.results.len(),
                checkpointed.results.len(),
                "{}/{model_name}: fault counts differ",
                w.name
            );
            for (n, c) in naive.results.iter().zip(&checkpointed.results) {
                assert_eq!(
                    n,
                    c,
                    "{}/{model_name}: classification diverged at step {} pc {:#x}",
                    w.name,
                    n.fault().step,
                    n.fault().pc
                );
            }
            // Per-class counts agree as a consequence; assert anyway so a
            // failure names the class.
            for class in FaultClass::ALL {
                assert_eq!(
                    naive.count(class),
                    checkpointed.count(class),
                    "{}/{model_name}: {class} count differs",
                    w.name
                );
            }
            assert_eq!(naive.summary().diverged, 0, "{}/{model_name}", w.name);
        }
    }
}

#[test]
fn scheduling_is_invisible_in_reports() {
    // Thread counts and shard policies are pure scheduling: reports stay
    // bit-identical, in site order, under every combination.
    for w in workloads() {
        let serial = run_one(
            &session(
                &w,
                CampaignConfig { threads: 1, site_stride: 2, ..CampaignConfig::default() },
            ),
            &InstructionSkip,
        );
        for threads in [2, 5] {
            for shard in [ShardPolicy::Contiguous, ShardPolicy::Interleaved] {
                let config =
                    CampaignConfig { threads, shard, site_stride: 2, ..CampaignConfig::default() };
                let sharded = run_one(&session(&w, config), &InstructionSkip);
                assert_eq!(serial.results, sharded.results, "{} threads={threads} {shard}", w.name);
            }
        }
    }
}

#[test]
fn streaming_summaries_match_reports_on_all_workloads() {
    for w in workloads() {
        for engine in [CampaignEngine::Naive, CampaignEngine::Checkpointed] {
            let s =
                session(&w, CampaignConfig { engine, site_stride: 4, ..CampaignConfig::default() });
            let expected = run_one(&s, &InstructionSkip).summary();
            let streamed = s.run(&[&InstructionSkip as &dyn FaultModel], Stream);
            assert_eq!(streamed[0].summary, expected, "{} via {engine}", w.name);
        }
    }
}

/// The paged-memory retention knobs are pure memory/performance
/// controls: squeezing the checkpoint byte budget (forcing interval
/// widening and checkpoint thinning) or building the session naive
/// (skipping snapshot recording entirely) must never change a single
/// classification.
#[test]
fn byte_budgets_and_engine_choice_do_not_change_results() {
    for w in [rr_workloads::pincheck(), rr_workloads::otp_check()] {
        let baseline = run_one(&session(&w, CampaignConfig::default()), &InstructionSkip);
        // Byte budgets from generous down to pathological (one page).
        for budget in [16 << 20, 64 << 10, 4096] {
            let config = CampaignConfig { max_retained_bytes: budget, ..CampaignConfig::default() };
            let s = session(&w, config);
            let report = run_one(&s, &InstructionSkip);
            assert_eq!(report.results, baseline.results, "{} budget={budget}", w.name);
            assert!(
                s.replay_footprint().retained_bytes <= budget,
                "{}: footprint over budget {budget}",
                w.name
            );
        }
        // A naive session records nothing and still classifies
        // identically, via both sinks.
        let config = CampaignConfig { engine: CampaignEngine::Naive, ..CampaignConfig::default() };
        let naive = session(&w, config);
        assert_eq!(naive.replay_footprint().checkpoints, 1, "{}", w.name);
        assert_eq!(run_one(&naive, &InstructionSkip).results, baseline.results);
        assert_eq!(
            naive.run(&[&InstructionSkip as &dyn FaultModel], Stream)[0].summary,
            baseline.summary(),
            "{}",
            w.name
        );
    }
}

#[test]
fn explicit_checkpoint_intervals_do_not_change_results() {
    let w = rr_workloads::otp_check();
    let baseline = run_one(&session(&w, CampaignConfig::default()), &InstructionSkip);
    for interval in [1, 2, 16, 1024, u64::MAX / 2] {
        let config = CampaignConfig { checkpoint_interval: interval, ..CampaignConfig::default() };
        let report = run_one(&session(&w, config), &InstructionSkip);
        assert_eq!(report.results, baseline.results, "interval={interval}");
    }
}

#[test]
fn one_pass_multi_model_runs_match_independent_runs() {
    // All models handed to one `run` call share a single scheduling pass;
    // the reports must still equal independently evaluated ones, engine
    // by engine.
    let w = rr_workloads::otp_check();
    for engine in [CampaignEngine::Naive, CampaignEngine::Checkpointed] {
        let s = session(&w, CampaignConfig { engine, site_stride: 3, ..CampaignConfig::default() });
        let boxed = models();
        let refs: Vec<&dyn FaultModel> = boxed.iter().map(|(_, m)| m.as_ref()).collect();
        let combined = s.run(&refs, Collect);
        assert_eq!(combined.len(), refs.len());
        for ((name, model), combined_report) in boxed.iter().zip(&combined) {
            let solo = run_one(&s, model.as_ref());
            assert_eq!(combined_report.results, solo.results, "{name} via {engine}");
        }
    }
}
