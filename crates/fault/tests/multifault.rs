//! Plan-length-1 invariance: the multi-fault (`FaultPlan`) pipeline,
//! run with singleton plans, must be **bit-identical** to the classic
//! single-fault campaign — whose semantics are re-implemented here, from
//! `rr-emu` primitives alone, as an executable specification: replay the
//! bad-input run from step 0, verify the program counter against the
//! trace, apply one effect, resume under the faulted budget, classify
//! against the golden pair. There is no legacy path left in the crate;
//! this reference is the pin.
//!
//! Also pinned here: bucketed (checkpoint-neighbourhood) evaluation vs
//! per-plan positioning on multi-fault campaigns, and the determinism of
//! budgeted plan sampling across sessions.

use rr_emu::{execute, Execution, Machine, RunOutcome};
use rr_fault::{
    fault_verdict, CampaignConfig, CampaignEngine, CampaignReport, CampaignSession, Collect, Fault,
    FaultClass, FaultEffect, FaultModel, FlagFlip, InstructionSkip, PairPolicy, PlanConfig,
    RegisterBitFlip, ShardPolicy, SingleBitFlip, StaticVerdict,
};
use rr_workloads::{all_workloads, Workload};

fn models() -> Vec<Box<dyn FaultModel>> {
    vec![
        Box::new(InstructionSkip),
        Box::new(SingleBitFlip),
        Box::new(FlagFlip),
        Box::new(RegisterBitFlip {
            regs: vec![rr_isa::Reg::from_index(0), rr_isa::Reg::from_index(1)],
            bits: vec![0, 1, 63],
        }),
    ]
}

/// Per-combination site strides keep the heavy models affordable while
/// every workload × model pair still runs (pincheck exhaustively).
fn stride_for(workload: &str, model: &str) -> usize {
    match (workload, model) {
        ("pincheck", _) => 1,
        (_, "single-bit-flip") => 7,
        _ => 3,
    }
}

/// The executable specification of one single-fault evaluation,
/// pre-refactor semantics: naive replay from step 0, pc check, one
/// effect, bounded continuation, golden-pair comparison.
fn reference_class(
    exe: &rr_obj::Executable,
    bad_input: &[u8],
    fault: &Fault,
    budget: u64,
    golden_good: &Execution,
    golden_bad: &Execution,
) -> FaultClass {
    let mut machine = Machine::new(exe, bad_input);
    for _ in 0..fault.step {
        if machine.step().is_err() {
            return FaultClass::ReplayDiverged;
        }
    }
    if machine.pc() != fault.pc {
        return FaultClass::ReplayDiverged;
    }
    match fault.effect {
        FaultEffect::SkipInstruction => {
            if machine.skip_instruction().is_err() {
                return FaultClass::Crashed;
            }
        }
        FaultEffect::FlipInstructionBit { byte, bit } => {
            let addr = fault.pc + byte as u64;
            let Some(&current) = machine.peek_bytes(addr, 1).and_then(|b| b.first()) else {
                return FaultClass::Crashed;
            };
            machine.poke_bytes(addr, &[current ^ (1 << bit)]);
        }
        FaultEffect::FlipRegisterBit { reg, bit } => {
            machine.set_reg(reg, machine.reg(reg) ^ (1u64 << bit));
        }
        FaultEffect::FlipFlags { mask } => {
            machine
                .set_flags(rr_isa::Flags::from_bits(machine.flags().to_bits() ^ u64::from(mask)));
        }
    }
    let result = machine.run(budget);
    let faulted =
        Execution { outcome: result.outcome, output: machine.take_output(), steps: result.steps };
    if faulted.same_behavior(golden_good) {
        FaultClass::Success
    } else if faulted.same_behavior(golden_bad) {
        FaultClass::Benign
    } else {
        match faulted.outcome {
            RunOutcome::Crashed { .. } => FaultClass::Crashed,
            RunOutcome::TimedOut => FaultClass::TimedOut,
            RunOutcome::Exited { .. } => FaultClass::Corrupted,
        }
    }
}

fn session(w: &Workload, config: CampaignConfig) -> CampaignSession {
    CampaignSession::builder(w.build().unwrap())
        .good_input(&w.good_input[..])
        .bad_input(&w.bad_input[..])
        .config(config)
        .build()
        .unwrap_or_else(|e| panic!("{}: session setup failed: {e}", w.name))
}

/// Asserts one session's report equals the reference, fault by fault.
fn assert_matches_reference(w: &Workload, s: &CampaignSession, model: &dyn FaultModel) {
    let exe = w.build().unwrap();
    let golden_good = execute(&exe, &w.good_input, 1_000_000);
    let golden_bad = execute(&exe, &w.bad_input, 1_000_000);
    let budget =
        (golden_bad.steps * s.config().faulted_step_multiplier).max(s.config().faulted_min_steps);
    let report: CampaignReport =
        s.run(&[model], Collect).pop().expect("one model in, one report out");
    // The singleton-plan campaign enumerates exactly the flat fault
    // list, in site order — the pre-refactor report shape — minus the
    // faults the default-on static pruning removed. Every pruned fault
    // must classify `Benign` under the reference implementation: the
    // reference is the ground truth the analysis claims to approximate.
    let pruning =
        if s.config().static_prune && !s.config().audit_analysis { s.analysis() } else { None };
    let mut expected_faults: Vec<Fault> = Vec::new();
    for site in s.sites().iter().step_by(s.config().site_stride.max(1)) {
        for fault in model.faults_at(site) {
            if pruning.is_some_and(|a| fault_verdict(a, &fault) == StaticVerdict::Benign) {
                let class =
                    reference_class(&exe, &w.bad_input, &fault, budget, &golden_good, &golden_bad);
                assert_eq!(
                    class,
                    FaultClass::Benign,
                    "{}/{}: statically-pruned {} is not dynamically benign",
                    w.name,
                    model.name(),
                    fault
                );
            } else {
                expected_faults.push(fault);
            }
        }
    }
    assert_eq!(report.results.len(), expected_faults.len(), "{}/{}", w.name, model.name());
    let mut summary_check = 0;
    for (result, fault) in report.results.iter().zip(&expected_faults) {
        assert_eq!(
            result.order(),
            1,
            "{}/{}: order-1 campaigns stay order 1",
            w.name,
            model.name()
        );
        assert_eq!(result.fault(), fault, "{}/{}: fault order changed", w.name, model.name());
        let expected =
            reference_class(&exe, &w.bad_input, fault, budget, &golden_good, &golden_bad);
        assert_eq!(
            result.class,
            expected,
            "{}/{}: {} diverged from the single-fault reference",
            w.name,
            model.name(),
            fault
        );
        if result.class == FaultClass::Success {
            summary_check += 1;
        }
    }
    assert_eq!(report.summary().success, summary_check, "summary agrees with per-fault classes");
}

#[test]
fn singleton_plans_match_the_single_fault_reference_everywhere() {
    for w in all_workloads() {
        for model in models() {
            let stride = stride_for(w.name, model.name());
            let s =
                session(&w, CampaignConfig { site_stride: stride, ..CampaignConfig::default() });
            assert_matches_reference(&w, &s, model.as_ref());
        }
    }
}

// Random engine/scheduling/plan-space knobs must never change a
// singleton classification: every configuration is compared against the
// independent single-fault reference, across all workloads and models.
proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(12))]

    #[test]
    fn singleton_plans_are_invariant_under_every_configuration(
        workload_index in 0usize..4,
        model_index in 0usize..4,
        naive_engine in proptest::arbitrary::any::<bool>(),
        bucketing in proptest::arbitrary::any::<bool>(),
        interleaved in proptest::arbitrary::any::<bool>(),
        threads in 0usize..5,
        extra_stride in 0usize..3,
        declare_order2 in proptest::arbitrary::any::<bool>(),
    ) {
        let w = &all_workloads()[workload_index];
        let model = &models()[model_index];
        let stride = stride_for(w.name, model.name()) * (1 + extra_stride) + extra_stride;
        // `declare_order2` opens the pair space with a zero-step window:
        // no pair qualifies, so results must still equal the singleton
        // reference — the plan machinery itself must not perturb them.
        let plan = if declare_order2 {
            PlanConfig { order: 2, policy: PairPolicy::WithinWindow { max_gap: 0 }, ..PlanConfig::default() }
        } else {
            PlanConfig::default()
        };
        let config = CampaignConfig {
            engine: if naive_engine { CampaignEngine::Naive } else { CampaignEngine::Checkpointed },
            bucketing,
            shard: if interleaved { ShardPolicy::Interleaved } else { ShardPolicy::Contiguous },
            threads,
            site_stride: stride,
            plan,
            ..CampaignConfig::default()
        };
        let s = session(w, config);
        assert_matches_reference(w, &s, model.as_ref());
    }
}

#[test]
fn bucketed_and_per_plan_order_two_campaigns_agree_on_every_workload() {
    for w in all_workloads() {
        let config = |bucketing| CampaignConfig {
            bucketing,
            site_stride: 2,
            plan: PlanConfig {
                order: 2,
                policy: PairPolicy::WithinWindow { max_gap: 8 },
                budget: Some(400),
                seed: 11,
            },
            ..CampaignConfig::default()
        };
        let bucketed = session(&w, config(true))
            .run(&[&InstructionSkip as &dyn FaultModel], Collect)
            .pop()
            .unwrap();
        let per_plan = session(&w, config(false))
            .run(&[&InstructionSkip as &dyn FaultModel], Collect)
            .pop()
            .unwrap();
        assert_eq!(bucketed.results, per_plan.results, "{}", w.name);
        // The naive engine agrees too — the full three-way equivalence.
        let naive = session(&w, CampaignConfig { engine: CampaignEngine::Naive, ..config(false) })
            .run(&[&InstructionSkip as &dyn FaultModel], Collect)
            .pop()
            .unwrap();
        assert_eq!(naive.results, bucketed.results, "{}", w.name);
    }
}

#[test]
fn sampled_plan_campaigns_reproduce_from_their_seed() {
    let w = rr_workloads::otp_check();
    let config = |seed| CampaignConfig {
        site_stride: 2,
        plan: PlanConfig {
            order: 2,
            policy: PairPolicy::WithinWindow { max_gap: 16 },
            budget: Some(100),
            seed,
        },
        ..CampaignConfig::default()
    };
    let run = |seed| {
        session(&w, config(seed))
            .run(&[&InstructionSkip as &dyn FaultModel], Collect)
            .pop()
            .unwrap()
    };
    let first = run(7);
    let second = run(7);
    assert_eq!(first.results, second.results, "same seed, same sampled campaign");
    let other = run(8);
    assert_ne!(
        first.results, other.results,
        "a different seed draws (and classifies) a different sample"
    );
    // Sampling only touches orders ≥ 2: the singleton prefix is stable.
    let singles = first.results.iter().filter(|r| r.order() == 1).count();
    assert_eq!(
        first.results[..singles],
        other.results[..singles],
        "order-1 results are sampling-independent"
    );
}
