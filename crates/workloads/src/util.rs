//! Shared assembly fragments and host-side helpers.

/// A zero-terminated-string printer, shared by all workloads.
///
/// Calling convention: pointer in `r6`; clobbers `r1` and `r6`; prints via
/// `svc 1`.
pub const PRINT_STR: &str = "\
print_str:
.ps_loop:
    loadb r1, [r6]
    cmp r1, 0
    je .ps_done
    svc 1
    add r6, 1
    jmp .ps_loop
.ps_done:
    ret
";

/// 64-bit FNV-1a — the hash the secure-bootloader workload computes in
/// assembly; this host-side twin produces the expected value embedded in
/// its data section.
///
/// # Example
///
/// ```
/// assert_eq!(rr_workloads::fnv1a_64(b""), 0xcbf29ce484222325);
/// ```
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_vectors() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv1a_is_sensitive_to_single_bits() {
        let a = fnv1a_64(b"boot image");
        let b = fnv1a_64(b"boot imagf");
        assert_ne!(a, b);
    }
}
