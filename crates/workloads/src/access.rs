//! Access-control state machine — an extra workload whose critical state
//! lives in memory (a `mov`/`store` attack surface).

use crate::util::PRINT_STR;
use crate::Workload;

const ADMIN_PIN: &[u8; 4] = b"8052";

/// Builds the access-control workload: a command loop where `a<pin>`
/// authenticates, `g` reveals the secret (requires prior authentication),
/// and `q` quits.
///
/// The privileged check reads an *in-memory* flag that was written by a
/// `store` — so the interesting fault targets here are the data moves the
/// paper's Table I pattern protects, not just the branches.
pub fn access_control() -> Workload {
    let source = format!(
        "\
; access — command-driven state machine with an in-memory auth flag.
;   'a' + 4-byte pin : authenticate
;   'g'              : print the secret (requires auth)
;   'q'              : quit (exit 0 if the secret was revealed, else 1)
    .global _start
    .text
_start:
    mov r8, auth_flag
    mov r1, 0
    store [r8], r1       ; auth_flag = 0
    mov r8, revealed
    store [r8], r1       ; revealed = 0
.next_cmd:
    svc 2
    cmp r0, -1
    je .quit
    cmp r0, 'a'
    je .do_auth
    cmp r0, 'g'
    je .do_get
    cmp r0, 'q'
    je .quit
    jmp .next_cmd

.do_auth:
    mov r8, pin_secret
    mov r9, 4
    mov r7, 0
.auth_loop:
    svc 2
    cmp r0, -1
    je .next_cmd
    loadb r2, [r8]
    xor r2, r0
    or r7, r2
    add r8, 1
    sub r9, 1
    cmp r9, 0
    jne .auth_loop
    cmp r7, 0
    jne .next_cmd
    mov r8, auth_flag
    mov r1, 1
    store [r8], r1       ; auth_flag = 1
    jmp .next_cmd

.do_get:
    mov r8, auth_flag
    load r1, [r8]
    cmp r1, 1
    jne .denied
    mov r6, msg_secret
    call print_str
    mov r8, revealed
    mov r1, 1
    store [r8], r1
    jmp .next_cmd
.denied:
    mov r6, msg_denied
    call print_str
    jmp .next_cmd

.quit:
    mov r8, revealed
    load r2, [r8]
    cmp r2, 1
    je .quit_ok
    mov r1, 1
    svc 0
.quit_ok:
    mov r1, 0
    svc 0

{PRINT_STR}
    .rodata
msg_secret:
    .asciiz \"SECRET: 42\\n\"
msg_denied:
    .asciiz \"DENIED\\n\"
pin_secret:
    .ascii \"{pin}\"
    .bss
auth_flag:
    .space 8
revealed:
    .space 8
",
        pin = std::str::from_utf8(ADMIN_PIN).expect("pin is ASCII"),
    );
    let mut good_input = vec![b'a'];
    good_input.extend_from_slice(ADMIN_PIN);
    good_input.extend_from_slice(b"gq");
    Workload {
        name: "access",
        description: "reveal the secret only after authenticating with the admin pin",
        source,
        good_input,
        bad_input: b"gq".to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_emu::{execute, RunOutcome};

    #[test]
    fn authentication_gates_the_secret() {
        let w = access_control();
        let exe = w.build().unwrap();

        let good = execute(&exe, &w.good_input, 200_000);
        assert_eq!(good.outcome, RunOutcome::Exited { code: 0 });
        assert_eq!(good.output, b"SECRET: 42\n");

        let bad = execute(&exe, &w.bad_input, 200_000);
        assert_eq!(bad.outcome, RunOutcome::Exited { code: 1 });
        assert_eq!(bad.output, b"DENIED\n");
    }

    #[test]
    fn wrong_pin_does_not_authenticate() {
        let w = access_control();
        let exe = w.build().unwrap();
        let run = execute(&exe, b"a0000gq", 200_000);
        assert_eq!(run.outcome, RunOutcome::Exited { code: 1 });
        assert_eq!(run.output, b"DENIED\n");
    }

    #[test]
    fn auth_then_multiple_gets() {
        let w = access_control();
        let exe = w.build().unwrap();
        let run = execute(&exe, b"a8052ggq", 200_000);
        assert_eq!(run.outcome, RunOutcome::Exited { code: 0 });
        assert_eq!(run.output, b"SECRET: 42\nSECRET: 42\n");
    }

    #[test]
    fn unknown_commands_are_ignored() {
        let w = access_control();
        let exe = w.build().unwrap();
        let run = execute(&exe, b"zzza8052gq", 200_000);
        assert_eq!(run.outcome, RunOutcome::Exited { code: 0 });
    }

    #[test]
    fn eof_without_reveal_exits_1() {
        let w = access_control();
        let exe = w.build().unwrap();
        let run = execute(&exe, b"", 200_000);
        assert_eq!(run.outcome, RunOutcome::Exited { code: 1 });
    }
}
