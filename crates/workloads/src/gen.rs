//! Deterministic input generation for campaigns and tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `len` pseudo-random bytes from `seed` (deterministic across runs).
pub fn random_bytes(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen()).collect()
}

/// Derives bad inputs from a known-good input: every single-byte
/// perturbation position (up to the input length) plus `count` random
/// same-length inputs. All returned inputs differ from `good`.
pub fn random_bad_inputs(good: &[u8], count: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for i in 0..good.len() {
        let mut v = good.to_vec();
        v[i] = v[i].wrapping_add(1 + rng.gen_range(0..254u8));
        if v != good {
            out.push(v);
        }
    }
    while out.len() < good.len() + count {
        let v: Vec<u8> = (0..good.len()).map(|_| rng.gen()).collect();
        if v != good {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_bytes_is_deterministic() {
        assert_eq!(random_bytes(16, 7), random_bytes(16, 7));
        assert_ne!(random_bytes(16, 7), random_bytes(16, 8));
    }

    #[test]
    fn bad_inputs_never_equal_good() {
        let good = b"1234".to_vec();
        let bads = random_bad_inputs(&good, 10, 1);
        assert_eq!(bads.len(), good.len() + 10);
        for b in &bads {
            assert_ne!(b, &good);
            assert_eq!(b.len(), good.len());
        }
    }
}
