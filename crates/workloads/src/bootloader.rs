//! The secure-bootloader case study (paper §V-C, second application).

use crate::util::{fnv1a_64, PRINT_STR};
use crate::{gen, Workload};

/// Size of the boot image the loader verifies.
pub const IMAGE_SIZE: usize = 32;

/// Builds the secure-bootloader workload: read an `IMAGE_SIZE`-byte (32)
/// boot
/// image, hash it (FNV-1a 64, computed in assembly with `xor`/`mul`), and
/// compare against the expected hash stored in `.data`.
///
/// The decision is a single `cmp r1, [r2]` + `jne` — the `cmp`-with-memory
/// shape of the paper's Table II protection pattern.
pub fn bootloader() -> Workload {
    let image = gen::random_bytes(IMAGE_SIZE, 0xB001_10AD);
    let expected = fnv1a_64(&image);
    let source = format!(
        "\
; secure bootloader — verifies an FNV-1a-64 hash of the boot image read
; from input before \"booting\" it.
    .global _start
    .text
_start:
    mov r8, image_buf
    mov r9, {size}
.read_loop:
    svc 2
    cmp r0, -1
    je .boot_fail
    storeb [r8], r0
    add r8, 1
    sub r9, 1
    cmp r9, 0
    jne .read_loop

    ; r1 = fnv1a_64(image_buf[0..{size}])
    mov r1, 0xcbf29ce484222325
    mov r4, 0x100000001b3
    mov r2, image_buf
    mov r3, {size}
.hash_loop:
    loadb r5, [r2]
    xor r1, r5
    mul r1, r4
    add r2, 1
    sub r3, 1
    cmp r3, 0
    jne .hash_loop

    mov r2, expected_hash
    cmp r1, [r2]
    jne .boot_fail

.boot_ok:
    mov r6, msg_ok
    call print_str
    mov r1, 0
    svc 0

.boot_fail:
    mov r6, msg_fail
    call print_str
    mov r1, 1
    svc 0

{PRINT_STR}
    .rodata
msg_ok:
    .asciiz \"BOOT OK\\n\"
msg_fail:
    .asciiz \"BOOT FAIL\\n\"
    .data
expected_hash:
    .quad 0x{expected:016x}
    .bss
image_buf:
    .space {size}
",
        size = IMAGE_SIZE,
    );
    let mut bad_input = image.clone();
    bad_input[IMAGE_SIZE / 2] ^= 0x01; // single-bit image tamper
    Workload {
        name: "bootloader",
        description: "boot iff the FNV-1a-64 hash of the input image matches the stored hash",
        source,
        good_input: image,
        bad_input,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_emu::{execute, RunOutcome};

    #[test]
    fn boots_only_the_genuine_image() {
        let w = bootloader();
        let exe = w.build().unwrap();
        let good = execute(&exe, &w.good_input, 200_000);
        assert_eq!(good.outcome, RunOutcome::Exited { code: 0 });
        assert_eq!(good.output, b"BOOT OK\n");

        let bad = execute(&exe, &w.bad_input, 200_000);
        assert_eq!(bad.outcome, RunOutcome::Exited { code: 1 });
        assert_eq!(bad.output, b"BOOT FAIL\n");
    }

    #[test]
    fn truncated_image_fails() {
        let w = bootloader();
        let exe = w.build().unwrap();
        let run = execute(&exe, &w.good_input[..IMAGE_SIZE - 1], 200_000);
        assert_eq!(run.outcome, RunOutcome::Exited { code: 1 });
    }

    #[test]
    fn assembly_hash_matches_host_hash() {
        // The good input is accepted precisely because the in-VM FNV-1a
        // agrees with the host implementation used to precompute the
        // expected value; a second image double-checks by failing.
        let w = bootloader();
        let exe = w.build().unwrap();
        let other = gen::random_bytes(IMAGE_SIZE, 999);
        assert_ne!(fnv1a_64(&other), fnv1a_64(&w.good_input));
        let run = execute(&exe, &other, 200_000);
        assert_eq!(run.outcome, RunOutcome::Exited { code: 1 });
    }
}
