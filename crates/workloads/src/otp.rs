//! OTP verifier — an extra workload with a *single* decision point.

use crate::util::PRINT_STR;
use crate::Workload;

const OTP_SECRET: &[u8; 6] = b"492816";

/// Builds the OTP workload: read a 6-digit one-time password and accept it
/// iff it equals the stored code.
///
/// Unlike [`crate::pincheck`], the comparison accumulates differences with
/// `xor`/`or` and decides with **one** `cmp`/`jne` at the end — the
/// constant-time idiom. This concentrates the attack surface on a single
/// conditional branch, which makes it a sharp test for the
/// conditional-branch hardening pass.
pub fn otp_check() -> Workload {
    let source = format!(
        "\
; otp — constant-time-style comparison with one final decision branch.
    .global _start
    .text
_start:
    mov r7, 0            ; difference accumulator
    mov r8, otp_secret
    mov r9, 6
.loop:
    svc 2
    cmp r0, -1
    je .short_input
    loadb r2, [r8]
    xor r2, r0
    or r7, r2
    add r8, 1
    sub r9, 1
    cmp r9, 0
    jne .loop
    cmp r7, 0
    jne .reject
.accept:
    mov r6, msg_ok
    call print_str
    mov r1, 0
    svc 0
.short_input:
.reject:
    mov r6, msg_no
    call print_str
    mov r1, 1
    svc 0

{PRINT_STR}
    .rodata
msg_ok:
    .asciiz \"OTP OK\\n\"
msg_no:
    .asciiz \"OTP REJECTED\\n\"
otp_secret:
    .ascii \"{otp}\"
",
        otp = std::str::from_utf8(OTP_SECRET).expect("otp is ASCII"),
    );
    Workload {
        name: "otp",
        description: "accept iff the 6-digit input equals the stored one-time password",
        source,
        good_input: OTP_SECRET.to_vec(),
        bad_input: b"000000".to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_emu::{execute, execute_traced, RunOutcome};

    #[test]
    fn accepts_only_the_code() {
        let w = otp_check();
        let exe = w.build().unwrap();
        assert_eq!(execute(&exe, &w.good_input, 100_000).outcome, RunOutcome::Exited { code: 0 });
        for bad in [&b"492817"[..], b"592816", b"49281", b""] {
            assert_eq!(
                execute(&exe, bad, 100_000).outcome,
                RunOutcome::Exited { code: 1 },
                "{bad:?}"
            );
        }
    }

    #[test]
    fn comparison_is_input_independent_in_length() {
        // The xor/or accumulation runs the full loop regardless of where
        // the first mismatch occurs (same trace length for full-length bad
        // inputs).
        let w = otp_check();
        let exe = w.build().unwrap();
        let (_, t1) = execute_traced(&exe, b"000000", 100_000);
        let (_, t2) = execute_traced(&exe, b"492810", 100_000);
        assert_eq!(t1.len(), t2.len());
    }
}
