//! # rr-workloads — the case-study programs
//!
//! The paper evaluates its two hardening approaches on a **pincheck**
//! program and a **secure bootloader**; this crate provides both, written
//! in RRVM assembly, plus two extra security-decision workloads (an OTP
//! verifier and a small access-control state machine) used for wider test
//! and benchmark coverage.
//!
//! Every workload follows the faulter's contract from §IV-B of the paper:
//! it consumes an input (the *pin*, the *boot image*, …) and makes an
//! attacker-relevant decision — some inputs are **good** (access granted /
//! boot proceeds) and all others are **bad**. A fault is *successful* when
//! a run on a bad input behaves like a good run.
//!
//! ## Example
//!
//! ```
//! use rr_workloads::pincheck;
//! use rr_emu::{execute, RunOutcome};
//!
//! let w = pincheck();
//! let exe = w.build()?;
//! let good = execute(&exe, &w.good_input, 100_000);
//! assert_eq!(good.outcome, RunOutcome::Exited { code: 0 });
//! let bad = execute(&exe, &w.bad_input, 100_000);
//! assert_eq!(bad.outcome, RunOutcome::Exited { code: 1 });
//! # Ok::<(), rr_asm::BuildError>(())
//! ```

#![forbid(unsafe_code)]

mod access;
mod bootloader;
mod gen;
mod otp;
mod pincheck;
mod util;

pub use access::access_control;
pub use bootloader::bootloader;
pub use gen::{random_bad_inputs, random_bytes};
pub use otp::otp_check;
pub use pincheck::pincheck;
pub use util::{fnv1a_64, PRINT_STR};

use rr_asm::BuildError;
use rr_obj::Executable;

/// A self-contained fault-injection target: assembly source plus the
/// good/bad input pair the faulter compares behaviours against.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short identifier (`"pincheck"`, `"bootloader"`, …).
    pub name: &'static str,
    /// One-line description of the security decision the program makes.
    pub description: &'static str,
    /// RRVM assembly source of the program.
    pub source: String,
    /// An input for which access is granted (exit code 0).
    pub good_input: Vec<u8>,
    /// An input for which access is denied (exit code 1).
    pub bad_input: Vec<u8>,
}

impl Workload {
    /// Assembles and links the workload into an executable.
    ///
    /// # Errors
    ///
    /// Propagates assembler/linker failures; the bundled workloads always
    /// build.
    pub fn build(&self) -> Result<Executable, BuildError> {
        rr_asm::assemble_and_link(&self.source)
    }

    /// Additional *bad* inputs derived from the good one (single-byte
    /// perturbations plus `count` random inputs of the same length),
    /// suitable for cross-checking that a patch did not change the
    /// deny-path behaviour.
    pub fn more_bad_inputs(&self, count: usize, seed: u64) -> Vec<Vec<u8>> {
        gen::random_bad_inputs(&self.good_input, count, seed)
    }
}

/// All bundled workloads, case studies first.
pub fn all_workloads() -> Vec<Workload> {
    vec![pincheck(), bootloader(), otp_check(), access_control()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_emu::{execute, RunOutcome};

    #[test]
    fn every_workload_builds_and_discriminates() {
        for w in all_workloads() {
            let exe = w.build().unwrap_or_else(|e| panic!("{} build failed: {e}", w.name));
            let good = execute(&exe, &w.good_input, 200_000);
            assert_eq!(
                good.outcome,
                RunOutcome::Exited { code: 0 },
                "{}: good input must be accepted (output: {:?})",
                w.name,
                String::from_utf8_lossy(&good.output),
            );
            let bad = execute(&exe, &w.bad_input, 200_000);
            assert_eq!(
                bad.outcome,
                RunOutcome::Exited { code: 1 },
                "{}: bad input must be denied (output: {:?})",
                w.name,
                String::from_utf8_lossy(&bad.output),
            );
            assert_ne!(good.output, bad.output, "{}: outputs must differ", w.name);
        }
    }

    #[test]
    fn derived_bad_inputs_are_denied() {
        // Only for workloads whose decision is pure input equality; the
        // stateful `access` workload can accept perturbed command tails.
        for w in [pincheck(), bootloader(), otp_check()] {
            let exe = w.build().unwrap();
            for input in w.more_bad_inputs(5, 42) {
                let run = execute(&exe, &input, 200_000);
                assert_eq!(
                    run.outcome,
                    RunOutcome::Exited { code: 1 },
                    "{}: derived bad input {:?} was not denied",
                    w.name,
                    input
                );
            }
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for w in all_workloads() {
            let exe = w.build().unwrap();
            let a = execute(&exe, &w.good_input, 200_000);
            let b = execute(&exe, &w.good_input, 200_000);
            assert_eq!(a, b, "{} must be deterministic", w.name);
        }
    }
}
