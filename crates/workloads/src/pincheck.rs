//! The pincheck case study (paper §V-C, first application).

use crate::util::PRINT_STR;
use crate::Workload;

const SECRET_PIN: &[u8; 4] = b"7391";

/// Builds the pincheck workload: read a 4-digit pin from input, verify it
/// with a `check_pin` routine, and branch on the returned flag.
///
/// The program has the classic fault-vulnerable shape the paper's intro
/// describes: the verification result flows through one register and one
/// `cmp`/`jne` pair, so a single skipped or corrupted instruction at the
/// decision point grants access — and with a bad pin that differs from the
/// secret in a single digit, skipping the per-byte `jne` inside the loop
/// does too.
pub fn pincheck() -> Workload {
    let source = format!(
        "\
; pincheck — reads 4 pin bytes, verifies via check_pin, branches once.
; exit 0 + \"ACCESS GRANTED\" on match, exit 1 + \"ACCESS DENIED\" otherwise.
    .global _start
    .text
_start:
    mov r8, pin_buf
    mov r9, 4
.read_loop:
    svc 2
    cmp r0, -1
    je .deny
    storeb [r8], r0
    add r8, 1
    sub r9, 1
    cmp r9, 0
    jne .read_loop

    call check_pin
    cmp r0, 1
    jne .deny

.grant:
    mov r6, msg_grant
    call print_str
    mov r1, 0
    svc 0

.deny:
    mov r6, msg_deny
    call print_str
    mov r1, 1
    svc 0

; check_pin: r0 = 1 iff pin_buf matches secret, else 0.
check_pin:
    mov r8, pin_buf
    mov r10, secret
    mov r9, 4
.cp_loop:
    loadb r1, [r8]
    loadb r2, [r10]
    cmp r1, r2
    jne .cp_fail
    add r8, 1
    add r10, 1
    sub r9, 1
    cmp r9, 0
    jne .cp_loop
    mov r0, 1
    ret
.cp_fail:
    mov r0, 0
    ret

{PRINT_STR}
    .rodata
msg_grant:
    .asciiz \"ACCESS GRANTED\\n\"
msg_deny:
    .asciiz \"ACCESS DENIED\\n\"
secret:
    .ascii \"{pin}\"
    .bss
pin_buf:
    .space 8
",
        pin = std::str::from_utf8(SECRET_PIN).expect("pin is ASCII"),
    );
    Workload {
        name: "pincheck",
        description: "grant access iff the 4-digit input pin matches the stored secret",
        source,
        good_input: SECRET_PIN.to_vec(),
        // One digit off — maximizes the attack surface: a single skipped
        // byte-compare branch already flips the decision.
        bad_input: b"7291".to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_emu::{execute, RunOutcome};

    #[test]
    fn grants_only_the_secret() {
        let w = pincheck();
        let exe = w.build().unwrap();
        let good = execute(&exe, &w.good_input, 100_000);
        assert_eq!(good.outcome, RunOutcome::Exited { code: 0 });
        assert_eq!(good.output, b"ACCESS GRANTED\n");

        // Note: input *longer* than 4 bytes with a matching prefix is
        // granted — the program only consumes 4 bytes, like a read from
        // stdin would.
        for bad in [&b"7390"[..], b"7291", b"0000", b"739", b""] {
            let run = execute(&exe, bad, 100_000);
            assert_eq!(run.outcome, RunOutcome::Exited { code: 1 }, "{bad:?}");
            assert_eq!(run.output, b"ACCESS DENIED\n", "{bad:?}");
        }
    }

    #[test]
    fn prefix_of_secret_is_denied() {
        // Shares 3 bytes with the secret — exercises the late loop exit.
        let w = pincheck();
        let exe = w.build().unwrap();
        let run = execute(&exe, b"7399", 100_000);
        assert_eq!(run.outcome, RunOutcome::Exited { code: 1 });
    }
}
