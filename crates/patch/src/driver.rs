//! The Faulter+Patcher fixed-point loop (paper Fig. 2).

use crate::patterns::{apply_patterns, PatchStats};
use rr_asm::BuildError;
use rr_disasm::{DisasmError, ListingDelta, SymbolizationPolicy};
use rr_emu::{execute, Execution};
use rr_fault::{
    CampaignConfig, CampaignEngine, CampaignError, CampaignReport, CampaignSeed, CampaignSession,
    Collect, FaultModel, ReuseStats, Summary,
};
use rr_obj::Executable;
use rr_telemetry::{MetricsSnapshot, Telemetry};
use std::fmt;
use std::sync::Arc;

/// Configuration of the hardening loop.
#[derive(Debug, Clone)]
pub struct HardenConfig {
    /// Maximum faulter+patcher iterations before giving up.
    pub max_iterations: usize,
    /// Symbolization policy for the disassembly step.
    pub policy: SymbolizationPolicy,
    /// Campaign settings (step budgets, threads, shard policy).
    pub campaign: CampaignConfig,
    /// Run campaigns in parallel.
    pub parallel: bool,
    /// Campaign execution engine. The default checkpointed engine makes
    /// every faulter iteration ~√T cheaper on a `T`-step trace while
    /// classifying identically to the naive engine.
    pub engine: CampaignEngine,
    /// Incremental re-campaigning (**on by default**): after every
    /// rewrite, compute the [`ListingDelta`] of the patch and seed the
    /// next campaign session with the prior classifications
    /// ([`rr_fault::CampaignSessionBuilder::seed_from`]). Sites the patch
    /// provably left alone reuse their prior [`rr_fault::FaultClass`]
    /// without executing anything; only the touched trace region is
    /// re-run (and re-snapshotted). Classifications are bit-identical to
    /// full re-campaigning — the invariance test suite pins it across
    /// every workload × fault model — and [`LoopOutcome::sites_reused`]
    /// reports the work saved. Disable (`rr harden --no-incremental`)
    /// only to measure the unseeded baseline.
    pub incremental: bool,
    /// Maximum injections per evaluated plan (≥ 1). At order `k` every
    /// campaign in the loop evaluates all plans of 1..=k injections the
    /// pair policy admits, the patcher protects every program point
    /// involved in a successful plan, and the loop iterates until no
    /// order-≤k `Success` remains or `max_iterations` is hit.
    pub fault_order: usize,
    /// Maximum step gap between consecutive injections of a multi-fault
    /// plan ([`rr_fault::PairPolicy::WithinWindow`]); `None` = unbounded
    /// pairing ([`rr_fault::PairPolicy::Pairs`]).
    pub pair_window: Option<u64>,
    /// Cap on enumerated plans per model per order above 1, sampled
    /// deterministically from [`HardenConfig::sample_seed`] when the
    /// exhaustive space is larger; `None` = exhaustive.
    pub plan_budget: Option<usize>,
    /// Seed for budgeted plan sampling — fix it to make sampled
    /// multi-fault hardening runs reproducible.
    pub sample_seed: u64,
    /// Telemetry handle attached to every campaign session the loop
    /// builds. The default disabled handle costs nothing; pass
    /// [`Telemetry::counters`] or [`Telemetry::timed`] to collect
    /// per-iteration metrics ([`LoopOutcome::iteration_metrics`]) and a
    /// whole-loop snapshot ([`LoopOutcome::metrics`]).
    pub telemetry: Telemetry,
}

impl Default for HardenConfig {
    fn default() -> Self {
        HardenConfig {
            max_iterations: 10,
            policy: SymbolizationPolicy::DataAccessRefined,
            campaign: CampaignConfig::default(),
            parallel: true,
            engine: CampaignEngine::default(),
            incremental: true,
            fault_order: 1,
            pair_window: None,
            plan_budget: None,
            sample_seed: 0,
            telemetry: Telemetry::default(),
        }
    }
}

/// One iteration of the loop, for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationReport {
    /// 0-based iteration index.
    pub iteration: usize,
    /// Vulnerabilities (successful faults) found by the campaign.
    pub vulnerabilities: usize,
    /// Distinct vulnerable program points.
    pub vulnerable_sites: usize,
    /// Patch application outcome.
    pub stats: PatchStats,
    /// Code size after this iteration's patch, in bytes.
    pub code_size: u64,
    /// Per-class counts of this iteration's campaign — the full
    /// classification signature, for comparing incremental and full
    /// re-campaign runs.
    pub summary: Summary,
}

/// Result of running the loop to a fixed point.
#[derive(Debug, Clone)]
pub struct LoopOutcome {
    /// The original binary's code size in bytes.
    pub original_code_size: u64,
    /// The hardened binary.
    pub hardened: Executable,
    /// Per-iteration reports, in order.
    pub iterations: Vec<IterationReport>,
    /// `true` when the final campaign found no *fixable* vulnerabilities
    /// left (the paper's "no more faults are present or can be fixed").
    pub fixed_point: bool,
    /// Successful plans remaining against the final binary, all orders.
    pub residual_vulnerabilities: usize,
    /// Residual successful plans split by plan order: index `k` holds
    /// the order-`k+1` count, up to [`HardenConfig::fault_order`]. An
    /// order-2 run that drove the singles to zero but not the pairs
    /// reports `[0, n]`.
    pub residual_by_order: Vec<usize>,
    /// Campaign sessions built across the whole loop (including the
    /// final re-measurement ones).
    pub campaigns: usize,
    /// Good-input golden executions those sessions performed. Always 1:
    /// the first session runs the good input once, and every later
    /// session reuses that behaviour as a trusted golden
    /// ([`rr_fault::CampaignSessionBuilder::golden_good`]) — sound
    /// because each patch is verified to preserve both golden behaviours
    /// before the next campaign.
    pub golden_good_runs: usize,
    /// Fault evaluations served from carried-over classifications across
    /// the whole loop ([`HardenConfig::incremental`]); 0 for full
    /// re-campaigning.
    pub sites_reused: usize,
    /// Fault evaluations that actually replayed and executed.
    pub sites_replayed: usize,
    /// Whole-loop metrics snapshot, taken after the final campaign;
    /// `None` when [`HardenConfig::telemetry`] is disabled.
    pub metrics: Option<MetricsSnapshot>,
    /// Per-iteration metrics deltas: one entry per faulter campaign the
    /// loop ran, in order (the final fixed-point campaign included, so
    /// this can be one longer than [`LoopOutcome::iterations`]; the
    /// post-loop re-measurement campaigns are only reflected in
    /// [`LoopOutcome::metrics`]). Empty when telemetry is disabled.
    pub iteration_metrics: Vec<MetricsSnapshot>,
}

impl LoopOutcome {
    /// Code-size overhead of the hardened binary in percent — the
    /// Faulter+Patcher column of the paper's Table V.
    pub fn overhead_percent(&self) -> f64 {
        let original = self.original_code_size as f64;
        (self.hardened.code_size() as f64 - original) / original * 100.0
    }
}

/// Why hardening failed.
#[derive(Debug)]
pub enum HardenError {
    /// The initial campaign could not be set up.
    Campaign(CampaignError),
    /// The binary could not be disassembled.
    Disasm(DisasmError),
    /// A patched listing failed to reassemble.
    Rebuild(BuildError),
    /// A patch changed the program's behaviour on the golden inputs —
    /// the rewrite was unsound.
    BehaviorChanged {
        /// Iteration at which the divergence appeared.
        iteration: usize,
    },
}

impl fmt::Display for HardenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HardenError::Campaign(e) => write!(f, "campaign setup failed: {e}"),
            HardenError::Disasm(e) => write!(f, "disassembly failed: {e}"),
            HardenError::Rebuild(e) => write!(f, "reassembly failed: {e}"),
            HardenError::BehaviorChanged { iteration } => {
                write!(f, "patch changed golden behaviour at iteration {iteration}")
            }
        }
    }
}

impl std::error::Error for HardenError {}

impl From<CampaignError> for HardenError {
    fn from(e: CampaignError) -> Self {
        HardenError::Campaign(e)
    }
}

impl From<DisasmError> for HardenError {
    fn from(e: DisasmError) -> Self {
        HardenError::Disasm(e)
    }
}

impl From<BuildError> for HardenError {
    fn from(e: BuildError) -> Self {
        HardenError::Rebuild(e)
    }
}

/// Golden-run state carried across the loop's campaign sessions: the
/// `Arc`-shared inputs (derived once) and, after the first session, the
/// trusted golden-good behaviour every later session reuses plus the
/// original binary's golden-bad behaviour (the soundness reference).
/// In incremental mode it also carries the prior session's
/// classifications and the listing delta pointing at the next binary.
#[derive(Debug)]
struct SessionSeed {
    good: Arc<[u8]>,
    bad: Arc<[u8]>,
    golden_good: Option<Execution>,
    golden_bad: Option<Execution>,
    campaigns: usize,
    golden_good_runs: usize,
    reuse: ReuseStats,
    carry: Option<IncrementalCarry>,
}

/// What one finished campaign hands to the next in incremental mode.
#[derive(Debug)]
struct IncrementalCarry {
    /// The finished session's trace + classifications.
    seed: CampaignSeed,
    /// The rewrite separating that session's binary from the carry's
    /// target binary (identity until a patch retargets it).
    delta: ListingDelta,
    /// Text bytes of the target binary — the carry only seeds a campaign
    /// on exactly that binary (the loop can re-measure older iterates,
    /// which must re-campaign in full).
    text: Vec<u8>,
}

/// The simulation-driven, iterative hardening driver (paper Fig. 2):
/// faulter → patcher → reassemble → faulter … until no fixable
/// vulnerability remains.
#[derive(Debug, Clone, Default)]
pub struct FaulterPatcher {
    config: HardenConfig,
}

impl FaulterPatcher {
    /// Creates a driver with the given configuration.
    pub fn new(config: HardenConfig) -> FaulterPatcher {
        FaulterPatcher { config }
    }

    /// Current metrics of the driver's [`HardenConfig::telemetry`]
    /// handle; `None` when telemetry is disabled.
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        self.config.telemetry.metrics()
    }

    /// Campaign settings with `parallel: false` honoured (a single
    /// worker thread evaluates inline), the engine choice passed
    /// down — so naive-engine hardening loops skip snapshot recording
    /// and its memory cost — and the multi-fault plan space derived from
    /// [`HardenConfig::fault_order`]/`pair_window`/`plan_budget`.
    fn campaign_config(&self) -> CampaignConfig {
        let mut config = self.config.campaign.clone();
        if !self.config.parallel {
            config.threads = 1;
        }
        config.engine = self.config.engine;
        config.plan = rr_fault::PlanConfig {
            order: self.config.fault_order.max(1),
            policy: match self.config.pair_window {
                Some(max_gap) => rr_fault::PairPolicy::WithinWindow { max_gap },
                None => rr_fault::PairPolicy::Pairs,
            },
            budget: self.config.plan_budget,
            seed: self.config.sample_seed,
        };
        config
    }

    /// Builds one campaign session on `exe`, reusing the seed's trusted
    /// golden-good behaviour when one is available — and, in incremental
    /// mode, the prior session's classifications when the carry targets
    /// exactly this binary — and runs `model`.
    fn campaign(
        &self,
        exe: &Executable,
        seed: &mut SessionSeed,
        model: &dyn FaultModel,
    ) -> Result<CampaignReport, CampaignError> {
        let mut builder = CampaignSession::builder(exe.clone())
            .good_input(seed.good.clone())
            .bad_input(seed.bad.clone())
            .config(self.campaign_config())
            .telemetry(self.config.telemetry.clone());
        if let Some(golden) = seed.golden_good.clone() {
            builder = builder.golden_good(golden);
        }
        if let Some(carry) = seed.carry.take() {
            if carry.text == exe.text_bytes() {
                builder = builder.seed_from(carry.seed, &carry.delta);
            }
        }
        let session = builder.build()?;
        seed.campaigns += 1;
        if !session.reused_golden_good() {
            seed.golden_good_runs += 1;
        }
        seed.golden_good = session.golden_good().cloned();
        if seed.golden_bad.is_none() {
            seed.golden_bad = Some(session.golden_bad().clone());
        }
        let report = session.run(&[model], Collect).pop().expect("one model in, one report out");
        seed.reuse = seed.reuse.merge(session.reuse_stats());
        if self.config.incremental {
            // Until a patch retargets it (with the real listing delta),
            // the carry covers re-campaigning this same binary — e.g. the
            // loop's final re-measurement passes — with full reuse.
            seed.carry = Some(IncrementalCarry {
                seed: session.seed(std::slice::from_ref(&report)),
                delta: ListingDelta::identity(),
                text: exe.text_bytes().to_vec(),
            });
        }
        Ok(report)
    }

    /// Hardens `exe` against `model` using the good/bad input pair as the
    /// behaviour oracle.
    ///
    /// # Errors
    ///
    /// See [`HardenError`]. In particular, every intermediate binary is
    /// verified to behave identically to the original on both inputs; an
    /// unsound patch aborts the loop.
    pub fn harden(
        &self,
        exe: &Executable,
        good_input: &[u8],
        bad_input: &[u8],
        model: &dyn FaultModel,
    ) -> Result<LoopOutcome, HardenError> {
        let original_code_size = exe.code_size();
        // Inputs are derived into `Arc`s once and shared by every
        // session the loop builds.
        let mut seed = SessionSeed {
            good: good_input.into(),
            bad: bad_input.into(),
            golden_good: None,
            golden_bad: None,
            campaigns: 0,
            golden_good_runs: 0,
            reuse: ReuseStats::default(),
            carry: None,
        };
        let golden_max_steps = self.config.campaign.golden_max_steps;

        let mut current = exe.clone();
        let mut iterations = Vec::new();
        let mut iteration_metrics = Vec::new();
        let mut metrics_mark = self.metrics().unwrap_or_default();
        let mut fixed_point = false;
        // Patching can oscillate under models like single-bit-flip: every
        // inserted pattern carries fresh flippable encodings. Each iterate
        // is a verified hardened binary, so the loop keeps the *least
        // vulnerable* one seen (never the unpatched original).
        let mut best: Option<(Executable, usize)> = None;

        for iteration in 0..self.config.max_iterations {
            let report = self.campaign(&current, &mut seed, model)?;
            if let Some(total) = self.metrics() {
                iteration_metrics.push(total.delta_since(&metrics_mark));
                metrics_mark = total;
            }
            // Soundness references: the golden behaviours every patched
            // iterate must preserve, taken from the first session's
            // golden pass (on the original binary).
            let golden_good = seed.golden_good.clone().expect("golden-pair session ran");
            let golden_bad = seed.golden_bad.clone().expect("golden-pair session ran");
            let vulnerable = report.vulnerable_pcs();
            if iteration > 0 && best.as_ref().is_none_or(|(_, s)| vulnerable.len() < *s) {
                best = Some((current.clone(), vulnerable.len()));
            }
            if vulnerable.is_empty() {
                fixed_point = true;
                break;
            }

            let disasm = rr_disasm::disassemble_with(&current, self.config.policy)?;
            let pre_patch =
                if self.config.incremental { Some(disasm.listing.clone()) } else { None };
            let mut listing = disasm.listing;
            let stats = apply_patterns(&mut listing, &vulnerable);
            let made_progress = !stats.patched.is_empty();
            let rebuilt = rr_asm::assemble_and_link(&listing.to_source())?;

            // Soundness check: golden behaviour must be preserved. (This
            // is also what licenses reusing the golden-good behaviour in
            // the next iteration's session.)
            let good_now = execute(&rebuilt, good_input, golden_max_steps);
            let bad_now = execute(&rebuilt, bad_input, golden_max_steps);
            if !good_now.same_behavior(&golden_good) || !bad_now.same_behavior(&golden_bad) {
                return Err(HardenError::BehaviorChanged { iteration });
            }

            // Retarget the carry at the patched binary: the next campaign
            // reuses this iteration's classifications through the
            // listing delta of the patch. A delta failure (the listing
            // does not describe the rebuilt layout) degrades to a full
            // re-campaign instead of failing the loop.
            if let (Some(pre_patch), Some(carry)) = (pre_patch, seed.carry.as_mut()) {
                match ListingDelta::compute(&pre_patch, &current, &listing, &rebuilt) {
                    Ok(delta) => {
                        carry.delta = delta;
                        carry.text = rebuilt.text_bytes().to_vec();
                    }
                    Err(_) => seed.carry = None,
                }
            }

            iterations.push(IterationReport {
                iteration,
                vulnerabilities: report.vulnerabilities().len(),
                vulnerable_sites: vulnerable.len(),
                stats,
                code_size: rebuilt.code_size(),
                summary: report.summary(),
            });
            current = rebuilt;

            if !made_progress {
                // Only unpatchable vulnerabilities remain: the paper's
                // "…or can be fixed" exit.
                break;
            }
        }

        // Evaluate the final binary if we exited by progress stall or
        // iteration cap rather than a clean campaign, then keep the best
        // iterate overall.
        let order = self.config.fault_order.max(1);
        let (hardened, residual, residual_by_order) = if fixed_point {
            (current, 0, vec![0; order])
        } else {
            let report = self.campaign(&current, &mut seed, model)?;
            let final_sites = report.vulnerable_pcs().len();
            if best.as_ref().is_none_or(|(_, s)| final_sites < *s) {
                best = Some((current, final_sites));
            }
            let (hardened, sites) = best.expect("at least the final binary is a candidate");
            // The site count is distinct program points; residual counts
            // individual successful plans at those points, so re-measure
            // on the selected binary.
            let report = self.campaign(&hardened, &mut seed, model)?;
            fixed_point = sites == 0;
            let residual = report.vulnerabilities().len();
            let by_order = (1..=order).map(|k| report.successes_of_order(k)).collect();
            (hardened, residual, by_order)
        };

        Ok(LoopOutcome {
            original_code_size,
            hardened,
            iterations,
            fixed_point,
            residual_vulnerabilities: residual,
            residual_by_order,
            campaigns: seed.campaigns,
            golden_good_runs: seed.golden_good_runs,
            sites_reused: seed.reuse.sites_reused,
            sites_replayed: seed.reuse.sites_replayed,
            metrics: self.metrics(),
            iteration_metrics,
        })
    }
}
